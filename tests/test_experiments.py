"""Tests for the experiment runners (repro.experiments)."""

import numpy as np
import pytest

from repro.abr.protocols import BufferBased, RateBased
from repro.abr.video import Video
from repro.experiments import (
    evaluate_protocols,
    run_abr_cdf_experiment,
    run_bb_weakness_experiment,
    run_robustness_experiment,
)
from repro.rl.ppo import PPOConfig
from repro.traces.random_traces import random_abr_traces
from repro.traces.synthetic import make_dataset


@pytest.fixture(scope="module")
def video():
    return Video.synthetic(n_chunks=10, seed=0)


@pytest.fixture(scope="module")
def traces():
    return random_abr_traces(4, seed=0, n_segments=10)


class TestEvaluateProtocols:
    def test_shape(self, video, traces):
        out = evaluate_protocols(
            video, traces, {"bb": BufferBased(), "rb": RateBased()},
            chunk_indexed=True,
        )
        assert set(out) == {"bb", "rb"}
        assert all(len(v) == len(traces) for v in out.values())

    def test_empty_corpus_rejected(self, video):
        with pytest.raises(ValueError):
            evaluate_protocols(video, [], {"bb": BufferBased()})

    def test_deterministic(self, video, traces):
        a = evaluate_protocols(video, traces, {"bb": BufferBased()}, chunk_indexed=True)
        b = evaluate_protocols(video, traces, {"bb": BufferBased()}, chunk_indexed=True)
        assert a == b


class TestCdfExperiment:
    def test_ratio_pairs_resolved(self, video, traces):
        corpora = {"random": traces}
        exp = run_abr_cdf_experiment(
            video, corpora, {"bb": BufferBased(), "rb": RateBased()},
            ratio_pairs=[("rb", "bb", "random")],
        )
        assert ("rb", "bb", "random") in exp.ratios
        assert exp.ratios[("rb", "bb", "random")].n == len(traces)
        assert set(exp.qoe["random"]) == {"bb", "rb"}


class TestBbWeakness:
    def test_fields_consistent(self, video, traces):
        exp = run_bb_weakness_experiment(video, traces[0], BufferBased())
        assert len(exp.bb_bitrates_kbps) == video.n_chunks
        assert len(exp.optimal_bitrates_kbps) == video.n_chunks
        assert exp.optimal_qoe_total >= exp.bb_qoe_total - 1e-9
        assert 0.0 <= exp.fraction_in_switching_band <= 1.0
        assert exp.bb_switches == int(
            np.count_nonzero(np.diff(exp.bb_bitrates_kbps))
        )


class TestRobustnessExperiment:
    def test_tiny_run_structure(self, video):
        corpus = make_dataset("broadband", 3, seed=0, duration=60.0)
        test_sets = {"a": corpus[:2], "b": corpus[1:]}
        exp = run_robustness_experiment(
            video, corpus, test_sets, "broadband",
            total_steps=768, adversary_steps=128, n_adversarial_traces=2,
            switch_fractions=(0.5,),
            pensieve_config=PPOConfig(n_steps=128, batch_size=64, hidden=(16,)),
            adversary_config=PPOConfig(n_steps=64, batch_size=32, hidden=(8,)),
        )
        assert set(exp.qoe) == {"without", "adv@50%"}
        for variant in exp.qoe.values():
            assert set(variant) == {"a", "b"}
            for mean, p5 in variant.values():
                assert np.isfinite(mean) and np.isfinite(p5)
        assert exp.adversarial_trace_count["adv@50%"] == 2

    def test_invalid_fraction(self, video):
        with pytest.raises(ValueError):
            run_robustness_experiment(
                video, [], {}, "x", switch_fractions=(1.2,)
            )

    @pytest.mark.slow
    def test_batched_evaluation_matches_serial(self, video):
        # batch_size accelerates the evaluation sessions (and, with
        # trace_seed set, adversarial trace generation); it must not
        # change a single number.
        corpus = make_dataset("broadband", 3, seed=0, duration=60.0)
        test_sets = {"a": corpus[:2], "b": corpus[1:]}
        kwargs = dict(
            total_steps=768, adversary_steps=128, n_adversarial_traces=2,
            switch_fractions=(0.5,), trace_seed=123,
            pensieve_config=PPOConfig(n_steps=128, batch_size=64, hidden=(16,)),
            adversary_config=PPOConfig(n_steps=64, batch_size=32, hidden=(8,)),
        )
        serial = run_robustness_experiment(
            video, corpus, test_sets, "broadband", **kwargs
        )
        batched = run_robustness_experiment(
            video, corpus, test_sets, "broadband", batch_size=4, **kwargs
        )
        assert serial.qoe == batched.qoe  # bitwise, not approx
        assert serial.adversarial_trace_count == batched.adversarial_trace_count
