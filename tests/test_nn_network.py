"""Tests for the MLP container (repro.nn.network)."""

import numpy as np
import pytest

from repro.nn.network import MLP


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestMLP:
    def test_shapes_and_dims(self, rng):
        net = MLP((5, 8, 3), rng)
        assert net.in_dim == 5 and net.out_dim == 3
        assert net.forward(np.zeros((7, 5))).shape == (7, 3)

    def test_single_sample_promoted_to_batch(self, rng):
        net = MLP((4, 2), rng)
        assert net.forward(np.zeros(4)).shape == (1, 2)

    def test_wrong_input_dim_raises(self, rng):
        net = MLP((4, 2), rng)
        with pytest.raises(ValueError):
            net.forward(np.zeros((1, 5)))

    def test_too_few_sizes_raises(self, rng):
        with pytest.raises(ValueError):
            MLP((4,), rng)

    def test_full_gradient_check(self, rng):
        net = MLP((3, 6, 2), rng, activation="tanh")
        x = rng.standard_normal((5, 3))
        w = rng.standard_normal((5, 2))

        def loss():
            return float(np.sum(net.forward(x) * w))

        net.zero_grad()
        net.forward(x)
        net.backward(w)
        grads = [g.copy() for g in net.gradients()]
        eps = 1e-6
        for p, g in zip(net.parameters(), grads):
            flat = p.reshape(-1)
            gflat = g.reshape(-1)
            for i in range(flat.size):
                old = flat[i]
                flat[i] = old + eps
                up = loss()
                flat[i] = old - eps
                down = loss()
                flat[i] = old
                assert abs((up - down) / (2 * eps) - gflat[i]) < 1e-6

    def test_get_set_weights_roundtrip(self, rng):
        net = MLP((3, 4, 2), rng)
        other = MLP((3, 4, 2), np.random.default_rng(99))
        x = rng.standard_normal((2, 3))
        assert not np.allclose(net.forward(x), other.forward(x))
        other.set_weights(net.get_weights())
        np.testing.assert_allclose(net.forward(x), other.forward(x))

    def test_set_weights_shape_mismatch_raises(self, rng):
        net = MLP((3, 4, 2), rng)
        weights = net.get_weights()
        with pytest.raises(ValueError):
            net.set_weights(weights[:-1])
        weights[0] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.set_weights(weights)

    def test_num_parameters(self, rng):
        net = MLP((3, 4, 2), rng)
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_small_out_gain_gives_near_uniform_head(self, rng):
        net = MLP((6, 16, 4), rng, out_gain=0.01)
        out = net.forward(rng.standard_normal((10, 6)))
        assert np.max(np.abs(out)) < 0.5


class TestForwardFastPath:
    """A 2-D float64 batch must enter the network without a copy."""

    def test_no_copy_for_batch_float64(self, rng):
        net = MLP((4, 3), rng)
        x = rng.standard_normal((5, 4))  # already (n, in_dim) float64
        net.forward(x)
        assert net._stack[0]._x is x  # the Dense layer cached x itself

    def test_conversion_still_happens_when_needed(self, rng):
        net = MLP((4, 3), rng)
        as_list = [[1.0, 2.0, 3.0, 4.0]]
        one_d = np.array([1.0, 2.0, 3.0, 4.0])
        f32 = np.array(as_list, dtype=np.float32)
        reference = net.forward(np.array(as_list))
        for variant in (as_list, one_d, f32):
            np.testing.assert_array_equal(net.forward(variant), reference)
            assert net._stack[0]._x is not variant

    def test_fast_path_output_unchanged(self, rng):
        net = MLP((6, 8, 2), rng)
        x = rng.standard_normal((7, 6))
        np.testing.assert_array_equal(net.forward(x), net.forward(x.tolist()))
