"""The batched adversary rollout backend, tested against the sync path.

Contract (``repro/adversary/batched_env.py``): at every batch width the
:class:`~repro.adversary.batched_env.BatchedAbrVecEnv` advances its
worlds in lockstep with one batched target-policy call per step and
returns observations, rewards, dones and infos **byte-for-byte** equal
to a :class:`~repro.rl.vec_env.SyncVecEnv` of serial
:class:`~repro.adversary.abr_env.AbrAdversaryEnv` copies -- including
across episode auto-resets, for every supported target family, for the
rebuffer goal, and for heterogeneous target batches.

All float comparisons go through ``tobytes()``.
"""

import numpy as np
import pytest

from repro.abr.protocols import MPC, BufferBased
from repro.abr.protocols.bola import Bola
from repro.abr.protocols.optimal import (
    optimal_qoe_exhaustive,
    optimal_qoe_exhaustive_mixed,
)
from repro.abr.qoe import QoEWeights
from repro.abr.simulator import AbrObservation
from repro.abr.video import Video
from repro.adversary.abr_env import AbrAdversaryEnv, train_abr_adversary
from repro.adversary.batched_env import BatchedAbrVecEnv
from repro.adversary.cc_env import train_cc_adversary
from repro.cc import BBRSender
from repro.rl.ppo import PPOConfig
from repro.rl.vec_env import SyncVecEnv, make_vec_env

from .test_batched_identity import make_pensieve
from .test_flat_identity import _checkpoint_digest
from .toy_envs import TargetPointEnv

VIDEO = Video.synthetic(n_chunks=10, seed=5)

TARGETS = {
    "bb": lambda: BufferBased(),
    "mpc": lambda: MPC(horizon=4),
    "bola": lambda: Bola(),
    "pensieve": lambda: make_pensieve(deterministic=True),
}


def make_pair(factory, n_envs, goal="qoe_regret", video=VIDEO):
    mk = lambda: AbrAdversaryEnv(factory(), video, goal=goal)  # noqa: E731
    sync = SyncVecEnv([mk for _ in range(n_envs)], seed=0)
    batched = mk().batched_vec_env(n_envs, seed=0)
    return sync, batched


def assert_lockstep_equal(sync, batched, n_envs, steps, seed=99):
    """Drive both backends with one action stream; everything must match."""
    obs_s = sync.reset(seed=123)
    obs_b = batched.reset(seed=123)
    assert obs_s.tobytes() == obs_b.tobytes()
    rng = np.random.default_rng(seed)
    for t in range(steps):
        acts = rng.uniform(-1.2, 1.2, size=(n_envs, 1))
        obs_s, rew_s, done_s, info_s = sync.step(acts)
        obs_b, rew_b, done_b, info_b = batched.step(acts)
        assert obs_s.tobytes() == obs_b.tobytes(), f"t={t}: obs"
        assert (
            np.asarray(rew_s, float).tobytes() == np.asarray(rew_b, float).tobytes()
        ), f"t={t}: rewards"
        assert list(done_s) == list(done_b), f"t={t}: dones"
        for i, (a, b) in enumerate(zip(info_s, info_b)):
            assert set(a) == set(b), f"t={t} env{i}: info keys"
            for k in a:
                va, vb = np.asarray(a[k], float), np.asarray(b[k], float)
                assert va.tobytes() == vb.tobytes(), f"t={t} env{i}: info[{k}]"
    sync.close()
    batched.close()


# -- bitwise identity --------------------------------------------------------


@pytest.mark.parametrize("target", sorted(TARGETS))
@pytest.mark.parametrize("n_envs", [1, 4, 16])
def test_bitwise_identity_vs_sync(target, n_envs):
    # 25 steps on a 10-chunk video crosses at least two auto-resets.
    sync, batched = make_pair(TARGETS[target], n_envs)
    assert_lockstep_equal(sync, batched, n_envs, steps=25)


def test_bitwise_identity_rebuffer_goal():
    sync, batched = make_pair(TARGETS["bb"], 4, goal="rebuffer")
    assert_lockstep_equal(sync, batched, 4, steps=25)


def test_stochastic_pensieve_matches_sync():
    # The non-deterministic agent exercises the persistent serial-lane
    # adapter: each lane's sampling RNG must advance exactly like the
    # sync path's per-env deepcopy, across episode boundaries.
    sync, batched = make_pair(lambda: make_pensieve(deterministic=False), 4)
    assert_lockstep_equal(sync, batched, 4, steps=25)


def test_mixed_target_batch_matches_sync():
    # One heterogeneous width-6 batch: the backend groups lanes by
    # target and dispatches each group through its own adapter.
    protos = ["bb", "bb", "mpc", "bola", "pensieve", "pensieve"]
    mks = [
        (lambda p=p: AbrAdversaryEnv(TARGETS[p](), VIDEO)) for p in protos
    ]
    sync = SyncVecEnv(mks, seed=0)
    batched = BatchedAbrVecEnv(
        TARGETS[protos[0]](), VIDEO, len(protos),
        targets=[TARGETS[p]() for p in protos],
    )
    assert_lockstep_equal(sync, batched, len(protos), steps=25)


def test_batch_composition_invariance():
    # A lane's trajectory must not depend on who shares the batch: lane 0
    # driven with the same actions produces identical streams at widths
    # 1, 4 and 16.
    def lane0_stream(n_envs):
        vec = AbrAdversaryEnv(BufferBased(), VIDEO).batched_vec_env(n_envs)
        dim = vec.observation_space.low.shape[0]
        obs = vec.reset(seed=0)
        chunks = [obs[0].tobytes()]
        rng = np.random.default_rng(42)
        for _ in range(15):
            lane0_act = rng.uniform(-1.0, 1.0)
            acts = np.full((n_envs, 1), 0.25)
            acts[0, 0] = lane0_act
            obs, rew, done, _ = vec.step(acts)
            chunks.append(obs[0].tobytes())
            chunks.append(np.float64(rew[0]).tobytes())
            chunks.append(bytes([int(done[0])]))
        vec.close()
        return b"".join(chunks)

    ref = lane0_stream(1)
    assert lane0_stream(4) == ref
    assert lane0_stream(16) == ref


# -- end-to-end PPO training -------------------------------------------------


def test_ppo_training_digest_matches_sync():
    # Full collect/update loop: the batched backend must leave the
    # trained checkpoint bitwise identical to the sync backend's.
    cfg = PPOConfig(n_steps=16, batch_size=32, n_epochs=2, hidden=(8, 8))
    digests = []
    for backend in ("sync", "batched"):
        result = train_abr_adversary(
            BufferBased(), VIDEO, total_steps=128, seed=3, config=cfg,
            n_envs=4, vec_backend=backend,
        )
        digests.append(_checkpoint_digest(result.trainer))
    assert digests[0] == digests[1]


# -- mixed-window r_opt solver -----------------------------------------------


def test_mixed_window_solver_matches_scalar():
    video = Video.synthetic(n_chunks=24, seed=2)
    rng = np.random.default_rng(8)
    weights = QoEWeights(rebuffer_penalty=7.0, smooth_penalty=1.5)
    widths = [1, 4, 2, 4, 3, 1, 4]
    starts = [int(rng.integers(0, video.n_chunks - w + 1)) for w in widths]
    windows = [rng.uniform(0.5, 5.0, size=w) for w in widths]
    buffers = [float(rng.uniform(0.0, 8.0)) for _ in widths]
    prevs = [None, 2, 0, None, 5, 1, 3]
    batch = optimal_qoe_exhaustive_mixed(
        video, starts, windows, buffers, prevs, weights
    )
    for i, w in enumerate(widths):
        scalar, _ = optimal_qoe_exhaustive(
            video, starts[i], windows[i], buffers[i], prevs[i], weights
        )
        assert np.float64(scalar).tobytes() == np.float64(batch[i]).tobytes()


# -- MPC error-window rollover -----------------------------------------------


def test_mpc_error_window_rollover():
    # The deque(maxlen=window) must keep exactly the last `window`
    # prediction errors -- same values the old list.pop(0) kept.
    mpc = MPC(horizon=3, window=4)
    mpc.reset(VIDEO)
    reference: list[float] = []
    rng = np.random.default_rng(0)
    history: list[tuple[float, float]] = []
    for step in range(10):
        history.append((float(rng.uniform(2e5, 8e5)), float(rng.uniform(0.5, 2.0))))
        obs = AbrObservation(
            chunk_index=0,
            last_quality=1,
            buffer_seconds=4.0,
            last_chunk_bytes=history[-1][0],
            last_download_seconds=history[-1][1],
            next_chunk_sizes=VIDEO.chunk_sizes_bytes[0],
            chunks_remaining=VIDEO.n_chunks,
            throughput_history=list(history),
        )
        last_prediction = mpc._last_prediction
        mpc._predict_throughput(obs)
        if last_prediction is not None:
            actual = obs.last_throughput_mbps()
            reference.append(abs(last_prediction - actual) / actual)
            reference = reference[-4:]  # what list.pop(0) maintained
        assert list(mpc._errors) == reference, f"step {step}"
    assert len(mpc._errors) == 4


# -- backend validation ------------------------------------------------------


def test_ppo_config_accepts_batched_backend():
    PPOConfig(vec_backend="batched").validate()
    with pytest.raises(ValueError, match="vec_backend"):
        PPOConfig(vec_backend="bogus").validate()


def test_make_vec_env_rejects_env_without_hook():
    with pytest.raises(ValueError, match="batched"):
        make_vec_env(TargetPointEnv(), 4, backend="batched")


def test_cc_adversary_rejects_batched_backend():
    with pytest.raises(ValueError, match="batched"):
        train_cc_adversary(BBRSender, total_steps=64, vec_backend="batched")
