"""Pinned multi-flow emulator goldens.

These digests were captured from the pre-fast-path
:class:`repro.cc.multiflow.MultiFlowEmulator` (string event kinds in one
heap, per-packet ``rng.random()`` draws, dataclass flow records) via
``tests/_capture_multiflow_goldens.py``.  The fast-path rewrite must
reproduce every per-flow interval statistic bit for bit: the digest
hashes the exact IEEE-754 representation (``float.hex()``) of each
interval's per-flow delivered bytes and throughput for every one of the
five senders, plus the final link counters.

Scenarios deliberately exercise the numerically delicate paths:

- latency changes *between* intervals (packets in flight across a
  condition change must price the receiver hop at the delay in force
  when they reach it, not when they egressed),
- nonzero random loss (the Bernoulli draw order is part of the stream),
- a small queue (droptail drops),
- staggered flow starts and 1/2/4-flow contention,
- all five senders (bbr, cubic, reno, copa, vivace).
"""

import hashlib

import numpy as np

from repro.cc import (
    BBRSender,
    CopaSender,
    CubicSender,
    RenoSender,
    TimeVaryingLink,
    VivaceSender,
)
from repro.cc.multiflow import MultiFlowEmulator

#: (name, sender factories, link kwargs, emulator kwargs, schedule seed,
#:  n_intervals, interval_s)
SCENARIOS = {
    "bbr-solo": ([BBRSender], dict(bandwidth_mbps=10.0, latency_ms=40.0), {}, 7, 120, 0.03),
    "cubic-solo": ([CubicSender], dict(bandwidth_mbps=10.0, latency_ms=40.0), {}, 7, 120, 0.03),
    "reno-solo": ([RenoSender], dict(bandwidth_mbps=10.0, latency_ms=40.0), {}, 7, 120, 0.03),
    "copa-solo": ([CopaSender], dict(bandwidth_mbps=10.0, latency_ms=40.0), {}, 7, 120, 0.03),
    "vivace-solo": ([VivaceSender], dict(bandwidth_mbps=10.0, latency_ms=40.0), {}, 7, 120, 0.03),
    "cubic-pair-lossy": (
        [CubicSender, CubicSender],
        dict(bandwidth_mbps=12.0, latency_ms=30.0, loss_rate=0.01),
        dict(seed=3),
        11, 150, 0.03,
    ),
    "bbr-vs-cubic-small-queue": (
        [BBRSender, CubicSender],
        dict(bandwidth_mbps=8.0, latency_ms=50.0, queue_packets=20),
        dict(seed=1, start_stagger_s=0.7),
        13, 150, 0.03,
    ),
    "four-flow-mix": (
        [BBRSender, CubicSender, RenoSender, CopaSender],
        dict(bandwidth_mbps=16.0, latency_ms=25.0, loss_rate=0.005),
        dict(seed=5, start_stagger_s=0.25),
        17, 120, 0.03,
    ),
    "copa-vivace-swings": (
        [CopaSender, VivaceSender],
        dict(bandwidth_mbps=10.0, latency_ms=60.0),
        dict(seed=9),
        19, 150, 0.05,
    ),
}

GOLDEN_DIGESTS = {
    "bbr-solo": "c8d8c61175b6e54c07550ecee7fb1a29812cd114b1c9db3edbe80e0454c96452",
    "cubic-solo": "be95b691b3a21e2b73a492ceff40df97aa7460945499a6aff0f09f35e3904509",
    "reno-solo": "809328720f2dfe526575c0b7efe4e538bbc829c89c9631b7f86318ef9d160fa3",
    "copa-solo": "5f7aa53be8dc71ebd445ede49e58c6b0d48818289128438ff3b93491ae9328c5",
    "vivace-solo": "2615d8d6dfaeb3b5b073ea1ce75c8c30ec43bb14590f2ab31098fcb3dea3dfe2",
    "cubic-pair-lossy": "ca2d60b4544de65b920f3d567636425b68d139656d0863874e2290ce0ec7975b",
    "bbr-vs-cubic-small-queue": "7dc29d71eefb820fc35c465573a562d63419fe0072e03fbe6eee4da4b6552486",
    "four-flow-mix": "2a5c4d15ba7abfbd28bd389e1e556620822a408e135745c7cb12a98d98067779",
    "copa-vivace-swings": "faa0b8a30320c04b3bfd57b17ed2258f859361a5c868e88adbcd378bde38c817",
}


def run_scenario(name: str) -> str:
    """Run one scenario and return the SHA-256 digest of its outcomes."""
    factories, link_kwargs, emu_kwargs, sched_seed, n_intervals, dt = SCENARIOS[name]
    link = TimeVaryingLink(**link_kwargs)
    emulator = MultiFlowEmulator([f() for f in factories], link, **emu_kwargs)
    base_bw = link.bandwidth_mbps
    base_lat = link.latency_ms
    base_loss = link.loss_rate
    sched = np.random.default_rng(sched_seed).random((n_intervals, 3))
    h = hashlib.sha256()
    for bw_u, lat_u, loss_u in sched:
        # Swing bandwidth 0.3-1.7x, latency 0.5-2.5x, loss 0-2x around the
        # scenario's base conditions -- every interval boundary moves all
        # three knobs, so in-flight packets straddle condition changes.
        emulator.set_conditions(
            base_bw * (0.3 + 1.4 * bw_u),
            base_lat * (0.5 + 2.0 * lat_u),
            min(base_loss * 2.0 * loss_u + (0.002 if base_loss == 0 else 0.0) * loss_u, 1.0),
        )
        for stats in emulator.run_interval(dt):
            h.update(str(stats.bytes_delivered).encode())
            h.update(float(stats.throughput_mbps).hex().encode())
    h.update(str(link.bytes_delivered).encode())
    h.update(str(link.drops_loss).encode())
    h.update(str(link.drops_queue).encode())
    return h.hexdigest()


class TestMultiFlowGoldens:
    def test_all_scenarios_pinned(self):
        assert set(GOLDEN_DIGESTS) == set(SCENARIOS)

    def test_digests_match(self):
        mismatches = {}
        for name in SCENARIOS:
            digest = run_scenario(name)
            if digest != GOLDEN_DIGESTS[name]:
                mismatches[name] = digest
        assert not mismatches, (
            "multi-flow emulator diverged from the pinned pre-fast-path "
            f"numerics: {mismatches}"
        )
