"""Tests for Cubic and Reno (repro.cc.protocols.cubic / reno)."""

import numpy as np
import pytest

from repro.cc import BBRSender, CubicSender, RenoSender
from repro.cc.metrics import run_sender_on_trace
from repro.cc.packet import AckInfo
from repro.traces.trace import Trace


def run(sender, bw=12.0, lat=40.0, loss=0.0, duration=12.0):
    trace = Trace.constant(bw, duration, latency_ms=lat, loss_rate=loss)
    return run_sender_on_trace(sender, trace)


def ack(seq, now=1.0):
    return AckInfo(seq=seq, now=now, rtt_s=0.04, delivered_bytes=seq * 1500,
                   delivery_rate_bps=1e6, queue_sojourn_s=0.0)


class TestCubicMechanics:
    def test_slow_start_doubles_per_rtt(self):
        cubic = CubicSender(initial_cwnd=10.0)
        for seq in range(10):
            cubic.on_ack(ack(seq))
        assert cubic.cwnd == pytest.approx(20.0)

    def test_multiplicative_decrease(self):
        cubic = CubicSender(initial_cwnd=100.0)
        cubic.ssthresh = 50.0  # in congestion avoidance
        cubic.highest_seq_sent = 200
        cubic.on_packet_lost(10, 1.0)
        assert cubic.cwnd == pytest.approx(70.0)

    def test_one_decrease_per_loss_window(self):
        cubic = CubicSender(initial_cwnd=100.0)
        cubic.highest_seq_sent = 200
        cubic.on_packet_lost(10, 1.0)
        w = cubic.cwnd
        cubic.on_packet_lost(11, 1.0)  # same window of loss
        assert cubic.cwnd == w

    def test_timeout_collapses_window(self):
        cubic = CubicSender(initial_cwnd=64.0)
        cubic.on_timeout(2.0)
        assert cubic.cwnd == 1.0

    def test_cubic_growth_toward_wmax(self):
        cubic = CubicSender(initial_cwnd=100.0)
        cubic.ssthresh = 1.0  # force congestion avoidance
        cubic.highest_seq_sent = 10
        cubic.on_packet_lost(1, 0.0)  # w_max = 100, cwnd = 70
        start = cubic.cwnd
        for i, t in enumerate(np.arange(0.1, 20.0, 0.04)):
            cubic.on_ack(ack(100 + i, now=t))
        # Approaches/overtakes the previous maximum over time.
        assert cubic.cwnd > start
        assert cubic.cwnd >= 95.0


class TestRenoMechanics:
    def test_additive_increase(self):
        reno = RenoSender(initial_cwnd=10.0)
        reno.ssthresh = 5.0
        w = reno.cwnd
        reno.on_ack(ack(1))
        assert reno.cwnd == pytest.approx(w + 1.0 / w)

    def test_halving_on_loss(self):
        reno = RenoSender(initial_cwnd=40.0)
        reno.highest_seq_sent = 100
        reno.on_packet_lost(5, 1.0)
        assert reno.cwnd == pytest.approx(20.0)

    def test_timeout(self):
        reno = RenoSender(initial_cwnd=40.0)
        reno.on_timeout(1.0)
        assert reno.cwnd == 1.0
        assert reno.ssthresh == pytest.approx(20.0)


class TestLossFragility:
    """Section 4: loss-based TCPs have 'a trivial weakness to packet loss
    even as low as 1%'; BBR does not."""

    @pytest.mark.parametrize("sender_cls", [CubicSender, RenoSender])
    def test_loss_collapses_loss_based_tcp(self, sender_cls):
        clean = run(sender_cls(), loss=0.0)
        lossy = run(sender_cls(), loss=0.02)
        assert lossy.mean_throughput_mbps < 0.4 * clean.mean_throughput_mbps

    def test_bbr_survives_same_loss(self):
        lossy = run(BBRSender(), loss=0.02)
        assert lossy.capacity_fraction > 0.8

    @pytest.mark.parametrize("sender_cls", [CubicSender, RenoSender])
    def test_full_utilization_without_loss(self, sender_cls):
        result = run(sender_cls())
        assert result.mean_utilization > 0.9

    def test_loss_based_fill_the_queue(self):
        """Cubic's standing queue vs BBR's (the delay contrast)."""
        cubic = run(CubicSender())
        bbr = run(BBRSender())
        assert cubic.mean_queue_delay_s > 3.0 * bbr.mean_queue_delay_s


class TestMetrics:
    def test_trace_without_schedules_rejected(self):
        trace = Trace.constant(10.0, 5.0)  # no latency/loss
        with pytest.raises(ValueError):
            run_sender_on_trace(CubicSender(), trace)

    def test_capacity_fraction_bounds(self):
        result = run(CubicSender(), duration=6.0)
        assert 0.0 < result.capacity_fraction <= 1.05

    def test_warmup_excluded(self):
        trace = Trace.constant(12.0, 6.0, latency_ms=40.0, loss_rate=0.0)
        with_warmup = run_sender_on_trace(BBRSender(), trace, warmup_s=3.0)
        assert with_warmup.intervals[0].t_start == pytest.approx(3.0, abs=1e-6)
