"""Property tests over the ABR simulator and the CC emulator.

Unlike ``test_properties.py`` (which drives similar invariants through
hypothesis), this layer enumerates seeded numpy sequences so it runs with
the base install -- these are the invariants the adversary environments
lean on, and they must hold even when only the runtime dependencies are
present.
"""

import numpy as np
import pytest

from repro.abr.simulator import (
    BUFFER_CAP_S,
    ChunkIndexedBandwidth,
    ControlledBandwidth,
    StreamingSession,
)
from repro.abr.video import Video
from repro.adversary.abr_env import ABR_BW_HIGH_MBPS, ABR_BW_LOW_MBPS
from repro.cc.link import TimeVaryingLink
from repro.cc.network import PacketNetworkEmulator
from repro.cc.protocols.bbr import BBRSender


class TestAbrSessionInvariants:
    """Every chunk download keeps the client model physically sensible."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_bandwidths_and_qualities(self, seed):
        rng = np.random.default_rng(seed)
        video = Video.synthetic(n_chunks=16, seed=1)
        ladder = set(float(b) for b in video.bitrates_kbps)
        bandwidths = rng.uniform(0.2, 8.0, size=video.n_chunks)
        session = StreamingSession(video, ChunkIndexedBandwidth(bandwidths))
        while not session.done:
            quality = int(rng.integers(video.n_bitrates))
            result = session.download_chunk(quality)
            assert 0.0 <= result.buffer_seconds <= BUFFER_CAP_S + 1e-9
            assert result.rebuffer_seconds >= 0.0
            assert result.download_seconds > 0.0
            assert result.bitrate_kbps in ladder

    @pytest.mark.parametrize("seed", range(6))
    def test_adversary_bandwidth_range(self, seed):
        """The invariants hold across the adversary's own action range."""
        rng = np.random.default_rng(seed)
        video = Video.synthetic(n_chunks=16, seed=2)
        schedule = ControlledBandwidth()
        session = StreamingSession(video, schedule)
        while not session.done:
            schedule.set_mbps(rng.uniform(ABR_BW_LOW_MBPS, ABR_BW_HIGH_MBPS))
            result = session.download_chunk(int(rng.integers(video.n_bitrates)))
            assert 0.0 <= result.buffer_seconds <= BUFFER_CAP_S + 1e-9
            assert result.rebuffer_seconds >= 0.0

    def test_rebuffer_accounting_is_consistent(self):
        """A download longer than the buffer rebuffers by exactly the gap."""
        video = Video.synthetic(n_chunks=4, seed=3)
        session = StreamingSession(video, ControlledBandwidth(0.3))
        result = session.download_chunk(video.n_bitrates - 1)
        # First chunk starts with an empty buffer: full download stalls.
        assert result.rebuffer_seconds == pytest.approx(result.download_seconds)

    def test_summary_totals_match_chunks(self):
        rng = np.random.default_rng(0)
        video = Video.synthetic(n_chunks=10, seed=4)
        bandwidths = rng.uniform(0.5, 5.0, size=video.n_chunks)
        session = StreamingSession(video, ChunkIndexedBandwidth(bandwidths))
        while not session.done:
            session.download_chunk(int(rng.integers(video.n_bitrates)))
        summary = session.summary()
        assert summary.total_rebuffer == pytest.approx(
            sum(summary.rebuffer_seconds)
        )
        assert summary.qoe_total == pytest.approx(
            summary.qoe_mean * video.n_chunks
        )


class TestCcLinkConservation:
    """The emulated link never delivers more than bandwidth x time."""

    INTERVAL_S = 0.03

    @pytest.mark.parametrize("seed", range(8))
    def test_bytes_delivered_bounded_by_capacity(self, seed):
        rng = np.random.default_rng(seed)
        link = TimeVaryingLink(12.0, 30.0, 0.0)
        sender = BBRSender()
        emulator = PacketNetworkEmulator(sender, link, seed=seed)
        for _ in range(80):
            bandwidth = float(rng.uniform(6.0, 24.0))
            emulator.set_conditions(bandwidth, float(rng.uniform(15.0, 60.0)),
                                    float(rng.uniform(0.0, 0.10)))
            stats = emulator.run_interval(self.INTERVAL_S)
            capacity_bytes = bandwidth * 1e6 * self.INTERVAL_S / 8.0
            # One MSS of slack: a packet whose service began in the prior
            # interval may complete just inside this one.
            assert stats.bytes_delivered <= capacity_bytes + sender.mss
            assert 0.0 <= stats.utilization <= 1.0

    def test_total_delivery_bounded_over_run(self):
        link = TimeVaryingLink(10.0, 20.0, 0.0)
        sender = BBRSender()
        emulator = PacketNetworkEmulator(sender, link, seed=1)
        n_intervals = 120
        delivered = sum(
            emulator.run_interval(self.INTERVAL_S).bytes_delivered
            for _ in range(n_intervals)
        )
        capacity = 10.0 * 1e6 * self.INTERVAL_S * n_intervals / 8.0
        assert delivered <= capacity + sender.mss
