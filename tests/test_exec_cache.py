"""Tests for the content-addressed result cache (repro.exec.cache)."""

import numpy as np
import pytest

from repro.exec import CACHE_DIR_ENV, ResultCache, fingerprint, make_key
from repro.nn.network import MLP
from repro.traces.trace import Trace


class TestStoreRoundtrip:
    def test_put_then_lookup(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("abcd", {"qoe": 1.5})
        hit, value = cache.lookup("abcd")
        assert hit and value == {"qoe": 1.5}
        assert len(cache) == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit, value = cache.lookup("nope")
        assert not hit and value is None
        assert cache.get("nope", default="fallback") == "fallback"

    def test_overwrite_keeps_entry_count(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(f"key{i}", i)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_entries_survive_reopen(self, tmp_path):
        ResultCache(tmp_path).put("k", "v")
        reopened = ResultCache(tmp_path)
        assert len(reopened) == 1
        assert reopened.get("k") == "v"


class TestCorruptionTolerance:
    def test_garbage_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("dead", 42)
        cache._path("dead").write_bytes(b"not a pickle")
        hit, value = cache.lookup("dead")
        assert not hit and value is None
        assert cache.errors == 1
        assert not cache._path("dead").exists()  # dropped, not re-parsed forever

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("trunc", list(range(100)))
        path = cache._path("trunc")
        path.write_bytes(path.read_bytes()[:10])
        hit, _value = cache.lookup("trunc")
        assert not hit

    def test_entry_under_wrong_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aaaa", "for-aaaa")
        other = cache._path("bbbb")
        other.parent.mkdir(parents=True, exist_ok=True)
        other.write_bytes(cache._path("aaaa").read_bytes())
        hit, _value = cache.lookup("bbbb")
        assert not hit and cache.errors == 1


class TestCounters:
    def test_hits_misses_and_summary(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("x", 1)
        cache.lookup("x")
        cache.lookup("y")
        assert cache.stats() == {
            "hits": 1, "misses": 1, "stores": 1,
            "evictions": 0, "errors": 0, "entries": 1,
        }
        assert cache.hit_rate() == 0.5
        assert "1 hits" in cache.summary() and "50%" in cache.summary()

    def test_hit_rate_with_no_traffic(self, tmp_path):
        assert ResultCache(tmp_path).hit_rate() == 0.0

    def test_get_or_compute(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 7) == 7
        assert cache.get_or_compute("k", lambda: calls.append(1) or 9) == 7
        assert len(calls) == 1


class TestEviction:
    def test_oldest_entries_evicted_past_the_bound(self, tmp_path):
        import os

        cache = ResultCache(tmp_path, max_entries=2)
        for i, key in enumerate(["old", "mid"]):
            cache.put(key, i)
            # mtime granularity can be coarse; force a strict ordering.
            os.utime(cache._path(key), (1000 + i, 1000 + i))
        cache.put("new", 2)
        assert cache.evictions == 1
        assert len(cache) == 2
        assert not cache.lookup("old")[0]  # oldest went first
        assert cache.get("new") == 2

    def test_nonpositive_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)

    def test_bound_enforced_across_two_writers(self, tmp_path):
        """The bound holds from the disk listing, not per-instance counts."""
        import os

        a = ResultCache(tmp_path, max_entries=3)
        b = ResultCache(tmp_path, max_entries=3)
        for i in range(3):
            writer = a if i % 2 == 0 else b
            writer.put(f"k{i}", i)
            os.utime(writer._path(f"k{i}"), (1000 + i, 1000 + i))
        # Each instance alone stored fewer than max_entries, but the
        # directory is full: the next store must evict the oldest.
        b.put("k3", 3)
        entries = {p.stem for shard in tmp_path.iterdir() if shard.is_dir()
                   for p in shard.glob("*.pkl")}
        assert entries == {"k1", "k2", "k3"}
        assert b.evictions == 1
        assert len(b) == 3

    def test_len_tracks_foreign_writes_on_eviction_pass(self, tmp_path):
        a = ResultCache(tmp_path, max_entries=10)
        b = ResultCache(tmp_path, max_entries=10)
        for i in range(4):
            a.put(f"a{i}", i)
        b.put("b0", 0)  # eviction pass recounts from disk
        assert len(b) == 5


class TestCountRecovery:
    def test_corrupt_drop_recounts_from_disk(self, tmp_path):
        writer = ResultCache(tmp_path)
        for i in range(3):
            writer.put(f"k{i}", i)
        reader = ResultCache(tmp_path)
        # Another process corrupts one entry after the reader counted.
        writer._path("k1").write_bytes(b"garbage")
        assert not reader.lookup("k1")[0]
        assert reader.errors == 1
        assert len(reader) == 2  # recounted, not blindly decremented

    def test_corrupt_foreign_entry_does_not_underflow(self, tmp_path):
        writer = ResultCache(tmp_path)
        cache = ResultCache(tmp_path)  # counted 0 entries at init
        writer.put("k", 1)
        writer._path("k").write_bytes(b"garbage")
        assert not cache.lookup("k")[0]
        # Dropping an entry this instance never saw stored must not
        # push the count negative.
        assert len(cache) == 0

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert not cache.lookup("a")[0]


class TestResolve:
    def test_false_disables(self):
        assert ResultCache.resolve(False) is None

    def test_none_reads_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert ResultCache.resolve(None) is None
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
        cache = ResultCache.resolve(None)
        assert isinstance(cache, ResultCache)
        assert cache.root == tmp_path / "envcache"

    def test_path_and_instance(self, tmp_path):
        by_path = ResultCache.resolve(str(tmp_path))
        assert isinstance(by_path, ResultCache)
        assert ResultCache.resolve(by_path) is by_path


class TestFingerprint:
    def test_deterministic_and_type_sensitive(self):
        assert fingerprint(1, "a", 2.5) == fingerprint(1, "a", 2.5)
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint(b"x") != fingerprint("x")
        assert fingerprint(True) != fingerprint(1)

    def test_arrays_hash_by_dtype_shape_and_bytes(self):
        a = np.arange(6, dtype=np.float64)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a.reshape(2, 3))
        assert fingerprint(a) != fingerprint(a.astype(np.float32))
        b = a.copy()
        b[0] = -1.0
        assert fingerprint(a) != fingerprint(b)

    def test_dict_insertion_order_is_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_generator_state_is_identity(self):
        a = np.random.default_rng(0)
        b = np.random.default_rng(0)
        assert fingerprint(a) == fingerprint(b)
        b.random()  # advancing the stream changes the fingerprint
        assert fingerprint(a) != fingerprint(b)

    def test_trace_name_is_excluded(self):
        bw = np.array([1.0, 2.0, 3.0])
        t1 = Trace.from_steps(bw, 4.0, name="anti-mpc-000")
        t2 = Trace.from_steps(bw, 4.0, name="renamed")
        assert fingerprint(t1) == fingerprint(t2)
        t3 = Trace.from_steps(bw * 2, 4.0, name="anti-mpc-000")
        assert fingerprint(t1) != fingerprint(t3)

    def test_mlp_hashes_by_weights_not_run_artifacts(self):
        net = MLP((3, 4, 2), np.random.default_rng(0))
        before = fingerprint(net)
        net.forward(np.zeros((2, 3)))  # populates private caches
        assert fingerprint(net) == before
        net.parameters()[0][0, 0] += 1.0
        assert fingerprint(net) != before

    def test_private_attrs_skipped_generators_kept(self):
        class Thing:
            def __init__(self, rng_seed):
                self.value = 1
                self._scratch = object()  # unfingerprintable, must be skipped
                self._rng = np.random.default_rng(rng_seed)

        assert fingerprint(Thing(0)) == fingerprint(Thing(0))
        assert fingerprint(Thing(0)) != fingerprint(Thing(1))

    def test_unfingerprintable_object_raises(self):
        with pytest.raises(TypeError):
            fingerprint(object())

    def test_make_key_namespaces(self):
        assert make_key("abr", 1) != make_key("cc", 1)
        assert len(make_key("abr", 1)) == 64  # hex sha256
