"""Tests for the content-addressed result cache (repro.exec.cache)."""

import numpy as np
import pytest

from repro.exec import CACHE_DIR_ENV, ResultCache, fingerprint, make_key
from repro.nn.network import MLP
from repro.traces.trace import Trace


class TestStoreRoundtrip:
    def test_put_then_lookup(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("abcd", {"qoe": 1.5})
        hit, value = cache.lookup("abcd")
        assert hit and value == {"qoe": 1.5}
        assert len(cache) == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit, value = cache.lookup("nope")
        assert not hit and value is None
        assert cache.get("nope", default="fallback") == "fallback"

    def test_overwrite_keeps_entry_count(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(f"key{i}", i)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_entries_survive_reopen(self, tmp_path):
        ResultCache(tmp_path).put("k", "v")
        reopened = ResultCache(tmp_path)
        assert len(reopened) == 1
        assert reopened.get("k") == "v"


class TestCorruptionTolerance:
    def test_garbage_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("dead", 42)
        cache._path("dead").write_bytes(b"not a pickle")
        hit, value = cache.lookup("dead")
        assert not hit and value is None
        assert cache.errors == 1
        assert not cache._path("dead").exists()  # dropped, not re-parsed forever

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("trunc", list(range(100)))
        path = cache._path("trunc")
        path.write_bytes(path.read_bytes()[:10])
        hit, _value = cache.lookup("trunc")
        assert not hit

    def test_entry_under_wrong_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aaaa", "for-aaaa")
        other = cache._path("bbbb")
        other.parent.mkdir(parents=True, exist_ok=True)
        other.write_bytes(cache._path("aaaa").read_bytes())
        hit, _value = cache.lookup("bbbb")
        assert not hit and cache.errors == 1


class TestCounters:
    def test_hits_misses_and_summary(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("x", 1)
        cache.lookup("x")
        cache.lookup("y")
        assert cache.stats() == {
            "hits": 1, "misses": 1, "stores": 1,
            "evictions": 0, "errors": 0, "entries": 1,
        }
        assert cache.hit_rate() == 0.5
        assert "1 hits" in cache.summary() and "50%" in cache.summary()

    def test_hit_rate_with_no_traffic(self, tmp_path):
        assert ResultCache(tmp_path).hit_rate() == 0.0

    def test_get_or_compute(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 7) == 7
        assert cache.get_or_compute("k", lambda: calls.append(1) or 9) == 7
        assert len(calls) == 1


class TestEviction:
    def test_oldest_entries_evicted_past_the_bound(self, tmp_path):
        import os

        cache = ResultCache(tmp_path, max_entries=2)
        for i, key in enumerate(["old", "mid"]):
            cache.put(key, i)
            # mtime granularity can be coarse; force a strict ordering.
            os.utime(cache._path(key), (1000 + i, 1000 + i))
        cache.put("new", 2)
        assert cache.evictions == 1
        assert len(cache) == 2
        assert not cache.lookup("old")[0]  # oldest went first
        assert cache.get("new") == 2

    def test_nonpositive_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert not cache.lookup("a")[0]


class TestResolve:
    def test_false_disables(self):
        assert ResultCache.resolve(False) is None

    def test_none_reads_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert ResultCache.resolve(None) is None
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
        cache = ResultCache.resolve(None)
        assert isinstance(cache, ResultCache)
        assert cache.root == tmp_path / "envcache"

    def test_path_and_instance(self, tmp_path):
        by_path = ResultCache.resolve(str(tmp_path))
        assert isinstance(by_path, ResultCache)
        assert ResultCache.resolve(by_path) is by_path


class TestFingerprint:
    def test_deterministic_and_type_sensitive(self):
        assert fingerprint(1, "a", 2.5) == fingerprint(1, "a", 2.5)
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint(b"x") != fingerprint("x")
        assert fingerprint(True) != fingerprint(1)

    def test_arrays_hash_by_dtype_shape_and_bytes(self):
        a = np.arange(6, dtype=np.float64)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a.reshape(2, 3))
        assert fingerprint(a) != fingerprint(a.astype(np.float32))
        b = a.copy()
        b[0] = -1.0
        assert fingerprint(a) != fingerprint(b)

    def test_dict_insertion_order_is_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_generator_state_is_identity(self):
        a = np.random.default_rng(0)
        b = np.random.default_rng(0)
        assert fingerprint(a) == fingerprint(b)
        b.random()  # advancing the stream changes the fingerprint
        assert fingerprint(a) != fingerprint(b)

    def test_trace_name_is_excluded(self):
        bw = np.array([1.0, 2.0, 3.0])
        t1 = Trace.from_steps(bw, 4.0, name="anti-mpc-000")
        t2 = Trace.from_steps(bw, 4.0, name="renamed")
        assert fingerprint(t1) == fingerprint(t2)
        t3 = Trace.from_steps(bw * 2, 4.0, name="anti-mpc-000")
        assert fingerprint(t1) != fingerprint(t3)

    def test_mlp_hashes_by_weights_not_run_artifacts(self):
        net = MLP((3, 4, 2), np.random.default_rng(0))
        before = fingerprint(net)
        net.forward(np.zeros((2, 3)))  # populates private caches
        assert fingerprint(net) == before
        net.parameters()[0][0, 0] += 1.0
        assert fingerprint(net) != before

    def test_private_attrs_skipped_generators_kept(self):
        class Thing:
            def __init__(self, rng_seed):
                self.value = 1
                self._scratch = object()  # unfingerprintable, must be skipped
                self._rng = np.random.default_rng(rng_seed)

        assert fingerprint(Thing(0)) == fingerprint(Thing(0))
        assert fingerprint(Thing(0)) != fingerprint(Thing(1))

    def test_unfingerprintable_object_raises(self):
        with pytest.raises(TypeError):
            fingerprint(object())

    def test_make_key_namespaces(self):
        assert make_key("abr", 1) != make_key("cc", 1)
        assert len(make_key("abr", 1)) == 64  # hex sha256
