"""Tests for the routing domain (repro.routing)."""

import networkx as nx
import numpy as np
import pytest

from repro.routing import (
    InverseCapacityRouting,
    RoutingAdversaryEnv,
    UnitWeightRouting,
    abilene_like,
    gravity_demands,
    max_link_utilization,
    random_topology,
    route_demands,
    train_learned_routing,
    train_routing_adversary,
)
from repro.routing.demands import demand_pairs, normalize_demands
from repro.routing.routing import RoutingEnv
from repro.routing.topology import validate_topology
from repro.rl.ppo import PPOConfig


@pytest.fixture(scope="module")
def graph():
    return abilene_like()


class TestTopology:
    def test_abilene_is_valid(self, graph):
        validate_topology(graph)
        assert graph.number_of_nodes() == 11
        # Directed both ways.
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_random_topology_connected_and_capacitated(self):
        g = random_topology(n_nodes=8, seed=3)
        validate_topology(g)
        assert nx.is_strongly_connected(g)

    def test_random_topology_too_small_rejected(self):
        with pytest.raises(ValueError):
            random_topology(n_nodes=2)

    def test_validate_rejects_missing_capacity(self):
        g = nx.DiGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        with pytest.raises(ValueError):
            validate_topology(g)


class TestDemands:
    def test_gravity_sums_to_total(self, graph):
        demands = gravity_demands(graph, np.random.default_rng(0), 1000.0)
        assert sum(demands.values()) == pytest.approx(1000.0)
        assert len(demands) == len(demand_pairs(graph))
        assert all(v > 0 for v in demands.values())

    def test_normalize_rejects_empty_volume(self):
        with pytest.raises(ValueError):
            normalize_demands({(0, 1): 0.0}, 10.0)

    def test_invalid_total_rejected(self, graph):
        with pytest.raises(ValueError):
            gravity_demands(graph, np.random.default_rng(0), -1.0)


class TestRouting:
    def test_loads_conserve_demand_on_a_path_graph(self):
        g = nx.DiGraph()
        for u, v in [(0, 1), (1, 2)]:
            g.add_edge(u, v, capacity_mbps=100.0)
            g.add_edge(v, u, capacity_mbps=100.0)
        loads = route_demands(g, {(0, 2): 50.0}, {e: 1.0 for e in g.edges})
        assert loads[(0, 1)] == 50.0
        assert loads[(1, 2)] == 50.0
        assert loads[(1, 0)] == 0.0

    def test_weights_steer_traffic(self):
        # Two disjoint 0->3 routes; penalizing one moves traffic to the other.
        g = nx.DiGraph()
        for u, v in [(0, 1), (1, 3), (0, 2), (2, 3)]:
            g.add_edge(u, v, capacity_mbps=100.0)
            g.add_edge(v, u, capacity_mbps=100.0)
        demands = {(0, 3): 60.0}
        w = {e: 1.0 for e in g.edges}
        w[(0, 1)] = 10.0
        loads = route_demands(g, demands, w)
        assert loads[(0, 2)] == 60.0
        assert loads[(0, 1)] == 0.0

    def test_nonpositive_weight_rejected(self, graph):
        demands = gravity_demands(graph, np.random.default_rng(0), 100.0)
        with pytest.raises(ValueError):
            route_demands(graph, demands, {(0, 1): 0.0})

    def test_mlu_definition(self):
        g = nx.DiGraph()
        g.add_edge(0, 1, capacity_mbps=100.0)
        g.add_edge(1, 0, capacity_mbps=50.0)
        assert max_link_utilization(g, {(0, 1): 30.0, (1, 0): 40.0}) == pytest.approx(0.8)

    def test_static_policies(self, graph):
        demands = gravity_demands(graph, np.random.default_rng(1), 5000.0)
        for policy in (UnitWeightRouting(), InverseCapacityRouting()):
            mlu = policy.mlu(graph, demands)
            assert 0.0 < mlu < 10.0


class TestRoutingEnv:
    def test_episode_mechanics(self, graph):
        env = RoutingEnv(graph, total_mbps=5000.0, episode_len=3, seed=0)
        obs = env.reset()
        assert obs.shape == (len(demand_pairs(graph)),)
        steps = 0
        done = False
        while not done:
            _o, reward, done, info = env.step(np.zeros(len(sorted(graph.edges))))
            assert reward == pytest.approx(-info["mlu"])
            steps += 1
        assert steps == 3

    def test_training_runs(self, graph):
        cfg = PPOConfig(n_steps=64, batch_size=32, hidden=(16,))
        policy, trainer = train_learned_routing(
            graph, 5000.0, total_steps=128, seed=0, config=cfg
        )
        demands = gravity_demands(graph, np.random.default_rng(2), 5000.0)
        assert 0.0 < policy.mlu(graph, demands) < 10.0


class TestRoutingAdversary:
    def test_action_maps_to_fixed_volume(self, graph):
        env = RoutingAdversaryEnv(UnitWeightRouting(), graph, 5000.0)
        demands = env.action_to_demands(np.zeros(len(demand_pairs(graph))))
        assert sum(demands.values()) == pytest.approx(5000.0)

    def test_wrong_action_dim_rejected(self, graph):
        env = RoutingAdversaryEnv(UnitWeightRouting(), graph, 5000.0)
        with pytest.raises(ValueError):
            env.action_to_demands(np.zeros(3))

    def test_regret_nonnegative_when_target_in_portfolio(self, graph):
        """Unit routing is in the reference portfolio, so its regret >= 0."""
        env = RoutingAdversaryEnv(UnitWeightRouting(), graph, 5000.0, seed=0)
        env.reset()
        rng = np.random.default_rng(0)
        done = False
        while not done:
            _o, _r, done, info = env.step(rng.normal(0, 1, len(demand_pairs(graph))))
            assert info["regret"] >= -1e-9

    def test_reward_structure(self, graph):
        env = RoutingAdversaryEnv(UnitWeightRouting(), graph, 5000.0,
                                  smoothing_weight=0.5)
        env.reset()
        _o, reward, _d, info = env.step(np.zeros(len(demand_pairs(graph))))
        assert reward == pytest.approx(info["regret"] - 0.5 * info["smoothing"])

    def test_short_training_runs(self, graph):
        cfg = PPOConfig(n_steps=64, batch_size=32, hidden=(8,))
        result = train_routing_adversary(
            UnitWeightRouting(), graph, 5000.0, total_steps=128, seed=0, config=cfg
        )
        assert result.trainer.total_steps == 128
