"""Tests for the decision service (repro.serve.service).

The load-bearing contract: a decision served through the coalesced
batched path is bitwise identical to the inline ``AbrPolicy.select``
call -- per protocol, with and without the MPC plan cache.
"""

import asyncio
import dataclasses

import pytest

from repro.abr.video import Video
from repro.exec import ResultCache
from repro.serve import (
    DecisionRequest,
    DecisionService,
    InprocTransport,
    ServeError,
    default_protocols,
    run_loadgen,
)
from repro.traces.random_traces import random_abr_traces


@pytest.fixture(scope="module")
def video():
    return Video.synthetic(n_chunks=8, seed=3)


@pytest.fixture(scope="module")
def traces():
    return random_abr_traces(3, seed=7, n_segments=8)


def run(coro):
    return asyncio.run(coro)


async def _loadgen(video, traces, protocol, batch_size, players=6, cache=None,
                   verify=True):
    protocols = default_protocols()
    service = DecisionService(video, protocols, batch_size=batch_size,
                              cache=cache)
    async with service:
        report = await run_loadgen(
            InprocTransport(service), video, traces, protocol, players,
            reference=default_protocols()[protocol] if verify else None,
        )
    return report, service


class TestServeInlineIdentity:
    """Satellite 3: serve <-> inline bitwise identity per protocol."""

    @pytest.mark.parametrize("protocol", ["bb", "bola", "mpc", "pensieve"])
    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_identity(self, video, traces, protocol, batch_size):
        report, service = run(
            _loadgen(video, traces, protocol, batch_size)
        )
        assert report.errors == 0
        assert report.mismatches == 0
        assert report.requests == 6 * video.n_chunks
        assert service.mode == ("inline" if batch_size == 1 else "coalesced")

    def test_robust_mpc_identity(self, video, traces):
        report, _ = run(_loadgen(video, traces, "robust-mpc", 8))
        assert report.errors == 0 and report.mismatches == 0

    def test_windows_actually_coalesce(self, video, traces):
        report, service = run(_loadgen(video, traces, "bola", 16, players=8))
        assert report.mismatches == 0
        assert service.coalescer.mean_occupancy > 1.5


class TestMpcPlanCache:
    def test_cache_preserves_identity_and_hits_on_repeat(self, video, traces,
                                                         tmp_path):
        cache = ResultCache(tmp_path)
        # First sweep: all plan scans miss; decisions still inline-identical.
        report1, _ = run(_loadgen(video, traces, "mpc", 8, cache=cache))
        assert report1.mismatches == 0
        stats1 = cache.stats()
        assert stats1["misses"] > 0
        # Second sweep over the same corpus: repeat decision states are
        # served from the content-addressed store, decisions unchanged.
        report2, service = run(_loadgen(video, traces, "mpc", 8, cache=cache))
        assert report2.mismatches == 0
        stats2 = cache.stats()
        assert stats2["hits"] > stats1["hits"]
        assert cache.hit_rate() > 0.0
        assert service.stats()["cache"]["hit_rate"] == cache.hit_rate()


class TestSessionErrors:
    def _fresh_request(self, service, sid="s", protocol="bola", **overrides):
        from repro.abr.simulator import ChunkIndexedBandwidth, StreamingSession

        session = StreamingSession(
            service.video, ChunkIndexedBandwidth([3.0], cycle=True)
        )
        obs = session.observation()
        if overrides:
            obs = dataclasses.replace(obs, **overrides)
        return DecisionRequest(session=sid, observation=obs, protocol=protocol)

    def test_out_of_order_chunk(self, video):
        from repro.abr.simulator import ChunkIndexedBandwidth, StreamingSession

        async def main():
            async with DecisionService(video, default_protocols(),
                                       batch_size=4) as service:
                client = StreamingSession(
                    video, ChunkIndexedBandwidth([3.0], cycle=True)
                )
                resp = await service.decide(DecisionRequest(
                    "s", client.observation(), protocol="bola"))
                client.download_chunk(resp.quality)
                client.download_chunk(resp.quality)  # skip reporting chunk 1
                with pytest.raises(ServeError) as exc_info:
                    await service.decide(
                        DecisionRequest("s", client.observation()))
                return exc_info.value

        err = run(main())
        assert err.status == 409 and err.code == "out-of-order"

    def test_unknown_session_must_start_at_chunk_zero(self, video):
        async def main():
            async with DecisionService(video, default_protocols(),
                                       batch_size=4) as service:
                req = self._fresh_request(service)
                resp = await service.decide(req)
                # Forge a mid-stream observation for a never-seen session.
                from repro.abr.simulator import (
                    ChunkIndexedBandwidth,
                    StreamingSession,
                )
                client = StreamingSession(
                    video, ChunkIndexedBandwidth([3.0], cycle=True)
                )
                client.download_chunk(resp.quality)
                with pytest.raises(ServeError) as exc_info:
                    await service.decide(DecisionRequest(
                        "never-seen", client.observation(), protocol="bola"))
                return exc_info.value

        err = run(main())
        assert err.status == 404 and err.code == "unknown-session"

    def test_concurrent_requests_for_one_session(self, video):
        async def main():
            async with DecisionService(video, default_protocols(),
                                       batch_size=8) as service:
                req = self._fresh_request(service, sid="dup")
                results = await asyncio.gather(
                    service.decide(req), service.decide(req),
                    return_exceptions=True,
                )
                return results

        results = run(main())
        codes = sorted(
            r.code if isinstance(r, ServeError) else "ok" for r in results
        )
        assert codes == ["concurrent-session", "ok"]

    def test_protocol_required_with_multiple_groups(self, video):
        async def main():
            async with DecisionService(video, default_protocols(),
                                       batch_size=4) as service:
                with pytest.raises(ServeError) as exc_info:
                    await service.decide(
                        self._fresh_request(service, protocol=None))
                return exc_info.value

        err = run(main())
        assert err.status == 400 and err.code == "protocol-required"

    def test_single_group_needs_no_protocol(self, video):
        async def main():
            async with DecisionService(video, {"bola": default_protocols()["bola"]},
                                       batch_size=4) as service:
                resp = await service.decide(
                    self._fresh_request(service, protocol=None))
                return resp

        resp = run(main())
        assert resp.quality >= 0

    def test_unknown_protocol(self, video):
        async def main():
            async with DecisionService(video, default_protocols(),
                                       batch_size=4) as service:
                with pytest.raises(ServeError) as exc_info:
                    await service.decide(
                        self._fresh_request(service, protocol="quic"))
                return exc_info.value

        err = run(main())
        assert err.status == 404 and err.code == "unknown-protocol"

    def test_protocol_mismatch_on_continuation(self, video):
        async def main():
            async with DecisionService(video, default_protocols(),
                                       batch_size=4) as service:
                from repro.abr.simulator import (
                    ChunkIndexedBandwidth,
                    StreamingSession,
                )
                client = StreamingSession(
                    video, ChunkIndexedBandwidth([3.0], cycle=True)
                )
                resp = await service.decide(DecisionRequest(
                    "s", client.observation(), protocol="bb"))
                client.download_chunk(resp.quality)
                with pytest.raises(ServeError) as exc_info:
                    await service.decide(DecisionRequest(
                        "s", client.observation(), protocol="bola"))
                return exc_info.value

        err = run(main())
        assert err.status == 409 and err.code == "protocol-mismatch"

    def test_at_capacity(self, video):
        async def main():
            async with DecisionService(video, default_protocols(),
                                       batch_size=4, max_sessions=1) as service:
                await service.decide(self._fresh_request(service, sid="one"))
                with pytest.raises(ServeError) as exc_info:
                    await service.decide(self._fresh_request(service, sid="two"))
                return exc_info.value

        err = run(main())
        assert err.status == 503 and err.code == "at-capacity"

    def test_close_unknown_session(self, video):
        async def main():
            async with DecisionService(video, default_protocols(),
                                       batch_size=4) as service:
                with pytest.raises(ServeError) as exc_info:
                    await service.decide(DecisionRequest(
                        "ghost", observation=None, close=True))
                return exc_info.value

        err = run(main())
        assert err.status == 404

    def test_close_frees_lane_and_counts(self, video):
        async def main():
            async with DecisionService(video, default_protocols(),
                                       batch_size=4) as service:
                await service.decide(self._fresh_request(service, sid="s"))
                resp = await service.decide(DecisionRequest(
                    "s", observation=None, close=True))
                return resp, service.stats()

        resp, stats = run(main())
        assert resp.closed is True
        assert stats["sessions"]["active"] == 0
        assert stats["requests"]["closed"] == 1


class TestStatsShape:
    def test_stats_keys(self, video, traces):
        report, service = run(_loadgen(video, traces, "bb", 8, verify=False))
        stats = service.stats()
        assert set(stats) >= {
            "uptime_seconds", "mode", "batch_size", "video", "protocols",
            "requests", "sessions", "coalescer", "latency_seconds", "cache",
        }
        assert stats["cache"] is None  # no cache configured
        assert stats["requests"]["decisions"] == report.requests
        assert stats["sessions"]["created"] == report.players
        assert stats["latency_seconds"]["count"] == report.requests
        assert stats["protocols"]["bb"]["decisions"] == report.requests

    def test_lanes_are_reused(self, video, traces):
        # Players outnumber lanes only if lanes never free; sequential
        # waves must reuse the retired sessions' lanes.
        async def main():
            async with DecisionService(video, default_protocols(),
                                       batch_size=8) as service:
                for wave in range(3):
                    await run_loadgen(
                        InprocTransport(service), video, traces, "bola", 4,
                        session_prefix=f"wave{wave}", fetch_stats=False,
                    )
                return service.stats()

        stats = run(main())
        assert stats["sessions"]["created"] == 12
        assert stats["protocols"]["bola"]["lanes"] <= 4

    def test_record_metrics(self, video, traces, tmp_path):
        from repro.obs import MetricsRecorder

        recorder = MetricsRecorder(tmp_path)

        async def main():
            service = DecisionService(video, default_protocols(),
                                      batch_size=8, recorder=recorder)
            async with service:
                await run_loadgen(InprocTransport(service), video, traces,
                                  "bb", 4, fetch_stats=False)

        run(main())
        recorder.close()
        text = (tmp_path / "metrics.jsonl").read_text()
        for key in ("serve/requests", "serve/decisions",
                    "serve/batch_occupancy", "serve/latency_p50"):
            assert key in text
