"""Stored-byte goldens for ABR SessionResults on a frozen corpus.

The differential layer (``test_batched_identity.py``) proves the batched
engine self-consistent with the serial path; these goldens additionally
pin the serial path itself to digests captured from the current
implementation (via ``tests/_capture_goldens.py``), so a future engine or
simulator refactor diffs against stored bytes rather than mere
self-consistency.  Both the serial loop and the batched engine must
reproduce them.
"""

import hashlib

import numpy as np

from repro.abr.batched import SessionSpec, run_batched_sessions
from repro.abr.features import feature_dim
from repro.abr.protocols import MPC, BufferBased, RateBased, run_session
from repro.abr.protocols.bola import Bola
from repro.abr.protocols.pensieve import PensieveAgent
from repro.abr.video import Video
from repro.rl.policy import ActorCritic
from repro.rl.running_stat import RunningMeanStd
from repro.rl.spaces import Discrete
from repro.traces.trace import Trace

import pytest


def golden_corpus() -> list[SessionSpec]:
    """Two videos x three traces, half chunk-indexed (6 sessions)."""
    videos = [
        Video.synthetic(n_chunks=16, seed=20),
        Video.synthetic(n_chunks=11, seed=21),
    ]
    rng = np.random.default_rng(22)
    traces = [
        Trace.from_steps(rng.uniform(0.4, 5.5, size=10), 4.0, name=f"g{i}")
        for i in range(3)
    ]
    return [
        SessionSpec(video=v, bandwidth=t, chunk_indexed=(i % 2 == 0))
        for i, t in enumerate(traces)
        for v in videos
    ]


def golden_pensieve(deterministic: bool = True) -> PensieveAgent:
    policy = ActorCritic(
        feature_dim(6), Discrete(6), hidden=(64, 32),
        rng=np.random.default_rng(23),
    )
    obs_rms = RunningMeanStd(shape=(feature_dim(6),))
    obs_rms.update(
        np.random.default_rng(24).uniform(0.0, 3.0, size=(64, feature_dim(6)))
    )
    return PensieveAgent(policy, obs_rms=obs_rms, deterministic=deterministic)


GOLDEN_PROTOCOLS = {
    "bb": BufferBased,
    "bola": Bola,
    "mpc": lambda: MPC(horizon=4),
    "rb": RateBased,
    "pensieve": golden_pensieve,
}


def session_digest(result) -> str:
    """SHA-256 over every byte a SessionResult carries."""
    h = hashlib.sha256()
    h.update(np.asarray(result.qualities, dtype=np.int64).tobytes())
    for name in ("bitrates_kbps", "rebuffer_seconds", "download_seconds",
                 "buffer_seconds"):
        h.update(np.asarray(getattr(result, name), dtype=float).tobytes())
    h.update(np.asarray(
        [result.qoe_total, result.qoe_mean, result.total_rebuffer],
        dtype=float,
    ).tobytes())
    for c in result.chunks:
        h.update(np.asarray([c.chunk_index, c.quality, int(c.done)],
                            dtype=np.int64).tobytes())
        h.update(np.asarray(
            [c.bitrate_kbps, c.size_bytes, c.download_seconds,
             c.rebuffer_seconds, c.sleep_seconds, c.buffer_seconds, c.qoe],
            dtype=float,
        ).tobytes())
    return h.hexdigest()


def corpus_digest(results) -> str:
    h = hashlib.sha256()
    for r in results:
        h.update(session_digest(r).encode())
    return h.hexdigest()


#: Captured with tests/_capture_goldens.py from the serial run_session
#: path.  Any change here means session bytes changed -- a deliberate
#: simulator/protocol change must re-capture and say so in its PR.
GOLDEN_DIGESTS = {
    "bb": "d68066fa81fcb1c71eeb596907fc1e05734e248c293e74d7230df1790b76cdc4",
    "bola": "a9cba00d855ba55517003277c93062358425ac9c16d6673e68350868fc30bf7f",
    "mpc": "118e9254ab132d4480523e76dda2a93d2d1e67ca4517b1e5080e6249fa8ce88d",
    "pensieve": "322582ce8eda3ae6244ef0e51a23f93cc8fd755004b6b7f8672eee663ebbdcc9",
    "rb": "f0f81d0cfab66bea3a1a9ad6a8974812ede0c774fe4281f55f405f552bf0524a",
}


@pytest.mark.parametrize("name", sorted(GOLDEN_PROTOCOLS))
def test_serial_results_match_stored_bytes(name):
    policy = GOLDEN_PROTOCOLS[name]()
    results = [
        run_session(s.video, s.bandwidth, policy,
                    weights=s.weights, chunk_indexed=s.chunk_indexed)
        for s in golden_corpus()
    ]
    assert corpus_digest(results) == GOLDEN_DIGESTS[name]


@pytest.mark.parametrize("name", sorted(GOLDEN_PROTOCOLS))
@pytest.mark.parametrize("batch_size", (3, 6))
def test_batched_results_match_stored_bytes(name, batch_size):
    results = run_batched_sessions(
        golden_corpus(), GOLDEN_PROTOCOLS[name](), batch_size
    )
    assert corpus_digest(results) == GOLDEN_DIGESTS[name]
