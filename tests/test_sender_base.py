"""Tests for the shared sender bookkeeping (repro.cc.protocols.base)."""

import pytest

from repro.cc.packet import Packet
from repro.cc.protocols.base import Sender, ewma


class RecordingSender(Sender):
    """Exposes hook invocations for inspection."""

    def __init__(self):
        super().__init__()
        self.acks = []
        self.losses = []
        self.timeouts = 0

    def on_ack(self, ack):
        self.acks.append(ack)

    def on_packet_lost(self, seq, now):
        self.losses.append(seq)

    def on_timeout(self, now):
        self.timeouts += 1

    @property
    def cwnd_packets(self):
        return 10

    def pacing_rate_bps(self, now):
        return 1e6


def make_packet(seq, sent=0.0, delivered=0, delivered_time=0.0):
    return Packet(seq=seq, size_bytes=1500, sent_time=sent,
                  delivered_at_send=delivered, delivered_time_at_send=delivered_time)


class TestAckPath:
    def test_rtt_and_srtt(self):
        s = RecordingSender()
        p = make_packet(0, sent=1.0)
        s.register_send(p)
        s.handle_ack(p, 1.05)
        assert s.last_rtt_s == pytest.approx(0.05)
        assert s.srtt_s == pytest.approx(0.05)
        # EWMA: 0.875*old + 0.125*new.
        p2 = make_packet(1, sent=1.1)
        s.register_send(p2)
        s.handle_ack(p2, 1.2)
        assert s.srtt_s == pytest.approx(0.875 * 0.05 + 0.125 * 0.1)

    def test_delivery_rate_sample(self):
        s = RecordingSender()
        p = make_packet(0, sent=0.0, delivered=0, delivered_time=0.0)
        s.register_send(p)
        s.handle_ack(p, 0.5)
        # 1500 bytes delivered over 0.5 s -> 24 kbps.
        assert s.acks[0].delivery_rate_bps == pytest.approx(1500 * 8 / 0.5)

    def test_duplicate_ack_ignored(self):
        s = RecordingSender()
        p = make_packet(0)
        s.register_send(p)
        s.handle_ack(p, 0.1)
        s.handle_ack(p, 0.2)  # spurious
        assert len(s.acks) == 1
        assert s.total_acked == 1

    def test_can_send_respects_cwnd(self):
        s = RecordingSender()
        for i in range(10):
            s.register_send(make_packet(i))
        assert not s.can_send()


class TestLossDetection:
    def test_reorder_threshold(self):
        s = RecordingSender()
        for i in range(6):
            s.register_send(make_packet(i))
        # Ack seq 5: packets below 5 - 3 = 2 (i.e. 0 and 1) are lost.
        p5 = s.inflight[5]
        s.handle_ack(p5, 1.0)
        assert s.losses == [0, 1]
        assert s.total_lost == 2

    def test_loss_fraction(self):
        s = RecordingSender()
        for i in range(6):
            s.register_send(make_packet(i))
        s.handle_ack(s.inflight[5], 1.0)
        assert s.loss_fraction() == pytest.approx(2 / 3)

    def test_timeout_flushes_inflight(self):
        s = RecordingSender()
        for i in range(4):
            s.register_send(make_packet(i))
        s.handle_timeout(2.0)
        assert s.inflight_packets == 0
        assert s.timeouts == 1
        assert s.total_lost == 4


class TestMisc:
    def test_rto_floor(self):
        s = RecordingSender()
        assert s.rto_s() == 1.0
        s.srtt_s = 0.5
        assert s.rto_s() == pytest.approx(2.0)

    def test_bdp(self):
        s = RecordingSender()
        # 12 Mbps x 40 ms = 60 kB = 40 packets of 1500 B.
        assert s.bdp_packets(12e6, 0.040) == pytest.approx(40.0)

    def test_ewma_helper(self):
        assert ewma(None, 5.0, 0.5) == 5.0
        assert ewma(4.0, 8.0, 0.25) == pytest.approx(5.0)
