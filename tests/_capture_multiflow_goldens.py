"""One-off golden capture for the multi-flow emulator (not a test).

Run against a known-good :class:`repro.cc.multiflow.MultiFlowEmulator`
to print the digests pinned in ``tests/test_multiflow_goldens.py``:

    PYTHONPATH=src python tests/_capture_multiflow_goldens.py

The digests in the repo were captured from the pre-fast-path
implementation immediately before the fast-path rewrite; the rewrite
reproduces them bit for bit.
"""

import sys

sys.path.insert(0, "tests")

from test_multiflow_goldens import SCENARIOS, run_scenario  # noqa: E402


def main() -> None:
    print("GOLDEN_DIGESTS = {")
    for name in SCENARIOS:
        print(f'    "{name}": "{run_scenario(name)}",')
    print("}")


if __name__ == "__main__":
    main()
