"""Tests for RunningMeanStd (repro.rl.running_stat)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.running_stat import RunningMeanStd


class TestRunningMeanStd:
    def test_matches_numpy_on_single_batch(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((500, 3)) * 2.0 + 5.0
        rms = RunningMeanStd((3,))
        rms.update(data)
        np.testing.assert_allclose(rms.mean, data.mean(axis=0), atol=1e-3)
        np.testing.assert_allclose(rms.var, data.var(axis=0), rtol=1e-2)

    def test_incremental_equals_batch(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((300, 2)) * 3.0 - 1.0
        incremental = RunningMeanStd((2,))
        for chunk in np.array_split(data, 7):
            incremental.update(chunk)
        whole = RunningMeanStd((2,))
        whole.update(data)
        np.testing.assert_allclose(incremental.mean, whole.mean, atol=1e-9)
        np.testing.assert_allclose(incremental.var, whole.var, atol=1e-9)

    @given(
        st.lists(
            st.lists(st.floats(-100.0, 100.0), min_size=2, max_size=2),
            min_size=5,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_variance_never_negative(self, rows):
        rms = RunningMeanStd((2,))
        rms.update(np.array(rows))
        assert np.all(rms.var >= 0.0)

    def test_normalize_is_clipped_and_standardized(self):
        rms = RunningMeanStd((1,))
        rms.update(np.arange(100.0)[:, None])
        z = rms.normalize(np.array([50.0]))
        assert abs(float(z[0])) < 0.2  # near the mean
        extreme = rms.normalize(np.array([1e9]), clip=5.0)
        assert float(extreme[0]) == 5.0

    def test_state_roundtrip(self):
        rms = RunningMeanStd((2,))
        rms.update(np.random.default_rng(2).standard_normal((50, 2)))
        restored = RunningMeanStd((2,))
        restored.load_state(rms.state())
        np.testing.assert_allclose(restored.mean, rms.mean)
        np.testing.assert_allclose(restored.var, rms.var)
        assert restored.count == rms.count
