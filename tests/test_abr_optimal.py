"""Tests for the offline-optimal solvers (repro.abr.protocols.optimal)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.protocols import (
    MPC,
    BufferBased,
    RateBased,
    optimal_plan_dp,
    optimal_qoe_exhaustive,
    run_session,
)
from repro.abr.qoe import QoEWeights, chunk_qoe
from repro.abr.simulator import BUFFER_CAP_S, LINK_RTT_S, PACKET_PAYLOAD_PORTION
from repro.abr.video import Video
from repro.traces.trace import Trace


@pytest.fixture
def video():
    return Video.synthetic(n_chunks=12, seed=0)


def simulate_plan(video, plan, bandwidths, start_buffer=0.0, prev_quality=None,
                  weights=QoEWeights()):
    """Reference simulation of a fixed plan under per-chunk bandwidth."""
    buffer = start_buffer
    prev = prev_quality
    total = 0.0
    for k, q in enumerate(plan):
        rate = bandwidths[k] * 1e6 / 8.0 * PACKET_PAYLOAD_PORTION
        dl = video.chunk_size(k, q) / rate + LINK_RTT_S
        rebuf = max(dl - buffer, 0.0)
        buffer = min(max(buffer - dl, 0.0) + video.chunk_seconds, BUFFER_CAP_S)
        prev_kbps = None if prev is None else float(video.bitrates_kbps[prev])
        total += chunk_qoe(float(video.bitrates_kbps[q]), rebuf, prev_kbps, weights)
        prev = q
    return total


class TestExhaustive:
    def test_matches_brute_force(self, video):
        bandwidths = np.array([1.0, 3.5, 0.9])
        best, plan = optimal_qoe_exhaustive(video, 0, bandwidths, 2.0, 1)
        brute = max(
            simulate_plan(video, p, bandwidths, 2.0, 1)
            for p in itertools.product(range(video.n_bitrates), repeat=3)
        )
        assert best == pytest.approx(brute)
        assert simulate_plan(video, plan, bandwidths, 2.0, 1) == pytest.approx(best)

    def test_rejects_empty_and_long_windows(self, video):
        with pytest.raises(ValueError):
            optimal_qoe_exhaustive(video, 0, [], 0.0, None)
        with pytest.raises(ValueError):
            optimal_qoe_exhaustive(video, 0, np.ones(9), 0.0, None)

    def test_rejects_nonpositive_bandwidth(self, video):
        with pytest.raises(ValueError):
            optimal_qoe_exhaustive(video, 0, [1.0, 0.0], 0.0, None)

    def test_rejects_window_past_video_end(self, video):
        with pytest.raises(ValueError):
            optimal_qoe_exhaustive(video, video.n_chunks - 1, [1.0, 1.0], 0.0, None)

    @given(
        st.lists(st.floats(0.8, 4.8), min_size=4, max_size=4),
        st.floats(0.0, 30.0),
        st.sampled_from([None, 0, 2, 5]),
    )
    @settings(max_examples=25, deadline=None)
    def test_optimum_dominates_any_fixed_plan(self, bandwidths, buffer, prev):
        """The claimed optimum is >= any specific plan (here: constant plans)."""
        video = Video.synthetic(n_chunks=8, seed=1)
        best, _ = optimal_qoe_exhaustive(video, 0, bandwidths, buffer, prev)
        for q in range(video.n_bitrates):
            fixed = simulate_plan(video, [q] * 4, bandwidths, buffer, prev)
            assert best >= fixed - 1e-9


class TestDP:
    def test_plan_value_consistent(self):
        video = Video.synthetic(n_chunks=16, seed=2)
        rng = np.random.default_rng(0)
        bandwidths = rng.uniform(0.8, 4.8, video.n_chunks)
        total, plan = optimal_plan_dp(video, bandwidths)
        # The reported total must equal the exact simulation of the plan.
        assert total == pytest.approx(simulate_plan(video, plan, bandwidths))

    def test_dp_close_to_exhaustive_on_short_video(self):
        video = Video.synthetic(n_chunks=6, seed=3)
        bandwidths = np.array([1.0, 4.0, 0.9, 3.0, 2.0, 1.5])
        exact, _ = optimal_qoe_exhaustive(video, 0, bandwidths, 0.0, None)
        dp_total, _ = optimal_plan_dp(video, bandwidths, buffer_step_s=0.1)
        assert dp_total <= exact + 1e-9  # DP is a feasible (conservative) plan
        assert dp_total >= exact - 0.5  # ... and close to it

    def test_wrong_bandwidth_count_rejected(self):
        video = Video.synthetic(n_chunks=5, seed=0)
        with pytest.raises(ValueError):
            optimal_plan_dp(video, np.ones(3))

    def test_optimal_beats_all_protocols(self):
        """r_opt >= r_protocol: the foundation of the adversary's reward."""
        video = Video.synthetic(n_chunks=24, seed=4)
        rng = np.random.default_rng(1)
        bandwidths = rng.uniform(0.8, 4.8, video.n_chunks)
        trace = Trace.from_steps(bandwidths, video.chunk_seconds)
        opt, _ = optimal_plan_dp(video, bandwidths)
        for policy in (MPC(), BufferBased(), RateBased()):
            result = run_session(video, trace, policy)
            assert opt >= result.qoe_total - 1e-6

    def test_low_bandwidth_start_strategy(self):
        """On a rising trace, the optimum starts low and climbs (cf. Fig 3)."""
        video = Video.synthetic(n_chunks=12, seed=5)
        bandwidths = np.linspace(0.8, 4.8, 12)
        _total, plan = optimal_plan_dp(video, bandwidths)
        assert plan[0] <= 1
        assert max(plan[-4:]) >= 4
