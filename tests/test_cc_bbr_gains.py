"""Focused tests on BBR's gain schedule and control outputs."""

import pytest

from repro.cc.protocols.bbr import BBRSender


class TestPacingGains:
    def test_startup_gain(self):
        sender = BBRSender()
        assert sender.mode == BBRSender.STARTUP
        assert sender.pacing_gain == pytest.approx(2.885)

    def test_drain_gain_is_inverse(self):
        sender = BBRSender()
        sender.mode = BBRSender.DRAIN
        assert sender.pacing_gain == pytest.approx(1.0 / 2.885)

    def test_probe_bw_cycles_through_gains(self):
        sender = BBRSender()
        sender.mode = BBRSender.PROBE_BW
        seen = []
        for i in range(8):
            sender.cycle_index = i
            seen.append(sender.pacing_gain)
        assert seen == list(BBRSender.CYCLE_GAINS)

    def test_probe_rtt_gain_is_one(self):
        sender = BBRSender()
        sender.mode = BBRSender.PROBE_RTT
        assert sender.pacing_gain == 1.0

    def test_pacing_rate_scales_with_bw_estimate(self):
        sender = BBRSender(init_bw_mbps=2.0)
        base = sender.pacing_rate_bps(0.0)
        assert base == pytest.approx(2.885 * 2e6)
        sender._bw_samples.append((0, 10e6))
        assert sender.pacing_rate_bps(0.0) == pytest.approx(2.885 * 10e6)


class TestCwnd:
    def test_cwnd_floor(self):
        sender = BBRSender(min_cwnd_packets=4)
        # No estimates: BDP falls back to 10 packets, STARTUP gain 2.885.
        assert sender.cwnd_packets >= 4

    def test_cwnd_tracks_bdp(self):
        sender = BBRSender()
        sender.mode = BBRSender.PROBE_BW
        sender._bw_samples.append((0, 12e6))
        sender._min_rtt_s = 0.040
        bdp = 12e6 * 0.040 / 8.0 / 1500.0
        assert sender.cwnd_packets == int(2.0 * bdp)

    def test_timeout_resets_full_pipe_detection(self):
        sender = BBRSender()
        sender.filled_pipe = True
        sender.mode = BBRSender.PROBE_BW
        sender.on_timeout(5.0)
        assert not sender.filled_pipe
        assert sender.mode == BBRSender.STARTUP


class TestModeLog:
    def test_initial_entry(self):
        sender = BBRSender()
        assert sender.mode_log == [(0.0, BBRSender.STARTUP)]

    def test_transitions_recorded_once(self):
        sender = BBRSender()
        sender._set_mode(BBRSender.DRAIN, 1.0)
        sender._set_mode(BBRSender.DRAIN, 2.0)  # no duplicate
        assert sender.mode_log == [(0.0, "STARTUP"), (1.0, "DRAIN")]
