"""Golden determinism tests: seeded training is exactly reproducible.

Two layers of protection:

- *Run-to-run*: the same seed must give bitwise-identical weights and
  rewards across two fresh training runs, for single-env and vectorized
  collection, on both adversary environments.
- *Golden fingerprints*: short ABR/CC adversary trainings must reproduce
  fingerprints recorded on the pre-vectorization single-env implementation.
  These pin the n_envs=1 path to its historical behaviour -- if one of
  these fails, a change has silently altered the numerics of every past
  experiment (and every bench result under ``results/``).
"""

import numpy as np
import pytest

from repro.abr.protocols import BufferBased
from repro.abr.video import Video
from repro.adversary.abr_env import AbrAdversaryEnv, train_abr_adversary
from repro.adversary.cc_env import CcAdversaryEnv, train_cc_adversary
from repro.cc.protocols.bbr import BBRSender
from repro.rl.ppo import PPO, PPOConfig


def fingerprint(ppo: PPO) -> tuple[float, float]:
    """(sum of all weight sums, last mean episode reward) of a trainer."""
    weight_sum = float(sum(float(np.sum(w)) for w in ppo.policy.get_weights()))
    return weight_sum, float(ppo.history[-1]["mean_episode_reward"])


def abr_trainer(seed: int, n_envs: int = 1) -> PPO:
    video = Video.synthetic(n_chunks=16, seed=3)
    cfg = PPOConfig(
        n_steps=64, batch_size=32, hidden=(8,), init_log_std=-0.3, n_envs=n_envs
    )
    ppo = PPO(AbrAdversaryEnv(BufferBased(), video), cfg, seed=seed)
    ppo.learn(128 * n_envs)
    return ppo


def cc_trainer(seed: int, n_envs: int = 1, goal: str = "utilization") -> PPO:
    cfg = PPOConfig(
        n_steps=64, batch_size=32, hidden=(4,), init_log_std=-0.5, n_envs=n_envs
    )
    ppo = PPO(
        CcAdversaryEnv(BBRSender, episode_intervals=48, seed=5, goal=goal),
        cfg, seed=seed,
    )
    ppo.learn(128 * n_envs)
    return ppo


class TestRunToRunDeterminism:
    @pytest.mark.parametrize("n_envs", [1, 4])
    def test_abr_same_seed_same_weights(self, n_envs):
        a, b = abr_trainer(seed=7, n_envs=n_envs), abr_trainer(seed=7, n_envs=n_envs)
        for wa, wb in zip(a.policy.get_weights(), b.policy.get_weights()):
            assert np.array_equal(wa, wb)
        assert fingerprint(a) == fingerprint(b)

    @pytest.mark.parametrize("n_envs", [1, 4])
    def test_cc_same_seed_same_weights(self, n_envs):
        a, b = cc_trainer(seed=11, n_envs=n_envs), cc_trainer(seed=11, n_envs=n_envs)
        for wa, wb in zip(a.policy.get_weights(), b.policy.get_weights()):
            assert np.array_equal(wa, wb)
        assert fingerprint(a) == fingerprint(b)

    def test_different_seeds_differ(self):
        assert fingerprint(abr_trainer(seed=7)) != fingerprint(abr_trainer(seed=8))

    @pytest.mark.parametrize("n_envs", [1, 4])
    def test_train_abr_adversary_deterministic(self, n_envs):
        video = Video.synthetic(n_chunks=16, seed=3)
        cfg = PPOConfig(n_steps=64, batch_size=32, hidden=(8,), init_log_std=-0.3)

        def run():
            return train_abr_adversary(
                BufferBased(), video, total_steps=128 * n_envs, seed=3,
                config=cfg, n_envs=n_envs,
            )

        a, b = run(), run()
        for wa, wb in zip(
            a.trainer.policy.get_weights(), b.trainer.policy.get_weights()
        ):
            assert np.array_equal(wa, wb)

    @pytest.mark.parametrize("n_envs", [1, 4])
    def test_train_cc_adversary_deterministic(self, n_envs):
        cfg = PPOConfig(n_steps=64, batch_size=32, hidden=(4,), init_log_std=-0.5)

        def run():
            return train_cc_adversary(
                BBRSender, total_steps=128 * n_envs, seed=5, config=cfg,
                episode_intervals=48, n_envs=n_envs,
            )

        a, b = run(), run()
        for wa, wb in zip(
            a.trainer.policy.get_weights(), b.trainer.policy.get_weights()
        ):
            assert np.array_equal(wa, wb)


class TestGoldenFingerprints:
    """Recorded fingerprints pinning the n_envs=1 paths; see module docstring.

    Exact float equality is intentional: the single-env path is supposed to
    perform the very same operations in the very same order.  If a numpy
    upgrade ever changes elementwise numerics, re-record these values in
    the same commit that documents the upgrade.

    The ABR value dates from the pre-vectorization implementation.  The CC
    values were re-pinned when the emulator fast path landed, for two
    deliberate (and documented) semantic simplifications:

    - the ``deliver`` event was folded into ``egress``, so an ack is due
      ``2 x one_way_delay`` after egress with both legs priced at the
      *egress-time* latency.  The old emulator re-read the latency at the
      receiver hop, so the two implementations differ only for packets
      whose flight spans an adversary latency change -- neither choice is
      more faithful to a real path whose propagation delay shifted
      mid-flight, and the fold saves a heap push+pop per packet;
    - the periodic RTO tick is suppressed while nothing is in flight and
      re-armed by the next transmit, which shifts the tick phase relative
      to the old unconditional 100 ms cadence.

    Everything else on the fast path (pre-drawn loss uniforms, integer
    event dispatch, running-sum accumulators, O(1) queue-byte counters) is
    draw-for-draw and byte-for-byte identical to the historical loop --
    verified by the unchanged ABR golden and by TestRunToRunDeterminism.
    """

    ABR_GOLDEN = (4.7408447238551, 57.15224527291367)
    CC_GOLDEN = (-2.100877844257293, 0.8133619443944105)
    CC_CONGESTION_GOLDEN = (-2.1017436302897883, 3.367184166014039)

    def test_abr_adversary_golden(self):
        assert fingerprint(abr_trainer(seed=7)) == self.ABR_GOLDEN

    def test_cc_adversary_golden(self):
        assert fingerprint(cc_trainer(seed=11)) == self.CC_GOLDEN

    def test_cc_adversary_congestion_goal_golden(self):
        assert (
            fingerprint(cc_trainer(seed=11, goal="congestion"))
            == self.CC_CONGESTION_GOLDEN
        )
