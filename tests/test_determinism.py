"""Golden determinism tests: seeded training is exactly reproducible.

Two layers of protection:

- *Run-to-run*: the same seed must give bitwise-identical weights and
  rewards across two fresh training runs, for single-env and vectorized
  collection, on both adversary environments.
- *Golden fingerprints*: short ABR/CC adversary trainings must reproduce
  fingerprints recorded on the pre-vectorization single-env implementation.
  These pin the n_envs=1 path to its historical behaviour -- if one of
  these fails, a change has silently altered the numerics of every past
  experiment (and every bench result under ``results/``).
"""

import numpy as np
import pytest

from repro.abr.protocols import BufferBased
from repro.abr.video import Video
from repro.adversary.abr_env import AbrAdversaryEnv, train_abr_adversary
from repro.adversary.cc_env import CcAdversaryEnv, train_cc_adversary
from repro.cc.protocols.bbr import BBRSender
from repro.rl.ppo import PPO, PPOConfig


def fingerprint(ppo: PPO) -> tuple[float, float]:
    """(sum of all weight sums, last mean episode reward) of a trainer."""
    weight_sum = float(sum(float(np.sum(w)) for w in ppo.policy.get_weights()))
    return weight_sum, float(ppo.history[-1]["mean_episode_reward"])


def abr_trainer(seed: int, n_envs: int = 1) -> PPO:
    video = Video.synthetic(n_chunks=16, seed=3)
    cfg = PPOConfig(
        n_steps=64, batch_size=32, hidden=(8,), init_log_std=-0.3, n_envs=n_envs
    )
    ppo = PPO(AbrAdversaryEnv(BufferBased(), video), cfg, seed=seed)
    ppo.learn(128 * n_envs)
    return ppo


def cc_trainer(seed: int, n_envs: int = 1) -> PPO:
    cfg = PPOConfig(
        n_steps=64, batch_size=32, hidden=(4,), init_log_std=-0.5, n_envs=n_envs
    )
    ppo = PPO(CcAdversaryEnv(BBRSender, episode_intervals=48, seed=5), cfg, seed=seed)
    ppo.learn(128 * n_envs)
    return ppo


class TestRunToRunDeterminism:
    @pytest.mark.parametrize("n_envs", [1, 4])
    def test_abr_same_seed_same_weights(self, n_envs):
        a, b = abr_trainer(seed=7, n_envs=n_envs), abr_trainer(seed=7, n_envs=n_envs)
        for wa, wb in zip(a.policy.get_weights(), b.policy.get_weights()):
            assert np.array_equal(wa, wb)
        assert fingerprint(a) == fingerprint(b)

    @pytest.mark.parametrize("n_envs", [1, 4])
    def test_cc_same_seed_same_weights(self, n_envs):
        a, b = cc_trainer(seed=11, n_envs=n_envs), cc_trainer(seed=11, n_envs=n_envs)
        for wa, wb in zip(a.policy.get_weights(), b.policy.get_weights()):
            assert np.array_equal(wa, wb)
        assert fingerprint(a) == fingerprint(b)

    def test_different_seeds_differ(self):
        assert fingerprint(abr_trainer(seed=7)) != fingerprint(abr_trainer(seed=8))

    @pytest.mark.parametrize("n_envs", [1, 4])
    def test_train_abr_adversary_deterministic(self, n_envs):
        video = Video.synthetic(n_chunks=16, seed=3)
        cfg = PPOConfig(n_steps=64, batch_size=32, hidden=(8,), init_log_std=-0.3)

        def run():
            return train_abr_adversary(
                BufferBased(), video, total_steps=128 * n_envs, seed=3,
                config=cfg, n_envs=n_envs,
            )

        a, b = run(), run()
        for wa, wb in zip(
            a.trainer.policy.get_weights(), b.trainer.policy.get_weights()
        ):
            assert np.array_equal(wa, wb)

    @pytest.mark.parametrize("n_envs", [1, 4])
    def test_train_cc_adversary_deterministic(self, n_envs):
        cfg = PPOConfig(n_steps=64, batch_size=32, hidden=(4,), init_log_std=-0.5)

        def run():
            return train_cc_adversary(
                BBRSender, total_steps=128 * n_envs, seed=5, config=cfg,
                episode_intervals=48, n_envs=n_envs,
            )

        a, b = run(), run()
        for wa, wb in zip(
            a.trainer.policy.get_weights(), b.trainer.policy.get_weights()
        ):
            assert np.array_equal(wa, wb)


class TestGoldenFingerprints:
    """Recorded on the pre-vectorization implementation; see module docstring.

    Exact float equality is intentional: the single-env path is supposed to
    perform the very same operations in the very same order.  If a numpy
    upgrade ever changes elementwise numerics, re-record these values in
    the same commit that documents the upgrade.
    """

    ABR_GOLDEN = (4.7408447238551, 57.15224527291367)
    CC_GOLDEN = (-2.092510120000373, -0.14598131919426072)

    def test_abr_adversary_golden(self):
        assert fingerprint(abr_trainer(seed=7)) == self.ABR_GOLDEN

    def test_cc_adversary_golden(self):
        assert fingerprint(cc_trainer(seed=11)) == self.CC_GOLDEN
