"""Tests for multi-flow emulation and fairness (repro.cc.multiflow)."""

import numpy as np
import pytest

from repro.cc import BBRSender, CubicSender, RenoSender, TimeVaryingLink
from repro.cc.multiflow import FlowStats, MultiFlowEmulator, jain_fairness


def run_flows(senders, bw=12.0, lat=40.0, loss=0.0, duration=20.0,
              measure_from=8.0, seed=0, stagger=0.0):
    link = TimeVaryingLink(bw, lat, loss)
    emulator = MultiFlowEmulator(senders, link, seed=seed, start_stagger_s=stagger)
    emulator.run_until(measure_from)
    stats = emulator.run_interval(duration - measure_from)
    return emulator, stats


class TestJainFairness:
    def test_equal_rates_are_fair(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_bound(self):
        # One flow taking everything among n: index = 1/n.
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_defined(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([])


class TestMultiFlowMechanics:
    def test_needs_at_least_one_sender(self):
        with pytest.raises(ValueError):
            MultiFlowEmulator([], TimeVaryingLink(10.0, 40.0))

    def test_single_flow_matches_link_capacity(self):
        _emulator, stats = run_flows([CubicSender()])
        assert stats[0].throughput_mbps > 0.9 * 12.0

    def test_two_flows_share_capacity(self):
        _emulator, stats = run_flows([CubicSender(), CubicSender()])
        total = sum(s.throughput_mbps for s in stats)
        assert total > 0.85 * 12.0
        assert all(s.throughput_mbps > 1.0 for s in stats)

    def test_interval_validation(self):
        emulator = MultiFlowEmulator([CubicSender()], TimeVaryingLink(10.0, 40.0))
        with pytest.raises(ValueError):
            emulator.run_interval(0.0)
        with pytest.raises(ValueError):
            emulator.run_until(-1.0)

    def test_conditions_update(self):
        link = TimeVaryingLink(10.0, 40.0)
        emulator = MultiFlowEmulator([CubicSender()], link)
        emulator.set_conditions(20.0, 15.0, 0.01)
        assert link.bandwidth_mbps == 20.0

    def test_stats_shapes(self):
        _emulator, stats = run_flows([CubicSender(), RenoSender()])
        assert len(stats) == 2
        assert all(isinstance(s, FlowStats) for s in stats)


class TestFairnessOutcomes:
    def test_homogeneous_cubic_is_roughly_fair(self):
        emulator, stats = run_flows(
            [CubicSender(), CubicSender()], duration=30.0, measure_from=10.0
        )
        assert emulator.fairness(stats) > 0.7

    def test_homogeneous_reno_is_roughly_fair(self):
        emulator, stats = run_flows(
            [RenoSender(), RenoSender()], duration=30.0, measure_from=10.0
        )
        assert emulator.fairness(stats) > 0.7

    def test_bbr_vs_cubic_contention_resolves(self):
        """BBR and Cubic coexist; both make progress (exact split varies)."""
        emulator, stats = run_flows(
            [BBRSender(), CubicSender()], duration=30.0, measure_from=10.0
        )
        total = sum(s.throughput_mbps for s in stats)
        assert total > 0.8 * 12.0
        assert min(s.throughput_mbps for s in stats) > 0.3

    def test_copa_yields_to_queue_filling_cubic(self):
        """Known phenomenon: default-mode Copa backs off from the standing
        queue Cubic builds, so Cubic dominates the share."""
        from repro.cc import CopaSender

        _emulator, stats = run_flows(
            [CopaSender(), CubicSender()], duration=30.0, measure_from=10.0
        )
        copa_rate, cubic_rate = stats[0].throughput_mbps, stats[1].throughput_mbps
        assert cubic_rate > copa_rate

    def test_loss_collapses_cubic_but_not_bbr_in_contention(self):
        _emulator, stats = run_flows(
            [BBRSender(), CubicSender()], loss=0.02, duration=25.0,
            measure_from=10.0,
        )
        bbr_rate, cubic_rate = stats[0].throughput_mbps, stats[1].throughput_mbps
        assert bbr_rate > 3.0 * cubic_rate


class TestJainValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            jain_fairness([5.0, -1.0])

    def test_negative_rate_message_names_offenders(self):
        with pytest.raises(ValueError, match=r"-2\.0"):
            jain_fairness([1.0, -2.0, 3.0])


class TestTickParameter:
    def test_default_tick_preserved(self):
        emulator = MultiFlowEmulator([CubicSender()], TimeVaryingLink(10.0, 40.0))
        assert emulator.tick_s == 0.1

    @pytest.mark.parametrize("bad", [0.0, -0.5, float("nan"), float("inf")])
    def test_invalid_tick_rejected(self, bad):
        with pytest.raises(ValueError, match="tick_s"):
            MultiFlowEmulator(
                [CubicSender()], TimeVaryingLink(10.0, 40.0), tick_s=bad
            )

    def test_custom_tick_runs(self):
        link = TimeVaryingLink(10.0, 40.0)
        emulator = MultiFlowEmulator([CubicSender()], link, tick_s=0.095)
        stats = emulator.run_interval(2.0)
        assert stats[0].bytes_delivered > 0

    def test_start_times_validation(self):
        link = TimeVaryingLink(10.0, 40.0)
        with pytest.raises(ValueError, match="start times"):
            MultiFlowEmulator([CubicSender()], link, start_times=[0.0, 1.0])
        with pytest.raises(ValueError, match="non-negative"):
            MultiFlowEmulator([CubicSender()], link, start_times=[-1.0])


class TestConservation:
    """Multi-flow analogues of the PR 2 single-flow conservation layer."""

    def _run(self, senders, seed=0, loss=0.0, queue_packets=120):
        link = TimeVaryingLink(14.0, 30.0, loss_rate=loss,
                               queue_packets=queue_packets)
        emulator = MultiFlowEmulator(senders, link, seed=seed,
                                     start_stagger_s=0.1)
        sched = np.random.default_rng(23).random((120, 3))
        for bw_u, lat_u, loss_u in sched:
            emulator.set_conditions(
                6.0 + 18.0 * bw_u, 15.0 + 45.0 * lat_u,
                min(loss + 0.01 * loss_u, 1.0),
            )
            emulator.run_interval(0.03)
        return emulator, link

    def test_per_flow_delivery_sums_to_link_total(self):
        emulator, link = self._run(
            [BBRSender(), CubicSender(), RenoSender()], loss=0.005
        )
        assert sum(f.delivered_bytes_total for f in emulator.flows) == \
            link.bytes_delivered

    def test_packet_conservation_identity(self):
        emulator, link = self._run([BBRSender(), CubicSender()], loss=0.01,
                                   queue_packets=30)
        assert emulator.packets_sent == (
            emulator.packets_delivered + link.drops_loss + link.drops_queue
            + len(link.queue) + emulator.acks_in_flight
        )

    def test_delivery_bounded_by_capacity(self):
        # Conditions swing 6-24 Mbps; delivered bytes can never exceed
        # the maximum capacity integrated over the run.
        emulator, link = self._run([BBRSender(), CubicSender()])
        duration = emulator.now
        assert link.bytes_delivered <= 24e6 / 8.0 * duration * 1.01

    def test_identical_seeds_identical_outcomes(self):
        a_emulator, a_link = self._run([BBRSender(), CubicSender()],
                                       seed=7, loss=0.01)
        b_emulator, b_link = self._run([BBRSender(), CubicSender()],
                                       seed=7, loss=0.01)
        assert [f.delivered_bytes_total for f in a_emulator.flows] == \
            [f.delivered_bytes_total for f in b_emulator.flows]
        assert (a_link.bytes_delivered, a_link.drops_loss, a_link.drops_queue) \
            == (b_link.bytes_delivered, b_link.drops_loss, b_link.drops_queue)

    def test_different_seeds_diverge_under_loss(self):
        a_emulator, _ = self._run([BBRSender(), CubicSender()], seed=1,
                                  loss=0.02)
        b_emulator, _ = self._run([BBRSender(), CubicSender()], seed=2,
                                  loss=0.02)
        assert [f.delivered_bytes_total for f in a_emulator.flows] != \
            [f.delivered_bytes_total for f in b_emulator.flows]
