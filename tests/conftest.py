import pytest


def pytest_collection_modifyitems(items):
    """Everything not explicitly marked ``slow`` is the fast tier.

    CI runs ``-m "not slow"`` on every push and the full suite on main;
    ``-m fast`` selects the same quick tier explicitly.
    """
    for item in items:
        if item.get_closest_marker("slow") is None:
            item.add_marker(pytest.mark.fast)
