"""Tests for the packet-level emulator (repro.cc.network)."""

import numpy as np
import pytest

from repro.cc.link import TimeVaryingLink
from repro.cc.network import PacketNetworkEmulator
from repro.cc.packet import MSS_BYTES, AckInfo
from repro.cc.protocols.base import Sender


class GreedySender(Sender):
    """Fixed window, fast pacing: saturates any reasonable link."""

    def __init__(self, cwnd=64, rate_bps=100e6):
        super().__init__()
        self._cwnd = cwnd
        self._rate = rate_bps

    def on_ack(self, ack: AckInfo) -> None:
        pass

    def on_packet_lost(self, seq: int, now: float) -> None:
        pass

    def on_timeout(self, now: float) -> None:
        pass

    @property
    def cwnd_packets(self) -> int:
        return self._cwnd

    def pacing_rate_bps(self, now: float) -> float:
        return self._rate


def make_emulator(bw=12.0, lat=40.0, loss=0.0, queue=120, sender=None, seed=0):
    sender = sender or GreedySender()
    link = TimeVaryingLink(bw, lat, loss, queue_packets=queue)
    return PacketNetworkEmulator(sender, link, seed=seed), sender, link


class TestEmulatorBasics:
    def test_saturating_sender_achieves_capacity(self):
        emu, sender, _link = make_emulator()
        for _ in range(100):
            emu.run_interval(0.03)
        util = np.mean([s.utilization for s in emu.history[20:]])
        assert util > 0.95

    def test_packet_conservation(self):
        emu, sender, link = make_emulator(loss=0.02, queue=30)
        for _ in range(100):
            emu.run_interval(0.03)
        emu.run_until(emu.now + 1.0)  # let the pipe drain acks
        sent = emu._next_seq
        accounted = (
            sender.total_acked
            + link.drops_loss
            + link.drops_queue
            + len(link.queue)
            + sender.inflight_packets
        )
        # Packets between egress and ack arrival are neither queued nor
        # counted yet; allow that small in-flight-on-the-wire margin.
        assert abs(sent - accounted) <= 2 * 64

    def test_rtt_approximates_latency_plus_queue(self):
        emu, sender, _link = make_emulator(bw=50.0, lat=40.0)
        for _ in range(50):
            emu.run_interval(0.03)
        # Little queueing at 50 Mbps with a 64-packet window.
        assert sender.srtt_s == pytest.approx(0.040, abs=0.02)

    def test_random_loss_drops_packets(self):
        emu, sender, link = make_emulator(loss=0.10)
        for _ in range(100):
            emu.run_interval(0.03)
        assert link.drops_loss > 0
        observed = link.drops_loss / emu._next_seq
        assert observed == pytest.approx(0.10, abs=0.03)

    def test_queue_overflow_drops(self):
        emu, _sender, link = make_emulator(bw=2.0, queue=10)
        for _ in range(100):
            emu.run_interval(0.03)
        assert link.drops_queue > 0

    def test_interval_stats_fields(self):
        emu, _sender, _link = make_emulator()
        stats = emu.run_interval(0.03)
        assert stats.t_start == 0.0
        assert stats.t_end == pytest.approx(0.03)
        assert 0.0 <= stats.utilization <= 1.0
        assert stats.bandwidth_mbps == 12.0

    def test_invalid_interval(self):
        emu, _s, _l = make_emulator()
        with pytest.raises(ValueError):
            emu.run_interval(0.0)

    def test_cannot_run_backwards(self):
        emu, _s, _l = make_emulator()
        emu.run_until(1.0)
        with pytest.raises(ValueError):
            emu.run_until(0.5)

    def test_set_conditions_takes_effect(self):
        emu, _sender, link = make_emulator()
        emu.run_interval(0.03)
        emu.set_conditions(24.0, 15.0, 0.0)
        stats = emu.run_interval(0.03)
        assert stats.bandwidth_mbps == 24.0
        assert link.latency_ms == 15.0

    def test_throughput_property(self):
        emu, _s, _l = make_emulator()
        for _ in range(40):
            emu.run_interval(0.03)
        s = emu.history[-1]
        assert s.throughput_mbps == pytest.approx(
            s.bytes_delivered * 8.0 / 0.03 / 1e6, rel=0.01
        )

    def test_determinism_with_seed(self):
        a, _, _ = make_emulator(loss=0.05, seed=3)
        b, _, _ = make_emulator(loss=0.05, seed=3)
        for _ in range(30):
            a.run_interval(0.03)
            b.run_interval(0.03)
        assert [s.bytes_delivered for s in a.history] == [
            s.bytes_delivered for s in b.history
        ]


class TestTimeoutPath:
    def test_total_loss_triggers_timeout(self):
        emu, sender, _link = make_emulator(loss=1.0)
        timeouts = []
        original = sender.on_timeout
        sender.on_timeout = lambda now: timeouts.append(now)
        for _ in range(100):
            emu.run_interval(0.03)
        assert timeouts, "RTO should fire when every packet is lost"
