"""Tests for the packet-level emulator (repro.cc.network)."""

import numpy as np
import pytest

from repro.cc.link import TimeVaryingLink
from repro.cc.network import PacketNetworkEmulator
from repro.cc.packet import MSS_BYTES, AckInfo
from repro.cc.protocols.base import Sender


class GreedySender(Sender):
    """Fixed window, fast pacing: saturates any reasonable link."""

    def __init__(self, cwnd=64, rate_bps=100e6):
        super().__init__()
        self._cwnd = cwnd
        self._rate = rate_bps

    def on_ack(self, ack: AckInfo) -> None:
        pass

    def on_packet_lost(self, seq: int, now: float) -> None:
        pass

    def on_timeout(self, now: float) -> None:
        pass

    @property
    def cwnd_packets(self) -> int:
        return self._cwnd

    def pacing_rate_bps(self, now: float) -> float:
        return self._rate


def make_emulator(bw=12.0, lat=40.0, loss=0.0, queue=120, sender=None, seed=0):
    sender = sender or GreedySender()
    link = TimeVaryingLink(bw, lat, loss, queue_packets=queue)
    return PacketNetworkEmulator(sender, link, seed=seed), sender, link


class TestEmulatorBasics:
    def test_saturating_sender_achieves_capacity(self):
        emu, sender, _link = make_emulator()
        for _ in range(100):
            emu.run_interval(0.03)
        util = np.mean([s.utilization for s in emu.history[20:]])
        assert util > 0.95

    def test_packet_conservation(self):
        emu, sender, link = make_emulator(loss=0.02, queue=30)
        for _ in range(100):
            emu.run_interval(0.03)
        emu.run_until(emu.now + 1.0)  # let the pipe drain acks
        sent = emu._next_seq
        accounted = (
            sender.total_acked
            + link.drops_loss
            + link.drops_queue
            + len(link.queue)
            + sender.inflight_packets
        )
        # Packets between egress and ack arrival are neither queued nor
        # counted yet; allow that small in-flight-on-the-wire margin.
        assert abs(sent - accounted) <= 2 * 64

    def test_rtt_approximates_latency_plus_queue(self):
        emu, sender, _link = make_emulator(bw=50.0, lat=40.0)
        for _ in range(50):
            emu.run_interval(0.03)
        # Little queueing at 50 Mbps with a 64-packet window.
        assert sender.srtt_s == pytest.approx(0.040, abs=0.02)

    def test_random_loss_drops_packets(self):
        emu, sender, link = make_emulator(loss=0.10)
        for _ in range(100):
            emu.run_interval(0.03)
        assert link.drops_loss > 0
        observed = link.drops_loss / emu._next_seq
        assert observed == pytest.approx(0.10, abs=0.03)

    def test_queue_overflow_drops(self):
        emu, _sender, link = make_emulator(bw=2.0, queue=10)
        for _ in range(100):
            emu.run_interval(0.03)
        assert link.drops_queue > 0

    def test_interval_stats_fields(self):
        emu, _sender, _link = make_emulator()
        stats = emu.run_interval(0.03)
        assert stats.t_start == 0.0
        assert stats.t_end == pytest.approx(0.03)
        assert 0.0 <= stats.utilization <= 1.0
        assert stats.bandwidth_mbps == 12.0

    def test_invalid_interval(self):
        emu, _s, _l = make_emulator()
        with pytest.raises(ValueError):
            emu.run_interval(0.0)

    def test_cannot_run_backwards(self):
        emu, _s, _l = make_emulator()
        emu.run_until(1.0)
        with pytest.raises(ValueError):
            emu.run_until(0.5)

    def test_set_conditions_takes_effect(self):
        emu, _sender, link = make_emulator()
        emu.run_interval(0.03)
        emu.set_conditions(24.0, 15.0, 0.0)
        stats = emu.run_interval(0.03)
        assert stats.bandwidth_mbps == 24.0
        assert link.latency_ms == 15.0

    def test_throughput_property(self):
        emu, _s, _l = make_emulator()
        for _ in range(40):
            emu.run_interval(0.03)
        s = emu.history[-1]
        assert s.throughput_mbps == pytest.approx(
            s.bytes_delivered * 8.0 / 0.03 / 1e6, rel=0.01
        )

    def test_determinism_with_seed(self):
        a, _, _ = make_emulator(loss=0.05, seed=3)
        b, _, _ = make_emulator(loss=0.05, seed=3)
        for _ in range(30):
            a.run_interval(0.03)
            b.run_interval(0.03)
        assert [s.bytes_delivered for s in a.history] == [
            s.bytes_delivered for s in b.history
        ]


class TestTimeoutPath:
    def test_total_loss_triggers_timeout(self):
        emu, sender, _link = make_emulator(loss=1.0)
        timeouts = []
        original = sender.on_timeout
        sender.on_timeout = lambda now: timeouts.append(now)
        for _ in range(100):
            emu.run_interval(0.03)
        assert timeouts, "RTO should fire when every packet is lost"


def assert_conserved(emu):
    """The emulator's exact packet-conservation invariant.

    Every transmitted packet is in exactly one bucket: dropped by random
    loss, dropped by queue overflow, waiting in the FIFO, past egress with
    its ack still propagating, or fully delivered (ack handed to the
    sender).
    """
    accounted = (
        emu.packets_delivered
        + emu.link.drops_loss
        + emu.link.drops_queue
        + len(emu.link.queue)
        + emu.acks_in_flight
    )
    assert emu.packets_sent == accounted


class FiniteSender(GreedySender):
    """Sends a fixed budget of packets, then goes idle forever."""

    def __init__(self, n_packets, cwnd=8):
        super().__init__(cwnd=cwnd)
        self.n_packets = n_packets
        self.sent = 0

    def register_send(self, packet):
        self.sent += 1
        super().register_send(packet)

    def can_send(self):
        return self.sent < self.n_packets and super().can_send()


class TestConservationInvariants:
    """Property-style checks over random adversarial action sequences."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("make_sender", [
        lambda: GreedySender(),
        lambda: GreedySender(cwnd=8, rate_bps=30e6),
    ])
    def test_conservation_and_monotone_delivery(self, seed, make_sender):
        emu, _sender, link = make_emulator(
            queue=30, sender=make_sender(), seed=seed
        )
        rng = np.random.default_rng(seed)
        prev_delivered = 0
        for _ in range(80):
            emu.set_conditions(
                6.0 + 18.0 * rng.random(),
                15.0 + 45.0 * rng.random(),
                0.10 * rng.random(),
            )
            stats = emu.run_interval(0.03)
            assert_conserved(emu)
            assert link.bytes_delivered >= prev_delivered
            prev_delivered = link.bytes_delivered
            # The clamp relation holds on every interval.
            assert stats.utilization == min(stats.utilization_raw, 1.0)
            assert stats.utilization_raw >= 0.0

    def test_counters_settle_when_drained(self):
        sender = FiniteSender(200, cwnd=32)
        emu, _sender, link = make_emulator(
            loss=0.02, queue=30, seed=7, sender=sender
        )
        for _ in range(60):
            emu.run_interval(0.03)
        emu.run_until(emu.now + 2.0)  # drain the pipe
        assert_conserved(emu)
        assert emu.packets_sent == 200
        assert emu.acks_in_flight == 0
        assert len(link.queue) == 0
        assert emu.packets_delivered == 200 - link.drops_loss - link.drops_queue


class TestUtilizationRaw:
    def test_saturated_intervals_expose_raw_above_one(self):
        # 23 Mbps is 57.5 packets per 30 ms, so a saturated link egresses
        # 57 and 58 packets on alternating intervals: the 58-packet ones
        # carry a queued packet finishing on top of the interval's own
        # capacity.  utilization_raw reports the >1 ratio the clamped
        # (reward-facing) utilization hides.
        emu, _sender, _link = make_emulator(bw=23.0, sender=GreedySender(cwnd=200))
        for _ in range(20):
            emu.run_interval(0.03)
        raws = [s.utilization_raw for s in emu.history[2:]]
        assert any(raw > 1.0 for raw in raws)
        for stats in emu.history:
            assert stats.utilization == min(stats.utilization_raw, 1.0)
            assert stats.utilization <= 1.0

    def test_raw_matches_clamped_when_under_capacity(self):
        emu, _sender, _link = make_emulator(bw=50.0, sender=GreedySender(cwnd=4))
        stats = emu.run_interval(0.03)
        assert stats.utilization_raw == stats.utilization <= 1.0


class TestIdleTickSuppression:
    def test_never_sending_schedules_no_events(self):
        # cwnd 0: the initial send blocks immediately; with the RTO tick
        # armed only on transmit, the heap must go (and stay) empty instead
        # of churning a tick every 100 ms.
        emu, _sender, _link = make_emulator(sender=GreedySender(cwnd=0))
        emu.run_until(10.0)
        assert emu._events == []

    def test_tick_disarms_after_workload_drains(self):
        sender = FiniteSender(10)
        emu, _s, _link = make_emulator(sender=sender)
        emu.run_until(30.0)
        assert sender.total_acked == 10
        assert not sender.inflight
        assert not emu._tick_armed
        assert emu._events == []

    def test_tick_rearms_on_next_send(self):
        from repro.cc.network import _SEND

        sender = FiniteSender(10)
        emu, _s, _link = make_emulator(sender=sender)
        emu.run_until(30.0)
        assert not emu._tick_armed
        # Resume the workload: the next transmit must re-arm the RTO tick.
        sender.n_packets = 20
        emu._schedule(emu.now, _SEND, None)
        emu.run_until(emu.now + 0.01)
        assert emu._tick_armed
        assert any(event[2] != _SEND for event in emu._events)
        emu.run_until(60.0)
        assert sender.total_acked == 20
        assert emu._events == []
        assert_conserved(emu)
