"""Tests for the section-5 extensions: constrained adversaries, alternative
goals, and the adversarial regression suite."""

import numpy as np
import pytest

from repro.abr.protocols import BufferBased, RateBased
from repro.abr.video import Video
from repro.adversary.abr_env import AbrAdversaryEnv
from repro.adversary.cc_env import CcAdversaryEnv
from repro.adversary.constrained import PerturbationAdversaryEnv
from repro.adversary.regression import (
    AdversarialRegressionSuite,
    RegressionCase,
    suite_mean_threshold,
)
from repro.cc import BBRSender
from repro.traces.random_traces import random_abr_traces
from repro.traces.trace import Trace


@pytest.fixture
def video():
    return Video.synthetic(n_chunks=10, seed=0)


@pytest.fixture
def base_trace():
    return Trace.from_steps([2.0, 3.0, 1.5, 2.5, 2.0], 4.0, name="base")


class TestPerturbationAdversary:
    def test_bandwidth_stays_within_band(self, video, base_trace):
        env = PerturbationAdversaryEnv(
            BufferBased(), video, base_trace, max_relative=0.25
        )
        env.reset()
        rng = np.random.default_rng(0)
        done = False
        i = 0
        while not done:
            _o, _r, done, info = env.step(rng.uniform(-3, 3, 1))
            base = base_trace.bandwidths_mbps[i % len(base_trace)]
            assert abs(info["bandwidth_mbps"] - base) <= 0.25 * base + 1e-9
            i += 1

    def test_extreme_actions_hit_band_edges(self, video, base_trace):
        env = PerturbationAdversaryEnv(
            BufferBased(), video, base_trace, max_relative=0.2
        )
        env.reset()
        assert env.action_to_bandwidth(np.array([1.0])) == pytest.approx(2.0 * 1.2)
        assert env.action_to_bandwidth(np.array([-1.0])) == pytest.approx(2.0 * 0.8)

    def test_deviation_metric(self, video, base_trace):
        env = PerturbationAdversaryEnv(
            BufferBased(), video, base_trace, max_relative=0.5
        )
        env.reset()
        env.step(np.array([1.0]))
        env.step(np.array([0.0]))
        assert env.deviation_from_base() == pytest.approx(0.25)

    def test_validation(self, video, base_trace):
        with pytest.raises(ValueError):
            PerturbationAdversaryEnv(BufferBased(), video, base_trace, max_relative=0.0)
        with pytest.raises(ValueError):
            PerturbationAdversaryEnv(BufferBased(), video, base_trace, max_relative=1.5)

    def test_reward_still_equation_1(self, video, base_trace):
        env = PerturbationAdversaryEnv(BufferBased(), video, base_trace)
        env.reset()
        _o, reward, _d, info = env.step(np.array([0.5]))
        assert reward == pytest.approx(
            info["r_opt"] - info["r_protocol"] - info["smoothing"]
        )


class TestAlternativeGoals:
    def test_abr_rebuffer_goal_reward(self, video):
        env = AbrAdversaryEnv(BufferBased(), video, goal="rebuffer")
        env.reset()
        _o, reward, _d, info = env.step(np.array([0.0]))
        assert reward == pytest.approx(info["rebuffer"] - info["smoothing"])

    def test_abr_unknown_goal_rejected(self, video):
        with pytest.raises(ValueError):
            AbrAdversaryEnv(BufferBased(), video, goal="chaos")

    def test_cc_congestion_goal_reward(self):
        env = CcAdversaryEnv(BBRSender, episode_intervals=10, goal="congestion")
        env.reset()
        _o, reward, _d, info = env.step(np.zeros(3))
        congestion = min(info["queue_delay_s"] / env.CONGESTION_REF_DELAY_S, 1.0)
        assert reward == pytest.approx(
            congestion - info["loss_rate"] - 0.01 * info["smoothing"]
        )

    def test_cc_unknown_goal_rejected(self):
        with pytest.raises(ValueError):
            CcAdversaryEnv(BBRSender, goal="mayhem")


class TestRegressionSuite:
    def test_record_and_check_pass(self, video):
        suite = AdversarialRegressionSuite(video, margin=0.1)
        traces = random_abr_traces(3, seed=0, n_segments=video.n_chunks)
        for t in traces:
            suite.record(t, BufferBased())
        report = suite.check(BufferBased())
        assert report.ok
        assert len(report.passed) == 3

    def test_worse_protocol_fails(self, video):
        """Thresholds recorded from a good protocol catch a worse one."""
        suite = AdversarialRegressionSuite(video, margin=0.0)
        # A descending-bandwidth trace punishes the no-history rate rule.
        trace = Trace.from_steps(
            np.linspace(4.5, 0.9, video.n_chunks), 4.0, name="descending"
        )
        suite.record(trace, BufferBased())

        class GreedyPolicy(RateBased):
            """Always requests the top rate."""

            def select(self, observation):
                return 5

        greedy = GreedyPolicy()
        report = suite.check(greedy)
        assert not report.ok
        assert "descending" in report.failed[0][0]
        assert "FAIL" in report.summary()

    def test_empty_suite_rejected(self, video):
        with pytest.raises(RuntimeError):
            AdversarialRegressionSuite(video).check(BufferBased())

    def test_save_load_roundtrip(self, video, tmp_path):
        suite = AdversarialRegressionSuite(video, margin=0.2)
        for t in random_abr_traces(2, seed=1, n_segments=video.n_chunks):
            suite.record(t, BufferBased())
        path = tmp_path / "suite.json"
        suite.save(path)
        restored = AdversarialRegressionSuite(video)
        restored.load(path)
        assert len(restored.cases) == 2
        assert restored.margin == 0.2
        np.testing.assert_allclose(
            restored.cases[0].trace.bandwidths_mbps,
            suite.cases[0].trace.bandwidths_mbps,
        )

    def test_refresh_adds_worst_cases(self, video):
        suite = AdversarialRegressionSuite(video)
        added = suite.refresh(
            BufferBased(), adversary_steps=512, n_traces=4, keep_worst=2, seed=0
        )
        assert len(added) == 2
        assert all(c.origin == "refresh" for c in added)
        assert len(suite.cases) == 2
        # Current protocol passes its own freshly recorded thresholds.
        assert suite.check(BufferBased()).ok

    def test_worst_cases_and_threshold(self, video):
        suite = AdversarialRegressionSuite(video)
        suite.cases = [
            RegressionCase(trace=random_abr_traces(1, seed=i, n_segments=10)[0],
                           min_qoe=float(i))
            for i in range(4)
        ]
        assert [c.min_qoe for c in suite.worst_cases(2)] == [0.0, 1.0]
        assert suite_mean_threshold(suite) == pytest.approx(1.5)
