"""Tests for the video model (repro.abr.video)."""

import numpy as np
import pytest

from repro.abr.video import BITRATES_KBPS, CHUNK_SECONDS, Video


class TestSyntheticVideo:
    def test_dimensions(self):
        v = Video.synthetic(n_chunks=48, seed=0)
        assert v.n_chunks == 48
        assert v.n_bitrates == len(BITRATES_KBPS)
        assert v.duration == pytest.approx(48 * CHUNK_SECONDS)

    def test_sizes_monotone_across_ladder(self):
        v = Video.synthetic(n_chunks=30, seed=1)
        assert np.all(np.diff(v.chunk_sizes_bytes, axis=1) >= 0)

    def test_sizes_near_nominal(self):
        v = Video.synthetic(n_chunks=200, seed=2, size_jitter_sigma=0.12)
        nominal = np.asarray(BITRATES_KBPS) * 1000.0 / 8.0 * CHUNK_SECONDS
        mean_sizes = v.chunk_sizes_bytes.mean(axis=0)
        np.testing.assert_allclose(mean_sizes, nominal, rtol=0.1)

    def test_seeding(self):
        a = Video.synthetic(n_chunks=5, seed=7)
        b = Video.synthetic(n_chunks=5, seed=7)
        np.testing.assert_array_equal(a.chunk_sizes_bytes, b.chunk_sizes_bytes)

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            Video.synthetic(n_chunks=0)


class TestVideoValidation:
    def test_chunk_size_lookup(self):
        v = Video.synthetic(n_chunks=4, seed=0)
        assert v.chunk_size(0, 0) == v.chunk_sizes_bytes[0, 0]
        with pytest.raises(IndexError):
            v.chunk_size(4, 0)
        with pytest.raises(IndexError):
            v.chunk_size(0, 6)

    def test_bitrate_mbps(self):
        v = Video.synthetic(n_chunks=2, seed=0)
        assert v.bitrate_mbps(5) == pytest.approx(4.3)

    def test_non_monotone_sizes_rejected(self):
        sizes = np.ones((2, 6)) * 1000.0
        sizes[0, 3] = 100.0
        with pytest.raises(ValueError):
            Video(sizes)

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(ValueError):
            Video(np.zeros((2, 6)))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            Video(np.ones((2, 4)))

    def test_unsorted_ladder_rejected(self):
        with pytest.raises(ValueError):
            Video(np.ones((1, 2)), bitrates_kbps=(700, 300))
