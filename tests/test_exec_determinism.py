"""Bitwise-identity tests: parallel and cached paths vs the serial loop.

The contract of :mod:`repro.exec` is that worker count and cache state
are pure performance knobs -- every figure of the paper must come out
identical whether it was computed serially, across processes, or served
from a warm cache.  These tests pin that contract at the public entry
points rather than the runner internals.
"""

import copy

import numpy as np
import pytest

from repro.abr.protocols import MPC, BufferBased
from repro.abr.video import Video
from repro.adversary import (
    generate_abr_traces,
    generate_cc_traces,
    train_abr_adversary,
    train_cc_adversary,
)
from repro.cc import BBRSender
from repro.cc.metrics import run_sender_on_traces
from repro.exec import ResultCache
from repro.experiments.abr_suite import evaluate_protocols
from repro.rl.ppo import PPOConfig
from repro.traces.random_traces import random_abr_traces, random_cc_traces


@pytest.fixture(scope="module")
def abr_eval_setup():
    video = Video.synthetic(n_chunks=10, seed=0)
    traces = random_abr_traces(4, seed=0, n_segments=10)
    protocols = {"bb": BufferBased(), "mpc": MPC()}
    return video, traces, protocols


@pytest.fixture(scope="module")
def abr_adversary():
    video = Video.synthetic(n_chunks=10, seed=0)
    cfg = PPOConfig(n_steps=64, batch_size=32, hidden=(8,))
    return train_abr_adversary(
        BufferBased(), video, total_steps=128, seed=0, config=cfg
    )


@pytest.fixture(scope="module")
def cc_adversary():
    cfg = PPOConfig(n_steps=64, batch_size=32, hidden=(4,))
    return train_cc_adversary(
        BBRSender, total_steps=128, seed=0, config=cfg, episode_intervals=25
    )


class TestEvaluateProtocolsIdentity:
    def test_worker_count_does_not_change_results(self, abr_eval_setup):
        video, traces, protocols = abr_eval_setup
        serial = evaluate_protocols(video, traces, protocols, workers=0)
        for n_workers in (1, 2, 4):
            parallel = evaluate_protocols(
                video, traces, protocols, workers=n_workers
            )
            assert parallel == serial  # float-exact, not approx

    def test_warm_cache_returns_cold_run_values(self, abr_eval_setup, tmp_path):
        video, traces, protocols = abr_eval_setup
        uncached = evaluate_protocols(video, traces, protocols, workers=0)
        cache = ResultCache(tmp_path)
        cold = evaluate_protocols(
            video, traces, protocols, workers=0, cache=cache
        )
        warm = evaluate_protocols(
            video, traces, protocols, workers=0, cache=cache
        )
        assert cold == uncached
        assert warm == uncached
        n_sessions = len(traces) * len(protocols)
        assert cache.hits == n_sessions  # second pass fully served
        assert cache.misses == n_sessions

    def test_parallel_and_cached_compose(self, abr_eval_setup, tmp_path):
        video, traces, protocols = abr_eval_setup
        serial = evaluate_protocols(video, traces, protocols, workers=0)
        cache = ResultCache(tmp_path)
        mixed = evaluate_protocols(
            video, traces, protocols, workers=2, cache=cache
        )
        assert mixed == serial


class TestTraceGenerationIdentity:
    def test_abr_corpus_identical_across_worker_counts(self, abr_adversary):
        result = abr_adversary
        serial = generate_abr_traces(
            result.trainer, result.env, 4, seed=123, workers=0
        )
        for n_workers in (2, 4):
            parallel = generate_abr_traces(
                result.trainer, result.env, 4, seed=123, workers=n_workers
            )
            for s, p in zip(serial, parallel):
                assert s.trace.name == p.trace.name
                np.testing.assert_array_equal(
                    s.trace.bandwidths_mbps, p.trace.bandwidths_mbps
                )
                assert s.target_qoe_mean == p.target_qoe_mean
                assert s.adversary_return == p.adversary_return
                assert s.qualities == p.qualities

    def test_abr_parallel_stochastic_requires_seed(self, abr_adversary):
        result = abr_adversary
        with pytest.raises(ValueError, match="seed"):
            generate_abr_traces(result.trainer, result.env, 2, workers=2)

    def test_cc_corpus_identical_and_episode_counter_advances(self, cc_adversary):
        result = cc_adversary
        env_serial = copy.deepcopy(result.env)
        env_parallel = copy.deepcopy(result.env)
        serial = generate_cc_traces(
            result.trainer, env_serial, 3, seed=5, workers=0
        )
        parallel = generate_cc_traces(
            result.trainer, env_parallel, 3, seed=5, workers=2
        )
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(
                s.trace.bandwidths_mbps, p.trace.bandwidths_mbps
            )
            np.testing.assert_array_equal(s.raw_actions, p.raw_actions)
            assert s.capacity_fraction == p.capacity_fraction
            assert s.adversary_return == p.adversary_return
        # Each rollout consumes one emulator-seed episode; both paths must
        # leave the caller's env at the same counter.
        assert env_parallel._episode == env_serial._episode


class TestCcReplayIdentity:
    def test_replays_identical_serial_parallel_cached(self, tmp_path):
        traces = random_cc_traces(3, seed=0, n_segments=60)
        seeds = [100, 101, 102]
        serial = run_sender_on_traces(BBRSender, traces, seeds, workers=0)
        parallel = run_sender_on_traces(BBRSender, traces, seeds, workers=2)
        cache = ResultCache(tmp_path)
        cold = run_sender_on_traces(BBRSender, traces, seeds, cache=cache)
        warm = run_sender_on_traces(BBRSender, traces, seeds, cache=cache)
        for variant in (parallel, cold, warm):
            for s, v in zip(serial, variant):
                assert s.mean_throughput_mbps == v.mean_throughput_mbps
                assert s.capacity_fraction == v.capacity_fraction
                assert s.loss_fraction == v.loss_fraction
        assert cache.hits == len(traces)

    def test_seed_count_mismatch_raises(self):
        traces = random_cc_traces(2, seed=0, n_segments=30)
        with pytest.raises(ValueError):
            run_sender_on_traces(BBRSender, traces, seeds=[1])
