"""Tests for the Trace data structure (repro.traces.trace)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.trace import Trace

bandwidth_lists = st.lists(st.floats(0.1, 50.0), min_size=1, max_size=40)


class TestConstruction:
    def test_from_steps(self):
        t = Trace.from_steps([1.0, 2.0, 3.0], step_seconds=4.0)
        assert len(t) == 3
        assert t.duration == pytest.approx(12.0)
        np.testing.assert_allclose(t.timestamps, [0.0, 4.0, 8.0])

    def test_constant(self):
        t = Trace.constant(5.0, 30.0, latency_ms=20.0, loss_rate=0.01)
        assert t.bandwidth_at(15.0) == 5.0
        assert t.latency_at(29.9) == 20.0
        assert t.loss_at(0.0) == 0.01

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace(timestamps=np.array([]), bandwidths_mbps=np.array([]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(timestamps=np.array([0.0, 1.0]), bandwidths_mbps=np.array([1.0]))

    def test_non_increasing_timestamps_rejected(self):
        with pytest.raises(ValueError):
            Trace(timestamps=np.array([0.0, 0.0]), bandwidths_mbps=np.array([1.0, 1.0]))

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_steps([-1.0], 1.0)

    def test_loss_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_steps([1.0], 1.0, loss_rates=[1.5])

    def test_schedule_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_steps([1.0, 2.0], 1.0, latencies_ms=[10.0])

    def test_duration_must_extend_past_last_timestamp(self):
        with pytest.raises(ValueError):
            Trace(
                timestamps=np.array([0.0, 5.0]),
                bandwidths_mbps=np.array([1.0, 2.0]),
                duration=5.0,
            )


class TestLookup:
    def test_piecewise_constant_semantics(self):
        t = Trace.from_steps([1.0, 2.0, 3.0], 10.0)
        assert t.bandwidth_at(0.0) == 1.0
        assert t.bandwidth_at(9.999) == 1.0
        assert t.bandwidth_at(10.0) == 2.0
        assert t.bandwidth_at(29.999) == 3.0

    def test_looping(self):
        t = Trace.from_steps([1.0, 2.0], 1.0)
        assert t.bandwidth_at(2.0) == 1.0  # wrapped
        assert t.bandwidth_at(3.5) == 2.0

    def test_no_loop_out_of_range_raises(self):
        t = Trace.from_steps([1.0], 1.0)
        with pytest.raises(ValueError):
            t.bandwidth_at(1.5, loop=False)

    def test_missing_schedules_raise(self):
        t = Trace.from_steps([1.0], 1.0)
        with pytest.raises(ValueError):
            t.latency_at(0.0)
        with pytest.raises(ValueError):
            t.loss_at(0.0)

    def test_segment_end(self):
        t = Trace.from_steps([1.0, 2.0], 4.0)
        assert t.segment_end(0) == 4.0
        assert t.segment_end(1) == 8.0


class TestStatistics:
    def test_mean_bandwidth_time_weighted(self):
        t = Trace(
            timestamps=np.array([0.0, 1.0]),
            bandwidths_mbps=np.array([1.0, 3.0]),
            duration=4.0,
        )
        # 1 second at 1.0 plus 3 seconds at 3.0.
        assert t.mean_bandwidth() == pytest.approx((1.0 + 9.0) / 4.0)

    def test_smoothness_definition(self):
        t = Trace.from_steps([1.0, 3.0, 2.0], 1.0)
        assert t.smoothness() == pytest.approx((2.0 + 1.0) / 2.0)

    def test_smoothness_single_segment_is_zero(self):
        assert Trace.constant(2.0, 10.0).smoothness() == 0.0

    @given(bandwidth_lists)
    @settings(max_examples=40, deadline=None)
    def test_mean_bandwidth_within_extremes(self, bws):
        t = Trace.from_steps(bws, 1.0)
        assert min(bws) - 1e-9 <= t.mean_bandwidth() <= max(bws) + 1e-9


class TestTransforms:
    def test_slice(self):
        t = Trace.from_steps([1.0, 2.0, 3.0, 4.0], 1.0)
        s = t.slice(1.5, 3.5)
        assert s.duration == pytest.approx(2.0)
        assert s.bandwidth_at(0.0, loop=False) == 2.0
        assert s.bandwidth_at(0.6, loop=False) == 3.0
        assert s.bandwidth_at(1.9, loop=False) == 4.0

    def test_slice_invalid_bounds(self):
        t = Trace.from_steps([1.0, 2.0], 1.0)
        with pytest.raises(ValueError):
            t.slice(1.0, 5.0)

    def test_scaled(self):
        t = Trace.from_steps([1.0, 2.0], 1.0)
        s = t.scaled(2.5)
        np.testing.assert_allclose(s.bandwidths_mbps, [2.5, 5.0])
        with pytest.raises(ValueError):
            t.scaled(0.0)


class TestPersistence:
    @given(bandwidth_lists)
    @settings(max_examples=25, deadline=None)
    def test_dict_roundtrip(self, bws):
        t = Trace.from_steps(bws, 2.0, name="x")
        restored = Trace.from_dict(t.to_dict())
        np.testing.assert_allclose(restored.bandwidths_mbps, t.bandwidths_mbps)
        np.testing.assert_allclose(restored.timestamps, t.timestamps)
        assert restored.duration == t.duration
        assert restored.name == t.name

    def test_file_roundtrip(self, tmp_path):
        t = Trace.from_steps(
            [1.0, 2.0], 0.03, latencies_ms=[10.0, 20.0], loss_rates=[0.0, 0.1]
        )
        path = tmp_path / "t.json"
        t.save(path)
        restored = Trace.load(path)
        np.testing.assert_allclose(restored.latencies_ms, [10.0, 20.0])
        np.testing.assert_allclose(restored.loss_rates, [0.0, 0.1])
