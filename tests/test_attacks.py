"""Tests for white-box observation attacks (repro.attacks).

Covers the numerical core (finite-difference validation of the input
gradient on both backward paths, budget/envelope projection), the
decision-time wrappers (eps=0 no-op, seeded determinism across runs and
worker counts, serial-vs-batched bitwise identity, cache behaviour) and
the regression guards for the two hot-path hazards fixed alongside this
subsystem (``dout`` in-place scaling, ``flat_grads`` clobbering).
"""

import numpy as np
import pytest

from repro.abr.batched import run_batched_sessions, SessionSpec
from repro.abr.features import feature_dim
from repro.abr.protocols import run_session
from repro.abr.protocols.pensieve import PensieveAgent
from repro.abr.video import Video
from repro.attacks import (
    AttackConfig,
    AttackedPensieve,
    BatchedAttackedPensieve,
    attack_decision,
    feature_envelope,
    input_gradient,
    perturb_features,
)
from repro.exec import ResultCache
from repro.experiments.abr_suite import evaluate_protocols
from repro.nn.network import MLP
from repro.rl.policy import ActorCritic
from repro.rl.running_stat import RunningMeanStd
from repro.rl.spaces import Discrete
from repro.traces.trace import Trace

N_BITRATES = 6
FEAT_DIM = feature_dim(N_BITRATES)


def make_agent(seed: int = 3, deterministic: bool = True) -> PensieveAgent:
    policy = ActorCritic(
        FEAT_DIM, Discrete(N_BITRATES), hidden=(16, 8),
        rng=np.random.default_rng(seed),
    )
    obs_rms = RunningMeanStd(shape=(FEAT_DIM,))
    obs_rms.update(
        np.random.default_rng(seed + 50).uniform(0.0, 3.0, size=(64, FEAT_DIM))
    )
    return PensieveAgent(policy, obs_rms=obs_rms, deterministic=deterministic)


@pytest.fixture(scope="module")
def video():
    return Video.synthetic(n_chunks=12, seed=0)


@pytest.fixture(scope="module")
def traces():
    rng = np.random.default_rng(7)
    return [
        Trace.from_steps(rng.uniform(0.4, 5.5, size=10), 4.0, name=f"t{i}")
        for i in range(4)
    ]


# -- config ------------------------------------------------------------------


class TestAttackConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AttackConfig(kind="bim")
        with pytest.raises(ValueError):
            AttackConfig(norm="l1")
        with pytest.raises(ValueError):
            AttackConfig(eps=-0.1)
        with pytest.raises(ValueError):
            AttackConfig(kind="pgd", steps=0)
        with pytest.raises(ValueError):
            AttackConfig(kind="pgd", step_size=0.0)
        with pytest.raises(ValueError):
            AttackConfig(target_action=-1)

    def test_fgsm_is_single_full_step(self):
        config = AttackConfig(kind="fgsm", eps=0.3, steps=40, step_size=0.001)
        assert config.resolved_steps == 1
        assert config.resolved_step_size == 0.3

    def test_pgd_default_schedule(self):
        config = AttackConfig(kind="pgd", eps=0.1, steps=10)
        assert config.resolved_steps == 10
        assert config.resolved_step_size == pytest.approx(2.5 * 0.1 / 10)

    def test_labels(self):
        assert AttackConfig(kind="fgsm", eps=0.05).label() == "fgsm-linf-0.05"
        assert (
            AttackConfig(kind="pgd", norm="l2", eps=0.3, steps=7,
                         targeted=True, target_action=2).label()
            == "pgd7-l2-0.3-t2"
        )


# -- input gradient: finite differences on both backward paths ---------------


def _objective(net, obs_rms, x, reference, config):
    """The scalar the attack ascends, recomputed from scratch."""
    z = obs_rms.normalize(x) if obs_rms is not None else x
    logits = net.forward(np.asarray(z, dtype=float).reshape(1, -1))[0]
    shifted = logits - logits.max()
    logp = shifted - np.log(np.sum(np.exp(shifted)))
    if config.targeted:
        return float(logp[config.target_action])
    return float(-logp[reference])


def _fd_check(net, obs_rms, x, reference, config):
    _, grad = input_gradient(net, obs_rms, x, reference, config)
    eps = 1e-6
    for i in range(x.size):
        up = x.copy()
        up[i] += eps
        down = x.copy()
        down[i] -= eps
        numeric = (
            _objective(net, obs_rms, up, reference, config)
            - _objective(net, obs_rms, down, reference, config)
        ) / (2 * eps)
        assert abs(numeric - grad[i]) < 1e-6


class TestInputGradient:
    @pytest.mark.parametrize("targeted", [False, True])
    def test_finite_differences_through_normalization(self, targeted):
        agent = make_agent(seed=11)
        net = agent.policy.policy_net
        x = np.random.default_rng(5).uniform(0.2, 2.0, size=FEAT_DIM)
        config = AttackConfig(kind="pgd", targeted=targeted, target_action=1)
        _fd_check(net, agent.obs_rms, x, reference=2, config=config)

    def test_finite_differences_without_normalization(self):
        agent = make_agent(seed=12)
        net = agent.policy.policy_net
        x = np.random.default_rng(6).uniform(-1.0, 1.0, size=FEAT_DIM)
        _fd_check(net, None, x, reference=0, config=AttackConfig())

    def test_clip_saturated_slots_get_zero_gradient(self):
        agent = make_agent(seed=13)
        rms = agent.obs_rms
        x = np.random.default_rng(8).uniform(0.2, 2.0, size=FEAT_DIM)
        # Push one slot far past the +-10 normalization clip: locally flat.
        x[3] = rms.mean[3] + 100.0 * np.sqrt(rms.var[3] + 1e-8)
        _, grad = input_gradient(
            agent.policy.policy_net, rms, x, 0, AttackConfig()
        )
        assert grad[3] == 0.0
        assert np.any(grad != 0.0)

    def test_generic_backward_path_matches_fast(self):
        """A byteswapped dout fails the fast-path dtype probe; both paths
        must produce the same input gradient (FD-validated elsewhere)."""
        rng = np.random.default_rng(2)
        net = MLP((5, 8, 3), rng)
        x = rng.standard_normal((1, 5))
        dout = rng.standard_normal((1, 3))
        net.forward(x)
        fast = net.backward(dout.copy(), need_input_grad=True).copy()
        net.forward(x)
        generic = net.backward(dout.astype(">f8"), need_input_grad=True)
        np.testing.assert_allclose(np.asarray(generic, dtype=float), fast,
                                   rtol=1e-12, atol=0.0)

    def test_generic_backward_finite_differences(self):
        rng = np.random.default_rng(3)
        net = MLP((4, 6, 2), rng, activation="tanh")
        x = rng.standard_normal((1, 4))
        w = rng.standard_normal((1, 2))

        def loss(xv):
            return float(np.sum(net.forward(xv) * w))

        net.forward(x)
        grad = np.asarray(
            net.backward(w.astype(">f8"), need_input_grad=True), dtype=float
        )[0]
        eps = 1e-6
        for i in range(x.size):
            up = x.copy()
            up[0, i] += eps
            down = x.copy()
            down[0, i] -= eps
            assert abs((loss(up) - loss(down)) / (2 * eps) - grad[i]) < 1e-6


class TestBackwardInputGradHazards:
    def test_dout_not_mutated(self):
        """Regression: fast-path activations scale dout in place;
        backward_input_grad must leave the caller's array untouched."""
        rng = np.random.default_rng(4)
        net = MLP((5, 8, 3), rng, activation="tanh")
        x = rng.standard_normal((2, 5))
        dout = rng.standard_normal((2, 3))
        snapshot = dout.copy()
        net.forward(x)
        net.backward_input_grad(dout)
        np.testing.assert_array_equal(dout, snapshot)

    def test_result_survives_later_passes(self):
        """The plain backward return aliases first-layer scratch; the
        copying entry point's result must not change under later passes."""
        rng = np.random.default_rng(5)
        net = MLP((5, 8, 3), rng)
        x1, x2 = rng.standard_normal((2, 2, 5))
        d1, d2 = rng.standard_normal((2, 2, 3))
        net.forward(x1)
        g1 = net.backward_input_grad(d1)
        frozen = g1.copy()
        net.forward(x2)
        net.backward_input_grad(d2)
        np.testing.assert_array_equal(g1, frozen)

    def test_matches_plain_backward(self):
        rng = np.random.default_rng(6)
        net = MLP((5, 8, 3), rng)
        x = rng.standard_normal((3, 5))
        dout = rng.standard_normal((3, 3))
        net.forward(x)
        reference = net.backward(dout.copy(), need_input_grad=True).copy()
        net.forward(x)
        np.testing.assert_array_equal(net.backward_input_grad(dout), reference)


# -- crafting: budget, envelope, purity --------------------------------------


CONFIGS = [
    AttackConfig(kind="fgsm", norm="linf", eps=0.05),
    AttackConfig(kind="fgsm", norm="l2", eps=0.3),
    AttackConfig(kind="pgd", norm="linf", eps=0.05, steps=5),
    AttackConfig(kind="pgd", norm="l2", eps=0.3, steps=5),
    AttackConfig(kind="pgd", norm="linf", eps=0.05, steps=5, targeted=True),
    AttackConfig(kind="pgd", norm="linf", eps=0.05, steps=5, rand_init=True),
]


class TestPerturbFeatures:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.label())
    def test_budget_and_envelope_respected(self, config, video):
        agent = make_agent(seed=21)
        lo, hi = feature_envelope(video)
        x0 = np.random.default_rng(9).uniform(0.1, 1.5, size=FEAT_DIM)
        x0 = np.clip(x0, lo, np.minimum(hi, 10.0))
        rng = np.random.default_rng(config.seed) if config.rand_init else None
        x_adv = perturb_features(
            agent.policy.policy_net, agent.obs_rms, x0, config, lo, hi, rng
        )
        assert np.all(x_adv >= lo) and np.all(x_adv <= hi)
        delta = x_adv - x0
        if config.norm == "linf":
            assert np.max(np.abs(delta)) <= config.eps + 1e-12
        else:
            assert np.sqrt(np.sum(delta * delta)) <= config.eps + 1e-12
        assert np.any(delta != 0.0)  # the attack actually moved

    def test_eps_zero_is_identity_copy(self, video):
        agent = make_agent(seed=22)
        lo, hi = feature_envelope(video)
        x0 = np.random.default_rng(10).uniform(0.1, 1.5, size=FEAT_DIM)
        out = perturb_features(
            agent.policy.policy_net, agent.obs_rms, x0,
            AttackConfig(eps=0.0), lo, hi,
        )
        assert out is not x0
        np.testing.assert_array_equal(out, x0)

    def test_input_features_never_mutated(self, video):
        agent = make_agent(seed=23)
        lo, hi = feature_envelope(video)
        x0 = np.random.default_rng(11).uniform(0.1, 1.5, size=FEAT_DIM)
        snapshot = x0.copy()
        perturb_features(
            agent.policy.policy_net, agent.obs_rms, x0,
            AttackConfig(kind="pgd", steps=5), lo, hi,
        )
        np.testing.assert_array_equal(x0, snapshot)

    def test_flat_grads_restored_after_crafting(self, video):
        """Regression: crafting once zeroed the policy's gradient buffer,
        permanently changing the agent's content fingerprint (cache keys
        stopped matching after the first attacked session)."""
        agent = make_agent(seed=24)
        net = agent.policy.policy_net
        marker = np.arange(1.0, net.flat_grads.size + 1.0)
        net.flat_grads[:] = marker
        lo, hi = feature_envelope(video)
        x0 = np.random.default_rng(12).uniform(0.1, 1.5, size=FEAT_DIM)
        perturb_features(
            net, agent.obs_rms, x0, AttackConfig(kind="pgd", steps=5), lo, hi
        )
        np.testing.assert_array_equal(net.flat_grads, marker)

    def test_rand_init_requires_rng(self, video):
        agent = make_agent(seed=25)
        lo, hi = feature_envelope(video)
        x0 = np.random.default_rng(13).uniform(0.1, 1.5, size=FEAT_DIM)
        with pytest.raises(ValueError):
            perturb_features(
                agent.policy.policy_net, agent.obs_rms, x0,
                AttackConfig(kind="pgd", rand_init=True), lo, hi,
            )

    def test_rand_init_seeded_reproducible(self, video):
        agent = make_agent(seed=26)
        lo, hi = feature_envelope(video)
        x0 = np.random.default_rng(14).uniform(0.1, 1.5, size=FEAT_DIM)
        config = AttackConfig(kind="pgd", rand_init=True, seed=9, steps=3)
        runs = [
            perturb_features(
                agent.policy.policy_net, agent.obs_rms, x0, config, lo, hi,
                np.random.default_rng(config.seed),
            )
            for _ in range(2)
        ]
        assert runs[0].tobytes() == runs[1].tobytes()


class TestAttackDecision:
    def test_eps_zero_matches_clean_agent(self, video):
        agent = make_agent(seed=31)
        lo, hi = feature_envelope(video)
        rng = np.random.default_rng(15)
        for _ in range(20):
            x = rng.uniform(0.0, 2.0, size=FEAT_DIM)
            action, x_adv = attack_decision(
                agent.policy.policy_net, agent.obs_rms,
                agent.policy.policy_net, agent.obs_rms,
                x, AttackConfig(eps=0.0), lo, hi,
            )
            z = agent.obs_rms.normalize(x)
            clean, _, _ = agent.policy.act(
                z, np.random.default_rng(0), deterministic=True
            )
            assert action == int(clean)
            np.testing.assert_array_equal(x_adv, x)

    def test_untargeted_flips_some_decisions(self, video):
        agent = make_agent(seed=32)
        lo, hi = feature_envelope(video)
        rng = np.random.default_rng(16)
        config = AttackConfig(kind="pgd", eps=0.5, steps=10)
        flipped = 0
        for _ in range(20):
            x = rng.uniform(0.0, 2.0, size=FEAT_DIM)
            clean, _ = attack_decision(
                agent.policy.policy_net, agent.obs_rms,
                agent.policy.policy_net, agent.obs_rms,
                x, AttackConfig(eps=0.0), lo, hi,
            )
            attacked, _ = attack_decision(
                agent.policy.policy_net, agent.obs_rms,
                agent.policy.policy_net, agent.obs_rms,
                x, config, lo, hi,
            )
            flipped += attacked != clean
        assert flipped > 0


# -- decision-time wrappers --------------------------------------------------


def _session_bytes(result) -> bytes:
    parts = [np.asarray(result.qualities, dtype=float)]
    parts += [
        np.asarray(v, dtype=float)
        for v in (result.bitrates_kbps, result.rebuffer_seconds,
                  result.buffer_seconds, [result.qoe_total, result.qoe_mean])
    ]
    return b"".join(p.tobytes() for p in parts)


class TestAttackedPensieve:
    def test_rejects_stochastic_victim(self):
        agent = make_agent(deterministic=False)
        with pytest.raises(ValueError):
            AttackedPensieve(agent, AttackConfig())

    def test_rejects_out_of_range_target(self):
        agent = make_agent()
        with pytest.raises(ValueError):
            AttackedPensieve(
                agent, AttackConfig(targeted=True, target_action=N_BITRATES)
            )

    def test_eps_zero_session_matches_clean(self, video, traces):
        agent = make_agent(seed=41)
        wrapped = AttackedPensieve(agent, AttackConfig(eps=0.0))
        for trace in traces:
            clean = run_session(video, trace, agent)
            attacked = run_session(video, trace, wrapped)
            assert _session_bytes(clean) == _session_bytes(attacked)

    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.label())
    def test_seeded_runs_bitwise_reproducible(self, config, video, traces):
        agent = make_agent(seed=42)
        runs = [
            [
                run_session(video, t, AttackedPensieve(agent, config))
                for t in traces
            ]
            for _ in range(2)
        ]
        for a, b in zip(*runs):
            assert _session_bytes(a) == _session_bytes(b)

    def test_determinism_across_worker_counts(self, video, traces):
        agent = make_agent(seed=43)
        config = AttackConfig(kind="pgd", eps=0.05, steps=3, rand_init=True)
        protocols = {"atk": AttackedPensieve(agent, config)}
        serial = evaluate_protocols(video, traces, protocols, cache=False)
        fanned = evaluate_protocols(
            video, traces, protocols, workers=2, cache=False
        )
        assert np.asarray(serial["atk"]).tobytes() == np.asarray(
            fanned["atk"]
        ).tobytes()

    @pytest.mark.parametrize("batch_size", [1, 7, 32])
    def test_serial_batched_bitwise_identity(self, batch_size, video, traces):
        agent = make_agent(seed=44)
        config = AttackConfig(kind="pgd", eps=0.05, steps=3, rand_init=True)
        wrapped = AttackedPensieve(agent, config)
        corpus = [
            SessionSpec(video=video, bandwidth=t, chunk_indexed=(i % 2 == 0))
            for i, t in enumerate(traces)
        ]
        serial = [
            run_session(
                s.video, s.bandwidth, wrapped, chunk_indexed=s.chunk_indexed
            )
            for s in corpus
        ]
        batched = run_batched_sessions(corpus, wrapped, batch_size)
        for a, b in zip(serial, batched):
            assert _session_bytes(a) == _session_bytes(b)

    def test_batched_adapter_hook(self):
        from repro.abr.batched import as_batched

        wrapped = AttackedPensieve(make_agent(), AttackConfig())
        adapter = as_batched(wrapped)
        assert isinstance(adapter, BatchedAttackedPensieve)
        assert adapter.wrapper is wrapped

    def test_cache_hit_on_rerun(self, video, traces, tmp_path):
        agent = make_agent(seed=45)
        wrapped = AttackedPensieve(agent, AttackConfig(kind="fgsm", eps=0.05))
        cache = ResultCache(tmp_path)
        first = evaluate_protocols(video, traces, {"atk": wrapped}, cache=cache)
        misses = cache.misses
        # Fresh wrapper instance: keys must depend on content, not identity.
        again = evaluate_protocols(
            video, traces,
            {"atk": AttackedPensieve(agent, AttackConfig(kind="fgsm", eps=0.05))},
            cache=cache,
        )
        assert cache.misses == misses  # second pass fully served from cache
        assert first == again

    def test_cache_state_distinguishes_configs_and_surrogates(self):
        agent = make_agent(seed=46)
        other = make_agent(seed=47)
        self_attack = AttackedPensieve(agent, AttackConfig(eps=0.05))
        assert self_attack.__cache_state__()["surrogate"] is None
        transfer = AttackedPensieve(agent, AttackConfig(eps=0.05), surrogate=other)
        assert transfer.__cache_state__()["surrogate"] is other
        assert (
            AttackedPensieve(agent, AttackConfig(eps=0.1)).__cache_state__()
            != self_attack.__cache_state__()
        )

    def test_fingerprint_stable_across_attacked_sessions(self, video, traces):
        """Regression: an attacked run must not change the shared agent's
        cache identity (the flat_grads clobbering bug)."""
        from repro.exec.cache import make_key

        agent = make_agent(seed=48)
        agent.policy.policy_net.flat_grads[:] = 0.25  # leftover training grads
        wrapped = AttackedPensieve(agent, AttackConfig(kind="pgd", steps=3))
        before = make_key("probe", wrapped)
        run_session(video, traces[0], wrapped)
        assert make_key("probe", wrapped) == before
