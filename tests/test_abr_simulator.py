"""Tests for the streaming simulator (repro.abr.simulator)."""

import numpy as np
import pytest

from repro.abr.simulator import (
    BUFFER_CAP_S,
    LINK_RTT_S,
    PACKET_PAYLOAD_PORTION,
    ControlledBandwidth,
    StreamingSession,
    TraceBandwidth,
)
from repro.abr.video import Video
from repro.traces.trace import Trace


@pytest.fixture
def video():
    return Video.synthetic(n_chunks=10, seed=0)


class TestControlledBandwidth:
    def test_download_time_formula(self):
        bw = ControlledBandwidth(2.0)
        size = 1_000_000.0
        expected = size / (2.0 * 1e6 / 8.0 * PACKET_PAYLOAD_PORTION)
        assert bw.download_time(size, 0.0) == pytest.approx(expected)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            ControlledBandwidth(0.0)
        bw = ControlledBandwidth(1.0)
        with pytest.raises(ValueError):
            bw.set_mbps(-1.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ControlledBandwidth(1.0).download_time(-1.0, 0.0)

    def test_zero_byte_download_is_instant(self):
        assert ControlledBandwidth(1.0).download_time(0.0, 0.0) == 0.0


class TestTraceBandwidth:
    def test_constant_trace_matches_controlled(self):
        trace = Trace.constant(3.0, 1000.0)
        tb = TraceBandwidth(trace)
        cb = ControlledBandwidth(3.0)
        size = 500_000.0
        assert tb.download_time(size, 12.3) == pytest.approx(cb.download_time(size, 0.0))

    def test_integration_across_segments(self):
        # 1 Mbps for 1 s then 10 Mbps: first second delivers 118750 bytes.
        trace = Trace.from_steps([1.0, 10.0], 1.0)
        tb = TraceBandwidth(trace, loop=False)
        rate1 = 1e6 / 8.0 * PACKET_PAYLOAD_PORTION
        rate2 = 10e6 / 8.0 * PACKET_PAYLOAD_PORTION
        size = rate1 * 1.0 + rate2 * 0.5  # needs 1s at seg1 + 0.5s at seg2
        assert tb.download_time(size, 0.0) == pytest.approx(1.5)

    def test_looping_wraps(self):
        trace = Trace.from_steps([1.0, 10.0], 1.0)
        tb = TraceBandwidth(trace, loop=True)
        # Starting at t=1.5: half a second at 10, then wraps to 1.
        rate1 = 1e6 / 8.0 * PACKET_PAYLOAD_PORTION
        rate2 = 10e6 / 8.0 * PACKET_PAYLOAD_PORTION
        size = rate2 * 0.5 + rate1 * 0.25
        assert tb.download_time(size, 1.5) == pytest.approx(0.75)

    def test_zero_bandwidth_trace_eventually_errors(self):
        trace = Trace.from_steps([0.0, 0.0], 1.0)
        tb = TraceBandwidth(trace)
        with pytest.raises(RuntimeError):
            tb.download_time(1000.0, 0.0)

    def test_zero_byte_download_is_instant(self):
        trace = Trace.from_steps([0.0, 0.0], 1.0)
        # Even over a dead link a zero-byte download completes immediately.
        assert TraceBandwidth(trace).download_time(0.0, 0.0) == 0.0

    def test_negative_size_rejected(self):
        trace = Trace.constant(3.0, 10.0)
        with pytest.raises(ValueError):
            TraceBandwidth(trace).download_time(-1.0, 0.0)


class TestStreamingSession:
    def test_chunk_accounting(self, video):
        session = StreamingSession(video, ControlledBandwidth(2.0))
        result = session.download_chunk(0)
        assert result.chunk_index == 0
        assert result.bitrate_kbps == 300.0
        expected_dl = (
            video.chunk_size(0, 0) / (2.0 * 1e6 / 8.0 * PACKET_PAYLOAD_PORTION)
            + LINK_RTT_S
        )
        assert result.download_seconds == pytest.approx(expected_dl)

    def test_first_chunk_always_rebuffers(self, video):
        session = StreamingSession(video, ControlledBandwidth(2.0))
        result = session.download_chunk(0)
        # Buffer starts empty, so the whole download is a rebuffer.
        assert result.rebuffer_seconds == pytest.approx(result.download_seconds)

    def test_buffer_grows_by_chunk_duration(self, video):
        session = StreamingSession(video, ControlledBandwidth(10.0))
        r1 = session.download_chunk(0)
        assert r1.buffer_seconds == pytest.approx(video.chunk_seconds)
        r2 = session.download_chunk(0)
        assert r2.buffer_seconds == pytest.approx(
            video.chunk_seconds * 2 - r2.download_seconds
        )

    def test_no_rebuffer_with_ample_buffer(self, video):
        session = StreamingSession(video, ControlledBandwidth(10.0))
        session.download_chunk(0)
        result = session.download_chunk(0)
        assert result.rebuffer_seconds == 0.0

    def test_buffer_cap_triggers_sleep(self):
        video = Video.synthetic(n_chunks=40, seed=1)
        session = StreamingSession(video, ControlledBandwidth(20.0))
        slept = 0.0
        while not session.done:
            slept += session.download_chunk(0).sleep_seconds
        assert slept > 0.0
        assert all(r.buffer_seconds <= BUFFER_CAP_S for r in session.results)

    def test_done_and_overrun(self, video):
        session = StreamingSession(video, ControlledBandwidth(2.0))
        for _ in range(video.n_chunks):
            session.download_chunk(0)
        assert session.done
        with pytest.raises(RuntimeError):
            session.download_chunk(0)

    def test_invalid_quality(self, video):
        session = StreamingSession(video, ControlledBandwidth(2.0))
        with pytest.raises(ValueError):
            session.download_chunk(6)

    def test_observation_fields(self, video):
        session = StreamingSession(video, ControlledBandwidth(2.0))
        obs = session.observation()
        assert obs.last_quality is None
        assert obs.chunks_remaining == video.n_chunks
        assert obs.last_throughput_mbps() == 0.0
        session.download_chunk(3)
        obs = session.observation()
        assert obs.last_quality == 3
        assert obs.chunks_remaining == video.n_chunks - 1
        # Measured throughput should be below raw link rate (RTT overhead).
        assert 0.0 < obs.last_throughput_mbps() < 2.0

    def test_throughput_history_bounded(self, video):
        session = StreamingSession(video, ControlledBandwidth(5.0), history_len=3)
        for _ in range(6):
            session.download_chunk(0)
        assert len(session.observation().throughput_history) == 3

    def test_throughput_history_is_bounded_deque(self, video):
        """Eviction is O(1) via deque(maxlen=...), not list.pop(0); the
        window keeps the most recent samples and observations still
        expose a plain list."""
        from collections import deque

        session = StreamingSession(video, ControlledBandwidth(5.0), history_len=3)
        assert isinstance(session.throughput_history, deque)
        assert session.throughput_history.maxlen == 3
        samples = []
        for _ in range(6):
            result = session.download_chunk(0)
            samples.append((result.size_bytes, result.download_seconds))
        history = session.observation().throughput_history
        assert isinstance(history, list)
        assert history == samples[-3:]

    def test_summary_totals(self, video):
        session = StreamingSession(video, ControlledBandwidth(2.0))
        while not session.done:
            session.download_chunk(1)
        summary = session.summary()
        assert summary.qoe_total == pytest.approx(sum(r.qoe for r in session.results))
        assert summary.qoe_mean == pytest.approx(summary.qoe_total / video.n_chunks)
        assert len(summary.bitrates_kbps) == video.n_chunks

    def test_summary_before_any_chunk_raises(self, video):
        session = StreamingSession(video, ControlledBandwidth(2.0))
        with pytest.raises(RuntimeError):
            session.summary()
