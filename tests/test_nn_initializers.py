"""Tests for weight initializers (repro.nn.initializers)."""

import numpy as np
import pytest

from repro.nn import initializers


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestOrthogonal:
    def test_columns_orthonormal_tall(self, rng):
        w = initializers.orthogonal(rng, 16, 4)
        gram = w.T @ w
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-10)

    def test_rows_orthonormal_wide(self, rng):
        w = initializers.orthogonal(rng, 4, 16)
        gram = w @ w.T
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-10)

    def test_gain_scales(self, rng):
        w = initializers.orthogonal(rng, 8, 8, gain=0.01)
        singular = np.linalg.svd(w, compute_uv=False)
        np.testing.assert_allclose(singular, 0.01, atol=1e-12)

    def test_shape(self, rng):
        assert initializers.orthogonal(rng, 5, 7).shape == (5, 7)


class TestUniformInits:
    def test_glorot_bounds(self, rng):
        w = initializers.glorot_uniform(rng, 10, 20)
        limit = np.sqrt(6.0 / 30.0)
        assert np.all(np.abs(w) <= limit)
        assert w.shape == (10, 20)

    def test_he_bounds(self, rng):
        w = initializers.he_uniform(rng, 10, 20)
        limit = np.sqrt(6.0 / 10.0)
        assert np.all(np.abs(w) <= limit)

    def test_glorot_variance_roughly_correct(self, rng):
        w = initializers.glorot_uniform(rng, 100, 100)
        expected_var = (2.0 * np.sqrt(6.0 / 200.0)) ** 2 / 12.0
        assert w.var() == pytest.approx(expected_var, rel=0.1)

    def test_zeros(self, rng):
        w = initializers.zeros(rng, 3, 4)
        assert np.all(w == 0.0) and w.shape == (3, 4)
