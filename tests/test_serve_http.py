"""End-to-end tests for the HTTP front end (repro.serve.http)."""

import asyncio
import json

import pytest

from repro.abr.video import Video
from repro.serve import (
    CONTENT_BINARY,
    CONTENT_JSON,
    DecisionService,
    HttpServer,
    HttpTransport,
    default_protocols,
    run_loadgen,
)
from repro.traces.random_traces import random_abr_traces


@pytest.fixture(scope="module")
def video():
    return Video.synthetic(n_chunks=6, seed=5)


@pytest.fixture(scope="module")
def traces():
    return random_abr_traces(2, seed=11, n_segments=6)


def run(coro):
    return asyncio.run(coro)


async def _with_server(video, fn, **service_kw):
    service_kw.setdefault("batch_size", 8)
    service = DecisionService(video, default_protocols(), **service_kw)
    server = HttpServer(service)
    await server.start()
    transport = HttpTransport("127.0.0.1", server.port, connections=4)
    try:
        return await fn(server, transport)
    finally:
        await transport.close()
        await server.close()


async def _raw_request(server, payload: bytes,
                       head: str | None = None) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    if head is None:
        head = (
            f"POST /v1/decide HTTP/1.1\r\nHost: x\r\n"
            f"Content-Type: {CONTENT_JSON}\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.readuntil(b"\r\n\r\n")
    status = int(raw.split(b" ", 2)[1])
    length = 0
    for line in raw.decode("latin-1").split("\r\n")[1:]:
        name, _sep, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    writer.close()
    return status, body


class TestEndToEnd:
    @pytest.mark.parametrize("content_type", [CONTENT_JSON, CONTENT_BINARY])
    def test_identity_over_the_wire(self, video, traces, content_type):
        async def fn(server, transport):
            return await run_loadgen(
                transport, video, traces, "mpc", players=4,
                content_type=content_type,
                reference=default_protocols()["mpc"],
            )

        report = run(_with_server(video, fn))
        assert report.errors == 0
        assert report.mismatches == 0
        assert report.requests == 4 * video.n_chunks
        assert report.server_stats["requests"]["errors"] == 0

    def test_stats_and_healthz(self, video, traces):
        async def fn(server, transport):
            await run_loadgen(transport, video, traces, "bb", players=2,
                              fetch_stats=False)
            stats = await transport.fetch_stats()
            health = await _raw_request(
                server, b"", head="GET /healthz HTTP/1.1\r\nHost: x\r\n"
                                  "Connection: close\r\n\r\n")
            return stats, health

        stats, (status, body) = run(_with_server(video, fn))
        assert stats["requests"]["decisions"] == 2 * video.n_chunks
        assert stats["coalescer"]["items"] == 2 * video.n_chunks
        assert status == 200 and json.loads(body) == {"ok": True}


class TestHttpErrors:
    def test_malformed_body_is_400(self, video):
        async def fn(server, transport):
            return await _raw_request(server, b"{not json")

        status, body = run(_with_server(video, fn))
        assert status == 400
        assert json.loads(body)["error"]["status"] == 400

    def test_unknown_path_is_404(self, video):
        async def fn(server, transport):
            return await _raw_request(
                server, b"", head="GET /nope HTTP/1.1\r\nHost: x\r\n"
                                  "Connection: close\r\n\r\n")

        status, body = run(_with_server(video, fn))
        assert status == 404

    def test_wrong_method_is_405(self, video):
        async def fn(server, transport):
            return await _raw_request(
                server, b"", head="GET /v1/decide HTTP/1.1\r\nHost: x\r\n"
                                  "Connection: close\r\n\r\n")

        status, _body = run(_with_server(video, fn))
        assert status == 405

    def test_oversized_body_is_413(self, video):
        async def fn(server, transport):
            head = (
                "POST /v1/decide HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {1 << 21}\r\n\r\n"
            )
            return await _raw_request(server, b"", head=head)

        status, _body = run(_with_server(video, fn))
        assert status == 413


class TestShutdown:
    def test_graceful_close_serves_submitted_work(self, video, traces):
        # The loadgen inside _with_server finishes before close; close must
        # then return without hanging and leave no stray handler tasks.
        async def fn(server, transport):
            report = await run_loadgen(transport, video, traces, "bola",
                                       players=3, fetch_stats=False)
            return report

        report = run(_with_server(video, fn))  # asyncio.run would complain
        assert report.errors == 0              # about lingering tasks

    def test_close_is_idempotent(self, video):
        async def main():
            service = DecisionService(video, default_protocols(), batch_size=4)
            server = HttpServer(service)
            await server.start()
            await server.close()
            await server.close()

        run(main())
