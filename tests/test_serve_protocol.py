"""Tests for the serve wire schema (repro.serve.protocol): both codecs."""

import dataclasses
import json

import numpy as np
import pytest

from repro.abr.simulator import AbrObservation
from repro.serve import (
    CONTENT_BINARY,
    CONTENT_JSON,
    DecisionRequest,
    DecisionResponse,
    ServeError,
    decode_request,
    decode_response,
    encode_error,
    encode_request,
    encode_response,
)

CODECS = (CONTENT_JSON, CONTENT_BINARY)


def fresh_obs(n=6):
    return AbrObservation(
        chunk_index=0, last_quality=None, buffer_seconds=0.0,
        last_chunk_bytes=0.0, last_download_seconds=0.0,
        next_chunk_sizes=np.linspace(1e5, 2e6, n),
        chunks_remaining=10, throughput_history=[],
    )


def midstream_obs(n=6):
    # Awkward floats on purpose: round-tripping must be bitwise.
    return AbrObservation(
        chunk_index=7, last_quality=3, buffer_seconds=11.76543219876,
        last_chunk_bytes=1234567.89012345, last_download_seconds=1.0 / 3.0,
        next_chunk_sizes=np.array([0.1, 1 / 7, np.nextafter(2e6, 3e6), 3e6, 4e6, 5e6]),
        chunks_remaining=3,
        throughput_history=[(1e5, 0.1), (2e5, 1 / 3), (3.3e5, 0.777777777777)],
    )


def assert_obs_equal(a: AbrObservation, b: AbrObservation):
    assert a.chunk_index == b.chunk_index
    assert a.last_quality == b.last_quality
    assert a.buffer_seconds == b.buffer_seconds  # bitwise, not approx
    assert a.last_chunk_bytes == b.last_chunk_bytes
    assert a.last_download_seconds == b.last_download_seconds
    assert a.next_chunk_sizes.tolist() == b.next_chunk_sizes.tolist()
    assert a.chunks_remaining == b.chunks_remaining
    assert list(a.throughput_history) == [tuple(p) for p in b.throughput_history]


class TestRequestRoundTrip:
    @pytest.mark.parametrize("content_type", CODECS)
    def test_fresh_request(self, content_type):
        req = DecisionRequest(session="s-1", observation=fresh_obs(),
                              protocol="mpc", seed=42)
        back = decode_request(encode_request(req, content_type), content_type)
        assert back.session == "s-1"
        assert back.protocol == "mpc"
        assert back.seed == 42
        assert back.close is False
        assert_obs_equal(req.observation, back.observation)

    @pytest.mark.parametrize("content_type", CODECS)
    def test_midstream_request_bitwise(self, content_type):
        req = DecisionRequest(session="p/0", observation=midstream_obs())
        back = decode_request(encode_request(req, content_type), content_type)
        assert back.protocol is None and back.seed is None
        assert_obs_equal(req.observation, back.observation)

    @pytest.mark.parametrize("content_type", CODECS)
    def test_close_request(self, content_type):
        req = DecisionRequest(session="bye", observation=None, close=True)
        back = decode_request(encode_request(req, content_type), content_type)
        assert back.close is True
        assert back.session == "bye"
        assert back.observation is None

    def test_content_type_parameters_ignored(self):
        body = encode_request(DecisionRequest("s", fresh_obs(), protocol="bb"))
        back = decode_request(body, "application/json; charset=utf-8")
        assert back.protocol == "bb"


class TestResponseRoundTrip:
    @pytest.mark.parametrize("content_type", CODECS)
    def test_decision(self, content_type):
        resp = DecisionResponse(session="s", chunk_index=9, quality=4,
                                bitrate_kbps=2850.0)
        back = decode_response(encode_response(resp, content_type), content_type)
        assert back == resp

    @pytest.mark.parametrize("content_type", CODECS)
    def test_closed_ack(self, content_type):
        resp = DecisionResponse(session="s", closed=True)
        back = decode_response(encode_response(resp, content_type), content_type)
        assert back.closed is True and back.session == "s"

    @pytest.mark.parametrize("content_type", CODECS)
    def test_error_frame_raises(self, content_type):
        err = ServeError(409, "out-of-order", "expects chunk 3, got 5")
        with pytest.raises(ServeError) as exc_info:
            decode_response(encode_error(err, content_type), content_type)
        assert exc_info.value.status == 409
        assert exc_info.value.code == "out-of-order"
        assert "chunk 3" in exc_info.value.message


class TestValidation:
    def reject(self, obs, content_type=CONTENT_JSON, session="s", **kw):
        body = encode_request(
            DecisionRequest(session=session, observation=obs, **kw), content_type
        )
        with pytest.raises(ServeError) as exc_info:
            decode_request(body, content_type)
        assert exc_info.value.status == 400
        return exc_info.value

    @pytest.mark.parametrize("content_type", CODECS)
    def test_fresh_start_rules(self, content_type):
        dirty = dataclasses.replace(fresh_obs(), buffer_seconds=4.0)
        err = self.reject(dirty, content_type)
        assert "fresh" in err.message

    @pytest.mark.parametrize("content_type", CODECS)
    def test_midstream_needs_history(self, content_type):
        obs = dataclasses.replace(midstream_obs(), throughput_history=[])
        self.reject(obs, content_type)

    def test_midstream_needs_last_quality(self):
        obs = dataclasses.replace(midstream_obs(), last_quality=None)
        self.reject(obs)

    def test_last_quality_outside_ladder(self):
        obs = dataclasses.replace(midstream_obs(), last_quality=17)
        self.reject(obs)

    def test_nothing_left_to_decide(self):
        obs = dataclasses.replace(midstream_obs(), chunks_remaining=0)
        self.reject(obs)

    def test_session_id_too_long(self):
        self.reject(fresh_obs(), session="x" * 200)

    def test_session_id_empty(self):
        body = json.dumps({"session": "", "observation": {}}).encode()
        with pytest.raises(ServeError):
            decode_request(body)

    def test_nonfinite_floats_rejected(self):
        body = json.dumps({
            "session": "s",
            "observation": {"chunk_index": 0, "buffer_seconds": float("nan")},
        }).encode()
        with pytest.raises(ServeError):
            decode_request(body)

    def test_invalid_json(self):
        with pytest.raises(ServeError) as exc_info:
            decode_request(b"{nope")
        assert exc_info.value.status == 400

    def test_truncated_binary_frame(self):
        body = encode_request(
            DecisionRequest("s", midstream_obs()), CONTENT_BINARY
        )
        with pytest.raises(ServeError):
            decode_request(body[: len(body) // 2], CONTENT_BINARY)

    def test_bad_magic(self):
        with pytest.raises(ServeError):
            decode_request(b"\x00\x01\x02rest", CONTENT_BINARY)

    def test_unsupported_content_type(self):
        with pytest.raises(ServeError) as exc_info:
            decode_request(b"{}", "text/plain")
        assert exc_info.value.status == 415

    def test_body_too_large(self):
        with pytest.raises(ServeError) as exc_info:
            decode_request(b"x" * (1 << 21))
        assert exc_info.value.status == 413
