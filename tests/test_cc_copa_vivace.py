"""Tests for Copa and PCC Vivace (repro.cc.protocols.copa / vivace)."""

import numpy as np
import pytest

from repro.cc import CopaSender, CubicSender, VivaceSender
from repro.cc.metrics import run_sender_on_trace
from repro.cc.packet import AckInfo
from repro.traces.trace import Trace


def run(sender, bw=12.0, lat=40.0, loss=0.0, duration=12.0, seed=1):
    trace = Trace.constant(bw, duration, latency_ms=lat, loss_rate=loss)
    return run_sender_on_trace(sender, trace, seed=seed)


def ack(seq, now, rtt=0.04):
    return AckInfo(seq=seq, now=now, rtt_s=rtt, delivered_bytes=seq * 1500,
                   delivery_rate_bps=1e6, queue_sojourn_s=0.0)


class TestCopaMechanics:
    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            CopaSender(delta=0.0)

    def test_queuing_delay_from_filters(self):
        copa = CopaSender()
        copa.on_ack(ack(0, 0.01, rtt=0.040))
        copa.on_ack(ack(1, 0.02, rtt=0.060))
        assert copa.rtt_min_s == pytest.approx(0.040)
        assert copa.queuing_delay_s() >= 0.0

    def test_window_grows_when_queue_empty(self):
        copa = CopaSender(initial_cwnd=10.0)
        w0 = copa.cwnd
        for i in range(20):
            copa.on_ack(ack(i, 0.01 * (i + 1), rtt=0.040))  # constant rtt: dq=0
        assert copa.cwnd > w0

    def test_window_shrinks_under_heavy_queueing(self):
        copa = CopaSender(initial_cwnd=100.0)
        copa.on_ack(ack(0, 0.01, rtt=0.040))  # establishes rtt_min
        w0 = copa.cwnd
        # Sustained 200 ms RTTs: once the 40 ms sample ages out of the
        # standing window, dq is large and the window must come down.
        for i in range(1, 50):
            copa.on_ack(ack(i, 0.01 + 0.01 * i, rtt=0.200))
        assert copa.cwnd < w0

    def test_velocity_resets_on_timeout(self):
        copa = CopaSender()
        copa.velocity = 16.0
        copa.on_timeout(1.0)
        assert copa.velocity == 1.0
        assert copa.cwnd == 2.0


class TestCopaBehaviour:
    def test_high_utilization_low_delay(self):
        result = run(CopaSender())
        assert result.mean_utilization > 0.9
        assert result.mean_queue_delay_s < 0.030

    def test_loss_tolerant(self):
        """Copa is delay-based: 2% random loss barely dents it."""
        result = run(CopaSender(), loss=0.02)
        assert result.capacity_fraction > 0.85

    def test_keeps_far_less_queue_than_cubic(self):
        copa = run(CopaSender())
        cubic = run(CubicSender())
        assert copa.mean_queue_delay_s < 0.3 * cubic.mean_queue_delay_s


class TestVivaceMechanics:
    def test_utility_prefers_higher_clean_rate(self):
        sender = VivaceSender()
        from repro.cc.protocols.vivace import _MonitorInterval

        low = _MonitorInterval(start=0, duration=0.05, rate_mbps=2.0, acked=10)
        high = _MonitorInterval(start=0, duration=0.05, rate_mbps=8.0, acked=10)
        assert sender._utility(high) > sender._utility(low)

    def test_utility_penalizes_rtt_inflation(self):
        sender = VivaceSender()
        from repro.cc.protocols.vivace import _MonitorInterval

        clean = _MonitorInterval(start=0, duration=0.05, rate_mbps=8.0, acked=10,
                                 first_rtt=0.04, last_rtt=0.04,
                                 first_rtt_time=0.0, last_rtt_time=0.05)
        inflating = _MonitorInterval(start=0, duration=0.05, rate_mbps=8.0, acked=10,
                                     first_rtt=0.04, last_rtt=0.08,
                                     first_rtt_time=0.0, last_rtt_time=0.05)
        assert sender._utility(clean) > sender._utility(inflating)

    def test_gradient_step_confidence_amplifies(self):
        sender = VivaceSender(base_step_mbps=0.5)
        r0 = sender.rate_mbps
        sender._pending = [(r0 * 1.05, 10.0), (r0 * 0.95, 5.0)]
        sender._gradient_step()
        first_step = sender.rate_mbps - r0
        r1 = sender.rate_mbps
        sender._pending = [(r1 * 1.05, 10.0), (r1 * 0.95, 5.0)]
        sender._gradient_step()
        assert sender.rate_mbps - r1 > first_step  # amplified

    def test_rate_bounds_respected(self):
        sender = VivaceSender(initial_rate_mbps=0.3, min_rate_mbps=0.2,
                              base_step_mbps=10.0)
        sender._pending = [(0.32, 0.0), (0.28, 100.0)]  # strong negative gradient
        sender._gradient_step()
        assert sender.rate_mbps >= 0.2

    def test_timeout_halves_rate(self):
        sender = VivaceSender(initial_rate_mbps=8.0)
        sender.on_timeout(1.0)
        assert sender.rate_mbps == pytest.approx(4.0)


class TestVivaceBehaviour:
    def test_reaches_high_utilization(self):
        result = run(VivaceSender(), duration=15.0)
        assert result.mean_utilization > 0.8

    def test_loss_tolerant_unlike_cubic(self):
        vivace = run(VivaceSender(), loss=0.02, duration=15.0)
        cubic = run(CubicSender(), loss=0.02, duration=15.0)
        assert vivace.capacity_fraction > 2.0 * cubic.capacity_fraction

    def test_monitor_intervals_scored(self):
        sender = VivaceSender()
        run_sender_on_trace(
            sender, Trace.constant(12.0, 5.0, latency_ms=40.0, loss_rate=0.0)
        )
        assert len(sender.utility_log) > 10
