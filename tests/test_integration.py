"""End-to-end integration: the paper's full loop at miniature scale.

These tests exercise the whole system -- adversary training, trace
generation, replay, and robustification -- with budgets small enough for
CI but large enough that the *direction* of every effect is real.
"""

import numpy as np
import pytest

from repro.abr.protocols import BufferBased, MPC, run_session

pytestmark = pytest.mark.slow
from repro.abr.video import Video
from repro.adversary import (
    generate_abr_traces,
    rollout_cc_adversary,
    train_abr_adversary,
    train_cc_adversary,
)
from repro.adversary.abr_env import default_abr_adversary_config
from repro.cc import BBRSender
from repro.cc.metrics import run_sender_on_trace
from repro.rl.ppo import PPOConfig
from repro.traces.random_traces import random_abr_traces


@pytest.fixture(scope="module")
def video():
    return Video.synthetic(n_chunks=24, seed=3)


class TestAbrAttackLoop:
    @pytest.fixture(scope="class")
    def trained(self, request):
        video = Video.synthetic(n_chunks=24, seed=3)
        cfg = default_abr_adversary_config()
        cfg.ent_coef = 0.003
        result = train_abr_adversary(
            BufferBased(), video, total_steps=12_000, seed=0, config=cfg
        )
        return video, result

    def test_adversary_reward_increases(self, trained):
        _video, result = trained
        early = np.mean([h["mean_episode_reward"] for h in result.history[:3]])
        late = np.mean([h["mean_episode_reward"] for h in result.history[-3:]])
        assert late > early

    def test_adversarial_traces_beat_random_baseline(self, trained):
        """The core claim: learned traces hurt the target more than random."""
        video, result = trained
        rolls = generate_abr_traces(result.trainer, result.env, 10)
        adv = np.mean([
            run_session(video, r.trace, BufferBased(), chunk_indexed=True).qoe_mean
            for r in rolls
        ])
        rand = np.mean([
            run_session(video, t, BufferBased(), chunk_indexed=True).qoe_mean
            for t in random_abr_traces(10, seed=9, n_segments=video.n_chunks)
        ])
        assert adv < rand

    def test_regret_is_positive_on_adversarial_traces(self, trained):
        """Good performance is attainable on the traces (non-trivial examples)."""
        from repro.abr.protocols import optimal_plan_dp

        video, result = trained
        roll = generate_abr_traces(result.trainer, result.env, 1)[0]
        opt, _ = optimal_plan_dp(video, roll.trace.bandwidths_mbps)
        bb = run_session(video, roll.trace, BufferBased(), chunk_indexed=True)
        assert opt > bb.qoe_total


class TestCcAttackLoop:
    def test_adversary_hurts_bbr_more_than_midpoint_conditions(self):
        cfg = PPOConfig(n_steps=1024, batch_size=128, n_epochs=4,
                        learning_rate=5e-4, ent_coef=0.002, hidden=(4,),
                        init_log_std=-0.7, gamma=0.997, gae_lambda=0.97)
        result = train_cc_adversary(
            BBRSender, total_steps=20_000, seed=1,
            episode_intervals=500, config=cfg,
        )
        roll = rollout_cc_adversary(result.trainer, result.env)
        # Steady mid-range conditions let BBR reach ~full utilization.
        from repro.traces.trace import Trace

        steady = Trace.constant(15.0, 15.0, latency_ms=37.5, loss_rate=0.0)
        honest = run_sender_on_trace(BBRSender(), steady, seed=3)
        assert roll.capacity_fraction < honest.capacity_fraction - 0.1

    def test_recorded_cc_trace_replays_the_damage(self):
        cfg = PPOConfig(n_steps=1024, batch_size=128, n_epochs=4,
                        learning_rate=5e-4, ent_coef=0.002, hidden=(4,),
                        init_log_std=-0.7, gamma=0.997, gae_lambda=0.97)
        result = train_cc_adversary(
            BBRSender, total_steps=20_000, seed=2,
            episode_intervals=500, config=cfg,
        )
        roll = rollout_cc_adversary(result.trainer, result.env)
        replay = run_sender_on_trace(BBRSender(), roll.trace, seed=11)
        assert replay.capacity_fraction < 0.95
        # Replay lands in the same ballpark as the online run.
        assert abs(replay.capacity_fraction - roll.capacity_fraction) < 0.35


class TestTargetedness:
    def test_anti_mpc_traces_are_targeted(self):
        """A short anti-MPC training already separates MPC from BB."""
        video = Video.synthetic(n_chunks=24, seed=3)
        cfg = default_abr_adversary_config()
        cfg.ent_coef = 0.003
        result = train_abr_adversary(
            MPC(robust=False), video, total_steps=25_000, seed=0, config=cfg
        )
        rolls = generate_abr_traces(result.trainer, result.env, 10)
        mpc_q = np.mean([
            run_session(video, r.trace, MPC(robust=False), chunk_indexed=True).qoe_mean
            for r in rolls
        ])
        bb_q = np.mean([
            run_session(video, r.trace, BufferBased(), chunk_indexed=True).qoe_mean
            for r in rolls
        ])
        assert mpc_q < bb_q + 0.3  # targeted: MPC is not clearly better
