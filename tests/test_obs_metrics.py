"""Tests for the metrics recorder (repro.obs.metrics)."""

import json

import pytest

from repro.obs import (
    METRICS_FILENAME,
    MetricsRecorder,
    NullRecorder,
    NULL_RECORDER,
    Timer,
)

#: Required keys of every JSONL event and their accepted types.
SCHEMA = {
    "kind": str,
    "name": str,
    "value": float,
    "step": (int, type(None)),
    "t": float,
}
KINDS = {"metric", "counter", "timer", "event"}


def read_events(log_dir):
    lines = (log_dir / METRICS_FILENAME).read_text().splitlines()
    return [json.loads(line) for line in lines]


def assert_schema(event):
    for key, types in SCHEMA.items():
        assert key in event, f"event missing {key!r}: {event}"
        assert isinstance(event[key], types), f"bad type for {key!r}: {event}"
    assert event["kind"] in KINDS


class TestInMemory:
    def test_record_builds_series(self):
        rec = MetricsRecorder()
        rec.record("loss", 1.5, step=0)
        rec.record("loss", 1.0, step=10)
        assert rec.series["loss"] == [(0, 1.5), (10, 1.0)]
        assert rec.values("loss") == [1.5, 1.0]
        assert rec.last("loss") == 1.0
        assert rec.last("missing", default=-1.0) == -1.0

    def test_record_dict_filters_non_numeric(self):
        rec = MetricsRecorder()
        rec.record_dict(
            {"a": 1, "b": 2.5, "skip": "text", "flag": True}, step=3, prefix="p/"
        )
        assert rec.values("p/a") == [1.0]
        assert rec.values("p/b") == [2.5]
        assert rec.values("p/flag") == [1.0]
        assert "p/skip" not in rec.series

    def test_counters_accumulate(self):
        rec = MetricsRecorder()
        rec.count("hits")
        rec.count("hits", 4)
        assert rec.counters["hits"] == 5

    def test_timer_records_elapsed(self):
        rec = MetricsRecorder()
        with rec.timer("phase_seconds") as t:
            pass
        assert t.elapsed >= 0.0
        assert rec.values("phase_seconds") == [t.elapsed]

    def test_standalone_timer(self):
        with Timer() as t:
            pass
        assert t.elapsed >= 0.0


class TestJsonl:
    def test_every_line_matches_schema(self, tmp_path):
        with MetricsRecorder(tmp_path) as rec:
            rec.record("loss", 0.5, step=1)
            rec.count("tasks", 3, pool="abc")
            with rec.timer("map_seconds", workers=2):
                pass
            rec.event("phase_change", phase="train")
        events = read_events(tmp_path)
        assert len(events) == 4
        for event in events:
            assert_schema(event)
        assert [e["kind"] for e in events] == ["metric", "counter", "timer", "event"]

    def test_tags_inlined(self, tmp_path):
        with MetricsRecorder(tmp_path) as rec:
            rec.record("qoe", 1.0, protocol="bb")
        (event,) = read_events(tmp_path)
        assert event["protocol"] == "bb"

    def test_appends_across_recorders(self, tmp_path):
        with MetricsRecorder(tmp_path) as rec:
            rec.record("a", 1.0)
        with MetricsRecorder(tmp_path) as rec:
            rec.record("b", 2.0)
        assert [e["name"] for e in read_events(tmp_path)] == ["a", "b"]

    def test_counter_logs_running_total(self, tmp_path):
        with MetricsRecorder(tmp_path) as rec:
            rec.count("hits", 2)
            rec.count("hits", 3)
        assert [e["value"] for e in read_events(tmp_path)] == [2.0, 5.0]


class TestNullRecorder:
    def test_records_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rec = NullRecorder()
        rec.record("loss", 1.0, step=0)
        rec.record_dict({"a": 1.0})
        rec.count("hits")
        with rec.timer("seconds"):
            pass
        rec.event("marker")
        rec.flush()
        rec.close()
        assert rec.series == {}
        assert rec.counters == {}
        assert not rec.enabled
        assert list(tmp_path.iterdir()) == []  # no file, no directory

    def test_shared_instance_is_null(self):
        assert isinstance(NULL_RECORDER, NullRecorder)
        assert NULL_RECORDER.timer("x").elapsed == 0.0


class TestResolve:
    def test_false_is_null(self):
        assert MetricsRecorder.resolve(False) is NULL_RECORDER

    def test_instance_passes_through(self):
        rec = MetricsRecorder()
        assert MetricsRecorder.resolve(rec) is rec

    def test_none_defers_to_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_DIR", raising=False)
        assert MetricsRecorder.resolve(None) is NULL_RECORDER
        monkeypatch.setenv("REPRO_LOG_DIR", str(tmp_path / "logs"))
        rec = MetricsRecorder.resolve(None)
        try:
            assert rec.log_dir == tmp_path / "logs"
        finally:
            rec.close()

    def test_path_builds_recorder(self, tmp_path):
        with MetricsRecorder.resolve(tmp_path / "run") as rec:
            rec.record("x", 1.0)
        assert (tmp_path / "run" / METRICS_FILENAME).exists()


class TestRecorderObservesExec:
    def test_parallel_map_metrics(self, tmp_path):
        from repro.exec import ParallelMap

        rec = MetricsRecorder()
        with ParallelMap(n_workers=0, recorder=rec) as runner:
            assert runner.map(abs, [-1, 2, -3]) == [1, 2, 3]
        assert rec.counters["exec/tasks"] == 3
        assert len(rec.values("exec/map_seconds")) == 1

    def test_cache_metrics(self, tmp_path):
        from repro.exec import ParallelMap, ResultCache, cached_map

        cache = ResultCache(tmp_path / "cache")
        with ParallelMap(n_workers=0) as runner:
            cached_map(abs, [-1, -2], runner, cache=cache, keys=["k1", "k2"])
            cached_map(abs, [-1, -2], runner, cache=cache, keys=["k1", "k2"])
        rec = MetricsRecorder()
        cache.record_metrics(rec)
        assert rec.last("cache/hits") == 2.0
        assert rec.last("cache/misses") == 2.0
        assert rec.last("cache/hit_rate") == pytest.approx(0.5)
