"""Tests for random traces and trace I/O (repro.traces.random_traces / io)."""

import numpy as np
import pytest

from repro.traces.io import (
    from_mahimahi_lines,
    load_corpus,
    save_corpus,
    to_mahimahi_lines,
)
from repro.traces.random_traces import (
    ABR_BW_RANGE_MBPS,
    CC_BW_RANGE_MBPS,
    CC_LATENCY_RANGE_MS,
    CC_LOSS_RANGE,
    random_abr_trace,
    random_abr_traces,
    random_cc_trace,
    random_cc_traces,
)


class TestRandomAbrTraces:
    def test_within_action_space(self):
        t = random_abr_trace(np.random.default_rng(0))
        assert np.all(t.bandwidths_mbps >= ABR_BW_RANGE_MBPS[0])
        assert np.all(t.bandwidths_mbps <= ABR_BW_RANGE_MBPS[1])

    def test_chunk_granularity(self):
        t = random_abr_trace(np.random.default_rng(0), n_segments=48, step_seconds=4.0)
        assert len(t) == 48
        assert t.duration == pytest.approx(192.0)

    def test_corpus_distinct_and_seeded(self):
        a = random_abr_traces(5, seed=1)
        b = random_abr_traces(5, seed=1)
        assert not np.array_equal(a[0].bandwidths_mbps, a[1].bandwidths_mbps)
        np.testing.assert_array_equal(a[2].bandwidths_mbps, b[2].bandwidths_mbps)


class TestRandomCcTraces:
    def test_within_table1_ranges(self):
        t = random_cc_trace(np.random.default_rng(0), n_segments=200)
        assert np.all(t.bandwidths_mbps >= CC_BW_RANGE_MBPS[0])
        assert np.all(t.bandwidths_mbps <= CC_BW_RANGE_MBPS[1])
        assert np.all(t.latencies_ms >= CC_LATENCY_RANGE_MS[0])
        assert np.all(t.latencies_ms <= CC_LATENCY_RANGE_MS[1])
        assert np.all(t.loss_rates >= CC_LOSS_RANGE[0])
        assert np.all(t.loss_rates <= CC_LOSS_RANGE[1])

    def test_30ms_granularity(self):
        t = random_cc_trace(np.random.default_rng(0), n_segments=1000)
        assert t.duration == pytest.approx(30.0)

    def test_corpus_count(self):
        assert len(random_cc_traces(3, n_segments=10)) == 3


class TestCorpusIO:
    def test_roundtrip(self, tmp_path):
        traces = random_cc_traces(4, seed=0, n_segments=20)
        path = tmp_path / "corpus.jsonl"
        save_corpus(traces, path)
        restored = load_corpus(path)
        assert len(restored) == 4
        for a, b in zip(traces, restored):
            np.testing.assert_allclose(a.bandwidths_mbps, b.bandwidths_mbps)
            np.testing.assert_allclose(a.loss_rates, b.loss_rates)
            assert a.name == b.name


class TestMahimahiFormat:
    def test_constant_rate_packet_count(self):
        from repro.traces.trace import Trace

        # 12 Mbps for 1 second = 1000 packets of 12000 bits.
        t = Trace.constant(12.0, 1.0)
        lines = to_mahimahi_lines(t)
        assert len(lines) == 1000
        assert lines == sorted(lines)

    def test_roundtrip_recovers_rate(self):
        from repro.traces.trace import Trace

        t = Trace.constant(6.0, 2.0)
        restored = from_mahimahi_lines(to_mahimahi_lines(t), bin_ms=1000)
        np.testing.assert_allclose(restored.bandwidths_mbps, 6.0, rtol=0.01)

    def test_empty_schedule_raises(self):
        with pytest.raises(ValueError):
            from_mahimahi_lines([])

    def test_unsorted_schedule_raises(self):
        with pytest.raises(ValueError):
            from_mahimahi_lines([5, 3])
