"""Tests for the CC adversary environment (repro.adversary.cc_env)."""

import numpy as np
import pytest

from repro.adversary.cc_env import (
    CC_ACTION_RANGES,
    CcAdversaryEnv,
    train_cc_adversary,
)
from repro.cc import BBRSender, CubicSender
from repro.rl.ppo import PPOConfig


@pytest.fixture
def env():
    return CcAdversaryEnv(BBRSender, episode_intervals=20, seed=0)


class TestTable1ActionSpace:
    def test_ranges_match_paper(self):
        assert CC_ACTION_RANGES["bandwidth_mbps"] == (6.0, 24.0)
        assert CC_ACTION_RANGES["latency_ms"] == (15.0, 60.0)
        assert CC_ACTION_RANGES["loss_rate"] == (0.0, 0.10)

    def test_action_mapping_clips_into_table1(self, env):
        bw, lat, loss = env.action_to_conditions(np.array([10.0, -10.0, 0.0]))
        assert bw == 24.0
        assert lat == 15.0
        assert loss == pytest.approx(0.05)

    def test_interval_is_30ms(self, env):
        assert env.interval_s == pytest.approx(0.030)


class TestEpisode:
    def test_observation_is_two_dimensional(self, env):
        obs = env.reset()
        assert obs.shape == (2,)
        obs2, *_ = env.step(np.zeros(3))
        assert obs2.shape == (2,)

    def test_episode_length(self, env):
        env.reset()
        steps = 0
        done = False
        while not done:
            _o, _r, done, _i = env.step(np.zeros(3))
            steps += 1
        assert steps == 20

    def test_step_before_reset_raises(self):
        env = CcAdversaryEnv(BBRSender, episode_intervals=5)
        with pytest.raises(RuntimeError):
            env.step(np.zeros(3))

    def test_invalid_episode_length(self):
        with pytest.raises(ValueError):
            CcAdversaryEnv(BBRSender, episode_intervals=0)

    def test_fresh_sender_each_episode(self, env):
        env.reset()
        first = env.sender
        env.reset()
        assert env.sender is not first

    def test_logs_populated(self, env):
        env.reset()
        env.step(np.array([0.5, -0.5, -1.0]))
        assert len(env.action_log) == 1
        bw, lat, loss = env.condition_log[0]
        assert 6.0 <= bw <= 24.0 and 15.0 <= lat <= 60.0 and 0.0 <= loss <= 0.1

    def test_works_with_other_senders(self):
        env = CcAdversaryEnv(CubicSender, episode_intervals=5)
        env.reset()
        _o, r, _d, _i = env.step(np.zeros(3))
        assert np.isfinite(r)


class TestRewardStructure:
    def test_reward_formula(self, env):
        """reward = 1 - U - L - 0.01 * S (section 4)."""
        env.reset()
        _o, reward, _d, info = env.step(np.array([0.0, 0.0, 0.5]))
        expected = (
            1.0
            - info["utilization"]
            - info["loss_rate"]
            - 0.01 * info["smoothing"]
        )
        assert reward == pytest.approx(expected)

    def test_full_loss_choice_is_costly(self, env):
        """Choosing max loss costs the adversary 0.1 per step, deterring
        the trivial drop-everything attack."""
        env.reset()
        _o, _r, _d, info = env.step(np.array([0.0, 0.0, 1.0]))
        assert info["loss_rate"] == pytest.approx(0.10)

    def test_utilization_in_unit_range(self, env):
        env.reset()
        done = False
        while not done:
            _o, _r, done, info = env.step(np.zeros(3))
            assert 0.0 <= info["utilization"] <= 1.0


class TestTraining:
    def test_short_training_runs(self):
        cfg = PPOConfig(n_steps=64, batch_size=32, hidden=(4,))
        result = train_cc_adversary(
            BBRSender, total_steps=128, seed=0, config=cfg, episode_intervals=32
        )
        assert result.trainer.total_steps == 128
        assert len(result.history) == 2
