"""Tests for optimizers (repro.nn.optim)."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, RMSProp, clip_grad_norm


def quadratic_descent(optimizer_factory, steps=200):
    """Minimize ||x - 3||^2 from x=0; return final parameter."""
    x = np.zeros(4)
    opt = optimizer_factory([x])
    for _ in range(steps):
        grad = 2.0 * (x - 3.0)
        opt.step([grad])
    return x


class TestOptimizers:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda p: SGD(p, lr=0.1),
            lambda p: SGD(p, lr=0.05, momentum=0.9),
            lambda p: RMSProp(p, lr=0.05),
            lambda p: Adam(p, lr=0.1),
        ],
        ids=["sgd", "sgd-momentum", "rmsprop", "adam"],
    )
    def test_converges_on_quadratic(self, factory):
        x = quadratic_descent(factory)
        np.testing.assert_allclose(x, 3.0, atol=0.05)

    def test_updates_in_place(self):
        x = np.zeros(2)
        opt = Adam([x], lr=0.1)
        opt.step([np.ones(2)])
        assert np.all(x != 0.0)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], lr=0.0)
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], lr=-1.0)

    def test_bad_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], lr=0.1, momentum=1.0)

    def test_gradient_count_mismatch_raises(self):
        opt = Adam([np.zeros(1), np.zeros(2)], lr=0.1)
        with pytest.raises(ValueError):
            opt.step([np.zeros(1)])

    def test_adam_bias_correction_first_step(self):
        # After one step with constant gradient g, Adam moves by ~lr*sign(g).
        x = np.zeros(1)
        opt = Adam([x], lr=0.1)
        opt.step([np.array([4.0])])
        np.testing.assert_allclose(x, -0.1, atol=1e-6)


class TestClipGradNorm:
    def test_noop_below_threshold(self):
        g = [np.array([0.3, 0.4])]  # norm 0.5
        norm = clip_grad_norm(g, 1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(g[0], [0.3, 0.4])

    def test_scales_above_threshold(self):
        g = [np.array([3.0, 4.0])]  # norm 5
        norm = clip_grad_norm(g, 1.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(np.linalg.norm(g[0]), 1.0, atol=1e-9)

    def test_global_norm_across_arrays(self):
        g = [np.array([3.0]), np.array([4.0])]
        clip_grad_norm(g, 1.0)
        total = np.sqrt(sum(float(np.sum(a * a)) for a in g))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_zero_max_norm_disables_clipping(self):
        g = [np.array([10.0])]
        clip_grad_norm(g, 0.0)
        np.testing.assert_allclose(g[0], [10.0])
