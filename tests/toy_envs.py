"""Tiny environments used by the RL trainer tests."""

from __future__ import annotations

import numpy as np

from repro.rl.env import Env
from repro.rl.spaces import Box, Discrete


class MatchParityEnv(Env):
    """Reward 1 when the discrete action equals the observed bit."""

    observation_space = Box([0.0], [1.0])
    action_space = Discrete(2)

    def __init__(self, episode_len: int = 16) -> None:
        self.episode_len = episode_len
        self._rng = np.random.default_rng(0)
        self._t = 0
        self._state = 0

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        self._t = 0
        self._state = int(self._rng.integers(2))
        return np.array([float(self._state)])

    def step(self, action):
        reward = 1.0 if int(action) == self._state else 0.0
        self._t += 1
        self._state = int(self._rng.integers(2))
        return np.array([float(self._state)]), reward, self._t >= self.episode_len, {}


class TargetPointEnv(Env):
    """Continuous control: reward = -|action - target|; constant obs."""

    observation_space = Box([0.0], [1.0])
    action_space = Box([-1.0], [1.0])

    def __init__(self, target: float = 0.5, episode_len: int = 8) -> None:
        self.target = target
        self.episode_len = episode_len
        self._t = 0

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        self._t = 0
        return np.array([0.5])

    def step(self, action):
        clipped = self.action_space.clip(action)
        reward = -abs(float(np.ravel(clipped)[0]) - self.target)
        self._t += 1
        return np.array([0.5]), reward, self._t >= self.episode_len, {}
