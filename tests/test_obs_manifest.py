"""Tests for run manifests (repro.obs.manifest)."""

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.obs import RunManifest
from repro.obs.manifest import MANIFEST_FILENAME, _jsonable, git_revision


class TestFingerprint:
    def test_deterministic_for_fixed_inputs(self):
        a = RunManifest.create("train-abr", {"steps": 100, "target": "bb"}, seed=7)
        b = RunManifest.create("train-abr", {"steps": 100, "target": "bb"}, seed=7)
        assert a.fingerprint() == b.fingerprint()

    def test_config_change_changes_fingerprint(self):
        base = RunManifest.create("train-abr", {"steps": 100}, seed=7)
        other = RunManifest.create("train-abr", {"steps": 200}, seed=7)
        assert base.fingerprint() != other.fingerprint()

    def test_seed_change_changes_fingerprint(self):
        a = RunManifest.create("train-abr", {"steps": 100}, seed=7)
        b = RunManifest.create("train-abr", {"steps": 100}, seed=8)
        assert a.fingerprint() != b.fingerprint()

    def test_provenance_excluded(self):
        a = RunManifest.create("cmd", {"x": 1}, seed=0)
        b = dataclasses.replace(
            a, platform="other-os", python="0.0", numpy="0.0",
            git_sha="deadbeef", started_at=0.0,
        )
        assert a.fingerprint() == b.fingerprint()

    def test_key_order_irrelevant(self):
        a = RunManifest("cmd", {"a": 1, "b": 2})
        b = RunManifest("cmd", {"b": 2, "a": 1})
        assert a.fingerprint() == b.fingerprint()


class TestSeedEntropy:
    def test_matches_seed_sequence(self):
        manifest = RunManifest.create("cmd", seed=1234)
        assert manifest.seed_entropy == int(np.random.SeedSequence(1234).entropy)

    def test_unseeded_is_none(self):
        assert RunManifest.create("cmd").seed_entropy is None


class TestJsonable:
    def test_numpy_and_paths(self):
        out = _jsonable({
            "i": np.int64(3),
            "f": np.float64(0.5),
            "arr": np.arange(2),
            "path": Path("/tmp/x"),
            "nested": {"t": (1, 2)},
        })
        assert out == {
            "i": 3, "f": 0.5, "arr": [0, 1], "path": "/tmp/x",
            "nested": {"t": [1, 2]},
        }
        json.dumps(out)  # round-trippable

    def test_unknown_objects_fall_back_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert _jsonable({"o": Opaque()}) == {"o": "<opaque>"}


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        manifest = RunManifest.create("evaluate-abr", {"traces": "x.jsonl"}, seed=3)
        path = manifest.write(tmp_path / "run")
        assert path == tmp_path / "run" / MANIFEST_FILENAME
        loaded = RunManifest.read(tmp_path / "run")
        assert loaded["command"] == "evaluate-abr"
        assert loaded["config"] == {"traces": "x.jsonl"}
        assert loaded["fingerprint"] == manifest.fingerprint()
        assert loaded["seed_entropy"] == 3
        assert "python" in loaded and "numpy" in loaded and "platform" in loaded


class TestGitRevision:
    def test_inside_checkout(self):
        sha = git_revision(Path(__file__).resolve().parent)
        # The repo under test is a git checkout; elsewhere None is fine.
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_outside_checkout(self, tmp_path):
        assert git_revision(tmp_path) is None
