"""Tests for adversarial trace generation (repro.adversary.generation)."""

import numpy as np
import pytest

from repro.abr.protocols import BufferBased, run_session
from repro.abr.video import Video
from repro.adversary import (
    generate_abr_traces,
    generate_cc_traces,
    rollout_abr_adversary,
    rollout_cc_adversary,
    train_abr_adversary,
    train_cc_adversary,
)
from repro.cc import BBRSender
from repro.rl.ppo import PPOConfig


@pytest.fixture(scope="module")
def abr_setup():
    video = Video.synthetic(n_chunks=10, seed=0)
    cfg = PPOConfig(n_steps=64, batch_size=32, hidden=(8,))
    result = train_abr_adversary(BufferBased(), video, total_steps=128, seed=0, config=cfg)
    return video, result


@pytest.fixture(scope="module")
def cc_setup():
    cfg = PPOConfig(n_steps=64, batch_size=32, hidden=(4,))
    return train_cc_adversary(BBRSender, total_steps=128, seed=0, config=cfg,
                              episode_intervals=25)


class TestAbrGeneration:
    def test_trace_has_one_segment_per_chunk(self, abr_setup):
        video, result = abr_setup
        roll = rollout_abr_adversary(result.trainer, result.env)
        assert len(roll.trace) == video.n_chunks
        assert roll.trace.duration == pytest.approx(video.duration)

    def test_trace_within_action_space(self, abr_setup):
        _video, result = abr_setup
        roll = rollout_abr_adversary(result.trainer, result.env)
        assert np.all(roll.trace.bandwidths_mbps >= 0.8)
        assert np.all(roll.trace.bandwidths_mbps <= 4.8)

    def test_deterministic_rollouts_identical(self, abr_setup):
        _video, result = abr_setup
        a = rollout_abr_adversary(result.trainer, result.env, deterministic=True)
        b = rollout_abr_adversary(result.trainer, result.env, deterministic=True)
        np.testing.assert_array_equal(a.trace.bandwidths_mbps, b.trace.bandwidths_mbps)

    def test_stochastic_rollouts_differ(self, abr_setup):
        _video, result = abr_setup
        a = rollout_abr_adversary(result.trainer, result.env, deterministic=False)
        b = rollout_abr_adversary(result.trainer, result.env, deterministic=False)
        assert not np.array_equal(a.trace.bandwidths_mbps, b.trace.bandwidths_mbps)

    def test_replaying_trace_reproduces_target_qoe(self, abr_setup):
        """Core claim of section 2.1: recorded traces reproduce the result
        without re-running the adversary."""
        video, result = abr_setup
        roll = rollout_abr_adversary(result.trainer, result.env)
        replay = run_session(video, roll.trace, BufferBased(), chunk_indexed=True)
        assert replay.qoe_mean == pytest.approx(roll.target_qoe_mean, abs=1e-9)

    def test_corpus_generation(self, abr_setup):
        _video, result = abr_setup
        rolls = generate_abr_traces(result.trainer, result.env, 3)
        assert len(rolls) == 3
        assert len({r.trace.name for r in rolls}) == 3
        with pytest.raises(ValueError):
            generate_abr_traces(result.trainer, result.env, 0)


class TestCcGeneration:
    def test_trace_carries_all_three_schedules(self, cc_setup):
        roll = rollout_cc_adversary(cc_setup.trainer, cc_setup.env)
        assert roll.trace.latencies_ms is not None
        assert roll.trace.loss_rates is not None
        assert len(roll.trace) == 25

    def test_trace_within_table1(self, cc_setup):
        roll = rollout_cc_adversary(cc_setup.trainer, cc_setup.env)
        t = roll.trace
        assert np.all((t.bandwidths_mbps >= 6.0) & (t.bandwidths_mbps <= 24.0))
        assert np.all((t.latencies_ms >= 15.0) & (t.latencies_ms <= 60.0))
        assert np.all((t.loss_rates >= 0.0) & (t.loss_rates <= 0.10))

    def test_raw_actions_recorded(self, cc_setup):
        roll = rollout_cc_adversary(cc_setup.trainer, cc_setup.env, deterministic=True)
        assert roll.raw_actions.shape == (25, 3)

    def test_capacity_fraction_consistent(self, cc_setup):
        roll = rollout_cc_adversary(cc_setup.trainer, cc_setup.env)
        throughput = np.mean([s.throughput_mbps for s in roll.intervals])
        capacity = np.mean([s.bandwidth_mbps for s in roll.intervals])
        assert roll.capacity_fraction == pytest.approx(throughput / capacity)

    def test_corpus_generation(self, cc_setup):
        rolls = generate_cc_traces(cc_setup.trainer, cc_setup.env, 2)
        assert len(rolls) == 2
        with pytest.raises(ValueError):
            generate_cc_traces(cc_setup.trainer, cc_setup.env, -1)
