"""Tests for QoE metrics (repro.abr.qoe)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.qoe import QoEWeights, chunk_qoe, video_qoe


class TestChunkQoE:
    def test_linear_formula(self):
        # q = R - 4.3*T - |R - R_prev| with R in Mbps.
        value = chunk_qoe(1850.0, 0.5, 750.0)
        assert value == pytest.approx(1.85 - 4.3 * 0.5 - (1.85 - 0.75))

    def test_first_chunk_has_no_smoothness_term(self):
        assert chunk_qoe(4300.0, 0.0, None) == pytest.approx(4.3)

    def test_negative_rebuffer_rejected(self):
        with pytest.raises(ValueError):
            chunk_qoe(300.0, -0.1, None)

    def test_log_metric(self):
        w = QoEWeights(metric="log")
        assert w.quality(300.0) == pytest.approx(0.0)
        assert w.quality(1200.0) == pytest.approx(np.log(4.0))

    def test_hd_metric_table(self):
        w = QoEWeights(metric="hd")
        assert w.quality(300) == 1.0
        assert w.quality(4300) == 20.0
        with pytest.raises(ValueError):
            w.quality(999.0)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            QoEWeights(metric="nope").quality(300.0)


class TestVideoQoE:
    def test_matches_paper_formula(self):
        """QoE_lin = sum R_i - 4.3 sum T_i - sum |R_i - R_{i+1}| (section 3)."""
        bitrates = [300.0, 1200.0, 750.0]
        rebufs = [1.0, 0.0, 0.25]
        r = [b / 1000.0 for b in bitrates]
        expected = (
            sum(r)
            - 4.3 * sum(rebufs)
            - (abs(r[0] - r[1]) + abs(r[1] - r[2]))
        )
        total, mean = video_qoe(bitrates, rebufs)
        assert total == pytest.approx(expected)
        assert mean == pytest.approx(expected / 3.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            video_qoe([300.0], [0.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            video_qoe([], [])

    @given(
        st.lists(st.sampled_from([300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0]),
                 min_size=1, max_size=20)
    )
    @settings(max_examples=40, deadline=None)
    def test_constant_bitrate_no_rebuffer_gives_rate_sum(self, bitrates):
        """With no rebuffering, steady playback at R scores n*R Mbps."""
        total, mean = video_qoe(bitrates, [0.0] * len(bitrates))
        switching = sum(
            abs(a - b) / 1000.0 for a, b in zip(bitrates, bitrates[1:])
        )
        expected = sum(bitrates) / 1000.0 - switching
        assert total == pytest.approx(expected)

    @given(st.floats(0.0, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_rebuffering_strictly_hurts(self, rebuf):
        clean, _ = video_qoe([1200.0, 1200.0], [0.0, 0.0])
        dirty, _ = video_qoe([1200.0, 1200.0], [0.0, rebuf])
        assert dirty == pytest.approx(clean - 4.3 * rebuf)
