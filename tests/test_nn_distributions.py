"""Tests for action distributions (repro.nn.distributions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.distributions import Categorical, DiagGaussian

finite_floats = st.floats(-5.0, 5.0, allow_nan=False)


class TestCategorical:
    def test_probs_sum_to_one(self):
        d = Categorical(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(d.probs.sum(axis=-1), 1.0)

    def test_log_prob_matches_probs(self):
        d = Categorical(np.array([[0.5, -1.0, 2.0]]))
        a = np.array([2])
        np.testing.assert_allclose(np.exp(d.log_prob(a)), d.probs[0, 2])

    def test_mode_is_argmax(self):
        d = Categorical(np.array([[0.1, 5.0, 0.2], [3.0, 0.0, 0.0]]))
        np.testing.assert_array_equal(d.mode(), [1, 0])

    def test_sampling_frequencies_follow_probs(self):
        rng = np.random.default_rng(0)
        logits = np.tile(np.array([[0.0, 1.0, 2.0]]), (4000, 1))
        d = Categorical(logits)
        samples = d.sample(rng)
        freq = np.bincount(samples, minlength=3) / len(samples)
        np.testing.assert_allclose(freq, d.probs[0], atol=0.03)

    def test_entropy_bounds(self):
        uniform = Categorical(np.zeros((1, 4)))
        np.testing.assert_allclose(uniform.entropy(), np.log(4.0))
        peaked = Categorical(np.array([[100.0, 0.0, 0.0, 0.0]]))
        assert peaked.entropy()[0] < 1e-6

    @given(st.lists(finite_floats, min_size=3, max_size=3), st.integers(0, 2))
    @settings(max_examples=30, deadline=None)
    def test_log_prob_grad_matches_finite_differences(self, logits, action):
        logits = np.array([logits])
        actions = np.array([action])
        grad = Categorical(logits).log_prob_grad(actions)
        eps = 1e-5
        for j in range(3):
            up, down = logits.copy(), logits.copy()
            up[0, j] += eps
            down[0, j] -= eps
            num = (
                Categorical(up).log_prob(actions)[0]
                - Categorical(down).log_prob(actions)[0]
            ) / (2 * eps)
            assert abs(num - grad[0, j]) < 1e-4

    @given(st.lists(finite_floats, min_size=3, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_entropy_grad_matches_finite_differences(self, logits):
        logits = np.array([logits])
        grad = Categorical(logits).entropy_grad()
        eps = 1e-5
        for j in range(3):
            up, down = logits.copy(), logits.copy()
            up[0, j] += eps
            down[0, j] -= eps
            num = (Categorical(up).entropy()[0] - Categorical(down).entropy()[0]) / (2 * eps)
            assert abs(num - grad[0, j]) < 1e-4

    def test_kl_zero_for_identical(self):
        d = Categorical(np.array([[1.0, 2.0, 0.0]]))
        np.testing.assert_allclose(d.kl(d), 0.0, atol=1e-12)

    def test_kl_positive_for_different(self):
        a = Categorical(np.array([[2.0, 0.0]]))
        b = Categorical(np.array([[0.0, 2.0]]))
        assert a.kl(b)[0] > 0.1


class TestDiagGaussian:
    def test_log_prob_matches_scipy_formula(self):
        mean = np.array([[1.0, -1.0]])
        log_std = np.array([0.2, -0.3])
        d = DiagGaussian(mean, log_std)
        x = np.array([[0.5, 0.5]])
        expected = 0.0
        for k in range(2):
            sigma = np.exp(log_std[k])
            z = (x[0, k] - mean[0, k]) / sigma
            expected += -0.5 * z**2 - np.log(sigma) - 0.5 * np.log(2 * np.pi)
        np.testing.assert_allclose(d.log_prob(x), expected)

    def test_mode_is_mean(self):
        d = DiagGaussian(np.array([[2.0]]), np.array([0.0]))
        np.testing.assert_allclose(d.mode(), [[2.0]])

    def test_sample_statistics(self):
        rng = np.random.default_rng(3)
        d = DiagGaussian(np.full((20000, 1), 1.5), np.array([np.log(0.5)]))
        s = d.sample(rng)
        assert abs(s.mean() - 1.5) < 0.02
        assert abs(s.std() - 0.5) < 0.02

    def test_entropy_closed_form(self):
        log_std = np.array([0.1, -0.4])
        d = DiagGaussian(np.zeros((3, 2)), log_std)
        expected = np.sum(log_std + 0.5 * (1 + np.log(2 * np.pi)))
        np.testing.assert_allclose(d.entropy(), expected)

    @given(
        st.lists(finite_floats, min_size=2, max_size=2),
        st.lists(st.floats(-1.5, 1.0), min_size=2, max_size=2),
        st.lists(finite_floats, min_size=2, max_size=2),
    )
    @settings(max_examples=30, deadline=None)
    def test_log_prob_grads_match_finite_differences(self, mean, log_std, action):
        mean = np.array([mean])
        log_std = np.array(log_std)
        action = np.array([action])
        d = DiagGaussian(mean, log_std)
        g_mean, g_ls = d.log_prob_grad(action)
        eps = 1e-5
        for k in range(2):
            up = mean.copy()
            up[0, k] += eps
            down = mean.copy()
            down[0, k] -= eps
            num = (
                DiagGaussian(up, log_std).log_prob(action)[0]
                - DiagGaussian(down, log_std).log_prob(action)[0]
            ) / (2 * eps)
            assert abs(num - g_mean[0, k]) < 1e-3
            up_ls = log_std.copy()
            up_ls[k] += eps
            down_ls = log_std.copy()
            down_ls[k] -= eps
            num = (
                DiagGaussian(mean, up_ls).log_prob(action)[0]
                - DiagGaussian(mean, down_ls).log_prob(action)[0]
            ) / (2 * eps)
            assert abs(num - g_ls[0, k]) < 1e-3

    def test_entropy_grad_is_one_per_dim(self):
        d = DiagGaussian(np.zeros((4, 3)), np.zeros(3))
        np.testing.assert_array_equal(d.entropy_grad(), np.ones((4, 3)))

    def test_incompatible_log_std_raises(self):
        with pytest.raises(ValueError):
            DiagGaussian(np.zeros((2, 3)), np.zeros(2))

    def test_kl_properties(self):
        a = DiagGaussian(np.zeros((1, 2)), np.zeros(2))
        b = DiagGaussian(np.ones((1, 2)), np.zeros(2))
        np.testing.assert_allclose(a.kl(a), 0.0, atol=1e-12)
        np.testing.assert_allclose(a.kl(b), 1.0)  # two dims x 0.5 each
