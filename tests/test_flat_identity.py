"""Bitwise-identity guarantees of the flat-parameter NN core.

The flat-buffer refactor (one contiguous parameter/gradient vector with
per-layer views, scratch-based forward/backward, fused optimizer steps)
promised *bit-for-bit* identical training to the per-layer seed
implementation.  This module pins that promise three ways:

1. golden training fingerprints: seeded ``PPO.learn`` runs whose final
   weights/obs-rms digest and per-iteration stats were captured on the
   pre-refactor implementation (``tests/_capture_goldens.py``) and must
   never drift;
2. checkpoint back-compat: a raw per-layer ``np.savez`` file written the
   way the pre-flat code wrote them loads into a flat-layout trainer;
3. the micro-equivalences the hot path relies on -- notably that
   numpy's pairwise row-sum reduction is plain left-to-right only below
   8 addends, which gates the sequential-column-add fast paths in
   :mod:`repro.nn.distributions`.
"""

import hashlib

import numpy as np
import pytest

from repro.nn.distributions import DiagGaussian
from repro.rl.ppo import PPO, PPOConfig

from .toy_envs import MatchParityEnv, TargetPointEnv

# (env class, n_envs) -> (checkpoint digest, mean_episode_rewards, pi_losses)
# captured from the pre-refactor per-layer implementation; 12-decimal
# rounding on the stats, sha256 over shape+dtype+bytes of every weight
# array plus the observation-normalizer state for the digest.
GOLDENS = {
    ("MatchParityEnv", 1): (
        "d92e574d957ba6c4b9f1b30efa2dcd145d061c249d2d4e6e8a65d9adf265421b",
        (10.5, 10.0, 7.0),
        (-0.000102988361, 1.449765e-06, -0.000695239651),
    ),
    ("MatchParityEnv", 4): (
        "f6fecbbe211eb1ed28e6041006a32ec33ca90276d2927724e339e81ff4e2f871",
        (8.0, 8.75, 8.5),
        (-0.001813977208, -0.004060774279, -0.003579578642),
    ),
    ("TargetPointEnv", 1): (
        "29300a4f780d36bbc2228eec1b263d0d5ef4bec63cdda3939091c78dc2bcac66",
        (-5.051406345897, -5.240511382152, -5.672568002093),
        (-0.001593793027, -0.000489429387, -0.000485333265),
    ),
    ("TargetPointEnv", 4): (
        "de186623fa0377f4377d790e6c88b175dcf81733aaf6b4106cfcc8171f3829ba",
        (-5.593510365157, -5.033789960713, -5.369927117537),
        (-0.006249810555, -0.000885242797, -0.001554379693),
    ),
}


def _checkpoint_digest(trainer: PPO) -> str:
    h = hashlib.sha256()
    for w in trainer.policy.get_weights():
        h.update(str(w.shape).encode() + str(w.dtype).encode() + w.tobytes())
    h.update(trainer.obs_rms.mean.tobytes())
    h.update(trainer.obs_rms.var.tobytes())
    h.update(np.array(trainer.obs_rms.count).tobytes())
    return h.hexdigest()


def _train(env_cls, n_envs: int) -> PPO:
    cfg = PPOConfig(
        n_steps=32, batch_size=16, n_epochs=4, hidden=(8, 8),
        init_log_std=-0.3, n_envs=n_envs,
    )
    trainer = PPO(env_cls(), cfg, seed=13)
    trainer.learn(96 * n_envs)
    return trainer


@pytest.mark.parametrize("env_cls", [MatchParityEnv, TargetPointEnv])
@pytest.mark.parametrize("n_envs", [1, 4])
def test_training_bitwise_matches_per_layer_seed(env_cls, n_envs):
    digest, returns, pi_losses = GOLDENS[(env_cls.__name__, n_envs)]
    trainer = _train(env_cls, n_envs)
    got_returns = tuple(
        round(h["mean_episode_reward"], 12) for h in trainer.history
    )
    got_pi = tuple(round(h["pi_loss"], 12) for h in trainer.history)
    assert got_returns == returns
    assert got_pi == pi_losses
    assert _checkpoint_digest(trainer) == digest


def test_pre_flat_checkpoint_loads(tmp_path):
    """A per-layer ``.npz`` written the historical way round-trips.

    The file is written with a raw ``np.savez`` of independent per-layer
    arrays -- exactly what the pre-flat ``PPO.save`` produced -- so this
    fails if the flat layout ever leaks into the checkpoint contract.
    """
    cfg = PPOConfig(n_steps=32, batch_size=16, n_epochs=1, hidden=(8, 8))
    trainer = PPO(TargetPointEnv(), cfg, seed=3)
    rng = np.random.default_rng(7)
    weights = [rng.standard_normal(p.shape) for p in trainer.policy.parameters()]
    path = tmp_path / "legacy.npz"
    arrays = {f"param_{i}": w for i, w in enumerate(weights)}
    arrays["rms_mean"] = rng.standard_normal(trainer.obs_rms.mean.shape)
    arrays["rms_var"] = np.abs(rng.standard_normal(trainer.obs_rms.var.shape))
    arrays["rms_count"] = np.array(123.0)
    np.savez(path, **arrays)

    trainer.load(path)
    for p, w in zip(trainer.policy.parameters(), weights):
        np.testing.assert_array_equal(p, w)
    # The loaded values must live *in* the flat buffer, not beside it.
    assert trainer.policy.parameters()[0].base is not None
    np.testing.assert_array_equal(trainer.obs_rms.mean, arrays["rms_mean"])
    assert trainer.obs_rms.count == 123.0

    # And a save() of the flat-layout trainer stays per-layer readable.
    out = tmp_path / "resaved.npz"
    trainer.save(out)
    with np.load(out) as data:
        for i, w in enumerate(weights):
            np.testing.assert_array_equal(data[f"param_{i}"], w)


@pytest.mark.parametrize("d", range(1, 10))
def test_columnwise_row_sum_matches_reduce_below_eight(d):
    """Sequential column adds == ``np.add.reduce(..., axis=-1)`` iff d < 8.

    numpy's pairwise reduction runs plain left-to-right accumulation
    below 8 addends and switches to an unrolled-by-8 core at d >= 8;
    the d <= 7 fast paths in ``DiagGaussian.log_prob`` / ``entropy``
    depend on the first half, and this test documents the boundary so a
    numpy upgrade that moves it fails loudly.
    """
    rng = np.random.default_rng(1234 + d)
    t = rng.standard_normal((257, d)) * 10.0 ** rng.integers(-6, 7, (257, d))
    expect = np.add.reduce(t, axis=-1)
    got = t[:, 0].copy()
    for j in range(1, d):
        got += t[:, j]
    if d <= 7:
        np.testing.assert_array_equal(got, expect)
    # d >= 8 may legitimately differ; the fast path must not be used
    # there (checked by the training goldens above for the real models).


def test_diag_gaussian_scratch_matches_allocating_paths():
    """Scratch-backed log_prob/entropy/grads == the allocating versions."""
    rng = np.random.default_rng(99)
    for d in (1, 2, 3, 7, 9):
        mean = rng.standard_normal((64, d))
        log_std = rng.standard_normal(d) * 0.3
        actions = rng.standard_normal((64, d))
        plain = DiagGaussian(mean, log_std)
        scratch: dict = {}
        fast = DiagGaussian(mean, log_std, scratch=scratch)
        np.testing.assert_array_equal(
            fast.log_prob(actions), plain.log_prob(actions)
        )
        np.testing.assert_array_equal(fast.entropy(), plain.entropy())
        g_m_f, g_ls_f = fast.log_prob_grad(actions)
        g_m_p, g_ls_p = plain.log_prob_grad(actions)
        np.testing.assert_array_equal(g_m_f, g_m_p)
        np.testing.assert_array_equal(g_ls_f, g_ls_p)
        # refresh() after an in-place parameter write == a fresh object.
        log_std += 0.125
        fast.refresh()
        rebuilt = DiagGaussian(mean, log_std)
        np.testing.assert_array_equal(fast.std, rebuilt.std)
        np.testing.assert_array_equal(
            fast.log_prob(actions), rebuilt.log_prob(actions)
        )
