"""Tests for the CC experiment runner (repro.experiments.cc_suite)."""

import numpy as np
import pytest

from repro.adversary.cc_env import train_cc_adversary
from repro.cc.protocols.bbr import BBRSender
from repro.experiments import run_bbr_adversarial_experiment
from repro.rl.ppo import PPOConfig


@pytest.fixture(scope="module")
def cc_result():
    cfg = PPOConfig(n_steps=128, batch_size=64, hidden=(4,), init_log_std=-0.7)
    return train_cc_adversary(BBRSender, total_steps=256, seed=0,
                              episode_intervals=60, config=cfg)


class TestBbrAdversarialExperiment:
    def test_structure(self, cc_result):
        exp = run_bbr_adversarial_experiment(
            cc_result.trainer, cc_result.env, n_online=2, n_replay=2
        )
        assert len(exp.online_capacity_fractions) == 2
        assert len(exp.replayed) == 2
        assert exp.fig5_throughput_mbps.shape == exp.fig5_bandwidth_mbps.shape
        assert exp.deterministic.raw_actions.shape[1] == 3

    def test_fractions_bounded(self, cc_result):
        exp = run_bbr_adversarial_experiment(
            cc_result.trainer, cc_result.env, n_online=2, n_replay=1
        )
        for frac in exp.online_capacity_fractions:
            assert 0.0 <= frac <= 1.05
        for run in exp.replayed:
            assert 0.0 <= run.capacity_fraction <= 1.05

    def test_probe_times_sorted(self, cc_result):
        exp = run_bbr_adversarial_experiment(
            cc_result.trainer, cc_result.env, n_online=1, n_replay=1
        )
        times = exp.deterministic_probe_times_s
        assert times == sorted(times)
