"""Tests for the vec-env backends (repro.rl.vec_env) and PPO integration.

The load-bearing guarantees are exact equivalences: a one-env VecEnv must
reproduce the single-env ``collect_rollout`` path bit for bit,
``AbrAdversaryEnv.batch_step`` must return exactly what stepping each env
individually would, and ``SubprocVecEnv`` must produce the same rollouts
as ``SyncVecEnv`` for the same seed.
"""

import numpy as np
import pytest

from repro.abr.protocols import BufferBased
from repro.abr.video import Video
from repro.adversary.abr_env import AbrAdversaryEnv
from repro.adversary.cc_env import CcAdversaryEnv
from repro.cc.protocols.bbr import BBRSender
from repro.rl.ppo import PPO, PPOConfig
from repro.rl.spaces import Box
from repro.rl.vec_env import SubprocVecEnv, SyncVecEnv, make_vec_env
from tests.toy_envs import MatchParityEnv, TargetPointEnv


class TestSyncVecEnvBasics:
    def test_reset_stacks_observations(self):
        vec = SyncVecEnv([MatchParityEnv] * 3)
        obs = vec.reset(seed=0)
        assert obs.shape == (3, 1)
        assert len(vec) == 3

    def test_requires_at_least_one_factory(self):
        with pytest.raises(ValueError):
            SyncVecEnv([])

    def test_rejects_mismatched_spaces(self):
        class WideEnv(MatchParityEnv):
            observation_space = Box([0.0, 0.0], [1.0, 1.0])

        with pytest.raises(ValueError):
            SyncVecEnv([MatchParityEnv, WideEnv])

    def test_rejects_wrong_action_count(self):
        vec = SyncVecEnv([MatchParityEnv] * 2)
        vec.reset(seed=0)
        with pytest.raises(ValueError):
            vec.step(np.array([0, 1, 0]))

    def test_step_shapes(self):
        vec = SyncVecEnv([TargetPointEnv] * 4)
        vec.reset(seed=0)
        obs, rewards, dones, infos = vec.step(np.zeros((4, 1)))
        assert obs.shape == (4, 1)
        assert rewards.shape == (4,)
        assert dones.shape == (4,) and dones.dtype == bool
        assert len(infos) == 4

    def test_auto_reset_preserves_terminal_observation(self):
        vec = SyncVecEnv([lambda: TargetPointEnv(episode_len=2)] * 2)
        vec.reset(seed=0)
        vec.step(np.zeros((2, 1)))
        obs, _, dones, infos = vec.step(np.zeros((2, 1)))
        assert dones.all()
        for info in infos:
            assert "terminal_observation" in info
            assert info["terminal_observation"].shape == (1,)
        # The returned observation is the *post-reset* one, so stepping
        # again works without an explicit reset.
        obs2, _, dones2, _ = vec.step(np.zeros((2, 1)))
        assert obs2.shape == obs.shape
        assert not dones2.any()

    def test_seeded_reset_is_deterministic_and_per_env_distinct(self):
        vec_a = SyncVecEnv([MatchParityEnv] * 4)
        vec_b = SyncVecEnv([MatchParityEnv] * 4)
        obs_a = vec_a.reset(seed=123)
        obs_b = vec_b.reset(seed=123)
        assert np.array_equal(obs_a, obs_b)
        assert vec_a.rngs is not None and len(vec_a.rngs) == 4
        # Spawned child streams must differ across envs.
        draws = [rng.integers(2**31 - 1) for rng in vec_a.rngs]
        assert len(set(draws)) > 1

    def test_single_env_seed_passes_through_verbatim(self):
        plain = MatchParityEnv()
        vec = SyncVecEnv([MatchParityEnv])
        expected = plain.reset(seed=99)
        got = vec.reset(seed=99)
        assert np.array_equal(got[0], expected)

    def test_make_vec_env_from_prototype_and_factory(self):
        proto = TargetPointEnv(target=0.7)
        vec = make_vec_env(proto, 3)
        assert vec.n_envs == 3
        assert vec.envs[0] is proto
        assert all(env.target == 0.7 for env in vec.envs)
        assert vec.envs[1] is not proto

        vec2 = make_vec_env(MatchParityEnv, 2)
        assert vec2.n_envs == 2
        with pytest.raises(ValueError):
            make_vec_env(MatchParityEnv, 0)


class TestSingleEnvEquivalence:
    """SyncVecEnv(n_envs=1) must reproduce the legacy PPO path bitwise."""

    @pytest.mark.parametrize("env_cls", [MatchParityEnv, TargetPointEnv])
    def test_collect_rollout_matches_step_for_step(self, env_cls):
        cfg = PPOConfig(n_steps=64, batch_size=32)
        single = PPO(env_cls(), cfg, seed=5)
        vec = PPO(SyncVecEnv([env_cls]), PPOConfig(n_steps=64, batch_size=32), seed=5)
        single.collect_rollout()
        vec.collect_rollout()
        buf_s, buf_v = single.buffer, vec.buffer
        assert buf_s.pos == buf_v.pos
        for name in ("obs", "actions", "rewards", "dones", "values", "log_probs"):
            a, b = getattr(buf_s, name), getattr(buf_v, name)
            assert np.array_equal(a, b), f"buffer field {name} diverged"

    def test_learn_matches_bitwise(self):
        cfg = lambda: PPOConfig(n_steps=64, batch_size=32, hidden=(8,))
        single = PPO(MatchParityEnv(), cfg(), seed=3)
        vec = PPO(SyncVecEnv([MatchParityEnv]), cfg(), seed=3)
        hist_s = single.learn(128)
        hist_v = vec.learn(128)
        for ws, wv in zip(single.policy.get_weights(), vec.policy.get_weights()):
            assert np.array_equal(ws, wv)
        assert hist_s[-1]["mean_episode_reward"] == hist_v[-1]["mean_episode_reward"]


class TestAbrBatchStep:
    def test_batch_step_matches_individual_steps(self):
        video = Video.synthetic(n_chunks=12, seed=2)
        n = 4
        vec_batched = SyncVecEnv(
            [lambda: AbrAdversaryEnv(BufferBased(), video)] * n
        )
        vec_serial = SyncVecEnv(
            [lambda: AbrAdversaryEnv(BufferBased(), video)] * n
        )
        assert vec_batched._batch_step is not None
        vec_serial._batch_step = None  # force the per-env fallback

        obs_b = vec_batched.reset(seed=7)
        obs_s = vec_serial.reset(seed=7)
        assert np.array_equal(obs_b, obs_s)
        rng = np.random.default_rng(0)
        for _ in range(20):
            actions = rng.uniform(-1.0, 1.0, size=(n, 1))
            obs_b, rew_b, done_b, _ = vec_batched.step(actions)
            obs_s, rew_s, done_s, _ = vec_serial.step(actions)
            assert np.array_equal(obs_b, obs_s)
            assert np.array_equal(rew_b, rew_s)
            assert np.array_equal(done_b, done_s)

    def test_batch_step_handles_heterogeneous_videos(self):
        # Different video objects per env fall into separate r_opt groups
        # (grouping is by identity); results must still match serial.
        videos = [Video.synthetic(n_chunks=12, seed=s) for s in (2, 2, 3)]
        vec_batched = SyncVecEnv(
            [(lambda v=v: AbrAdversaryEnv(BufferBased(), v)) for v in videos]
        )
        vec_serial = SyncVecEnv(
            [(lambda v=v: AbrAdversaryEnv(BufferBased(), v)) for v in videos]
        )
        vec_serial._batch_step = None
        vec_batched.reset(seed=1)
        vec_serial.reset(seed=1)
        rng = np.random.default_rng(4)
        for _ in range(8):
            actions = rng.uniform(-1.0, 1.0, size=(3, 1))
            _, rew_b, _, _ = vec_batched.step(actions)
            _, rew_s, _, _ = vec_serial.step(actions)
            assert np.array_equal(rew_b, rew_s)


def _cc_factory(seed):
    return lambda: CcAdversaryEnv(BBRSender, episode_intervals=20, seed=seed)


class TestSubprocVecEnv:
    """Worker-process backend: same interface, bitwise-same rollouts."""

    def test_reset_and_step_shapes(self):
        vec = SubprocVecEnv([TargetPointEnv] * 3)
        try:
            obs = vec.reset(seed=0)
            assert obs.shape == (3, 1)
            obs, rewards, dones, infos = vec.step(np.zeros((3, 1)))
            assert obs.shape == (3, 1)
            assert rewards.shape == (3,)
            assert dones.shape == (3,) and dones.dtype == bool
            assert len(infos) == 3
        finally:
            vec.close()

    def test_requires_at_least_one_factory(self):
        with pytest.raises(ValueError):
            SubprocVecEnv([])

    @pytest.mark.parametrize("env_cls", [MatchParityEnv, TargetPointEnv])
    def test_matches_sync_backend_bitwise_toy(self, env_cls):
        sync = SyncVecEnv([env_cls] * 4)
        sub = SubprocVecEnv([env_cls] * 4)
        try:
            obs_a = sync.reset(seed=42)
            obs_b = sub.reset(seed=42)
            assert np.array_equal(obs_a, obs_b)
            rng = np.random.default_rng(0)
            for _ in range(30):
                if env_cls is MatchParityEnv:  # discrete {0, 1} actions
                    actions = rng.integers(0, 2, size=4)
                else:
                    actions = rng.uniform(-1.0, 1.0, size=(4, 1))
                oa, ra, da, _ = sync.step(actions)
                ob, rb, db, _ = sub.step(actions)
                assert np.array_equal(oa, ob)
                assert np.array_equal(ra, rb)
                assert np.array_equal(da, db)
        finally:
            sub.close()

    def test_matches_sync_backend_bitwise_cc(self):
        # The acceptance criterion: identical rollouts on the real
        # CC adversary environment, including auto-resets mid-stream
        # (20-interval episodes over 50 steps guarantee several).
        factories = [_cc_factory(s) for s in (1, 2, 3)]
        sync = SyncVecEnv(factories)
        sub = SubprocVecEnv(factories)
        try:
            obs_a = sync.reset(seed=42)
            obs_b = sub.reset(seed=42)
            assert np.array_equal(obs_a, obs_b)
            rng = np.random.default_rng(9)
            for _ in range(50):
                actions = rng.uniform(-1.0, 1.0, size=(3, 3))
                oa, ra, da, ia = sync.step(actions)
                ob, rb, db, ib = sub.step(actions)
                assert np.array_equal(oa, ob)
                assert np.array_equal(ra, rb)
                assert np.array_equal(da, db)
                for info_a, info_b in zip(ia, ib):
                    term_a = info_a.get("terminal_observation")
                    term_b = info_b.get("terminal_observation")
                    assert (term_a is None) == (term_b is None)
                    if term_a is not None:
                        assert np.array_equal(term_a, term_b)
        finally:
            sub.close()

    @pytest.mark.parametrize("n_workers", [1, 2, 3, 5])
    def test_sharded_workers_match_sync_bitwise(self, n_workers):
        # Sharding is a pure IPC optimization: any worker count must
        # produce the same rollout as SyncVecEnv (uneven shards included:
        # 5 envs over 2 workers is a 3/2 split, over 3 a 2/2/1 split).
        sync = SyncVecEnv([TargetPointEnv] * 5)
        sub = SubprocVecEnv([TargetPointEnv] * 5, n_workers=n_workers)
        try:
            assert sub.n_workers == n_workers
            obs_a = sync.reset(seed=7)
            obs_b = sub.reset(seed=7)
            assert np.array_equal(obs_a, obs_b)
            rng = np.random.default_rng(3)
            for _ in range(20):
                actions = rng.uniform(-1.0, 1.0, size=(5, 1))
                oa, ra, da, _ = sync.step(actions)
                ob, rb, db, _ = sub.step(actions)
                assert np.array_equal(oa, ob)
                assert np.array_equal(ra, rb)
                assert np.array_equal(da, db)
        finally:
            sub.close()

    @pytest.mark.parametrize("n_workers", [0, -1, 4])
    def test_rejects_bad_worker_counts(self, n_workers):
        with pytest.raises(ValueError, match="n_workers"):
            SubprocVecEnv([TargetPointEnv] * 3, n_workers=n_workers)

    def test_auto_reset_preserves_terminal_observation(self):
        vec = SubprocVecEnv([lambda: TargetPointEnv(episode_len=2)] * 2)
        try:
            vec.reset(seed=0)
            vec.step(np.zeros((2, 1)))
            _, _, dones, infos = vec.step(np.zeros((2, 1)))
            assert dones.all()
            for info in infos:
                assert info["terminal_observation"].shape == (1,)
            _, _, dones2, _ = vec.step(np.zeros((2, 1)))
            assert not dones2.any()
        finally:
            vec.close()

    def test_single_env_seed_passes_through_verbatim(self):
        plain = MatchParityEnv()
        expected = plain.reset(seed=99)
        vec = SubprocVecEnv([MatchParityEnv])
        try:
            got = vec.reset(seed=99)
            assert np.array_equal(got[0], expected)
        finally:
            vec.close()

    def test_close_is_idempotent(self):
        vec = SubprocVecEnv([MatchParityEnv] * 2)
        vec.reset(seed=0)
        vec.close()
        vec.close()  # must not raise
        with pytest.raises(RuntimeError):
            vec.step(np.zeros((2, 1)))

    def test_worker_error_propagates_with_traceback(self):
        class ExplodingEnv(MatchParityEnv):
            def step(self, action):
                raise ValueError("boom in worker")

        vec = SubprocVecEnv([ExplodingEnv] * 2)
        vec.reset(seed=0)
        with pytest.raises(RuntimeError, match="boom in worker"):
            vec.step(np.zeros((2, 1)))

    def test_rejects_mismatched_spaces(self):
        class WideEnv(MatchParityEnv):
            observation_space = Box([0.0, 0.0], [1.0, 1.0])

        with pytest.raises(ValueError):
            SubprocVecEnv([MatchParityEnv, WideEnv])

    def test_make_vec_env_backend_dispatch(self):
        vec = make_vec_env(MatchParityEnv, 2, backend="subproc")
        try:
            assert isinstance(vec, SubprocVecEnv)
        finally:
            vec.close()
        assert isinstance(make_vec_env(MatchParityEnv, 2), SyncVecEnv)
        with pytest.raises(ValueError):
            make_vec_env(MatchParityEnv, 2, backend="threads")


class TestSubprocPPOTraining:
    def test_subproc_learn_matches_sync_bitwise(self):
        cfg = lambda: PPOConfig(n_steps=32, batch_size=32, hidden=(8,), n_envs=4)
        sync_ppo = PPO(MatchParityEnv(), cfg(), seed=0)
        sub_vec = SubprocVecEnv([MatchParityEnv] * 4)
        try:
            sub_cfg = PPOConfig(
                n_steps=32, batch_size=32, hidden=(8,), n_envs=4,
                vec_backend="subproc",
            )
            sub_ppo = PPO(sub_vec, sub_cfg, seed=0)
            sync_ppo.learn(256)
            sub_ppo.learn(256)
            for ws, wb in zip(
                sync_ppo.policy.get_weights(), sub_ppo.policy.get_weights()
            ):
                assert np.array_equal(ws, wb)
        finally:
            sub_vec.close()

    def test_ppo_builds_subproc_backend_from_config(self):
        cfg = PPOConfig(n_steps=32, batch_size=32, n_envs=2, vec_backend="subproc")
        ppo = PPO(MatchParityEnv(), cfg, seed=0)
        try:
            assert isinstance(ppo.vec_env, SubprocVecEnv)
            history = ppo.learn(128)
            assert history[-1]["steps"] == 128
        finally:
            ppo.vec_env.close()

    def test_invalid_backend_rejected_by_config(self):
        with pytest.raises(ValueError):
            PPOConfig(vec_backend="threads").validate()


class TestVecPPOTraining:
    def test_n_envs_4_learns_and_reports_history(self):
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=32, batch_size=32, n_envs=4),
                  seed=0)
        assert ppo.vec_env is not None and ppo.vec_env.n_envs == 4
        history = ppo.learn(256)
        assert history[-1]["steps"] == 256
        assert np.isfinite(history[-1]["mean_episode_reward"])

    def test_vec_env_instance_adopts_n_envs(self):
        vec = SyncVecEnv([MatchParityEnv] * 3)
        ppo = PPO(vec, PPOConfig(n_steps=32, batch_size=48), seed=0)
        assert ppo.cfg.n_envs == 3

    def test_vec_env_instance_conflicting_n_envs_raises(self):
        vec = SyncVecEnv([MatchParityEnv] * 3)
        with pytest.raises(ValueError):
            PPO(vec, PPOConfig(n_steps=32, batch_size=32, n_envs=2), seed=0)
