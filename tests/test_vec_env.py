"""Tests for SyncVecEnv (repro.rl.vec_env) and its PPO integration.

The load-bearing guarantee is exact equivalence: a ``SyncVecEnv`` of one
env must reproduce the single-env ``collect_rollout`` path bit for bit,
and ``AbrAdversaryEnv.batch_step`` must return exactly what stepping each
env individually would.
"""

import numpy as np
import pytest

from repro.abr.protocols import BufferBased
from repro.abr.video import Video
from repro.adversary.abr_env import AbrAdversaryEnv
from repro.rl.ppo import PPO, PPOConfig
from repro.rl.spaces import Box
from repro.rl.vec_env import SyncVecEnv, make_vec_env
from tests.toy_envs import MatchParityEnv, TargetPointEnv


class TestSyncVecEnvBasics:
    def test_reset_stacks_observations(self):
        vec = SyncVecEnv([MatchParityEnv] * 3)
        obs = vec.reset(seed=0)
        assert obs.shape == (3, 1)
        assert len(vec) == 3

    def test_requires_at_least_one_factory(self):
        with pytest.raises(ValueError):
            SyncVecEnv([])

    def test_rejects_mismatched_spaces(self):
        class WideEnv(MatchParityEnv):
            observation_space = Box([0.0, 0.0], [1.0, 1.0])

        with pytest.raises(ValueError):
            SyncVecEnv([MatchParityEnv, WideEnv])

    def test_rejects_wrong_action_count(self):
        vec = SyncVecEnv([MatchParityEnv] * 2)
        vec.reset(seed=0)
        with pytest.raises(ValueError):
            vec.step(np.array([0, 1, 0]))

    def test_step_shapes(self):
        vec = SyncVecEnv([TargetPointEnv] * 4)
        vec.reset(seed=0)
        obs, rewards, dones, infos = vec.step(np.zeros((4, 1)))
        assert obs.shape == (4, 1)
        assert rewards.shape == (4,)
        assert dones.shape == (4,) and dones.dtype == bool
        assert len(infos) == 4

    def test_auto_reset_preserves_terminal_observation(self):
        vec = SyncVecEnv([lambda: TargetPointEnv(episode_len=2)] * 2)
        vec.reset(seed=0)
        vec.step(np.zeros((2, 1)))
        obs, _, dones, infos = vec.step(np.zeros((2, 1)))
        assert dones.all()
        for info in infos:
            assert "terminal_observation" in info
            assert info["terminal_observation"].shape == (1,)
        # The returned observation is the *post-reset* one, so stepping
        # again works without an explicit reset.
        obs2, _, dones2, _ = vec.step(np.zeros((2, 1)))
        assert obs2.shape == obs.shape
        assert not dones2.any()

    def test_seeded_reset_is_deterministic_and_per_env_distinct(self):
        vec_a = SyncVecEnv([MatchParityEnv] * 4)
        vec_b = SyncVecEnv([MatchParityEnv] * 4)
        obs_a = vec_a.reset(seed=123)
        obs_b = vec_b.reset(seed=123)
        assert np.array_equal(obs_a, obs_b)
        assert vec_a.rngs is not None and len(vec_a.rngs) == 4
        # Spawned child streams must differ across envs.
        draws = [rng.integers(2**31 - 1) for rng in vec_a.rngs]
        assert len(set(draws)) > 1

    def test_single_env_seed_passes_through_verbatim(self):
        plain = MatchParityEnv()
        vec = SyncVecEnv([MatchParityEnv])
        expected = plain.reset(seed=99)
        got = vec.reset(seed=99)
        assert np.array_equal(got[0], expected)

    def test_make_vec_env_from_prototype_and_factory(self):
        proto = TargetPointEnv(target=0.7)
        vec = make_vec_env(proto, 3)
        assert vec.n_envs == 3
        assert vec.envs[0] is proto
        assert all(env.target == 0.7 for env in vec.envs)
        assert vec.envs[1] is not proto

        vec2 = make_vec_env(MatchParityEnv, 2)
        assert vec2.n_envs == 2
        with pytest.raises(ValueError):
            make_vec_env(MatchParityEnv, 0)


class TestSingleEnvEquivalence:
    """SyncVecEnv(n_envs=1) must reproduce the legacy PPO path bitwise."""

    @pytest.mark.parametrize("env_cls", [MatchParityEnv, TargetPointEnv])
    def test_collect_rollout_matches_step_for_step(self, env_cls):
        cfg = PPOConfig(n_steps=64, batch_size=32)
        single = PPO(env_cls(), cfg, seed=5)
        vec = PPO(SyncVecEnv([env_cls]), PPOConfig(n_steps=64, batch_size=32), seed=5)
        single.collect_rollout()
        vec.collect_rollout()
        buf_s, buf_v = single.buffer, vec.buffer
        assert buf_s.pos == buf_v.pos
        for name in ("obs", "actions", "rewards", "dones", "values", "log_probs"):
            a, b = getattr(buf_s, name), getattr(buf_v, name)
            assert np.array_equal(a, b), f"buffer field {name} diverged"

    def test_learn_matches_bitwise(self):
        cfg = lambda: PPOConfig(n_steps=64, batch_size=32, hidden=(8,))
        single = PPO(MatchParityEnv(), cfg(), seed=3)
        vec = PPO(SyncVecEnv([MatchParityEnv]), cfg(), seed=3)
        hist_s = single.learn(128)
        hist_v = vec.learn(128)
        for ws, wv in zip(single.policy.get_weights(), vec.policy.get_weights()):
            assert np.array_equal(ws, wv)
        assert hist_s[-1]["mean_episode_reward"] == hist_v[-1]["mean_episode_reward"]


class TestAbrBatchStep:
    def test_batch_step_matches_individual_steps(self):
        video = Video.synthetic(n_chunks=12, seed=2)
        n = 4
        vec_batched = SyncVecEnv(
            [lambda: AbrAdversaryEnv(BufferBased(), video)] * n
        )
        vec_serial = SyncVecEnv(
            [lambda: AbrAdversaryEnv(BufferBased(), video)] * n
        )
        assert vec_batched._batch_step is not None
        vec_serial._batch_step = None  # force the per-env fallback

        obs_b = vec_batched.reset(seed=7)
        obs_s = vec_serial.reset(seed=7)
        assert np.array_equal(obs_b, obs_s)
        rng = np.random.default_rng(0)
        for _ in range(20):
            actions = rng.uniform(-1.0, 1.0, size=(n, 1))
            obs_b, rew_b, done_b, _ = vec_batched.step(actions)
            obs_s, rew_s, done_s, _ = vec_serial.step(actions)
            assert np.array_equal(obs_b, obs_s)
            assert np.array_equal(rew_b, rew_s)
            assert np.array_equal(done_b, done_s)

    def test_batch_step_handles_heterogeneous_videos(self):
        # Different video objects per env fall into separate r_opt groups
        # (grouping is by identity); results must still match serial.
        videos = [Video.synthetic(n_chunks=12, seed=s) for s in (2, 2, 3)]
        vec_batched = SyncVecEnv(
            [(lambda v=v: AbrAdversaryEnv(BufferBased(), v)) for v in videos]
        )
        vec_serial = SyncVecEnv(
            [(lambda v=v: AbrAdversaryEnv(BufferBased(), v)) for v in videos]
        )
        vec_serial._batch_step = None
        vec_batched.reset(seed=1)
        vec_serial.reset(seed=1)
        rng = np.random.default_rng(4)
        for _ in range(8):
            actions = rng.uniform(-1.0, 1.0, size=(3, 1))
            _, rew_b, _, _ = vec_batched.step(actions)
            _, rew_s, _, _ = vec_serial.step(actions)
            assert np.array_equal(rew_b, rew_s)


class TestVecPPOTraining:
    def test_n_envs_4_learns_and_reports_history(self):
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=32, batch_size=32, n_envs=4),
                  seed=0)
        assert ppo.vec_env is not None and ppo.vec_env.n_envs == 4
        history = ppo.learn(256)
        assert history[-1]["steps"] == 256
        assert np.isfinite(history[-1]["mean_episode_reward"])

    def test_vec_env_instance_adopts_n_envs(self):
        vec = SyncVecEnv([MatchParityEnv] * 3)
        ppo = PPO(vec, PPOConfig(n_steps=32, batch_size=48), seed=0)
        assert ppo.cfg.n_envs == 3

    def test_vec_env_instance_conflicting_n_envs_raises(self):
        vec = SyncVecEnv([MatchParityEnv] * 3)
        with pytest.raises(ValueError):
            PPO(vec, PPOConfig(n_steps=32, batch_size=32, n_envs=2), seed=0)
