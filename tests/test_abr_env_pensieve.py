"""Tests for the Pensieve training env and agent (repro.abr.env / pensieve)."""

import numpy as np
import pytest

from repro.abr.env import AbrTrainingEnv
from repro.abr.features import N_HISTORY, build_features, feature_dim
from repro.abr.protocols import run_session
from repro.abr.protocols.pensieve import (
    PensieveAgent,
    continue_training,
    train_pensieve,
)
from repro.abr.simulator import AbrObservation
from repro.abr.video import Video
from repro.rl.ppo import PPOConfig
from repro.traces.synthetic import make_dataset


@pytest.fixture(scope="module")
def video():
    return Video.synthetic(n_chunks=16, seed=0)


@pytest.fixture(scope="module")
def corpus():
    return make_dataset("broadband", 5, seed=0, duration=120.0)


class TestFeatures:
    def test_dimension(self, video):
        assert feature_dim(video.n_bitrates) == 2 + 2 * N_HISTORY + video.n_bitrates + 1

    def test_initial_features(self, video):
        obs = AbrObservation(
            chunk_index=0,
            last_quality=None,
            buffer_seconds=0.0,
            last_chunk_bytes=0.0,
            last_download_seconds=0.0,
            next_chunk_sizes=video.chunk_sizes_bytes[0].copy(),
            chunks_remaining=video.n_chunks,
        )
        f = build_features(obs, video)
        assert f.shape == (feature_dim(video.n_bitrates),)
        assert f[0] == 0.0  # no previous bitrate
        assert f[-1] == 1.0  # all chunks remaining

    def test_history_is_most_recent_first(self, video):
        obs = AbrObservation(
            chunk_index=2,
            last_quality=3,
            buffer_seconds=8.0,
            last_chunk_bytes=1e6,
            last_download_seconds=2.0,
            next_chunk_sizes=video.chunk_sizes_bytes[2].copy(),
            chunks_remaining=video.n_chunks - 2,
            throughput_history=[(5e5, 1.0), (1e6, 2.0)],
        )
        f = build_features(obs, video)
        throughputs = f[2 : 2 + N_HISTORY]
        # Slot 0 is the most recent sample: 1e6 bytes in 2 s = 4 Mbps (/10).
        assert throughputs[0] == pytest.approx(0.4)
        assert throughputs[1] == pytest.approx(0.4)
        assert np.all(throughputs[2:] == 0.0)


class TestAbrTrainingEnv:
    def test_episode_is_one_video(self, video, corpus):
        env = AbrTrainingEnv(corpus, video, seed=0)
        env.reset(seed=1)
        steps = 0
        done = False
        while not done:
            _obs, _r, done, _info = env.step(0)
            steps += 1
        assert steps == video.n_chunks

    def test_reward_is_chunk_qoe(self, video, corpus):
        env = AbrTrainingEnv(corpus, video, random_start=False, seed=0)
        env.reset(seed=1)
        _obs, reward, _done, info = env.step(2)
        # First chunk: QoE = R - 4.3*rebuffer (no smoothness).
        expected = video.bitrates_kbps[2] / 1000.0 - 4.3 * info["rebuffer"]
        assert reward == pytest.approx(expected)

    def test_empty_corpus_rejected(self, video):
        with pytest.raises(ValueError):
            AbrTrainingEnv([], video)

    def test_step_before_reset_raises(self, video, corpus):
        env = AbrTrainingEnv(corpus, video)
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_extend_corpus(self, video, corpus):
        env = AbrTrainingEnv(list(corpus), video)
        n = len(env.traces)
        env.extend_corpus([corpus[0]])
        assert len(env.traces) == n + 1
        with pytest.raises(ValueError):
            env.extend_corpus([])


class TestPensieveTraining:
    def test_training_improves_reward(self, video, corpus):
        result = train_pensieve(corpus, video, total_steps=6000, seed=0)
        early = result.history[0]["mean_episode_reward"]
        late = np.mean([h["mean_episode_reward"] for h in result.history[-3:]])
        assert late > early

    def test_agent_plays_full_video(self, video, corpus):
        result = train_pensieve(corpus, video, total_steps=2000, seed=0)
        out = run_session(video, corpus[0], result.agent)
        assert len(out.qualities) == video.n_chunks

    def test_agent_deterministic_by_default(self, video, corpus):
        result = train_pensieve(corpus, video, total_steps=1000, seed=0)
        agent = result.agent
        agent.reset(video)
        obs = AbrObservation(
            chunk_index=0,
            last_quality=None,
            buffer_seconds=0.0,
            last_chunk_bytes=0.0,
            last_download_seconds=0.0,
            next_chunk_sizes=video.chunk_sizes_bytes[0].copy(),
            chunks_remaining=video.n_chunks,
        )
        assert len({agent.select(obs) for _ in range(5)}) == 1

    def test_agent_requires_reset(self, video, corpus):
        result = train_pensieve(corpus, video, total_steps=1000, seed=0)
        agent = PensieveAgent(result.trainer.policy, result.trainer.obs_rms)
        obs = AbrObservation(
            chunk_index=0,
            last_quality=None,
            buffer_seconds=0.0,
            last_chunk_bytes=0.0,
            last_download_seconds=0.0,
            next_chunk_sizes=video.chunk_sizes_bytes[0].copy(),
            chunks_remaining=video.n_chunks,
        )
        with pytest.raises(RuntimeError):
            agent.select(obs)

    def test_continue_training_extends_corpus_and_steps(self, video, corpus):
        cfg = PPOConfig(n_steps=256, hidden=(16,))
        result = train_pensieve(corpus, video, total_steps=512, seed=0, config=cfg)
        steps_before = result.trainer.total_steps
        n_before = len(result.env.traces)
        resumed = continue_training(result, 512, new_traces=[corpus[0]])
        assert resumed.trainer.total_steps >= steps_before + 512
        assert len(resumed.env.traces) == n_before + 1
