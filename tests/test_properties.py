"""Cross-module property-based tests (hypothesis) on system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.protocols import BufferBased, MPC, RateBased, run_session
from repro.abr.protocols.optimal import optimal_plan_dp
from repro.abr.simulator import (
    BUFFER_CAP_S,
    ChunkIndexedBandwidth,
    ControlledBandwidth,
    StreamingSession,
)
from repro.abr.video import Video
from repro.cc.link import TimeVaryingLink
from repro.cc.network import PacketNetworkEmulator
from repro.cc.protocols.bbr import BBRSender
from repro.traces.trace import Trace

bw_lists = st.lists(st.floats(0.3, 6.0), min_size=10, max_size=10)


class TestChunkIndexedBandwidth:
    def test_consumes_rates_in_order(self):
        schedule = ChunkIndexedBandwidth([1.0, 2.0])
        t1 = schedule.download_time(1e6, 0.0)
        t2 = schedule.download_time(1e6, 100.0)  # t_start is irrelevant
        assert t1 == pytest.approx(2.0 * t2)

    def test_exhaustion_raises_without_cycle(self):
        schedule = ChunkIndexedBandwidth([1.0])
        schedule.download_time(1e6, 0.0)
        with pytest.raises(RuntimeError):
            schedule.download_time(1e6, 0.0)

    def test_cycle_wraps(self):
        schedule = ChunkIndexedBandwidth([1.0, 4.0], cycle=True)
        times = [schedule.download_time(1e6, 0.0) for _ in range(4)]
        assert times[0] == pytest.approx(times[2])
        assert times[1] == pytest.approx(times[3])

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkIndexedBandwidth([])
        with pytest.raises(ValueError):
            ChunkIndexedBandwidth([1.0, -2.0])
        with pytest.raises(ValueError):
            ChunkIndexedBandwidth([1.0], on_exhausted="wrap")
        schedule = ChunkIndexedBandwidth([1.0])
        with pytest.raises(ValueError):
            schedule.download_time(-5.0, 0.0)

    def test_zero_byte_download_is_instant_and_consumes_entry(self):
        schedule = ChunkIndexedBandwidth([1.0, 2.0])
        assert schedule.download_time(0.0, 0.0) == 0.0
        # The zero-byte download still consumed the 1.0 Mbps entry.
        t = schedule.download_time(1e6, 0.0)
        assert t == pytest.approx(1e6 / (2.0 * 1e6 / 8.0 * 0.95))

    def test_hold_persists_last_rate_after_exhaustion(self):
        schedule = ChunkIndexedBandwidth([1.0, 4.0], on_exhausted="hold")
        schedule.download_time(1e6, 0.0)
        t_last = schedule.download_time(1e6, 0.0)
        # Every further download reuses the final (4.0 Mbps) entry.
        for _ in range(3):
            assert schedule.download_time(1e6, 0.0) == t_last


class TestSimulatorInvariants:
    @given(bw_lists, st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_buffer_never_exceeds_cap_and_never_negative(self, bandwidths, quality):
        video = Video.synthetic(n_chunks=10, seed=1)
        session = StreamingSession(video, ChunkIndexedBandwidth(bandwidths))
        while not session.done:
            result = session.download_chunk(quality)
            assert 0.0 <= result.buffer_seconds <= BUFFER_CAP_S + 1e-9
            assert result.rebuffer_seconds >= 0.0
            assert result.download_seconds > 0.0

    @given(bw_lists)
    @settings(max_examples=15, deadline=None)
    def test_wall_time_monotone_and_consistent(self, bandwidths):
        video = Video.synthetic(n_chunks=10, seed=2)
        session = StreamingSession(video, ChunkIndexedBandwidth(bandwidths))
        previous = 0.0
        while not session.done:
            session.download_chunk(0)
            assert session.wall_time > previous
            previous = session.wall_time

    @given(st.floats(0.5, 8.0), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_higher_bandwidth_never_slower(self, bandwidth, quality):
        video = Video.synthetic(n_chunks=5, seed=3)
        slow = StreamingSession(video, ControlledBandwidth(bandwidth))
        fast = StreamingSession(video, ControlledBandwidth(bandwidth * 2.0))
        slow_result = slow.download_chunk(quality)
        fast_result = fast.download_chunk(quality)
        assert fast_result.download_seconds < slow_result.download_seconds


class TestOptimalDominance:
    @given(st.lists(st.floats(0.8, 4.8), min_size=12, max_size=12),
           st.sampled_from([BufferBased, RateBased]))
    @settings(max_examples=10, deadline=None)
    def test_offline_optimum_dominates_online_protocols(self, bandwidths, policy_cls):
        """The inequality the adversary's reward depends on, under arbitrary
        per-chunk bandwidth schedules."""
        video = Video.synthetic(n_chunks=12, seed=4)
        opt, _ = optimal_plan_dp(video, np.asarray(bandwidths))
        trace = Trace.from_steps(bandwidths, video.chunk_seconds)
        result = run_session(video, trace, policy_cls(), chunk_indexed=True)
        assert opt >= result.qoe_total - 1e-6


class TestEmulatorInvariants:
    @given(
        st.floats(6.0, 24.0),
        st.floats(15.0, 60.0),
        st.floats(0.0, 0.10),
        st.integers(0, 10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_table1_conditions_always_simulate_cleanly(self, bw, lat, loss, seed):
        """Any point of the Table 1 box yields a well-formed simulation."""
        link = TimeVaryingLink(bw, lat, loss)
        emulator = PacketNetworkEmulator(BBRSender(), link, seed=seed)
        for _ in range(50):
            stats = emulator.run_interval(0.03)
            assert 0.0 <= stats.utilization <= 1.0
            assert stats.bytes_delivered >= 0
            assert stats.queue_delay_end_s >= 0.0

    @given(st.floats(6.0, 24.0), st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_throughput_never_exceeds_capacity(self, bw, seed):
        link = TimeVaryingLink(bw, 30.0, 0.0)
        emulator = PacketNetworkEmulator(BBRSender(), link, seed=seed)
        for _ in range(60):
            stats = emulator.run_interval(0.03)
            # One packet of slack for a service completing at the boundary.
            slack = 1500 * 8.0 / 0.03 / 1e6
            assert stats.throughput_mbps <= bw + slack


class TestQoESelfConsistency:
    @given(bw_lists)
    @settings(max_examples=10, deadline=None)
    def test_session_qoe_equals_formula(self, bandwidths):
        """Session chunk QoE re-derives from the session's own outputs."""
        from repro.abr.qoe import video_qoe

        video = Video.synthetic(n_chunks=10, seed=5)
        trace = Trace.from_steps(bandwidths, video.chunk_seconds)
        result = run_session(video, trace, MPC(), chunk_indexed=True)
        total, mean = video_qoe(result.bitrates_kbps, result.rebuffer_seconds)
        assert total == pytest.approx(result.qoe_total)
        assert mean == pytest.approx(result.qoe_mean)
