"""Edge-path tests across modules: options and branches not covered by the
main suites."""

import numpy as np
import pytest

from repro.abr.protocols import MPC, BufferBased, run_session
from repro.abr.protocols.pensieve import PensieveAgent, train_pensieve
from repro.abr.simulator import ChunkIndexedBandwidth, TraceBandwidth
from repro.abr.video import Video
from repro.rl.policy import ActorCritic
from repro.rl.ppo import PPO, PPOConfig
from repro.rl.spaces import Box, Discrete
from repro.traces.synthetic import make_dataset
from repro.traces.trace import Trace
from tests.toy_envs import MatchParityEnv


class TestPPOVariants:
    def test_without_obs_normalization(self):
        cfg = PPOConfig(n_steps=128, normalize_obs=False)
        ppo = PPO(MatchParityEnv(), cfg, seed=0)
        ppo.learn(256)
        assert ppo.total_steps == 256

    def test_without_adv_normalization(self):
        cfg = PPOConfig(n_steps=128, normalize_adv=False)
        ppo = PPO(MatchParityEnv(), cfg, seed=0)
        history = ppo.learn(128)
        assert np.isfinite(history[0]["pi_loss"])

    def test_single_hidden_layer(self):
        cfg = PPOConfig(n_steps=64, hidden=(4,))
        ppo = PPO(MatchParityEnv(), cfg, seed=0)
        ppo.learn(64)
        assert ppo.policy.policy_net.sizes == (1, 4, 2)

    def test_external_policy_continued(self):
        """The robustification pipeline resumes training on a given policy."""
        rng = np.random.default_rng(0)
        policy = ActorCritic(1, Discrete(2), hidden=(8,), rng=rng)
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=64, hidden=(8,)),
                  seed=0, policy=policy)
        ppo.learn(64)
        assert ppo.policy is policy


class TestMpcErrorTracking:
    def test_robust_error_window_bounded(self):
        video = Video.synthetic(n_chunks=30, seed=0)
        mpc = MPC(robust=True, window=5)
        trace = Trace.from_steps(
            np.random.default_rng(0).uniform(0.8, 4.8, 30), 4.0
        )
        run_session(video, trace, mpc, chunk_indexed=True)
        assert len(mpc._errors) <= 5
        assert all(e >= 0 for e in mpc._errors)

    def test_reset_clears_state(self):
        video = Video.synthetic(n_chunks=8, seed=0)
        mpc = MPC()
        trace = Trace.from_steps([2.0] * 8, 4.0)
        run_session(video, trace, mpc, chunk_indexed=True)
        mpc.reset(video)
        assert list(mpc._errors) == []
        assert mpc._last_prediction is None


class TestPensieveModes:
    @pytest.fixture(scope="class")
    def trained(self):
        video = Video.synthetic(n_chunks=10, seed=0)
        corpus = make_dataset("broadband", 3, seed=0, duration=80.0)
        return video, train_pensieve(corpus, video, total_steps=1024, seed=0)

    def test_stochastic_agent_varies(self, trained):
        video, result = trained
        agent = PensieveAgent(
            result.trainer.policy, result.trainer.obs_rms, deterministic=False
        )
        agent.reset(video)
        from repro.abr.simulator import AbrObservation

        obs = AbrObservation(
            chunk_index=0, last_quality=None, buffer_seconds=0.0,
            last_chunk_bytes=0.0, last_download_seconds=0.0,
            next_chunk_sizes=video.chunk_sizes_bytes[0].copy(),
            chunks_remaining=video.n_chunks,
        )
        picks = {agent.select(obs) for _ in range(30)}
        assert len(picks) > 1  # early training: policy still explores

    def test_agent_without_normalizer(self, trained):
        video, result = trained
        agent = PensieveAgent(result.trainer.policy, obs_rms=None)
        out = run_session(video, Trace.constant(2.0, 200.0), agent)
        assert len(out.qualities) == video.n_chunks


class TestBandwidthScheduleSemantics:
    def test_wall_clock_vs_chunk_indexed_differ_for_slow_downloads(self):
        """The two replay semantics are genuinely different mechanisms."""
        video = Video.synthetic(n_chunks=6, seed=0)
        # 0.8 Mbps then 4.8: top-quality chunks take far more than 4 s at
        # 0.8 Mbps, so the wall-clock download spills into fast segments.
        bandwidths = [0.8, 4.8] * 3
        trace = Trace.from_steps(bandwidths, 4.0)

        class TopQuality(BufferBased):
            def select(self, observation):
                return 5

        wall = run_session(video, trace, TopQuality(), chunk_indexed=False)
        exact = run_session(video, trace, TopQuality(), chunk_indexed=True)
        assert wall.download_seconds[0] < exact.download_seconds[0]

    def test_trace_bandwidth_nonloop_extends_last_rate(self):
        trace = Trace.from_steps([1.0, 2.0], 1.0)
        schedule = TraceBandwidth(trace, loop=False)
        # Start past the trace end: rate persists at the final 2.0 Mbps.
        rate = 2.0 * 1e6 / 8.0 * 0.95
        assert schedule.download_time(rate, 10.0) == pytest.approx(1.0)


class TestBoxMisc:
    def test_equality_and_repr(self):
        a = Box([0.0], [1.0])
        assert a == Box([0.0], [1.0])
        assert a != Box([0.0], [2.0])
        assert "Box" in repr(a)
        assert "Discrete(3)" == repr(Discrete(3))
