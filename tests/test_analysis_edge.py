"""Edge cases for the analysis helpers (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_cdf,
    ascii_timeseries,
    bootstrap_ci,
    format_table,
    qoe_ratio_summary,
)


class TestFormatTableEdges:
    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 2  # header + rule, no data

    def test_mixed_types(self):
        out = format_table(["k", "v"], [["x", 1], ["y", 2.5], ["z", "raw"]])
        assert "2.500" in out and "raw" in out

    def test_precision(self):
        out = format_table(["v"], [[np.pi]], precision=1)
        assert "3.1" in out and "3.14" not in out


class TestAsciiEdges:
    def test_cdf_identical_values(self):
        out = ascii_cdf({"x": [2.0, 2.0, 2.0]})
        assert "a=x" in out

    def test_cdf_many_series_truncates_marks(self):
        series = {f"s{i}": [float(i), float(i + 1)] for i in range(12)}
        out = ascii_cdf(series)  # must not crash; marks capped at 10
        assert "a=s0" in out

    def test_timeseries_short_series(self):
        out = ascii_timeseries([1.0, 2.0], width=10, height=4)
        assert "*" in out

    def test_timeseries_downsamples_long_series(self):
        out = ascii_timeseries(np.arange(10_000.0), width=30, height=5)
        # height rows plus the axis line -> height newline separators.
        assert out.count("\n") == 5
        assert out.count("*") == 30  # one mark per column after binning


class TestStatsEdges:
    def test_ratio_summary_length_mismatch(self):
        with pytest.raises(ValueError):
            qoe_ratio_summary([1.0], [1.0, 2.0])

    def test_ratio_summary_empty(self):
        with pytest.raises(ValueError):
            qoe_ratio_summary([], [])

    def test_bootstrap_with_median(self):
        data = np.concatenate([np.full(50, 1.0), np.full(50, 3.0), [100.0]])
        lo, hi = bootstrap_ci(data, stat=np.median, seed=2)
        assert lo >= 1.0 and hi <= 3.0  # outlier-insensitive

    def test_bootstrap_deterministic_given_seed(self):
        data = np.random.default_rng(0).normal(size=100)
        assert bootstrap_ci(data, seed=5) == bootstrap_ci(data, seed=5)
