"""Tests for dense layers and activations (repro.nn.layers)."""

import numpy as np
import pytest

from repro.nn.layers import ACTIVATIONS, Activation, Dense


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 3, rng)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_is_affine(self, rng):
        layer = Dense(3, 2, rng)
        x = rng.standard_normal((6, 3))
        expected = x @ layer.W + layer.b
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(3, 2, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_backward_gradients_match_finite_differences(self, rng):
        layer = Dense(3, 2, rng)
        x = rng.standard_normal((4, 3))
        w = rng.standard_normal((4, 2))

        def loss():
            return float(np.sum(layer.forward(x) * w))

        layer.forward(x)
        layer.zero_grad()
        dx = layer.backward(w)
        eps = 1e-6
        for idx in np.ndindex(layer.W.shape):
            old = layer.W[idx]
            layer.W[idx] = old + eps
            up = loss()
            layer.W[idx] = old - eps
            down = loss()
            layer.W[idx] = old
            assert abs((up - down) / (2 * eps) - layer.dW[idx]) < 1e-6
        # Input gradient check.
        num_dx = np.zeros_like(x)
        for idx in np.ndindex(x.shape):
            old = x[idx]
            x[idx] = old + eps
            up = loss()
            x[idx] = old - eps
            down = loss()
            x[idx] = old
            num_dx[idx] = (up - down) / (2 * eps)
        np.testing.assert_allclose(dx, num_dx, atol=1e-6)

    def test_gradients_accumulate_until_zero_grad(self, rng):
        layer = Dense(2, 2, rng)
        x = np.ones((1, 2))
        d = np.ones((1, 2))
        layer.forward(x)
        layer.backward(d)
        first = layer.dW.copy()
        layer.forward(x)
        layer.backward(d)
        np.testing.assert_allclose(layer.dW, 2 * first)
        layer.zero_grad()
        assert np.all(layer.dW == 0) and np.all(layer.db == 0)

    def test_invalid_dims_raise(self, rng):
        with pytest.raises(ValueError):
            Dense(0, 3, rng)
        with pytest.raises(ValueError):
            Dense(3, -1, rng)

    def test_parameters_are_views_not_copies(self, rng):
        layer = Dense(2, 2, rng)
        params = layer.parameters()
        params[0][0, 0] = 123.0
        assert layer.W[0, 0] == 123.0


class TestActivations:
    @pytest.mark.parametrize("name", sorted(ACTIVATIONS))
    def test_gradient_matches_finite_differences(self, name, rng):
        act = Activation(name)
        x = rng.standard_normal((3, 4)) + 0.05  # avoid relu kink at 0
        d = rng.standard_normal((3, 4))
        act.forward(x)
        # backward scales dout in place on the fast path; keep the
        # original around for the numerical comparison.
        grad = act.backward(d.copy())
        eps = 1e-6

        def fwd(v):
            return Activation(name).forward(v).copy()

        num = (fwd(x + eps) - fwd(x - eps)) / (2 * eps)
        np.testing.assert_allclose(grad, d * num, atol=1e-5)

    def test_backward_scales_dout_in_place(self, rng):
        act = Activation("tanh")
        x = rng.standard_normal((3, 4))
        act.forward(x)
        d = rng.standard_normal((3, 4))
        grad = act.backward(d)
        assert grad is d  # zero-allocation contract: dout is reused

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            Activation("swishish")

    def test_sigmoid_is_stable_for_large_inputs(self):
        act = Activation("sigmoid")
        out = act.forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)

    def test_relu_zeroes_negatives(self):
        act = Activation("relu")
        out = act.forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Activation("tanh").backward(np.ones((1, 2)))

    @pytest.mark.parametrize("name,keeps", [
        ("tanh", "y"), ("sigmoid", "y"), ("relu", "x"),
    ])
    def test_only_the_tensor_the_gradient_needs_is_kept(self, name, keeps, rng):
        act = Activation(name)
        x = rng.standard_normal((3, 4))
        y = act.forward(x)
        if keeps == "y":
            assert act._cached is y
        else:
            assert act._cached is x

    def test_linear_is_a_pure_pass_through(self, rng):
        act = Activation("linear")
        x = rng.standard_normal((3, 4))
        assert act.forward(x) is x  # no copy
        assert act._cached is None  # and no cache
        d = rng.standard_normal((3, 4))
        d_before = d.copy()
        assert act.backward(d) is d
        np.testing.assert_array_equal(d, d_before)  # untouched
