"""Tests for Equation 1 and the smoothing penalties (repro.adversary.reward)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.reward import AdversaryReward, EwmaSmoothing, LastActionSmoothing

vals = st.floats(-100.0, 100.0, allow_nan=False)


class TestAdversaryReward:
    @given(vals, vals, st.floats(0.0, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_equation_1(self, r_opt, r_protocol, smoothing):
        reward = AdversaryReward(smoothing_weight=0.5)(r_opt, r_protocol, smoothing)
        assert reward == pytest.approx(r_opt - r_protocol - 0.5 * smoothing)

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError):
            AdversaryReward()(1.0, 0.0, -1.0)

    def test_zero_weight_disables_penalty(self):
        assert AdversaryReward(smoothing_weight=0.0)(3.0, 1.0, 100.0) == 2.0


class TestLastActionSmoothing:
    def test_first_action_free(self):
        s = LastActionSmoothing()
        assert s(np.array([2.0])) == 0.0

    def test_absolute_difference(self):
        s = LastActionSmoothing()
        s(np.array([2.0]))
        assert s(np.array([4.5])) == pytest.approx(2.5)
        assert s(np.array([4.5])) == 0.0

    def test_multidimensional_sum(self):
        s = LastActionSmoothing()
        s(np.array([1.0, 10.0]))
        assert s(np.array([2.0, 8.0])) == pytest.approx(3.0)

    def test_reset(self):
        s = LastActionSmoothing()
        s(np.array([1.0]))
        s.reset()
        assert s(np.array([100.0])) == 0.0


class TestEwmaSmoothing:
    def test_first_action_free_and_seeds_ewma(self):
        s = EwmaSmoothing(ranges=np.array([18.0, 45.0]), alpha=0.5)
        assert s(np.array([12.0, 30.0])) == 0.0
        # Deviation of (9, 0) from ewma (12, 30): 9/18 = 0.5.
        assert s(np.array([21.0, 30.0])) == pytest.approx(0.5)

    def test_ewma_tracks(self):
        s = EwmaSmoothing(ranges=np.array([10.0]), alpha=0.5)
        s(np.array([0.0]))
        s(np.array([10.0]))  # ewma -> 5
        assert s(np.array([5.0])) == 0.0

    def test_constant_actions_never_penalized(self):
        s = EwmaSmoothing(ranges=np.array([10.0]))
        penalties = [s(np.array([7.0])) for _ in range(10)]
        assert all(p == 0.0 for p in penalties)

    @given(st.lists(st.floats(6.0, 24.0), min_size=2, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_penalty_bounded_by_dims(self, actions):
        s = EwmaSmoothing(ranges=np.array([18.0]))
        for a in actions:
            assert 0.0 <= s(np.array([a])) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaSmoothing(ranges=np.array([0.0]))
        with pytest.raises(ValueError):
            EwmaSmoothing(ranges=np.array([1.0]), alpha=0.0)
        s = EwmaSmoothing(ranges=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            s(np.array([1.0]))
