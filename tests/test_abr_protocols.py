"""Tests for the rule-based ABR protocols (BB, rate-based, MPC)."""

import numpy as np
import pytest

from repro.abr.protocols import MPC, BufferBased, RateBased, run_session
from repro.abr.simulator import AbrObservation, ControlledBandwidth, StreamingSession
from repro.abr.video import Video
from repro.traces.trace import Trace


@pytest.fixture
def video():
    return Video.synthetic(n_chunks=20, seed=0)


def make_obs(video, buffer_s, history=None, last_quality=None, chunk_index=0):
    return AbrObservation(
        chunk_index=chunk_index,
        last_quality=last_quality,
        buffer_seconds=buffer_s,
        last_chunk_bytes=history[-1][0] if history else 0.0,
        last_download_seconds=history[-1][1] if history else 0.0,
        next_chunk_sizes=video.chunk_sizes_bytes[chunk_index].copy(),
        chunks_remaining=video.n_chunks - chunk_index,
        throughput_history=history or [],
    )


class TestBufferBased:
    def test_below_reservoir_picks_lowest(self, video):
        bb = BufferBased(reservoir_s=5.0, cushion_s=10.0)
        bb.reset(video)
        assert bb.select(make_obs(video, 2.0)) == 0

    def test_above_cushion_picks_highest(self, video):
        bb = BufferBased(reservoir_s=5.0, cushion_s=10.0)
        bb.reset(video)
        assert bb.select(make_obs(video, 15.0)) == video.n_bitrates - 1
        assert bb.select(make_obs(video, 40.0)) == video.n_bitrates - 1

    def test_linear_interpolation_in_band(self, video):
        bb = BufferBased(reservoir_s=5.0, cushion_s=10.0)
        bb.reset(video)
        picks = [bb.select(make_obs(video, b)) for b in np.linspace(5.0, 14.99, 25)]
        assert picks == sorted(picks)  # monotone in buffer
        assert picks[0] == 0 and picks[-1] == video.n_bitrates - 2

    def test_switching_band(self):
        bb = BufferBased(reservoir_s=10.0, cushion_s=5.0)
        assert bb.switching_band == (10.0, 15.0)

    def test_requires_reset(self, video):
        with pytest.raises(RuntimeError):
            BufferBased().select(make_obs(video, 5.0))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BufferBased(reservoir_s=-1.0)
        with pytest.raises(ValueError):
            BufferBased(cushion_s=0.0)


class TestRateBased:
    def test_no_history_picks_lowest(self, video):
        rb = RateBased()
        rb.reset(video)
        assert rb.select(make_obs(video, 5.0)) == 0

    def test_picks_highest_under_prediction(self, video):
        rb = RateBased()
        rb.reset(video)
        # History at exactly 2 Mbps -> highest ladder rate <= 2000 kbps is 1850.
        history = [(2.0e6 / 8.0, 1.0)] * 5
        choice = rb.select(make_obs(video, 5.0, history=history))
        assert video.bitrates_kbps[choice] == 1850

    def test_safety_factor(self, video):
        rb = RateBased(safety=0.5)
        rb.reset(video)
        history = [(2.0e6 / 8.0, 1.0)] * 5
        choice = rb.select(make_obs(video, 5.0, history=history))
        assert video.bitrates_kbps[choice] == 750  # <= 1000 kbps

    def test_invalid_safety(self):
        with pytest.raises(ValueError):
            RateBased(safety=0.0)


class TestMPC:
    def test_first_decision_is_conservative(self, video):
        mpc = MPC()
        mpc.reset(video)
        assert mpc.select(make_obs(video, 0.0)) == 0

    def test_high_throughput_high_buffer_picks_high(self, video):
        mpc = MPC()
        mpc.reset(video)
        history = [(5.0e6 / 8.0, 1.0)] * 5  # 5 Mbps measured
        choice = mpc.select(
            make_obs(video, 25.0, history=history, last_quality=5, chunk_index=5)
        )
        assert choice >= 4

    def test_low_throughput_picks_low(self, video):
        mpc = MPC()
        mpc.reset(video)
        history = [(0.4e6 / 8.0, 1.0)] * 5  # 0.4 Mbps measured
        choice = mpc.select(
            make_obs(video, 2.0, history=history, last_quality=0, chunk_index=5)
        )
        assert choice == 0

    def test_robust_discount_reduces_choice(self, video):
        """After a large prediction error, robust MPC is more conservative."""
        plain = MPC(robust=False)
        robust = MPC(robust=True)
        for mpc in (plain, robust):
            mpc.reset(video)
            # First call installs a prediction of ~4 Mbps.
            mpc.select(make_obs(video, 10.0, history=[(4.0e6 / 8.0, 1.0)] * 5,
                                last_quality=2, chunk_index=3))
        # Actual throughput then measured far below the prediction.
        obs = make_obs(video, 10.0, history=[(4.0e6 / 8.0, 1.0)] * 4 + [(1.0e6 / 8.0, 1.0)],
                       last_quality=2, chunk_index=4)
        assert robust.select(obs) <= plain.select(obs)

    def test_requires_reset(self, video):
        with pytest.raises(RuntimeError):
            MPC().select(make_obs(video, 5.0))

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            MPC(horizon=0)

    def test_horizon_truncated_at_video_end(self, video):
        mpc = MPC(horizon=5)
        mpc.reset(video)
        obs = make_obs(video, 10.0, history=[(2e6 / 8, 1.0)] * 5,
                       last_quality=2, chunk_index=video.n_chunks - 2)
        assert 0 <= mpc.select(obs) < video.n_bitrates


class TestProtocolOrdering:
    def test_mpc_beats_bb_on_benign_traces(self):
        """On stable traces, lookahead control should dominate BB."""
        video = Video.synthetic(n_chunks=48, seed=3)
        trace = Trace.constant(3.0, 500.0)
        mpc_q = run_session(video, trace, MPC()).qoe_mean
        bb_q = run_session(video, trace, BufferBased()).qoe_mean
        assert mpc_q > bb_q

    def test_all_protocols_complete_on_harsh_trace(self):
        video = Video.synthetic(n_chunks=20, seed=4)
        trace = Trace.from_steps([0.2, 3.0, 0.1, 4.0] * 10, 4.0)
        for policy in (MPC(), BufferBased(), RateBased()):
            result = run_session(video, trace, policy)
            assert len(result.qualities) == video.n_chunks


class TestMpcComboCache:
    """Regression: the 6^h plan tables must be keyed on (n_bitrates, horizon).

    The old check compared ``n_bitrates`` against ``combos.shape[1]`` (the
    horizon length), so the tables were needlessly rebuilt on most resets
    and -- worse -- stale tables survived a switch to a video with a
    different bitrate count, indexing out of that video's bitrate range.
    """

    def test_cache_reused_across_resets_with_same_video(self, video):
        mpc = MPC()
        mpc.reset(video)
        tables = mpc._combos
        mpc.reset(video)
        assert mpc._combos is tables, "plan tables rebuilt on a plain reset"

    def test_cache_rebuilt_when_bitrate_count_changes(self, video):
        mpc = MPC(horizon=3)
        mpc.reset(video)
        assert mpc._combos[3].shape == (video.n_bitrates ** 3, 3)

        narrow = Video.synthetic(
            n_chunks=20, seed=1, bitrates_kbps=(300, 750, 1200)
        )
        mpc.reset(narrow)
        assert mpc._combos[3].shape == (3 ** 3, 3)
        assert int(mpc._combos[3].max()) == narrow.n_bitrates - 1

        # Decisions on the narrow video must stay within its bitrate range
        # even mid-session (stale 6-bitrate tables would index past it).
        history = [(5.0e6 / 8.0, 1.0)] * 5
        obs = make_obs(narrow, 15.0, history=history, last_quality=2,
                       chunk_index=5)
        assert 0 <= mpc.select(obs) < narrow.n_bitrates

        # And switching back rebuilds the wide tables again.
        mpc.reset(video)
        assert mpc._combos[3].shape == (video.n_bitrates ** 3, 3)
