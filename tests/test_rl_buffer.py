"""Tests for the rollout buffer and GAE (repro.rl.buffer)."""

import numpy as np
import pytest

from repro.rl.buffer import RolloutBuffer


def fill(buffer, rewards, values, dones):
    for r, v, d in zip(rewards, values, dones):
        buffer.add(np.zeros(buffer.obs.shape[1]), 0, r, d, v, 0.0)


class TestRolloutBuffer:
    def test_capacity_enforced(self):
        buf = RolloutBuffer(2, 1, 1, discrete=True)
        fill(buf, [1, 1], [0, 0], [False, False])
        with pytest.raises(RuntimeError):
            buf.add(np.zeros(1), 0, 1.0, False, 0.0, 0.0)

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            RolloutBuffer(0, 1, 1, discrete=True)

    def test_gae_matches_hand_computation(self):
        # Two steps, no terminal: delta_t = r + g*V_{t+1} - V_t.
        buf = RolloutBuffer(2, 1, 1, discrete=True)
        fill(buf, [1.0, 2.0], [0.5, 1.0], [False, False])
        gamma, lam, last_v = 0.9, 0.8, 3.0
        buf.compute_gae(last_v, gamma, lam)
        delta1 = 2.0 + gamma * last_v - 1.0
        delta0 = 1.0 + gamma * 1.0 - 0.5
        adv1 = delta1
        adv0 = delta0 + gamma * lam * adv1
        np.testing.assert_allclose(buf.advantages[:2], [adv0, adv1])
        np.testing.assert_allclose(buf.returns[:2], [adv0 + 0.5, adv1 + 1.0])

    def test_gae_does_not_bootstrap_across_done(self):
        buf = RolloutBuffer(2, 1, 1, discrete=True)
        fill(buf, [1.0, 1.0], [0.5, 0.5], [True, False])
        buf.compute_gae(10.0, 0.99, 0.95)
        # First step ends an episode: advantage is just r - V.
        np.testing.assert_allclose(buf.advantages[0], 1.0 - 0.5)

    def test_terminal_last_value_ignored_when_done(self):
        buf = RolloutBuffer(1, 1, 1, discrete=True)
        fill(buf, [2.0], [0.0], [True])
        buf.compute_gae(100.0, 0.99, 0.95)
        np.testing.assert_allclose(buf.advantages[0], 2.0)

    def test_gae_lambda_one_equals_monte_carlo(self):
        buf = RolloutBuffer(3, 1, 1, discrete=True)
        rewards = [1.0, 2.0, 3.0]
        values = [0.1, 0.2, 0.3]
        fill(buf, rewards, values, [False, False, True])
        gamma = 0.9
        buf.compute_gae(0.0, gamma, 1.0)
        mc0 = 1.0 + gamma * 2.0 + gamma**2 * 3.0
        np.testing.assert_allclose(buf.returns[0], mc0, rtol=1e-12)

    def test_empty_gae_raises(self):
        buf = RolloutBuffer(2, 1, 1, discrete=True)
        with pytest.raises(RuntimeError):
            buf.compute_gae(0.0, 0.99, 0.95)

    def test_minibatches_cover_all_indices(self):
        buf = RolloutBuffer(10, 1, 1, discrete=True)
        fill(buf, [0.0] * 10, [0.0] * 10, [False] * 10)
        rng = np.random.default_rng(0)
        seen = np.concatenate(list(buf.minibatches(3, rng)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_continuous_action_storage(self):
        buf = RolloutBuffer(2, 2, 3, discrete=False)
        buf.add(np.zeros(2), np.array([1.0, 2.0, 3.0]), 0.0, False, 0.0, 0.0)
        np.testing.assert_allclose(buf.actions[0], [1.0, 2.0, 3.0])

    def test_mean_episode_reward(self):
        buf = RolloutBuffer(5, 1, 1, discrete=True)
        fill(buf, [1, 2, 3, 4, 5], [0] * 5, [False, True, False, True, False])
        # Episodes: (1+2)=3 and (3+4)=7; trailing 5 incomplete.
        assert buf.mean_episode_reward() == pytest.approx(5.0)

    def test_mean_episode_reward_fallback_without_done(self):
        buf = RolloutBuffer(3, 1, 1, discrete=True)
        fill(buf, [1, 1, 1], [0] * 3, [False] * 3)
        assert buf.mean_episode_reward() == pytest.approx(3.0)

    def test_reset_allows_refill(self):
        buf = RolloutBuffer(1, 1, 1, discrete=True)
        fill(buf, [1.0], [0.0], [False])
        assert buf.full
        buf.reset()
        assert not buf.full
        fill(buf, [2.0], [0.0], [False])
        assert buf.rewards[0] == 2.0
