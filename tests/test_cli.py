"""Tests for the command-line interface (repro.cli)."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces.io import load_corpus


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["train-abr-adversary"])
        assert args.target == "bb"
        assert args.goal == "qoe_regret"


class TestMakeDataset:
    def test_writes_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        assert main(["make-dataset", "--kind", "3g", "--count", "4",
                     "--duration", "60", "--out", str(out)]) == 0
        traces = load_corpus(out)
        assert len(traces) == 4
        assert "wrote 4 3g traces" in capsys.readouterr().out


class TestTrainAndEvaluate:
    def test_abr_roundtrip(self, tmp_path, capsys):
        traces_path = tmp_path / "adv.jsonl"
        model_path = tmp_path / "adv.npz"
        rc = main([
            "train-abr-adversary", "--target", "bb", "--steps", "256",
            "--chunks", "10", "--n-traces", "3",
            "--out", str(model_path), "--traces-out", str(traces_path),
        ])
        assert rc == 0
        assert model_path.exists()
        corpus = load_corpus(traces_path)
        assert len(corpus) == 3
        assert np.all(corpus[0].bandwidths_mbps >= 0.8)

        rc = main(["evaluate-abr", "--traces", str(traces_path),
                   "--chunks", "10", "--chunk-indexed"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mpc" in out and "bb" in out

    def test_regression_build_and_check(self, tmp_path, capsys):
        suite_path = tmp_path / "suite.json"
        rc = main([
            "regression-build", "--protocol", "bb", "--steps", "256",
            "--n-traces", "3", "--keep", "2", "--chunks", "10",
            "--out", str(suite_path),
        ])
        assert rc == 0
        assert suite_path.exists()
        # The protocol passes its own recorded thresholds.
        rc = main(["regression-check", "--suite", str(suite_path),
                   "--protocol", "bb", "--chunks", "10"])
        assert rc == 0
        assert "passed" in capsys.readouterr().out

    def test_cc_roundtrip(self, tmp_path, capsys):
        traces_path = tmp_path / "cc.jsonl"
        rc = main([
            "train-cc-adversary", "--sender", "bbr", "--steps", "64",
            "--episode-intervals", "20", "--n-traces", "2",
            "--traces-out", str(traces_path),
        ])
        assert rc == 0
        corpus = load_corpus(traces_path)
        assert len(corpus) == 2
        assert corpus[0].loss_rates is not None

        rc = main(["evaluate-cc", "--traces", str(traces_path), "--sender", "bbr"])
        assert rc == 0
        assert "capacity fraction" in capsys.readouterr().out


class TestObservability:
    """The --log-dir / --quiet layer: observe-only, never alter results."""

    def test_train_abr_smoke_writes_manifest_and_metrics(self, tmp_path):
        log_dir = tmp_path / "logs"
        rc = main([
            "train-abr-adversary", "--target", "bb", "--steps", "256",
            "--chunks", "10", "--seed", "3", "--log-dir", str(log_dir),
        ])
        assert rc == 0

        manifest = json.loads((log_dir / "manifest.json").read_text())
        assert manifest["command"] == "train-abr-adversary"
        assert manifest["config"]["steps"] == 256
        assert manifest["seed_entropy"] == 3
        assert len(manifest["fingerprint"]) == 64
        # Observability knobs must not leak into the run's identity.
        assert "log_dir" not in manifest["config"]
        assert "quiet" not in manifest["config"]

        lines = (log_dir / "metrics.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in lines]
        for event in events:
            assert event["kind"] in {"metric", "counter", "timer", "event"}
            assert isinstance(event["name"], str)
            assert isinstance(event["value"], float)
            assert event["step"] is None or isinstance(event["step"], int)
            assert isinstance(event["t"], float)
        names = {e["name"] for e in events}
        # Per-update PPO diagnostics, one sample per update.
        for metric in ("ppo/pi_loss", "ppo/v_loss", "ppo/approx_kl",
                       "ppo/entropy", "ppo/clip_frac", "ppo/grad_norm",
                       "ppo/explained_variance", "ppo/mean_episode_reward"):
            assert metric in names, f"missing {metric}"
        steps = [e["step"] for e in events if e["name"] == "ppo/pi_loss"]
        assert steps == sorted(steps) and len(steps) >= 1

    def test_logging_does_not_change_results(self, tmp_path):
        plain = tmp_path / "plain.jsonl"
        logged = tmp_path / "logged.jsonl"
        base = ["train-abr-adversary", "--target", "bb", "--steps", "256",
                "--chunks", "10", "--seed", "5", "--n-traces", "2"]
        assert main(base + ["--traces-out", str(plain)]) == 0
        assert main(base + ["--traces-out", str(logged),
                            "--log-dir", str(tmp_path / "logs")]) == 0
        assert plain.read_bytes() == logged.read_bytes()

    def test_env_var_enables_logging(self, tmp_path, monkeypatch):
        log_dir = tmp_path / "from-env"
        monkeypatch.setenv("REPRO_LOG_DIR", str(log_dir))
        out = tmp_path / "corpus.jsonl"
        assert main(["make-dataset", "--kind", "3g", "--count", "2",
                     "--duration", "30", "--out", str(out)]) == 0
        assert (log_dir / "manifest.json").exists()
        assert (log_dir / "metrics.jsonl").exists()

    def test_default_path_writes_no_logs(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "corpus.jsonl"
        assert main(["make-dataset", "--kind", "3g", "--count", "2",
                     "--duration", "30", "--out", str(out)]) == 0
        assert sorted(p.name for p in tmp_path.iterdir()) == ["corpus.jsonl"]

    def test_quiet_suppresses_info_keeps_tables(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        assert main(["make-dataset", "--kind", "3g", "--count", "2",
                     "--duration", "30", "--out", str(corpus), "--quiet"]) == 0
        assert capsys.readouterr().out == ""  # info-only command goes silent

        rc = main(["evaluate-abr", "--traces", str(corpus), "--chunks", "10",
                   "--no-cache", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean QoE" in out          # the result table survives
        assert "workers:" not in out      # ... the telemetry chatter does not
