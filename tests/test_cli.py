"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces.io import load_corpus


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["train-abr-adversary"])
        assert args.target == "bb"
        assert args.goal == "qoe_regret"


class TestMakeDataset:
    def test_writes_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        assert main(["make-dataset", "--kind", "3g", "--count", "4",
                     "--duration", "60", "--out", str(out)]) == 0
        traces = load_corpus(out)
        assert len(traces) == 4
        assert "wrote 4 3g traces" in capsys.readouterr().out


class TestTrainAndEvaluate:
    def test_abr_roundtrip(self, tmp_path, capsys):
        traces_path = tmp_path / "adv.jsonl"
        model_path = tmp_path / "adv.npz"
        rc = main([
            "train-abr-adversary", "--target", "bb", "--steps", "256",
            "--chunks", "10", "--n-traces", "3",
            "--out", str(model_path), "--traces-out", str(traces_path),
        ])
        assert rc == 0
        assert model_path.exists()
        corpus = load_corpus(traces_path)
        assert len(corpus) == 3
        assert np.all(corpus[0].bandwidths_mbps >= 0.8)

        rc = main(["evaluate-abr", "--traces", str(traces_path),
                   "--chunks", "10", "--chunk-indexed"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mpc" in out and "bb" in out

    def test_regression_build_and_check(self, tmp_path, capsys):
        suite_path = tmp_path / "suite.json"
        rc = main([
            "regression-build", "--protocol", "bb", "--steps", "256",
            "--n-traces", "3", "--keep", "2", "--chunks", "10",
            "--out", str(suite_path),
        ])
        assert rc == 0
        assert suite_path.exists()
        # The protocol passes its own recorded thresholds.
        rc = main(["regression-check", "--suite", str(suite_path),
                   "--protocol", "bb", "--chunks", "10"])
        assert rc == 0
        assert "passed" in capsys.readouterr().out

    def test_cc_roundtrip(self, tmp_path, capsys):
        traces_path = tmp_path / "cc.jsonl"
        rc = main([
            "train-cc-adversary", "--sender", "bbr", "--steps", "64",
            "--episode-intervals", "20", "--n-traces", "2",
            "--traces-out", str(traces_path),
        ])
        assert rc == 0
        corpus = load_corpus(traces_path)
        assert len(corpus) == 2
        assert corpus[0].loss_rates is not None

        rc = main(["evaluate-cc", "--traces", str(traces_path), "--sender", "bbr"])
        assert rc == 0
        assert "capacity fraction" in capsys.readouterr().out
