"""Tests for the log-bucketed latency histogram (repro.obs.histogram)."""

import math

import pytest

from repro.obs import Histogram


class TestRecording:
    def test_exact_aggregates(self):
        h = Histogram()
        samples = [0.001, 0.002, 0.004, 0.010, 0.5]
        for s in samples:
            h.record(s)
        assert h.count == len(samples)
        assert h.total == pytest.approx(sum(samples))
        assert h.min == min(samples)
        assert h.max == max(samples)
        assert h.mean == pytest.approx(sum(samples) / len(samples))

    def test_quantile_relative_error_bound(self):
        # With 32 buckets/decade the bucket ratio is 10**(1/32); a reported
        # quantile is at most half a bucket from the true value.
        h = Histogram(buckets_per_decade=32)
        samples = [10 ** (-5 + 4 * i / 999) for i in range(1000)]
        for s in samples:
            h.record(s)
        tol = 10 ** (0.5 / 32) - 1  # ~3.7%
        ordered = sorted(samples)
        for q in (0.10, 0.50, 0.90, 0.99):
            true = ordered[math.ceil(q * len(ordered)) - 1]
            assert h.quantile(q) == pytest.approx(true, rel=tol)

    def test_extremes_are_exact(self):
        h = Histogram()
        for s in (0.003, 0.017, 0.4):
            h.record(s)
        assert h.quantile(0.0) == 0.003
        assert h.quantile(1.0) == 0.4

    def test_underflow_and_overflow(self):
        h = Histogram(lowest=1e-3, highest=1.0)
        h.record(1e-9)   # under the tracked range
        h.record(50.0)   # over it
        assert h.count == 2
        assert h.min == 1e-9
        assert h.max == 50.0
        # Quantiles stay inside the exact [min, max] envelope.
        assert h.quantile(0.25) >= 1e-9
        assert h.quantile(1.0) == 50.0

    def test_quantile_never_outside_envelope(self):
        h = Histogram()
        h.record(0.0123)
        for q in (0.0, 0.5, 0.9, 1.0):
            assert h.quantile(q) == pytest.approx(0.0123, rel=0.04)


class TestSummaryAndMerge:
    def test_empty_summary(self):
        s = Histogram().summary()
        assert s == {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                     "p99": 0.0, "min": 0.0, "max": 0.0}
        assert Histogram().quantile(0.5) == 0.0

    def test_summary_keys(self):
        h = Histogram()
        h.record(0.25)
        s = h.summary()
        assert set(s) == {"count", "mean", "p50", "p90", "p99", "min", "max"}
        assert s["count"] == 1

    def test_merge_matches_combined_recording(self):
        a, b, both = Histogram(), Histogram(), Histogram()
        for i, s in enumerate(10 ** (-4 + 3 * i / 99) for i in range(100)):
            (a if i % 2 else b).record(s)
            both.record(s)
        a.merge(b)
        merged, combined = a.summary(), both.summary()
        # Summation order differs, so the mean may be off by an ulp.
        assert merged.pop("mean") == pytest.approx(combined.pop("mean"))
        assert merged == combined

    def test_merge_rejects_different_geometry(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram(buckets_per_decade=16))


class TestValidation:
    def test_bad_range(self):
        with pytest.raises(ValueError):
            Histogram(lowest=1.0, highest=0.1)
        with pytest.raises(ValueError):
            Histogram(lowest=0.0, highest=1.0)

    def test_bad_resolution(self):
        with pytest.raises(ValueError):
            Histogram(buckets_per_decade=0)

    def test_bad_quantile(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
