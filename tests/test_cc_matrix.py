"""Tests for the adversarial scenario matrix (repro.cc.matrix)."""

import numpy as np
import pytest

from repro.cc.matrix import (
    ADVERSARIAL_CROSS,
    ADVERSARIAL_STARTS,
    MATRIX_TICK_S,
    PROTOCOLS,
    SCENARIOS,
    MatrixTask,
    adversarial_schedule,
    build_tasks,
    format_matrix,
    run_cc_matrix,
    run_matrix_task,
    steady_schedule,
)
from repro.exec import ResultCache
from repro.obs.metrics import MetricsRecorder

# Small enough to keep the full-grid tests fast, long enough that every
# protocol delivers traffic and the adversarial variants diverge.
FAST = dict(n_intervals=60, seed=0, schedule_seed=42)


def cells_as_tuples(result):
    return [
        (c.protocol, c.scenario, c.flows, c.start_times, c.throughput_mbps,
         c.capacity_mbps, c.capacity_fraction, c.fairness, c.fairness_regret)
        for c in result.cells
    ]


class TestSchedules:
    def test_steady_shape_and_values(self):
        schedule = steady_schedule(50)
        assert schedule.shape == (50, 3)
        assert np.all(schedule[:, 0] == 15.0)
        assert np.all(schedule[:, 2] == 0.0)

    def test_adversarial_shape_and_ranges(self):
        schedule = adversarial_schedule(200, seed=42)
        assert schedule.shape == (200, 3)
        assert set(np.unique(schedule[:, 0])) == {6.0, 24.0}
        assert set(np.unique(schedule[:, 1])) <= {15.0, 60.0}
        assert set(np.unique(schedule[:, 2])) <= {0.0, 0.02}

    def test_adversarial_deterministic_in_seed(self):
        a = adversarial_schedule(150, seed=7)
        b = adversarial_schedule(150, seed=7)
        c = adversarial_schedule(150, seed=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_adversarial_square_wave_dwells(self):
        schedule = adversarial_schedule(300, seed=42)
        bw = schedule[:, 0]
        edges = np.flatnonzero(np.diff(bw) != 0)
        dwells = np.diff(np.concatenate(([0], edges + 1)))
        assert len(edges) > 10  # it actually oscillates
        assert dwells.min() >= 4 and dwells.max() <= 10


class TestTaskGrid:
    def test_task_count_and_expansion(self):
        tasks = build_tasks(list(PROTOCOLS), 60, 0.03, 120,
                            MATRIX_TICK_S, 0, 42)
        # 3 plain scenarios + |cross| x |starts| adversarial variants each.
        per_protocol = 3 + len(ADVERSARIAL_CROSS) * len(ADVERSARIAL_STARTS)
        assert len(tasks) == len(PROTOCOLS) * per_protocol
        adv = [t for t in tasks if t.scenario == "adversarial"]
        assert all(t.adversarial for t in adv)
        assert all(t.flows[0] == t.protocol for t in tasks)

    def test_cache_keys_unique_and_stable(self):
        tasks = build_tasks(list(PROTOCOLS), 60, 0.03, 120,
                            MATRIX_TICK_S, 0, 42)
        keys = [t.cache_key() for t in tasks]
        assert len(set(keys)) == len(keys)
        assert keys == [t.cache_key() for t in tasks]  # pure in the task

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocols"):
            run_cc_matrix(protocols=["bbr", "tahoe"], **FAST)


class TestMatrixRun:
    def test_grid_shape(self):
        result = run_cc_matrix(**FAST)
        assert len(result.cells) == len(PROTOCOLS) * len(SCENARIOS)
        pairs = {(c.protocol, c.scenario) for c in result.cells}
        assert pairs == {(p, s) for p in PROTOCOLS for s in SCENARIOS}
        assert len(result.adversarial_variants) == len(PROTOCOLS) * 4
        for cell in result.cells:
            assert cell.capacity_fraction >= 0.0
            assert 0.0 <= cell.fairness_regret <= 1.0
            assert len(cell.throughput_mbps) == len(cell.flows)

    def test_worker_count_independence(self):
        serial = run_cc_matrix(protocols=["bbr", "vivace"], **FAST)
        pooled = run_cc_matrix(protocols=["bbr", "vivace"], workers=2, **FAST)
        assert cells_as_tuples(serial) == cells_as_tuples(pooled)

    def test_warm_cache_rerun_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "matrix")
        cold = run_cc_matrix(protocols=["bbr"], cache=cache, **FAST)
        n_tasks = 3 + len(ADVERSARIAL_CROSS) * len(ADVERSARIAL_STARTS)
        assert cache.misses == n_tasks and cache.hits == 0
        warm = run_cc_matrix(protocols=["bbr"], cache=cache, **FAST)
        assert cache.hits == n_tasks  # every task served from disk
        assert cells_as_tuples(cold) == cells_as_tuples(warm)

    def test_adversarial_cell_is_worst_variant(self):
        result = run_cc_matrix(protocols=["bbr"], **FAST)
        cell = result.cell("bbr", "adversarial")
        fractions = [v.capacity_fraction for v in result.adversarial_variants]
        assert cell.capacity_fraction == min(fractions)
        assert cell.flows[1] in ADVERSARIAL_CROSS
        assert cell.start_times[1] in ADVERSARIAL_STARTS

    def test_solo_beats_adversarial(self):
        result = run_cc_matrix(protocols=["bbr"], n_intervals=200,
                               seed=0, schedule_seed=42)
        solo = result.cell("bbr", "solo")
        adv = result.cell("bbr", "adversarial")
        assert solo.capacity_fraction > adv.capacity_fraction

    def test_single_task_direct(self):
        task = MatrixTask(
            protocol="cubic", scenario="pair-same",
            flows=("cubic", "cubic"), start_times=(0.0, 0.0),
            n_intervals=60, interval_s=0.03, queue_packets=120,
            tick_s=MATRIX_TICK_S, seed=0, schedule_seed=42,
            adversarial=False,
        )
        cell = run_matrix_task(task)
        assert cell.capacity_mbps == 15.0
        assert cell.throughput_mbps[0] > 0.0
        assert abs(cell.fairness + cell.fairness_regret - 1.0) < 1e-12

    def test_recorder_observes_cells(self):
        recorder = MetricsRecorder()
        run_cc_matrix(protocols=["reno"], recorder=recorder, **FAST)
        assert "matrix/capacity_fraction" in recorder.series
        assert "matrix/fairness_regret" in recorder.series
        # One sample per grid cell for the lone protocol.
        assert len(recorder.series["matrix/capacity_fraction"]) == len(SCENARIOS)


class TestFormat:
    def test_format_matrix_table(self):
        result = run_cc_matrix(protocols=["bbr", "copa"], **FAST)
        text = format_matrix(result)
        lines = text.splitlines()
        assert "capacity fraction" in lines[0]
        header = lines[3]
        for scenario in SCENARIOS:
            assert scenario in header
        assert any(line.lstrip().startswith("bbr") for line in lines)
        assert sum("worst attack vs" in line for line in lines) == 2
        assert text.endswith("\n")
