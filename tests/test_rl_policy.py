"""Tests for the actor-critic policy (repro.rl.policy)."""

import numpy as np
import pytest

from repro.nn.distributions import Categorical, DiagGaussian
from repro.rl.policy import ActorCritic
from repro.rl.spaces import Box, Discrete


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestDiscretePolicy:
    def test_distribution_type_and_shape(self, rng):
        policy = ActorCritic(4, Discrete(3), rng=rng)
        dist = policy.distribution(np.zeros((5, 4)))
        assert isinstance(dist, Categorical)
        assert dist.logits.shape == (5, 3)

    def test_act_returns_int_action(self, rng):
        policy = ActorCritic(4, Discrete(3), rng=rng)
        action, log_prob, value = policy.act(np.zeros(4), rng)
        assert isinstance(action, int) and 0 <= action < 3
        assert np.isfinite(log_prob) and np.isfinite(value)

    def test_deterministic_act_is_mode(self, rng):
        policy = ActorCritic(2, Discrete(4), rng=rng)
        obs = np.array([0.3, -0.2])
        actions = {policy.act(obs, rng, deterministic=True)[0] for _ in range(10)}
        assert len(actions) == 1

    def test_value_shape(self, rng):
        policy = ActorCritic(3, Discrete(2), rng=rng)
        assert policy.value(np.zeros((7, 3))).shape == (7,)

    def test_d_log_std_rejected(self, rng):
        policy = ActorCritic(2, Discrete(2), rng=rng)
        policy.distribution(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            policy.policy_backward(np.zeros((1, 2)), np.zeros(2))


class TestContinuousPolicy:
    def test_distribution_type(self, rng):
        policy = ActorCritic(2, Box([-1.0] * 3, [1.0] * 3), rng=rng)
        dist = policy.distribution(np.zeros((4, 2)))
        assert isinstance(dist, DiagGaussian)
        assert dist.mean.shape == (4, 3)

    def test_act_returns_vector(self, rng):
        policy = ActorCritic(2, Box([-1.0] * 3, [1.0] * 3), rng=rng)
        action, _lp, _v = policy.act(np.zeros(2), rng)
        assert action.shape == (3,)

    def test_log_std_is_trainable_parameter(self, rng):
        policy = ActorCritic(2, Box([-1.0], [1.0]), rng=rng, init_log_std=-0.5)
        assert any(p is policy.log_std for p in policy.parameters())
        np.testing.assert_allclose(policy.log_std, [-0.5])

    def test_gradients_align_with_parameters(self, rng):
        policy = ActorCritic(2, Box([-1.0], [1.0]), rng=rng)
        params = policy.parameters()
        grads = policy.gradients()
        assert len(params) == len(grads)
        for p, g in zip(params, grads):
            assert p.shape == g.shape

    def test_zero_grad_clears_log_std_grad(self, rng):
        policy = ActorCritic(2, Box([-1.0], [1.0]), rng=rng)
        policy.distribution(np.zeros((1, 2)))
        policy.policy_backward(np.zeros((1, 1)), np.ones(1))
        assert np.any(policy._dlog_std != 0)
        policy.zero_grad()
        assert np.all(policy._dlog_std == 0)


class TestWeights:
    def test_roundtrip(self, rng):
        a = ActorCritic(3, Discrete(2), rng=np.random.default_rng(1))
        b = ActorCritic(3, Discrete(2), rng=np.random.default_rng(2))
        obs = np.zeros((1, 3))
        b.set_weights(a.get_weights())
        np.testing.assert_allclose(
            a.distribution(obs).logits, b.distribution(obs).logits
        )
        np.testing.assert_allclose(a.value(obs), b.value(obs))

    def test_wrong_count_raises(self, rng):
        policy = ActorCritic(3, Discrete(2), rng=rng)
        with pytest.raises(ValueError):
            policy.set_weights(policy.get_weights()[:-1])

    def test_unsupported_space_raises(self, rng):
        with pytest.raises(TypeError):
            ActorCritic(3, object(), rng=rng)
