"""Tests for the BBR sender (repro.cc.protocols.bbr)."""

import numpy as np
import pytest

from repro.cc import BBRSender
from repro.cc.metrics import run_sender_on_trace
from repro.traces.trace import Trace


def run_bbr(bw=12.0, lat=40.0, loss=0.0, duration=15.0, **kwargs):
    trace = Trace.constant(bw, duration, latency_ms=lat, loss_rate=loss)
    sender = BBRSender(**kwargs)
    result = run_sender_on_trace(sender, trace)
    return sender, result


class TestStateMachine:
    def test_startup_drain_probe_sequence(self):
        sender, _ = run_bbr(duration=5.0)
        modes = [m for _t, m in sender.mode_log]
        assert modes[:3] == ["STARTUP", "DRAIN", "PROBE_BW"]

    def test_probe_rtt_roughly_every_10_seconds(self):
        sender, _ = run_bbr(duration=35.0)
        probe_times = [t for t, m in sender.mode_log if m == "PROBE_RTT"]
        assert len(probe_times) >= 2
        gaps = np.diff(probe_times)
        assert np.all((gaps > 8.0) & (gaps < 14.0))

    def test_probe_rtt_duration_is_short(self):
        sender, _ = run_bbr(duration=25.0)
        log = sender.mode_log
        for i, (t, mode) in enumerate(log):
            if mode == "PROBE_RTT" and i + 1 < len(log):
                assert log[i + 1][0] - t < 1.0

    def test_cycle_gains_structure(self):
        gains = BBRSender.CYCLE_GAINS
        assert gains[0] == 1.25 and gains[1] == 0.75
        assert all(g == 1.0 for g in gains[2:])
        assert len(gains) == 8

    def test_min_cwnd_in_probe_rtt(self):
        sender = BBRSender()
        sender.mode = BBRSender.PROBE_RTT
        assert sender.cwnd_packets == sender.min_cwnd_packets


class TestPerformance:
    def test_high_utilization_steady_link(self):
        _sender, result = run_bbr(duration=12.0)
        assert result.mean_utilization > 0.9

    def test_small_standing_queue(self):
        """BBR's signature vs loss-based TCP: it does not fill the buffer."""
        _sender, result = run_bbr(duration=12.0)
        assert result.mean_queue_delay_s < 0.030

    def test_resilient_to_moderate_random_loss(self):
        """BBRv1 ignores random loss (the Cubic contrast in section 4)."""
        _sender, result = run_bbr(loss=0.02, duration=12.0)
        assert result.capacity_fraction > 0.8

    def test_tracks_bandwidth_increase(self):
        trace = Trace.from_steps(
            [6.0] * 200 + [20.0] * 200, 0.03,
            latencies_ms=[40.0] * 400, loss_rates=[0.0] * 400,
        )
        result = run_sender_on_trace(BBRSender(), trace)
        late = np.mean([s.throughput_mbps for s in result.intervals[-100:]])
        assert late > 15.0

    def test_estimates_converge(self):
        sender, _ = run_bbr(bw=12.0, lat=40.0, duration=10.0)
        assert sender.max_bw_bps == pytest.approx(12e6, rel=0.15)
        assert sender.rtprop_s == pytest.approx(0.040, abs=0.01)


class TestFilterPoisoning:
    """The mechanism the paper's adversary exploits (Figures 5 and 6)."""

    def test_stale_rtprop_after_latency_capture(self):
        """A brief low-latency window pins an optimistic RTprop; raising
        latency afterwards leaves BBR cwnd-limited below capacity."""
        n = 1000  # 30 seconds
        lat = np.full(n, 60.0)
        trace = Trace.from_steps(
            np.full(n, 12.0), 0.03, latencies_ms=lat, loss_rates=np.zeros(n)
        )
        honest = run_sender_on_trace(BBRSender(), trace)

        # Same link, but latency dips to 15 ms for 300 ms every ~10 s.
        lat_attack = lat.copy()
        for start in (0, 333, 666):
            lat_attack[start : start + 10] = 15.0
        trace_attack = Trace.from_steps(
            np.full(n, 12.0), 0.03, latencies_ms=lat_attack, loss_rates=np.zeros(n)
        )
        attacked = run_sender_on_trace(BBRSender(), trace_attack)
        assert attacked.capacity_fraction < honest.capacity_fraction - 0.1

    def test_bw_filter_windows_out_old_highs(self):
        sender = BBRSender(bw_window_rounds=2)
        sender._bw_samples.append((0, 100e6))
        sender.round_count = 5
        from repro.cc.packet import AckInfo

        ack = AckInfo(seq=1, now=1.0, rtt_s=0.04, delivered_bytes=1500,
                      delivery_rate_bps=5e6, queue_sojourn_s=0.0)
        sender._update_filters(ack)
        assert sender.max_bw_bps == pytest.approx(5e6)
