"""One-off golden capture for the flat-parameter refactor (not a test).

Run with the PRE-refactor implementation to print the golden values that
tests/test_flat_identity.py pins; the refactored code must reproduce them
bit for bit.
"""

import hashlib
import sys

import numpy as np

sys.path.insert(0, "tests")
from toy_envs import MatchParityEnv, TargetPointEnv  # noqa: E402

from repro.rl.ppo import PPO, PPOConfig  # noqa: E402


def checkpoint_digest(trainer: PPO) -> str:
    h = hashlib.sha256()
    for w in trainer.policy.get_weights():
        h.update(str(w.shape).encode() + str(w.dtype).encode() + w.tobytes())
    h.update(trainer.obs_rms.mean.tobytes())
    h.update(trainer.obs_rms.var.tobytes())
    h.update(np.array(trainer.obs_rms.count).tobytes())
    return h.hexdigest()


def run(env_cls, n_envs: int):
    cfg = PPOConfig(
        n_steps=32, batch_size=16, n_epochs=4, hidden=(8, 8),
        init_log_std=-0.3, n_envs=n_envs,
    )
    trainer = PPO(env_cls(), cfg, seed=13)
    trainer.learn(96 * n_envs)
    returns = tuple(round(h["mean_episode_reward"], 12) for h in trainer.history)
    pi_losses = tuple(round(h["pi_loss"], 12) for h in trainer.history)
    return checkpoint_digest(trainer), returns, pi_losses


for env_cls in (MatchParityEnv, TargetPointEnv):
    for n_envs in (1, 4):
        digest, returns, pi_losses = run(env_cls, n_envs)
        print(f"{env_cls.__name__} n_envs={n_envs}:")
        print(f"  digest: {digest!r}")
        print(f"  returns: {returns!r}")
        print(f"  pi_losses: {pi_losses!r}")
