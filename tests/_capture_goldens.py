"""One-off golden capture (not a test).

Run against a known-good implementation to print the values the golden
tests pin; later refactors must reproduce them bit for bit.

    python tests/_capture_goldens.py ppo   # tests/test_flat_identity.py
    python tests/_capture_goldens.py abr   # tests/test_abr_goldens.py

With no argument both sections run.
"""

import hashlib
import sys

import numpy as np

sys.path.insert(0, "tests")
from toy_envs import MatchParityEnv, TargetPointEnv  # noqa: E402

from repro.rl.ppo import PPO, PPOConfig  # noqa: E402


def checkpoint_digest(trainer: PPO) -> str:
    h = hashlib.sha256()
    for w in trainer.policy.get_weights():
        h.update(str(w.shape).encode() + str(w.dtype).encode() + w.tobytes())
    h.update(trainer.obs_rms.mean.tobytes())
    h.update(trainer.obs_rms.var.tobytes())
    h.update(np.array(trainer.obs_rms.count).tobytes())
    return h.hexdigest()


def run(env_cls, n_envs: int):
    cfg = PPOConfig(
        n_steps=32, batch_size=16, n_epochs=4, hidden=(8, 8),
        init_log_std=-0.3, n_envs=n_envs,
    )
    trainer = PPO(env_cls(), cfg, seed=13)
    trainer.learn(96 * n_envs)
    returns = tuple(round(h["mean_episode_reward"], 12) for h in trainer.history)
    pi_losses = tuple(round(h["pi_loss"], 12) for h in trainer.history)
    return checkpoint_digest(trainer), returns, pi_losses


def capture_ppo() -> None:
    for env_cls in (MatchParityEnv, TargetPointEnv):
        for n_envs in (1, 4):
            digest, returns, pi_losses = run(env_cls, n_envs)
            print(f"{env_cls.__name__} n_envs={n_envs}:")
            print(f"  digest: {digest!r}")
            print(f"  returns: {returns!r}")
            print(f"  pi_losses: {pi_losses!r}")


def capture_abr_sessions() -> None:
    """Digests for tests/test_abr_goldens.py, via the SERIAL path only."""
    from test_abr_goldens import GOLDEN_PROTOCOLS, corpus_digest, golden_corpus

    from repro.abr.protocols import run_session

    print("GOLDEN_DIGESTS = {")
    for name in sorted(GOLDEN_PROTOCOLS):
        policy = GOLDEN_PROTOCOLS[name]()
        results = [
            run_session(s.video, s.bandwidth, policy,
                        weights=s.weights, chunk_indexed=s.chunk_indexed)
            for s in golden_corpus()
        ]
        print(f'    "{name}": "{corpus_digest(results)}",')
    print("}")


if __name__ == "__main__":
    sections = sys.argv[1:] or ["ppo", "abr"]
    if "ppo" in sections:
        capture_ppo()
    if "abr" in sections:
        capture_abr_sessions()
