"""Tests for the ordered parallel runner (repro.exec.runner)."""

import time

import numpy as np
import pytest

from repro.exec import (
    ParallelMap,
    RemoteTraceback,
    ResultCache,
    as_runner,
    cached_map,
    resolve_workers,
    spawn_rngs,
    spawn_seeds,
)
from repro.exec.runner import WORKERS_ENV


def _square(task):
    return task * task


def _append_marker(task):
    task.append("ran")
    return task


def _sleep_then_ident(task):
    idx, delay = task
    time.sleep(delay)
    return idx


def _fail_on_three(task):
    if task == 3:
        raise ValueError("boom 3")
    return task


class _UnpicklableError(Exception):
    def __init__(self):
        super().__init__("bad")
        self.payload = lambda: None  # lambdas do not pickle


def _raise_unpicklable(task):
    raise _UnpicklableError()


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 0

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(0) == 0  # explicit value wins

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestSpawning:
    def test_unseeded_gives_nones(self):
        assert spawn_seeds(None, 3) == [None] * 3
        assert spawn_rngs(None, 3) == [None] * 3

    def test_seeded_is_deterministic_and_independent(self):
        a = spawn_seeds(42, 4)
        b = spawn_seeds(42, 4)
        assert a == b
        assert len(set(a)) == 4
        draws = [r.random() for r in spawn_rngs(42, 4)]
        assert len(set(draws)) == 4
        again = [r.random() for r in spawn_rngs(42, 4)]
        assert draws == again


class TestParallelMap:
    def test_serial_runs_on_callers_objects(self):
        task = []
        with ParallelMap(0) as runner:
            assert not runner.parallel
            (result,) = runner.map(_append_marker, [task])
        assert result is task  # no pickling round trip
        assert task == ["ran"]

    def test_one_worker_is_serial(self):
        with ParallelMap(1) as runner:
            assert not runner.parallel

    def test_parallel_results_in_submission_order(self):
        # Later submissions finish first; order must still be preserved.
        tasks = [(i, (4 - i) * 0.02) for i in range(5)]
        with ParallelMap(2) as runner:
            assert runner.parallel
            assert runner.map(_sleep_then_ident, tasks) == [0, 1, 2, 3, 4]

    def test_parallel_matches_serial(self):
        tasks = list(range(10))
        with ParallelMap(2) as runner:
            assert runner.map(_square, tasks) == [t * t for t in tasks]

    def test_pool_persists_across_maps(self):
        with ParallelMap(2) as runner:
            runner.map(_square, [1, 2])
            pool = runner._executor
            runner.map(_square, [3, 4])
            assert runner._executor is pool

    def test_remote_error_reraised_with_traceback(self):
        with ParallelMap(2) as runner:
            with pytest.raises(ValueError, match="boom 3") as excinfo:
                runner.map(_fail_on_three, [1, 2, 3, 4])
        cause = excinfo.value.__cause__
        assert isinstance(cause, RemoteTraceback)
        assert "boom 3" in cause.tb

    def test_unpicklable_remote_error_degrades_to_runtimeerror(self):
        with ParallelMap(2) as runner:
            with pytest.raises(RuntimeError, match="_UnpicklableError"):
                runner.map(_raise_unpicklable, [1])

    def test_serial_error_propagates_natively(self):
        with ParallelMap(0) as runner:
            with pytest.raises(ValueError, match="boom 3"):
                runner.map(_fail_on_three, [3])


class TestAsRunner:
    def test_borrowed_runner_left_open(self):
        owner = ParallelMap(2)
        try:
            owner.map(_square, [1])
            with as_runner(owner) as runner:
                assert runner is owner
            assert owner._executor is not None  # still usable by its owner
            assert owner.map(_square, [5]) == [25]
        finally:
            owner.close()

    def test_temporary_runner_closed_on_exit(self):
        with as_runner(2) as runner:
            runner.map(_square, [1, 2])
        assert runner._executor is None


class TestCachedMap:
    def test_no_cache_computes_everything(self):
        with ParallelMap(0) as runner:
            assert cached_map(_square, [2, 3], runner) == [4, 9]

    def test_hits_skip_computation_and_order_is_kept(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = ["k0", "k1", "k2"]
        cache.put("k1", -1)  # pre-seed the middle task with a sentinel
        with ParallelMap(0) as runner:
            out = cached_map(_square, [5, 6, 7], runner, cache=cache, keys=keys)
        assert out == [25, -1, 49]
        assert cache.hits == 1 and cache.misses == 2
        assert cache.stores == 3  # the pre-seed plus the two misses

    def test_second_pass_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = ["a", "b"]
        with ParallelMap(0) as runner:
            first = cached_map(_square, [2, 3], runner, cache=cache, keys=keys)
            second = cached_map(_square, [2, 3], runner, cache=cache, keys=keys)
        assert first == second == [4, 9]
        assert cache.hits == 2 and cache.misses == 2

    def test_key_count_mismatch_raises(self, tmp_path):
        cache = ResultCache(tmp_path)
        with ParallelMap(0) as runner:
            with pytest.raises(ValueError):
                cached_map(_square, [1, 2], runner, cache=cache, keys=["only-one"])


class TestRngPayloads:
    def test_rngs_survive_the_worker_round_trip(self):
        # Generators are part of task payloads in trace generation; the
        # pickled copy must produce the same stream as the original.
        rngs = spawn_rngs(7, 3)
        expected = [r.random() for r in spawn_rngs(7, 3)]
        with ParallelMap(2) as runner:
            got = runner.map(_draw_one, rngs)
        assert got == expected


def _draw_one(rng):
    return rng.random()
