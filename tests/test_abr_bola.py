"""Tests for the BOLA baseline (repro.abr.protocols.bola)."""

import numpy as np
import pytest

from repro.abr.protocols import BufferBased, run_session
from repro.abr.protocols.bola import Bola
from repro.abr.simulator import AbrObservation
from repro.abr.video import Video
from repro.traces.trace import Trace


@pytest.fixture
def video():
    return Video.synthetic(n_chunks=20, seed=0)


def obs_with_buffer(video, buffer_s):
    return AbrObservation(
        chunk_index=0,
        last_quality=None,
        buffer_seconds=buffer_s,
        last_chunk_bytes=0.0,
        last_download_seconds=0.0,
        next_chunk_sizes=video.chunk_sizes_bytes[0].copy(),
        chunks_remaining=video.n_chunks,
    )


class TestBolaMechanics:
    def test_validation(self):
        with pytest.raises(ValueError):
            Bola(buffer_target_s=0.0)
        with pytest.raises(ValueError):
            Bola(gamma_p=-1.0)

    def test_requires_reset(self, video):
        with pytest.raises(RuntimeError):
            Bola().select(obs_with_buffer(video, 5.0))

    def test_empty_buffer_picks_lowest(self, video):
        bola = Bola()
        bola.reset(video)
        assert bola.select(obs_with_buffer(video, 0.0)) == 0

    def test_target_buffer_picks_highest(self, video):
        bola = Bola(buffer_target_s=25.0)
        bola.reset(video)
        assert bola.select(obs_with_buffer(video, 25.0)) == video.n_bitrates - 1

    def test_selection_monotone_in_buffer(self, video):
        bola = Bola()
        bola.reset(video)
        picks = [
            bola.select(obs_with_buffer(video, b)) for b in np.linspace(0, 30, 40)
        ]
        assert picks == sorted(picks)

    def test_scores_shape(self, video):
        bola = Bola()
        bola.reset(video)
        assert bola.scores(obs_with_buffer(video, 10.0)).shape == (video.n_bitrates,)


class TestBolaBehaviour:
    def test_completes_playback(self, video):
        result = run_session(video, Trace.constant(3.0, 500.0), Bola())
        assert len(result.qualities) == video.n_chunks

    def test_reasonable_on_stable_link(self):
        """BOLA-BASIC tracks the link rate with little rebuffering (it
        oscillates more than BB near its equilibrium -- the BOLA-O fix is
        out of scope -- so we assert quality and stalls, not raw QoE)."""
        video = Video.synthetic(n_chunks=48, seed=2)
        trace = Trace.constant(3.0, 800.0)
        bola = run_session(video, trace, Bola())
        bb = run_session(video, trace, BufferBased())
        assert bola.total_rebuffer < 2.0
        mean_quality = np.mean(bola.qualities)
        assert mean_quality > np.mean(bb.qualities) - 1.0
        assert bola.qoe_mean > 0.5

    def test_attackable_via_buffer_like_bb(self, video):
        """BOLA is buffer-driven: a bait-and-crash trace forces switches."""
        trace = Trace.from_steps([4.8, 0.8] * 10, 4.0)
        result = run_session(video, trace, Bola(), chunk_indexed=True)
        switches = int(np.count_nonzero(np.diff(result.bitrates_kbps)))
        assert switches >= 4
