"""Tests for the trace-based adversary and the robustification pipeline."""

import numpy as np
import pytest

from repro.abr.protocols import BufferBased, run_session
from repro.abr.video import Video
from repro.adversary.robust_training import robustify_pensieve
from repro.adversary.trace_adversary import TraceAdversaryEnv
from repro.rl.ppo import PPOConfig
from repro.traces.synthetic import make_dataset


@pytest.fixture
def video():
    return Video.synthetic(n_chunks=8, seed=0)


class TestTraceAdversaryEnv:
    def test_reward_sparse_until_final_step(self, video):
        env = TraceAdversaryEnv(BufferBased(), video)
        env.reset()
        rewards = []
        done = False
        while not done:
            _o, r, done, _i = env.step(np.array([0.0]))
            rewards.append(r)
        assert all(r == 0.0 for r in rewards[:-1])

    def test_final_reward_matches_components(self, video):
        env = TraceAdversaryEnv(BufferBased(), video)
        env.reset()
        rng = np.random.default_rng(0)
        done = False
        while not done:
            _o, r, done, info = env.step(rng.uniform(-1, 1, 1))
        assert r == pytest.approx(
            info["r_opt"] - info["r_protocol"] - info["smoothing"]
        )
        assert info["r_opt"] >= info["r_protocol"] - 1e-9

    def test_final_reward_consistent_with_replay(self, video):
        env = TraceAdversaryEnv(BufferBased(), video)
        env.reset()
        done = False
        while not done:
            _o, _r, done, info = env.step(np.array([0.5]))
        trace = env.build_trace()
        replay = run_session(video, trace, BufferBased())
        assert replay.qoe_total == pytest.approx(info["r_protocol"])

    def test_step_past_end_raises(self, video):
        env = TraceAdversaryEnv(BufferBased(), video)
        env.reset()
        for _ in range(video.n_chunks):
            env.step(np.array([0.0]))
        with pytest.raises(RuntimeError):
            env.step(np.array([0.0]))

    def test_build_trace_requires_actions(self, video):
        env = TraceAdversaryEnv(BufferBased(), video)
        env.reset()
        with pytest.raises(RuntimeError):
            env.build_trace()

    def test_observation_encodes_progress(self, video):
        env = TraceAdversaryEnv(BufferBased(), video)
        obs = env.reset()
        assert obs[0] == 0.0
        obs, *_ = env.step(np.array([0.0]))
        assert obs[0] == pytest.approx(1.0 / video.n_chunks)


class TestRobustificationPipeline:
    def test_tiny_pipeline_end_to_end(self, video):
        corpus = make_dataset("broadband", 3, seed=0, duration=80.0)
        tiny = PPOConfig(n_steps=128, batch_size=64, hidden=(16,))
        result = robustify_pensieve(
            corpus,
            video,
            total_steps=512,
            switch_fraction=0.5,
            adversary_steps=128,
            n_adversarial_traces=4,
            seed=0,
            config=tiny,
            adversary_config=PPOConfig(n_steps=64, batch_size=32, hidden=(8,)),
        )
        # Both arms finished the full budget.
        assert result.baseline.trainer.total_steps >= 512
        assert result.robust.trainer.total_steps >= 512
        # Only the robust arm saw the adversarial traces.
        assert len(result.robust.env.traces) == 3 + 4
        assert len(result.baseline.env.traces) == 3
        assert len(result.adversarial_traces) == 4
        # The two arms diverged (different corpora after the fork).
        out_b = run_session(video, corpus[0], result.baseline.agent)
        out_r = run_session(video, corpus[0], result.robust.agent)
        assert len(out_b.qualities) == len(out_r.qualities) == video.n_chunks

    def test_invalid_switch_fraction(self, video):
        with pytest.raises(ValueError):
            robustify_pensieve([], video, switch_fraction=1.5)
