"""Tests for the synthetic dataset generators (repro.traces.synthetic)."""

import numpy as np
import pytest

from repro.traces.synthetic import fcc_broadband_like, hsdpa_3g_like, make_dataset


class TestGenerators:
    def test_broadband_trace_shape(self):
        t = fcc_broadband_like(np.random.default_rng(0), duration=100.0, step_seconds=1.0)
        assert len(t) == 100
        assert t.duration == pytest.approx(100.0)
        assert np.all(t.bandwidths_mbps > 0)

    def test_3g_trace_has_outage_capability(self):
        # Over many traces, the 3G generator should visit deep fades.
        rng = np.random.default_rng(1)
        mins = [hsdpa_3g_like(rng).bandwidths_mbps.min() for _ in range(20)]
        assert min(mins) < 0.2

    def test_broadband_avoids_deep_outages(self):
        rng = np.random.default_rng(2)
        mins = [fcc_broadband_like(rng).bandwidths_mbps.min() for _ in range(20)]
        assert min(mins) >= 0.2

    def test_distribution_shift_broadband_vs_3g(self):
        """The property Figure 4 relies on: broadband >> 3G in mean rate."""
        broadband = make_dataset("broadband", 30, seed=0)
        mobile = make_dataset("3g", 30, seed=0)
        mean_bb = np.mean([t.mean_bandwidth() for t in broadband])
        mean_3g = np.mean([t.mean_bandwidth() for t in mobile])
        assert mean_bb > 1.5 * mean_3g

    def test_3g_more_variable_than_broadband(self):
        broadband = make_dataset("broadband", 30, seed=1)
        mobile = make_dataset("3g", 30, seed=1)
        cv = lambda t: np.std(t.bandwidths_mbps) / np.mean(t.bandwidths_mbps)
        assert np.mean([cv(t) for t in mobile]) > np.mean([cv(t) for t in broadband])


class TestMakeDataset:
    def test_count_and_names(self):
        traces = make_dataset("3g", 5, seed=3)
        assert len(traces) == 5
        assert len({t.name for t in traces}) == 5

    def test_seeding_is_deterministic(self):
        a = make_dataset("broadband", 3, seed=42)
        b = make_dataset("broadband", 3, seed=42)
        for ta, tb in zip(a, b):
            np.testing.assert_array_equal(ta.bandwidths_mbps, tb.bandwidths_mbps)

    def test_different_seeds_differ(self):
        a = make_dataset("broadband", 1, seed=1)[0]
        b = make_dataset("broadband", 1, seed=2)[0]
        assert not np.array_equal(a.bandwidths_mbps, b.bandwidths_mbps)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_dataset("5g", 1)
