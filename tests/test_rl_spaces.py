"""Tests for Box/Discrete spaces (repro.rl.spaces)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.spaces import Box, Discrete


class TestDiscrete:
    def test_sample_in_range(self):
        space = Discrete(4)
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert 0 <= space.sample(rng) < 4

    def test_contains(self):
        space = Discrete(3)
        assert space.contains(0) and space.contains(2)
        assert not space.contains(3)
        assert not space.contains(-1)
        assert not space.contains(1.5)
        assert not space.contains("a")

    def test_invalid_n_raises(self):
        with pytest.raises(ValueError):
            Discrete(0)

    def test_equality(self):
        assert Discrete(3) == Discrete(3)
        assert Discrete(3) != Discrete(4)


class TestBox:
    def test_dim_and_shape(self):
        box = Box([0.0, 1.0], [1.0, 2.0])
        assert box.dim == 2 and box.shape == (2,)

    def test_sample_within_bounds(self):
        box = Box([0.8], [4.8])
        rng = np.random.default_rng(1)
        samples = np.array([box.sample(rng) for _ in range(100)])
        assert np.all(samples >= 0.8) and np.all(samples <= 4.8)

    def test_contains(self):
        box = Box([0.0], [1.0])
        assert box.contains([0.5])
        assert not box.contains([1.5])
        assert not box.contains([0.2, 0.3])  # wrong shape

    def test_clip(self):
        box = Box([0.0, 0.0], [1.0, 1.0])
        np.testing.assert_allclose(box.clip([-1.0, 2.0]), [0.0, 1.0])

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Box([1.0], [1.0])
        with pytest.raises(ValueError):
            Box([0.0, 2.0], [1.0])

    @given(st.lists(st.floats(-1.0, 1.0), min_size=3, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_unit_scaling_roundtrip(self, unit):
        box = Box([6.0, 15.0, 0.0], [24.0, 60.0, 0.10])
        scaled = box.scale_from_unit(unit)
        assert box.contains(scaled)
        np.testing.assert_allclose(box.to_unit(scaled), unit, atol=1e-9)

    def test_scale_from_unit_clips_out_of_range(self):
        box = Box([0.0], [10.0])
        np.testing.assert_allclose(box.scale_from_unit([5.0]), [10.0])
        np.testing.assert_allclose(box.scale_from_unit([-5.0]), [0.0])

    def test_unit_midpoint(self):
        box = Box([0.8], [4.8])
        np.testing.assert_allclose(box.scale_from_unit([0.0]), [2.8])
