"""Differential identity layer: batched engine vs serial path, bitwise.

The contract under test (see ``repro/abr/batched.py``): for every ABR
protocol, playing a frozen corpus through the
:class:`~repro.abr.batched.BatchedSessionEngine` at any batch width
produces :class:`~repro.abr.simulator.SessionResult`s whose every float
is **byte-for-byte** equal to the serial :func:`run_session` loop --
including ragged batches where sessions finish at different chunk
counts and lanes are refilled mid-run.

Float comparisons go through ``tobytes()`` so that even a sign-flipped
zero or an off-by-one-ulp drift fails loudly.
"""

import numpy as np
import pytest

from repro.abr.batched import (
    BatchedSessionEngine,
    SessionSpec,
    resolve_batch_size,
    run_batched_sessions,
)
from repro.abr.features import feature_dim
from repro.abr.protocols import MPC, BufferBased, RateBased, run_session
from repro.abr.protocols.bola import Bola
from repro.abr.protocols.pensieve import PensieveAgent
from repro.abr.video import Video
from repro.rl.policy import ActorCritic
from repro.rl.running_stat import RunningMeanStd
from repro.rl.spaces import Discrete
from repro.traces.trace import Trace

BATCH_SIZES = (1, 2, 7, 32)

# -- frozen corpus -----------------------------------------------------------
#
# Three videos of different lengths (so sessions retire at different
# chunk rounds: the ragged case) x six traces, half replayed
# chunk-indexed, half by wall-clock time.


@pytest.fixture(scope="module")
def videos():
    return [
        Video.synthetic(n_chunks=20, seed=0),
        Video.synthetic(n_chunks=13, seed=1),
        Video.synthetic(n_chunks=20, seed=2),
    ]


@pytest.fixture(scope="module")
def traces():
    rng = np.random.default_rng(7)
    return [
        Trace.from_steps(rng.uniform(0.4, 5.5, size=12), 4.0, name=f"t{i}")
        for i in range(6)
    ]


@pytest.fixture(scope="module")
def corpus(videos, traces):
    return [
        SessionSpec(
            video=video, bandwidth=trace, chunk_indexed=(i % 2 == 0)
        )
        for i, trace in enumerate(traces)
        for video in videos
    ]


def make_pensieve(deterministic: bool = True) -> PensieveAgent:
    policy = ActorCritic(
        feature_dim(6), Discrete(6), hidden=(64, 32),
        rng=np.random.default_rng(3),
    )
    obs_rms = RunningMeanStd(shape=(feature_dim(6),))
    obs_rms.update(np.random.default_rng(4).uniform(0.0, 3.0, size=(64, feature_dim(6))))
    return PensieveAgent(policy, obs_rms=obs_rms, deterministic=deterministic)


PROTOCOLS = {
    "bb": BufferBased,
    "bola": Bola,
    "mpc": lambda: MPC(horizon=4),
    "rb": RateBased,  # exercises the GenericBatched fallback adapter
    "pensieve": make_pensieve,
}


def _bytes(values) -> bytes:
    return np.asarray(values, dtype=float).tobytes()


def assert_sessions_identical(a, b) -> None:
    """Bitwise SessionResult equality (floats compared as raw bytes)."""
    assert a.qualities == b.qualities
    assert _bytes(a.bitrates_kbps) == _bytes(b.bitrates_kbps)
    assert _bytes(a.rebuffer_seconds) == _bytes(b.rebuffer_seconds)
    assert _bytes(a.download_seconds) == _bytes(b.download_seconds)
    assert _bytes(a.buffer_seconds) == _bytes(b.buffer_seconds)
    assert _bytes([a.qoe_total, a.qoe_mean, a.total_rebuffer]) == _bytes(
        [b.qoe_total, b.qoe_mean, b.total_rebuffer]
    )
    assert len(a.chunks) == len(b.chunks)
    for ca, cb in zip(a.chunks, b.chunks):
        assert (ca.chunk_index, ca.quality, ca.done) == (cb.chunk_index, cb.quality, cb.done)
        assert _bytes(
            [ca.bitrate_kbps, ca.size_bytes, ca.download_seconds,
             ca.rebuffer_seconds, ca.sleep_seconds, ca.buffer_seconds, ca.qoe]
        ) == _bytes(
            [cb.bitrate_kbps, cb.size_bytes, cb.download_seconds,
             cb.rebuffer_seconds, cb.sleep_seconds, cb.buffer_seconds, cb.qoe]
        )


def serial_reference(corpus, factory):
    policy = factory()
    return [
        run_session(
            spec.video, spec.bandwidth, policy,
            weights=spec.weights, chunk_indexed=spec.chunk_indexed,
        )
        for spec in corpus
    ]


class TestSerialBatchedIdentity:
    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_bitwise_equal_at_every_width(self, corpus, name, batch_size):
        serial = serial_reference(corpus, PROTOCOLS[name])
        batched = run_batched_sessions(corpus, PROTOCOLS[name](), batch_size)
        for a, b in zip(serial, batched):
            assert_sessions_identical(a, b)

    def test_corpus_is_ragged(self, corpus):
        """The fixture really exercises uneven retirement + lane refill."""
        lengths = {spec.video.n_chunks for spec in corpus}
        assert len(lengths) > 1


class TestBatchInvariance:
    """Session results are independent of batch composition and order."""

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_solo_equals_shuffled_batch(self, corpus, name):
        solo = [
            run_batched_sessions([spec], PROTOCOLS[name](), 1)[0]
            for spec in corpus
        ]
        for perm_seed in (0, 1, 2):
            order = np.random.default_rng(perm_seed).permutation(len(corpus))
            shuffled = [corpus[i] for i in order]
            batched = run_batched_sessions(shuffled, PROTOCOLS[name](), 7)
            for pos, i in enumerate(order):
                assert_sessions_identical(solo[i], batched[pos])

    def test_stochastic_rng_streams_never_cross_contaminate(self, corpus):
        """Per-session RNG streams depend only on the session's seed.

        A stochastic Pensieve session must consume exactly its own
        stream: evaluating it alone, or inside any permutation of the
        full batch, yields identical bytes.  (The serial reference for
        stochastic batched evaluation is the engine at batch size 1 --
        the serial ``PensieveAgent`` threads one generator across all
        sessions, which no batch order could or should reproduce.)
        """
        seeded = [
            SessionSpec(
                video=spec.video, bandwidth=spec.bandwidth,
                chunk_indexed=spec.chunk_indexed, weights=spec.weights,
                seed=100 + i,
            )
            for i, spec in enumerate(corpus)
        ]
        factory = lambda: make_pensieve(deterministic=False)  # noqa: E731
        solo = [run_batched_sessions([spec], factory(), 1)[0] for spec in seeded]
        for perm_seed in (0, 1):
            order = np.random.default_rng(perm_seed).permutation(len(seeded))
            batched = run_batched_sessions([seeded[i] for i in order], factory(), 5)
            for pos, i in enumerate(order):
                assert_sessions_identical(solo[i], batched[pos])

    def test_engine_batch1_matches_serial_pensieve_stochastic(self, videos, traces):
        """At width 1 the engine is bitwise-serial even for sampling.

        ``SessionSpec.seed = s`` spins up ``default_rng(SeedSequence(s))``
        -- the same stream ``PensieveAgent(seed=s)`` draws from -- and a
        one-lane forward has the exact serial shapes.
        """
        spec = SessionSpec(video=videos[0], bandwidth=traces[0], seed=42)
        agent = make_pensieve(deterministic=False)
        agent._rng = np.random.default_rng(42)
        serial = run_session(spec.video, spec.bandwidth, agent)
        batched = run_batched_sessions(
            [spec], make_pensieve(deterministic=False), 1
        )[0]
        assert_sessions_identical(serial, batched)


class TestEngineBasics:
    def test_resolve_batch_size(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_SIZE", raising=False)
        assert resolve_batch_size(None) == 0
        assert resolve_batch_size(4) == 4
        monkeypatch.setenv("REPRO_BATCH_SIZE", "16")
        assert resolve_batch_size(None) == 16
        assert resolve_batch_size(2) == 2
        monkeypatch.setenv("REPRO_BATCH_SIZE", "nope")
        with pytest.raises(ValueError):
            resolve_batch_size(None)
        with pytest.raises(ValueError):
            resolve_batch_size(-1)

    def test_resolve_batch_size_env_errors_name_the_variable(self, monkeypatch):
        # A malformed or negative $REPRO_BATCH_SIZE must blame the
        # environment variable, not some callsite argument.
        for bad in ("2.5", "nan", "16x", "- 1"):
            monkeypatch.setenv("REPRO_BATCH_SIZE", bad)
            with pytest.raises(ValueError, match=r"\$REPRO_BATCH_SIZE"):
                resolve_batch_size(None)
        monkeypatch.setenv("REPRO_BATCH_SIZE", "-3")
        with pytest.raises(ValueError, match=r"\$REPRO_BATCH_SIZE must be >= 0"):
            resolve_batch_size(None)
        # ... while a bad explicit argument is reported as such.
        monkeypatch.delenv("REPRO_BATCH_SIZE", raising=False)
        with pytest.raises(ValueError, match="batch size must be >= 0"):
            resolve_batch_size(-3)
        # Whitespace and an explicit argument win over the environment.
        monkeypatch.setenv("REPRO_BATCH_SIZE", "  12  ")
        assert resolve_batch_size(None) == 12
        monkeypatch.setenv("REPRO_BATCH_SIZE", "nope")
        assert resolve_batch_size(8) == 8

    def test_engine_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            BatchedSessionEngine(BufferBased(), batch_size=0)

    def test_results_in_spec_order(self, corpus):
        results = run_batched_sessions(corpus, BufferBased(), 4)
        for spec, result in zip(corpus, results):
            assert len(result.chunks) == spec.video.n_chunks

    def test_pensieve_rejects_mismatched_ladder(self, traces):
        video = Video.synthetic(n_chunks=6, seed=9)
        agent = make_pensieve()
        bad = Video(
            chunk_sizes_bytes=video.chunk_sizes_bytes[:, :4],
            bitrates_kbps=video.bitrates_kbps[:4],
        )
        with pytest.raises(ValueError):
            run_batched_sessions(
                [SessionSpec(video=bad, bandwidth=traces[0])], agent, 2
            )
