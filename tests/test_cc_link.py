"""Tests for the time-varying link (repro.cc.link)."""

import pytest

from repro.cc.link import TimeVaryingLink
from repro.cc.packet import MSS_BYTES, Packet


def make_packet(seq=0):
    return Packet(seq=seq, size_bytes=MSS_BYTES, sent_time=0.0,
                  delivered_at_send=0, delivered_time_at_send=0.0)


class TestTimeVaryingLink:
    def test_condition_validation(self):
        link = TimeVaryingLink(10.0, 40.0)
        with pytest.raises(ValueError):
            link.set_conditions(0.0, 40.0, 0.0)
        with pytest.raises(ValueError):
            link.set_conditions(10.0, -1.0, 0.0)
        with pytest.raises(ValueError):
            link.set_conditions(10.0, 40.0, 1.5)

    def test_queue_size_validation(self):
        with pytest.raises(ValueError):
            TimeVaryingLink(10.0, 40.0, queue_packets=0)

    def test_service_time(self):
        link = TimeVaryingLink(12.0, 40.0)
        # 1500 bytes at 12 Mbps = 1 ms.
        assert link.service_time(make_packet()) == pytest.approx(0.001)

    def test_one_way_delay_is_half_latency(self):
        link = TimeVaryingLink(12.0, 40.0)
        assert link.one_way_delay_s == pytest.approx(0.020)

    def test_queue_full(self):
        link = TimeVaryingLink(12.0, 40.0, queue_packets=2)
        assert not link.queue_full
        link.enqueue(make_packet(0))
        link.enqueue(make_packet(1))
        assert link.queue_full

    def test_queuing_delay_estimate(self):
        link = TimeVaryingLink(12.0, 40.0)
        for i in range(10):
            link.enqueue(make_packet(i))
        # 10 * 1500 bytes at 12 Mbps = 10 ms.
        assert link.queuing_delay_estimate_s() == pytest.approx(0.010)

    def test_enqueue_dequeue_track_queue_bytes(self):
        link = TimeVaryingLink(12.0, 40.0)
        link.enqueue(make_packet(0))
        link.enqueue(make_packet(1))
        assert link.queue_bytes() == 2 * MSS_BYTES
        out = link.dequeue()
        assert out.seq == 0
        assert link.queue_bytes() == MSS_BYTES
        link.dequeue()
        assert link.queue_bytes() == 0

    def test_conditions_update(self):
        link = TimeVaryingLink(12.0, 40.0)
        link.set_conditions(24.0, 15.0, 0.05)
        assert link.bandwidth_mbps == 24.0
        assert link.latency_ms == 15.0
        assert link.loss_rate == 0.05
