"""Tests for analysis statistics and ASCII reporting (repro.analysis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ascii_cdf,
    ascii_timeseries,
    bootstrap_ci,
    cdf,
    format_table,
    fraction_better,
    percentile,
    qoe_ratio_summary,
)


class TestCdf:
    def test_sorted_and_normalized(self):
        x, y = cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(y, [1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf([])

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_cdf_is_monotone_and_ends_at_one(self, values):
        x, y = cdf(values)
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(y) > 0)
        assert y[-1] == 1.0


class TestStats:
    def test_percentile(self):
        assert percentile(range(101), 95) == pytest.approx(95.0)

    def test_fraction_better(self):
        assert fraction_better([2, 2, 0], [1, 3, -1]) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            fraction_better([1], [1, 2])
        with pytest.raises(ValueError):
            fraction_better([], [])

    def test_qoe_ratio_summary(self):
        other = [2.0, 3.0, 4.0]
        targeted = [1.0, 1.5, 1.0]
        s = qoe_ratio_summary(other, targeted)
        np.testing.assert_allclose(s.mean, np.mean([2.0, 2.0, 4.0]))
        assert s.max == 4.0
        assert s.fraction_other_better == 1.0
        assert s.n == 3

    def test_qoe_ratio_floors_negative_values(self):
        s = qoe_ratio_summary([1.0], [-5.0], floor=0.05)
        assert s.mean == pytest.approx(1.0 / 0.05)

    def test_bootstrap_ci_contains_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 1.0, 200)
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo < 10.0 < hi
        assert hi - lo < 1.0

    def test_bootstrap_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["name", "qoe"], [["mpc", 1.23456], ["bb", 0.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.235" in lines[2]
        assert lines[0].startswith("name")

    def test_ascii_cdf_contains_legend_and_marks(self):
        out = ascii_cdf({"mpc": [1, 2, 3], "bb": [2, 3, 4]})
        assert "a=mpc" in out and "b=bb" in out
        assert "a" in out and "b" in out

    def test_ascii_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf({})

    def test_ascii_timeseries_shape(self):
        out = ascii_timeseries(np.sin(np.linspace(0, 6, 200)), width=40, height=8)
        lines = out.splitlines()
        assert len(lines) == 9
        assert out.count("*") == 40  # one mark per column

    def test_ascii_timeseries_constant_series(self):
        out = ascii_timeseries([5.0, 5.0, 5.0])
        assert "*" in out

    def test_ascii_timeseries_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_timeseries([])
