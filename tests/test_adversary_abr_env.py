"""Tests for the ABR adversary environment (repro.adversary.abr_env)."""

import numpy as np
import pytest

from repro.abr.protocols import BufferBased
from repro.abr.video import Video
from repro.adversary.abr_env import (
    ABR_BW_HIGH_MBPS,
    ABR_BW_LOW_MBPS,
    AbrAdversaryEnv,
    train_abr_adversary,
)
from repro.rl.ppo import PPOConfig


@pytest.fixture
def video():
    return Video.synthetic(n_chunks=12, seed=0)


@pytest.fixture
def env(video):
    policy = BufferBased()
    return AbrAdversaryEnv(policy, video)


class TestActionMapping:
    def test_unit_zero_maps_to_midpoint(self, env):
        mid = (ABR_BW_LOW_MBPS + ABR_BW_HIGH_MBPS) / 2.0
        assert env.action_to_bandwidth(np.array([0.0])) == pytest.approx(mid)

    def test_out_of_range_actions_clipped(self, env):
        assert env.action_to_bandwidth(np.array([5.0])) == ABR_BW_HIGH_MBPS
        assert env.action_to_bandwidth(np.array([-5.0])) == ABR_BW_LOW_MBPS

    def test_invalid_bounds_rejected(self, video):
        with pytest.raises(ValueError):
            AbrAdversaryEnv(BufferBased(), video, bw_low_mbps=2.0, bw_high_mbps=1.0)


class TestEpisode:
    def test_episode_length_is_video_length(self, env, video):
        env.reset()
        steps = 0
        done = False
        while not done:
            _obs, _r, done, _info = env.step(np.array([0.0]))
            steps += 1
        assert steps == video.n_chunks

    def test_observation_shape_is_stacked_history(self, env, video):
        obs = env.reset()
        assert obs.shape == ((5 + video.n_bitrates) * env.history_len,)
        obs2, *_ = env.step(np.array([0.0]))
        assert obs2.shape == obs.shape

    def test_step_before_reset_raises(self, video):
        env = AbrAdversaryEnv(BufferBased(), video)
        with pytest.raises(RuntimeError):
            env.step(np.array([0.0]))

    def test_step_after_done_raises(self, env, video):
        env.reset()
        for _ in range(video.n_chunks):
            env.step(np.array([0.0]))
        with pytest.raises(RuntimeError):
            env.step(np.array([0.0]))

    def test_chosen_bandwidths_recorded(self, env):
        env.reset()
        env.step(np.array([1.0]))
        env.step(np.array([-1.0]))
        assert env.chosen_bandwidths() == [ABR_BW_HIGH_MBPS, ABR_BW_LOW_MBPS]


class TestRewardStructure:
    def test_reward_matches_equation_1_components(self, env):
        env.reset()
        _obs, reward, _done, info = env.step(np.array([0.3]))
        assert reward == pytest.approx(
            info["r_opt"] - info["r_protocol"] - info["smoothing"]
        )

    def test_r_opt_dominates_r_protocol(self, env, video):
        """The optimum over the window can never be beaten by the target."""
        env.reset()
        rng = np.random.default_rng(0)
        done = False
        while not done:
            _obs, _r, done, info = env.step(rng.uniform(-1, 1, 1))
            assert info["r_opt"] >= info["r_protocol"] - 1e-9

    def test_first_step_has_no_smoothing_penalty(self, env):
        env.reset()
        _obs, _r, _d, info = env.step(np.array([0.7]))
        assert info["smoothing"] == 0.0

    def test_smoothing_is_bandwidth_delta(self, env):
        env.reset()
        env.step(np.array([1.0]))
        _obs, _r, _d, info = env.step(np.array([-1.0]))
        assert info["smoothing"] == pytest.approx(ABR_BW_HIGH_MBPS - ABR_BW_LOW_MBPS)

    def test_smoothing_weight_scales_penalty(self, video):
        heavy = AbrAdversaryEnv(BufferBased(), video, smoothing_weight=10.0)
        light = AbrAdversaryEnv(BufferBased(), video, smoothing_weight=0.0)
        rewards = {}
        for name, e in (("heavy", heavy), ("light", light)):
            e.reset()
            e.step(np.array([1.0]))
            _o, r, _d, info = e.step(np.array([-1.0]))
            rewards[name] = (r, info)
        assert rewards["heavy"][0] < rewards["light"][0]


class TestTraining:
    def test_short_training_runs_and_reports(self, video):
        cfg = PPOConfig(n_steps=128, batch_size=64, hidden=(8,))
        result = train_abr_adversary(
            BufferBased(), video, total_steps=256, seed=0, config=cfg
        )
        assert len(result.history) == 2
        assert result.trainer.total_steps == 256
