"""Tests for the REINFORCE baseline trainer (repro.rl.reinforce)."""

import numpy as np

from repro.rl.reinforce import Reinforce, ReinforceConfig
from tests.toy_envs import MatchParityEnv, TargetPointEnv


class TestReinforce:
    def test_learns_discrete_task(self):
        cfg = ReinforceConfig(episodes_per_update=8, learning_rate=3e-3)
        trainer = Reinforce(MatchParityEnv(), cfg, seed=0)
        history = trainer.learn(8000)
        early = np.mean([h["mean_episode_reward"] for h in history[:3]])
        late = np.mean([h["mean_episode_reward"] for h in history[-3:]])
        assert late > early + 2.0

    def test_learns_continuous_task(self):
        cfg = ReinforceConfig(episodes_per_update=8, learning_rate=5e-3)
        trainer = Reinforce(TargetPointEnv(target=0.4), cfg, seed=1)
        history = trainer.learn(6000)
        early = np.mean([h["mean_episode_reward"] for h in history[:3]])
        late = np.mean([h["mean_episode_reward"] for h in history[-3:]])
        assert late > early + 1.0

    def test_history_fields(self):
        trainer = Reinforce(MatchParityEnv(), ReinforceConfig(episodes_per_update=2), seed=0)
        history = trainer.learn(32)
        assert {"pi_loss", "v_loss", "entropy", "steps", "mean_episode_reward"} <= set(
            history[0]
        )

    def test_predict_runs(self):
        trainer = Reinforce(MatchParityEnv(), seed=0)
        trainer.learn(64)
        action = trainer.predict(np.array([1.0]))
        assert action in (0, 1)
