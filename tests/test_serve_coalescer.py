"""Tests for the micro-batching coalescer (repro.serve.coalescer).

The suite has no asyncio plugin, so every test drives its own event loop
via ``asyncio.run`` -- which also mirrors how the CLI runs the server.
"""

import asyncio

import pytest

from repro.serve import Coalescer


def run(coro):
    return asyncio.run(coro)


def echo_batches(log):
    """A process callback that records each window it sees."""
    def process(items):
        log.append(list(items))
        return [f"r:{item}" for item in items]
    return process


class TestWindows:
    def test_single_request(self):
        log = []

        async def main():
            c = Coalescer(echo_batches(log), max_batch=8)
            await c.start()
            result = await c.submit("a")
            await c.close()
            return result

        assert run(main()) == "r:a"
        assert log == [["a"]]

    def test_concurrent_requests_coalesce_into_one_window(self):
        log = []

        async def main():
            c = Coalescer(echo_batches(log), max_batch=16)
            await c.start()
            results = await asyncio.gather(*(c.submit(i) for i in range(10)))
            await c.close()
            return results

        assert run(main()) == [f"r:{i}" for i in range(10)]
        assert log == [list(range(10))]
        # (occupancy accounting checked in TestStats)

    def test_overflow_spills_to_next_window(self):
        log = []

        async def main():
            c = Coalescer(echo_batches(log), max_batch=4)
            await c.start()
            results = await asyncio.gather(*(c.submit(i) for i in range(10)))
            await c.close()
            return results, c.stats()

        results, stats = run(main())
        assert results == [f"r:{i}" for i in range(10)]
        # Nothing dropped, no window over max_batch, arrival order kept.
        assert [i for w in log for i in w] == list(range(10))
        assert all(len(w) <= 4 for w in log)
        assert len(log[0]) == 4
        assert stats["spills"] >= 1
        assert stats["max_occupancy"] == 4
        assert stats["items"] == 10

    def test_max_wait_fills_window(self):
        log = []

        async def main():
            c = Coalescer(echo_batches(log), max_batch=3, max_wait_us=50_000)
            await c.start()
            first = asyncio.ensure_future(c.submit("a"))
            await asyncio.sleep(0.005)  # arrive within the wait window
            rest = await asyncio.gather(c.submit("b"), c.submit("c"))
            await c.close()
            return [await first] + list(rest)

        assert run(main()) == ["r:a", "r:b", "r:c"]
        assert log == [["a", "b", "c"]]

    def test_max_wait_timeout_serves_partial_window(self):
        log = []

        async def main():
            c = Coalescer(echo_batches(log), max_batch=64, max_wait_us=1_000)
            await c.start()
            result = await c.submit("lone")
            await c.close()
            return result

        assert run(main()) == "r:lone"
        assert log == [["lone"]]


class TestLifecycle:
    def test_close_with_empty_queue(self):
        async def main():
            c = Coalescer(echo_batches([]), max_batch=4)
            await c.start()
            await c.close()
            return c.windows

        assert run(main()) == 0

    def test_close_drains_submitted_requests(self):
        log = []

        async def main():
            c = Coalescer(echo_batches(log), max_batch=4)
            await c.start()
            pending = [asyncio.ensure_future(c.submit(i)) for i in range(6)]
            await asyncio.sleep(0)  # let the submit tasks enqueue
            await c.close()  # must serve everything already submitted
            return await asyncio.gather(*pending)

        assert run(main()) == [f"r:{i}" for i in range(6)]
        assert sum(len(w) for w in log) == 6

    def test_submit_after_close_raises(self):
        async def main():
            c = Coalescer(echo_batches([]), max_batch=4)
            await c.start()
            await c.close()
            with pytest.raises(RuntimeError):
                await c.submit("late")

        run(main())

    def test_submit_before_start_raises(self):
        async def main():
            c = Coalescer(echo_batches([]), max_batch=4)
            with pytest.raises(RuntimeError):
                await c.submit("early")

        run(main())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Coalescer(lambda items: items, max_batch=0)
        with pytest.raises(ValueError):
            Coalescer(lambda items: items, max_wait_us=-1.0)


class TestErrorPropagation:
    def test_per_item_exception_rejects_only_that_future(self):
        def process(items):
            return [ValueError("bad") if i == "bad" else f"r:{i}" for i in items]

        async def main():
            c = Coalescer(process, max_batch=8)
            await c.start()
            results = await asyncio.gather(
                c.submit("a"), c.submit("bad"), c.submit("b"),
                return_exceptions=True,
            )
            await c.close()
            return results

        a, bad, b = run(main())
        assert a == "r:a" and b == "r:b"
        assert isinstance(bad, ValueError)

    def test_process_raise_rejects_whole_window(self):
        def process(items):
            raise RuntimeError("boom")

        async def main():
            c = Coalescer(process, max_batch=8)
            await c.start()
            results = await asyncio.gather(
                c.submit("a"), c.submit("b"), return_exceptions=True
            )
            await c.close()
            return results

        results = run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_result_count_mismatch_rejects_window(self):
        async def main():
            c = Coalescer(lambda items: ["only-one"], max_batch=8)
            await c.start()
            results = await asyncio.gather(
                c.submit("a"), c.submit("b"), return_exceptions=True
            )
            await c.close()
            return results

        results = run(main())
        assert all(isinstance(r, RuntimeError) for r in results)


class TestStats:
    def test_occupancy_accounting(self):
        async def main():
            c = Coalescer(lambda items: list(items), max_batch=8)
            await c.start()
            await asyncio.gather(*(c.submit(i) for i in range(8)))
            await c.submit("x")
            await c.close()
            return c.stats()

        stats = run(main())
        assert stats["items"] == 9
        assert stats["windows"] >= 2
        assert stats["max_occupancy"] == 8
        assert stats["mean_occupancy"] == pytest.approx(
            stats["items"] / stats["windows"]
        )
        assert stats["queue_depth"] == 0

    def test_record_metrics(self, tmp_path):
        from repro.obs import MetricsRecorder

        recorder = MetricsRecorder(tmp_path)

        async def main():
            c = Coalescer(lambda items: list(items), max_batch=4,
                          recorder=recorder)
            await c.start()
            await asyncio.gather(*(c.submit(i) for i in range(4)))
            c.record_metrics()
            await c.close()

        run(main())
        recorder.close()
        text = (tmp_path / "metrics.jsonl").read_text()
        assert "serve/batch_occupancy" in text
        assert "serve/windows" in text
