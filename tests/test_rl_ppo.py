"""Tests for the PPO trainer (repro.rl.ppo)."""

import numpy as np
import pytest

from repro.rl.ppo import PPO, PPOConfig
from tests.toy_envs import MatchParityEnv, TargetPointEnv


class TestPPOConfig:
    def test_defaults_valid(self):
        PPOConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_steps": 0},
            {"gamma": 0.0},
            {"gamma": 1.5},
            {"gae_lambda": -0.1},
            {"clip_range": 0.0},
            {"batch_size": 0},
            {"batch_size": 999, "n_steps": 100},
            {"n_envs": 0},
            {"n_envs": -1},
            # batch_size must divide n_steps * n_envs: ragged trailing
            # minibatches would change the effective per-sample step size.
            {"n_steps": 100, "batch_size": 48},
            {"n_steps": 50, "n_envs": 2, "batch_size": 48},
        ],
    )
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ValueError):
            PPOConfig(**kwargs).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_steps": 50, "n_envs": 2, "batch_size": 100},
            {"n_steps": 50, "n_envs": 2, "batch_size": 25},
            {"n_steps": 64, "n_envs": 4, "batch_size": 64},
        ],
    )
    def test_vectorized_configs_valid(self, kwargs):
        PPOConfig(**kwargs).validate()


class TestPPOTraining:
    def test_learns_discrete_task(self):
        env = MatchParityEnv()
        ppo = PPO(env, PPOConfig(n_steps=256, n_epochs=4, learning_rate=1e-3), seed=0)
        history = ppo.learn(12 * 256)
        early = np.mean([h["mean_episode_reward"] for h in history[:2]])
        late = np.mean([h["mean_episode_reward"] for h in history[-2:]])
        assert late > early + 2.0  # clear improvement on a 16-step episode

    def test_learns_continuous_task(self):
        env = TargetPointEnv(target=0.6)
        ppo = PPO(env, PPOConfig(n_steps=256, n_epochs=4, learning_rate=3e-3), seed=1)
        history = ppo.learn(16 * 256)
        early = np.mean([h["mean_episode_reward"] for h in history[:2]])
        late = np.mean([h["mean_episode_reward"] for h in history[-3:]])
        assert late > early + 1.5  # stochastic return improves markedly
        # ... and the deterministic action moved toward the target.
        action = ppo.predict(np.array([0.5]))
        assert abs(float(np.ravel(action)[0]) - 0.6) < 0.5

    def test_history_fields(self):
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=64), seed=0)
        history = ppo.learn(64)
        assert len(history) == 1
        stats = history[0]
        for key in ("pi_loss", "v_loss", "entropy", "approx_kl", "steps",
                    "mean_episode_reward"):
            assert key in stats
        assert stats["steps"] == 64

    def test_total_steps_accumulates(self):
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=64), seed=0)
        ppo.learn(64)
        ppo.learn(64)
        assert ppo.total_steps == 128

    def test_invalid_total_steps(self):
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=64), seed=0)
        with pytest.raises(ValueError):
            ppo.learn(0)

    def test_callback_invoked_per_iteration(self):
        calls = []
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=64), seed=0)
        ppo.learn(3 * 64, callback=lambda trainer, stats: calls.append(stats["steps"]))
        assert calls == [64, 128, 192]

    def test_target_kl_early_stop_flag(self):
        cfg = PPOConfig(n_steps=64, n_epochs=20, learning_rate=0.05, target_kl=1e-6)
        ppo = PPO(MatchParityEnv(), cfg, seed=0)
        history = ppo.learn(64)
        assert history[0]["early_stop"]

    def test_determinism_same_seed(self):
        h1 = PPO(MatchParityEnv(), PPOConfig(n_steps=128), seed=7).learn(256)
        h2 = PPO(MatchParityEnv(), PPOConfig(n_steps=128), seed=7).learn(256)
        assert h1[-1]["mean_episode_reward"] == h2[-1]["mean_episode_reward"]

    def test_predict_deterministic(self):
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=64), seed=0)
        ppo.learn(64)
        obs = np.array([1.0])
        assert all(ppo.predict(obs) == ppo.predict(obs) for _ in range(5))


class TestPPOPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=128), seed=0)
        ppo.learn(256)
        path = tmp_path / "model.npz"
        ppo.save(path)
        fresh = PPO(MatchParityEnv(), PPOConfig(n_steps=128), seed=99)
        fresh.load(path)
        obs = np.array([1.0])
        assert ppo.predict(obs) == fresh.predict(obs)
        np.testing.assert_allclose(fresh.obs_rms.mean, ppo.obs_rms.mean)

    def test_roundtrip_is_bitwise(self, tmp_path):
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=128), seed=0)
        ppo.learn(256)
        ppo.save(tmp_path / "model.npz")
        fresh = PPO(MatchParityEnv(), PPOConfig(n_steps=128), seed=99)
        fresh.load(tmp_path / "model.npz")
        for w, v in zip(ppo.policy.get_weights(), fresh.policy.get_weights()):
            assert np.array_equal(w, v)
        assert np.array_equal(fresh.obs_rms.mean, ppo.obs_rms.mean)
        assert np.array_equal(fresh.obs_rms.var, ppo.obs_rms.var)
        assert fresh.obs_rms.count == ppo.obs_rms.count

    @pytest.mark.parametrize(
        "save_name, load_name",
        [
            ("model", "model"),          # np.savez appends .npz on save
            ("model", "model.npz"),
            ("model.npz", "model"),
            ("model.npz", "model.npz"),
            ("model.v2", "model.v2"),    # dotted stems must not be clobbered
        ],
    )
    def test_path_suffix_variants_roundtrip(self, tmp_path, save_name, load_name):
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=128), seed=0)
        ppo.learn(128)
        ppo.save(tmp_path / save_name)
        fresh = PPO(MatchParityEnv(), PPOConfig(n_steps=128), seed=99)
        fresh.load(str(tmp_path / load_name))  # str and Path both accepted
        assert ppo.predict(np.array([1.0])) == fresh.predict(np.array([1.0]))

    def test_checkpoint_path_normalization(self):
        from pathlib import Path

        assert PPO.checkpoint_path("m") == Path("m.npz")
        assert PPO.checkpoint_path("m.npz") == Path("m.npz")
        assert PPO.checkpoint_path(Path("d/m.v2")) == Path("d/m.v2.npz")

    def test_load_does_not_leak_file_handle(self, tmp_path):
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=128), seed=0)
        ppo.save(tmp_path / "model.npz")
        ppo.load(tmp_path / "model.npz")
        # The checkpoint can be rewritten immediately: no open handle
        # pins the old file (this is what the context manager guarantees).
        ppo.save(tmp_path / "model.npz")
        ppo.load(tmp_path / "model.npz")

    def _snapshot(self, ppo):
        return ([w.copy() for w in ppo.policy.get_weights()],
                ppo.obs_rms.mean.copy())

    def _assert_unchanged(self, ppo, snapshot):
        weights, rms_mean = snapshot
        for w, v in zip(weights, ppo.policy.get_weights()):
            assert np.array_equal(w, v)
        assert np.array_equal(rms_mean, ppo.obs_rms.mean)

    def test_shape_mismatch_raises_before_mutation(self, tmp_path):
        donor = PPO(MatchParityEnv(), PPOConfig(n_steps=128, hidden=(8, 4)), seed=0)
        donor.learn(128)
        donor.save(tmp_path / "model.npz")
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=128, hidden=(32, 16)), seed=1)
        before = self._snapshot(ppo)
        with pytest.raises(ValueError, match="shape"):
            ppo.load(tmp_path / "model.npz")
        self._assert_unchanged(ppo, before)

    def test_param_count_mismatch_raises_before_mutation(self, tmp_path):
        donor = PPO(MatchParityEnv(), PPOConfig(n_steps=128, hidden=(8,)), seed=0)
        donor.save(tmp_path / "model.npz")
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=128, hidden=(32, 16)), seed=1)
        before = self._snapshot(ppo)
        with pytest.raises(ValueError, match="parameter arrays"):
            ppo.load(tmp_path / "model.npz")
        self._assert_unchanged(ppo, before)

    def test_missing_rms_arrays_raise(self, tmp_path):
        ppo = PPO(MatchParityEnv(), PPOConfig(n_steps=128), seed=0)
        ppo.save(tmp_path / "model.npz")
        with np.load(tmp_path / "model.npz") as data:
            arrays = {k: data[k] for k in data.files if not k.startswith("rms_")}
        np.savez(tmp_path / "broken.npz", **arrays)
        before = self._snapshot(ppo)
        with pytest.raises(ValueError, match="rms_"):
            ppo.load(tmp_path / "broken.npz")
        self._assert_unchanged(ppo, before)
