"""Setuptools shim; metadata lives in pyproject.toml.

The evaluation machine has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; ``python setup.py develop``
works through the classic egg-link path instead.
"""

from setuptools import setup

setup()
