#!/usr/bin/env python3
"""Extension: the adversarial framework applied to intradomain routing.

Trains an RL traffic-engineering policy (demand matrix -> link weights) on
an Abilene-like topology, then trains an adversary that redistributes a
fixed traffic volume to maximize the policy's max-link-utilization regret
against static-weight references -- section 5's "other contexts" sketched
concretely.

Run:  python examples/routing_adversary_demo.py [--steps 20000]
"""

import argparse

import numpy as np

from repro.analysis import format_table
from repro.routing import (
    UnitWeightRouting,
    abilene_like,
    gravity_demands,
    train_learned_routing,
    train_routing_adversary,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=20_000)
    args = parser.parse_args()

    graph = abilene_like()
    total = 20_000.0

    print("training RL routing policy ...")
    rl_policy, _trainer = train_learned_routing(graph, total, total_steps=args.steps)

    demands = [gravity_demands(graph, np.random.default_rng(i), total)
               for i in range(20)]
    unit = UnitWeightRouting()
    rows = [
        ["rl", float(np.mean([rl_policy.mlu(graph, d) for d in demands]))],
        ["unit weights", float(np.mean([unit.mlu(graph, d) for d in demands]))],
    ]
    print(format_table(["policy", "mean MLU on gravity demands"], rows))

    print("\ntraining routing adversary vs the RL policy ...")
    adversary = train_routing_adversary(rl_policy, graph, total,
                                        total_steps=args.steps, seed=1)
    obs = adversary.env.reset()
    regrets = []
    done = False
    while not done:
        action = adversary.trainer.predict(obs, deterministic=True)
        obs, _r, done, info = adversary.env.step(action)
        regrets.append(info["regret"])
    rand_regret = []
    for i in range(20):
        d = gravity_demands(graph, np.random.default_rng(900 + i), total)
        rand_regret.append(rl_policy.mlu(graph, d) - adversary.env.reference_mlu(d))
    print(f"\nMLU regret vs reference portfolio: "
          f"adversarial demands {np.mean(regrets):.3f}, "
          f"random gravity demands {np.mean(rand_regret):.3f}")


if __name__ == "__main__":
    main()
