#!/usr/bin/env python3
"""Working with traces: generation, statistics, persistence, interchange.

Shows the trace toolkit that everything else builds on: synthetic dataset
generators (FCC-broadband-like and 3G/HSDPA-like), random baselines over
an adversary's action space, corpus save/load, and Mahimahi-format export.

Run:  python examples/trace_tools.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import ascii_timeseries, format_table
from repro.traces.io import load_corpus, save_corpus, to_mahimahi_lines
from repro.traces.random_traces import random_abr_traces, random_cc_trace
from repro.traces.synthetic import make_dataset


def main() -> None:
    broadband = make_dataset("broadband", 5, seed=0)
    mobile = make_dataset("3g", 5, seed=0)

    rows = []
    for name, corpus in (("broadband-like", broadband), ("3g-like", mobile)):
        means = [t.mean_bandwidth() for t in corpus]
        smooth = [t.smoothness() for t in corpus]
        mins = [float(np.min(t.bandwidths_mbps)) for t in corpus]
        rows.append([name, float(np.mean(means)), float(np.mean(smooth)),
                     float(np.min(mins))])
    print(format_table(
        ["corpus", "mean bw (Mbps)", "smoothness (Mbps/step)", "deepest fade"], rows
    ))

    print("\none 3g-like trace (bandwidth over time):")
    print(ascii_timeseries(mobile[0].bandwidths_mbps, label="seconds ->"))

    # Random baselines over the two adversary action spaces.
    abr_random = random_abr_traces(3, seed=1)[0]
    cc_random = random_cc_trace(np.random.default_rng(2), n_segments=100)
    print(f"\nrandom ABR trace: {len(abr_random)} chunks, "
          f"bw in [{abr_random.bandwidths_mbps.min():.2f}, "
          f"{abr_random.bandwidths_mbps.max():.2f}] Mbps")
    print(f"random CC trace: {len(cc_random)} intervals of 30 ms, "
          f"loss up to {cc_random.loss_rates.max():.1%}")

    # Persistence round-trip and Mahimahi export.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "corpus.jsonl"
        save_corpus(broadband, path)
        restored = load_corpus(path)
        print(f"\nsaved and restored {len(restored)} traces via {path.name}")

    schedule = to_mahimahi_lines(broadband[0].slice(0.0, 5.0))
    print(f"Mahimahi export of the first 5 s: {len(schedule)} packet slots, "
          f"first 10: {schedule[:10]}")


if __name__ == "__main__":
    main()
