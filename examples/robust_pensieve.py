#!/usr/bin/env python3
"""Section 2.3 in miniature: robustifying Pensieve with adversarial traces.

Pipeline: (1) train Pensieve on a benign corpus, (2) pause near the end
and train an adversary against the frozen model, (3) generate adversarial
traces, (4) resume Pensieve's training with those traces in the corpus.
Compares the robustified model against an identically budgeted baseline,
on both the matched test set and a shifted (3G-like) one.

Run:  python examples/robust_pensieve.py [--steps 60000]
"""

import argparse

import numpy as np

from repro.abr.protocols import run_session
from repro.abr.video import Video
from repro.adversary import robustify_pensieve
from repro.analysis import format_table, percentile
from repro.traces.synthetic import make_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=60_000,
                        help="total Pensieve training steps")
    parser.add_argument("--switch", type=float, default=0.7,
                        help="fraction of training after which to inject traces")
    args = parser.parse_args()

    video = Video.synthetic(n_chunks=48, seed=1)
    corpus = make_dataset("broadband", 40, seed=100)
    test_sets = {
        "broadband": make_dataset("broadband", 30, seed=900),
        "3g (shifted)": make_dataset("3g", 30, seed=901),
    }

    print(f"running the 4-step pipeline (switch at {args.switch:.0%}) ...")
    result = robustify_pensieve(
        corpus, video,
        total_steps=args.steps,
        switch_fraction=args.switch,
        adversary_steps=max(args.steps // 2, 10_000),
        n_adversarial_traces=12,
        seed=0,
    )
    print(f"generated {len(result.adversarial_traces)} adversarial traces "
          f"(mean bandwidth "
          f"{np.mean([t.mean_bandwidth() for t in result.adversarial_traces]):.2f} Mbps)")

    rows = []
    for name, traces in test_sets.items():
        for label, agent in (("without adv.", result.baseline.agent),
                             ("with adv.", result.robust.agent)):
            qoes = [run_session(video, t, agent).qoe_mean for t in traces]
            rows.append([name, label, float(np.mean(qoes)), percentile(qoes, 5)])
    print("\n" + format_table(["test set", "variant", "mean QoE", "5th pct QoE"], rows))
    print("\n(paper: gains concentrate in the 5th percentile; "
          "largest for benign-training / harsh-testing)")


if __name__ == "__main__":
    main()
