#!/usr/bin/env python3
"""Section 5's CI story: an adversarial regression suite for ABR protocols.

"Consider the case of continuous integration, where the protocol is
changed over time, but it is desirable that all previously-fixed problems
remain fixed."

This example records adversarial worst cases against a tuned protocol,
then shows the suite (a) passing for that protocol, (b) catching a
"regression" (a mis-tuned variant), and (c) being refreshed so the test
inputs chase the current implementation instead of its history.

Run:  python examples/adversarial_regression_ci.py
"""

from repro.abr.protocols import BufferBased
from repro.abr.video import Video
from repro.adversary import AdversarialRegressionSuite


def main() -> None:
    video = Video.synthetic(n_chunks=48, seed=1)
    good = BufferBased(reservoir_s=5.0, cushion_s=10.0)

    suite = AdversarialRegressionSuite(video, margin=0.05)
    print("hunting worst cases against the current protocol ...")
    added = suite.refresh(good, adversary_steps=15_000, n_traces=10,
                          keep_worst=5, seed=0)
    print(f"recorded {len(added)} adversarial cases; thresholds: "
          + ", ".join(f"{c.min_qoe:.2f}" for c in added))

    print("\nCI run against the unchanged protocol:")
    print(suite.check(good).summary())

    # A plausible "bad patch": someone shrinks the reservoir so far that
    # the client rides the empty-buffer edge.
    regressed = BufferBased(reservoir_s=0.5, cushion_s=2.0)
    print("\nCI run against a mis-tuned patch (reservoir 0.5 s):")
    report = suite.check(regressed)
    print(report.summary())
    if not report.ok:
        print("-> the patch would be rejected before it ships.")

    print("\nrefreshing the suite against the patched protocol "
          "(per the paper: re-create the inputs that cause the exact problem) ...")
    suite.refresh(regressed, adversary_steps=15_000, n_traces=10,
                  keep_worst=3, seed=1)
    print(f"suite now has {len(suite.cases)} cases; "
          f"worst thresholds: "
          + ", ".join(f"{c.min_qoe:.2f}" for c in suite.worst_cases(3)))


if __name__ == "__main__":
    main()
