#!/usr/bin/env python3
"""Quickstart: train an RL adversary against an ABR protocol in ~1 minute.

This walks the paper's core loop end to end:

1. build a video and pick a target protocol (buffer-based rate adaptation),
2. train an adversary whose actions are the network bandwidth before each
   chunk and whose reward is Equation 1 (optimal QoE minus achieved QoE
   minus a smoothness penalty),
3. record the adversary's traces and replay them -- no adversary needed at
   replay time -- against the target and against a random-trace baseline.

Run:  python examples/quickstart.py [--steps 30000]
"""

import argparse

import numpy as np

from repro.abr.protocols import BufferBased, run_session
from repro.abr.video import Video
from repro.adversary import generate_abr_traces, train_abr_adversary
from repro.traces.random_traces import random_abr_traces


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=30_000,
                        help="adversary training steps (paper used 600k)")
    parser.add_argument("--traces", type=int, default=20,
                        help="number of adversarial traces to generate")
    args = parser.parse_args()

    video = Video.synthetic(n_chunks=48, seed=1)
    target = BufferBased()

    print(f"training adversary vs '{target.name}' for {args.steps} steps ...")
    result = train_abr_adversary(target, video, total_steps=args.steps, seed=0)
    rewards = [h["mean_episode_reward"] for h in result.history]
    print(f"  adversary episode reward: {rewards[0]:.0f} -> {rewards[-1]:.0f}")

    rolls = generate_abr_traces(result.trainer, result.env, args.traces)
    adv_qoe = [
        run_session(video, r.trace, BufferBased(), chunk_indexed=True).qoe_mean
        for r in rolls
    ]
    rand_qoe = [
        run_session(video, t, BufferBased(), chunk_indexed=True).qoe_mean
        for t in random_abr_traces(args.traces, seed=7, n_segments=video.n_chunks)
    ]
    print(f"\n{target.name} mean QoE on adversarial traces: {np.mean(adv_qoe):.3f}")
    print(f"{target.name} mean QoE on random traces:      {np.mean(rand_qoe):.3f}")
    print("\none adversarial bandwidth trace (Mbps per chunk):")
    print(np.round(rolls[0].trace.bandwidths_mbps, 2))


if __name__ == "__main__":
    main()
