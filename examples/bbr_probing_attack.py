#!/usr/bin/env python3
"""Section 4 in miniature: an RL adversary finds BBR's probing weakness.

The adversary resets (bandwidth, latency, loss) every 30 ms within the
Table 1 ranges -- all inside BBR's design envelope -- observing only link
utilization and queuing delay.  It learns to poison BBR's windowed
min-RTT and max-bandwidth filters around the probing phases, dragging
throughput well below link capacity; its recorded traces reproduce the
attack against a fresh BBR without re-running the adversary.

Run:  python examples/bbr_probing_attack.py [--steps 120000]
(Expect a few minutes at the default budget.)
"""

import argparse

import numpy as np

from repro.adversary import rollout_cc_adversary, train_cc_adversary
from repro.analysis import ascii_timeseries
from repro.cc import BBRSender
from repro.cc.metrics import run_sender_on_trace
from repro.rl.ppo import PPOConfig
from repro.traces.random_traces import random_cc_traces


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=120_000,
                        help="adversary training steps (paper used ~600k)")
    args = parser.parse_args()

    config = PPOConfig(
        n_steps=2048, batch_size=256, n_epochs=6, learning_rate=3e-4,
        ent_coef=0.001, hidden=(4,), init_log_std=-0.7, target_kl=0.03,
        gamma=0.997, gae_lambda=0.97,
    )
    print(f"training CC adversary vs BBR for {args.steps} steps ...")
    result = train_cc_adversary(
        BBRSender, total_steps=args.steps, seed=1,
        episode_intervals=1000, config=config,
    )

    roll = rollout_cc_adversary(result.trainer, result.env)
    print(f"\nonline attack: BBR at {roll.capacity_fraction:.0%} of link capacity "
          "(paper: 45-65%)")

    replay = run_sender_on_trace(BBRSender(), roll.trace, seed=99)
    print(f"trace replay against fresh BBR: {replay.capacity_fraction:.0%}")

    random_trace = random_cc_traces(1, seed=3)[0]
    baseline = run_sender_on_trace(BBRSender(), random_trace, seed=99)
    print(f"random-trace baseline:          {baseline.capacity_fraction:.0%}")

    throughput = [s.throughput_mbps for s in roll.intervals]
    bandwidth = [s.bandwidth_mbps for s in roll.intervals]
    bins = len(throughput) // 33
    tput_1s = [float(np.mean(throughput[i * 33:(i + 1) * 33])) for i in range(bins)]
    bw_1s = [float(np.mean(bandwidth[i * 33:(i + 1) * 33])) for i in range(bins)]
    print("\navailable bandwidth (Mbps, 1 s bins):")
    print(ascii_timeseries(bw_1s))
    print("BBR throughput (Mbps, 1 s bins):")
    print(ascii_timeseries(tput_1s))

    probe_times = [t for t, m in result.env.sender.mode_log if m == "PROBE_RTT"]
    print(f"\nBBR PROBE_RTT epochs during the deterministic rollout: "
          f"{[round(t, 1) for t in probe_times]} s")


if __name__ == "__main__":
    main()
