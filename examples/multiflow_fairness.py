#!/usr/bin/env python3
"""Multi-flow contention and fairness on one bottleneck.

Section 5 floats adversarial goals that only exist with several flows
(incast, induced congestion, unfairness).  This example runs the
multi-flow emulator over homogeneous and heterogeneous sender mixes and
reports goodput shares and Jain's fairness index -- the substrate a
fairness-goal adversary would attack.

Run:  python examples/multiflow_fairness.py
"""

from repro.analysis import format_table
from repro.cc import (
    BBRSender,
    CopaSender,
    CubicSender,
    MultiFlowEmulator,
    RenoSender,
    TimeVaryingLink,
)

SCENARIOS = {
    "cubic vs cubic": [CubicSender, CubicSender],
    "reno vs reno": [RenoSender, RenoSender],
    "bbr vs cubic": [BBRSender, CubicSender],
    "copa vs cubic": [CopaSender, CubicSender],
    "bbr vs cubic @2% loss": [BBRSender, CubicSender],
}


def main() -> None:
    rows = []
    for name, sender_classes in SCENARIOS.items():
        loss = 0.02 if "loss" in name else 0.0
        link = TimeVaryingLink(12.0, 40.0, loss)
        emulator = MultiFlowEmulator([cls() for cls in sender_classes], link, seed=0)
        emulator.run_until(10.0)  # warm-up
        stats = emulator.run_interval(20.0)
        rates = [s.throughput_mbps for s in stats]
        rows.append([
            name,
            *(round(r, 2) for r in rates),
            emulator.fairness(stats),
        ])
    print(format_table(
        ["scenario", "flow A (Mbps)", "flow B (Mbps)", "Jain fairness"], rows
    ))
    print("\n(1.0 = perfectly fair; the delay-based and model-based senders"
          "\n coexist with Cubic differently, and random loss starves Cubic)")


if __name__ == "__main__":
    main()
