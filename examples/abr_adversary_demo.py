#!/usr/bin/env python3
"""Section 3 in miniature: targeted adversarial traces for MPC and Pensieve.

Trains a small Pensieve, then trains one adversary against MPC and one
against Pensieve, and shows the Figure 1/2 effect: each adversary's
traces hurt *its* target far more than the other protocol -- and random
traces show no such targeted gap.

Run:  python examples/abr_adversary_demo.py [--steps 40000]
(Expect a few minutes at the default budget.)
"""

import argparse

import numpy as np

from repro.abr.protocols import MPC, BufferBased, run_session, train_pensieve
from repro.abr.video import Video
from repro.adversary import generate_abr_traces, train_abr_adversary
from repro.analysis import format_table, qoe_ratio_summary
from repro.traces.random_traces import random_abr_traces
from repro.traces.synthetic import make_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=40_000)
    parser.add_argument("--traces", type=int, default=25)
    args = parser.parse_args()

    video = Video.synthetic(n_chunks=48, seed=1)
    corpus = make_dataset("broadband", 20, seed=10) + make_dataset("3g", 20, seed=11)

    print("training Pensieve ...")
    pensieve = train_pensieve(corpus, video, total_steps=args.steps, seed=0).agent
    protocols = {"pensieve": pensieve, "mpc": MPC(robust=False), "bb": BufferBased()}

    corpora = {}
    for target_name in ("mpc", "pensieve"):
        print(f"training adversary vs {target_name} ...")
        adv = train_abr_adversary(
            protocols[target_name], video, total_steps=args.steps, seed=1
        )
        corpora[f"anti-{target_name}"] = [
            r.trace for r in generate_abr_traces(adv.trainer, adv.env, args.traces)
        ]
    corpora["random"] = random_abr_traces(args.traces, seed=7, n_segments=48)

    rows = []
    qoe = {}
    for corpus_name, traces in corpora.items():
        qoe[corpus_name] = {
            name: float(np.mean([
                run_session(video, t, policy, chunk_indexed=True).qoe_mean
                for t in traces
            ]))
            for name, policy in protocols.items()
        }
        rows.append([corpus_name, *(qoe[corpus_name][p] for p in protocols)])
    print("\nmean QoE per corpus (Figure 1 summary):")
    print(format_table(["corpus", *protocols], rows))

    anti_mpc = qoe_ratio_summary(
        [qoe["anti-mpc"]["pensieve"]], [qoe["anti-mpc"]["mpc"]]
    )
    anti_pensieve = qoe_ratio_summary(
        [qoe["anti-pensieve"]["mpc"]], [qoe["anti-pensieve"]["pensieve"]]
    )
    print(f"\npensieve/mpc QoE ratio on anti-MPC traces:      {anti_mpc.mean:.2f}x")
    print(f"mpc/pensieve QoE ratio on anti-Pensieve traces: {anti_pensieve.mean:.2f}x")
    print("(paper, at 600k steps: 2.55x and 1.38x respectively; ratios are")
    print(" floored and only meaningful once training budgets make QoE > 0)")


if __name__ == "__main__":
    main()
