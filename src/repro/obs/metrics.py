"""Metric recording: in-memory series plus an append-only JSONL event log.

:class:`MetricsRecorder` is the single sink every training and experiment
entry point reports through.  Each call appends to an in-memory series
(inspectable in tests and notebooks) and, when a log directory is
configured, to ``<log_dir>/metrics.jsonl`` -- one self-describing JSON
object per line, so a run's telemetry can be tailed while it trains and
parsed afterwards without the process that wrote it.

The default is :class:`NullRecorder`: every method is a bound no-op, so
instrumented code paths cost one attribute lookup and one call when
logging is off and nothing else -- no string formatting, no I/O, no
allocation of event dicts.  Seeded runs therefore produce bitwise
identical results with logging on or off; the recorder only *observes*.

JSONL event schema (every line)::

    {"kind": "metric"|"counter"|"timer"|"event",
     "name": str, "value": float, "step": int|null, "t": float}

``t`` is wall-clock (``time.time()``); extra keyword tags are inlined as
additional keys.  The schema is validated by tests/test_obs_metrics.py.

The default log location is taken from ``$REPRO_LOG_DIR``; with the
variable unset, :meth:`MetricsRecorder.resolve` returns the shared
:data:`NULL_RECORDER` and callers run silent (the historical behaviour).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, IO

__all__ = [
    "LOG_DIR_ENV",
    "MetricsRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Timer",
]

#: Environment variable naming the default log directory.
LOG_DIR_ENV = "REPRO_LOG_DIR"

#: Name of the event log inside a run's log directory.
METRICS_FILENAME = "metrics.jsonl"


class Timer:
    """A ``with`` block that reports its wall-clock duration.

    Used standalone (``elapsed`` after exit) or through
    :meth:`MetricsRecorder.timer`, which records the duration as a
    ``timer`` event on exit.
    """

    def __init__(self, on_exit=None) -> None:
        self._on_exit = on_exit
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self._on_exit is not None:
            self._on_exit(self.elapsed)


class MetricsRecorder:
    """In-memory metric series with an optional JSONL event log.

    Parameters
    ----------
    log_dir:
        Directory receiving ``metrics.jsonl`` (created on demand).
        ``None`` keeps everything in memory only.
    """

    def __init__(self, log_dir: str | Path | None = None) -> None:
        self.log_dir = Path(log_dir) if log_dir is not None else None
        self.series: dict[str, list[tuple[int | None, float]]] = {}
        self.counters: dict[str, int] = {}
        self._fh: IO[str] | None = None
        if self.log_dir is not None:
            self.log_dir.mkdir(parents=True, exist_ok=True)
            self._fh = (self.log_dir / METRICS_FILENAME).open(
                "a", encoding="utf-8", buffering=1
            )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_env(cls) -> "MetricsRecorder | NullRecorder":
        """The ``$REPRO_LOG_DIR`` recorder, or the no-op when unset."""
        root = os.environ.get(LOG_DIR_ENV)
        return cls(root) if root else NULL_RECORDER

    @classmethod
    def resolve(
        cls, spec: "MetricsRecorder | str | Path | bool | None"
    ) -> "MetricsRecorder":
        """Normalize a recorder spec.

        An instance passes through; a path builds a recorder logging
        there; ``None`` defers to ``$REPRO_LOG_DIR``; ``False`` is the
        no-op recorder.
        """
        if spec is False:
            return NULL_RECORDER
        if spec is None:
            return cls.from_env()
        if isinstance(spec, MetricsRecorder):
            return spec
        return cls(spec)

    @property
    def enabled(self) -> bool:
        return True

    # -- recording ---------------------------------------------------------

    def _emit(self, kind: str, name: str, value: float,
              step: int | None, tags: dict[str, Any]) -> None:
        if self._fh is not None:
            event = {"kind": kind, "name": name, "value": value,
                     "step": step, "t": time.time()}
            if tags:
                event.update(tags)
            self._fh.write(json.dumps(event) + "\n")

    def record(self, name: str, value: float, step: int | None = None,
               **tags: Any) -> None:
        """Append one sample to the series ``name`` (and the event log)."""
        value = float(value)
        self.series.setdefault(name, []).append((step, value))
        self._emit("metric", name, value, step, tags)

    def record_dict(self, metrics: dict[str, Any], step: int | None = None,
                    prefix: str = "") -> None:
        """Record every numeric entry of ``metrics`` (bools as 0/1)."""
        for key, value in metrics.items():
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)):
                self.record(f"{prefix}{key}", value, step=step)

    def count(self, name: str, n: int = 1, **tags: Any) -> None:
        """Add ``n`` to the running counter ``name``."""
        total = self.counters.get(name, 0) + int(n)
        self.counters[name] = total
        self._emit("counter", name, float(total), None, tags)

    def timer(self, name: str, step: int | None = None, **tags: Any) -> Timer:
        """A context manager recording its duration as a ``timer`` event."""
        def emit(elapsed: float) -> None:
            self.series.setdefault(name, []).append((step, elapsed))
            self._emit("timer", name, elapsed, step, tags)
        return Timer(on_exit=emit)

    def event(self, name: str, **payload: Any) -> None:
        """A free-form marker event (phase changes, checkpoints written)."""
        self._emit("event", name, 1.0, None, payload)

    # -- inspection ----------------------------------------------------------

    def values(self, name: str) -> list[float]:
        """The recorded values of one series, in record order."""
        return [v for _step, v in self.series.get(name, [])]

    def last(self, name: str, default: float | None = None) -> float | None:
        samples = self.series.get(name)
        return samples[-1][1] if samples else default

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "MetricsRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullRecorder(MetricsRecorder):
    """The zero-overhead default: records nothing, writes nothing.

    Every recording method is overridden with a bare no-op (no dict
    updates, no formatting), so instrumentation left in hot paths is free
    when observability is off.
    """

    def __init__(self) -> None:  # noqa: D107 -- no file handle, no dirs
        self.log_dir = None
        self.series = {}
        self.counters = {}
        self._fh = None

    @property
    def enabled(self) -> bool:
        return False

    def record(self, name, value, step=None, **tags) -> None:
        pass

    def record_dict(self, metrics, step=None, prefix="") -> None:
        pass

    def count(self, name, n=1, **tags) -> None:
        pass

    def timer(self, name, step=None, **tags) -> Timer:
        return Timer()

    def event(self, name, **payload) -> None:
        pass


#: Shared no-op instance; safe to use from any number of call sites.
NULL_RECORDER = NullRecorder()
