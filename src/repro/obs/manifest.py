"""Run manifests: tie every artifact to the inputs that produced it.

A :class:`RunManifest` is written as ``<log_dir>/manifest.json`` at the
start of every train/experiment entry point, so a figure or a
``results/*.txt`` file can always be traced back to the exact command,
configuration, seed entropy, package version, platform and (when the
working tree is a git checkout) code revision that produced it.

The manifest splits into two parts:

- **Deterministic identity** -- command, config, seed entropy, package
  and schema versions.  :meth:`RunManifest.fingerprint` hashes exactly
  these, so two runs configured identically produce identical
  fingerprints on any machine, at any time (tests/test_obs_manifest.py).
- **Provenance context** -- platform, python/numpy versions, git SHA,
  wall-clock start time.  Recorded for forensics, excluded from the
  fingerprint.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["RunManifest", "git_revision"]

#: Name of the manifest file inside a run's log directory.
MANIFEST_FILENAME = "manifest.json"


def git_revision(cwd: str | Path | None = None) -> str | None:
    """The current git SHA, or ``None`` outside a checkout (best effort)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _jsonable(obj: Any) -> Any:
    """Coerce config values into JSON-stable primitives, recursively."""
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, Path):
        return str(obj)
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        return [_jsonable(v) for v in items]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _jsonable(dataclasses.asdict(obj))
    return repr(obj)


@dataclass
class RunManifest:
    """Everything needed to re-run (and trust) one training/experiment run."""

    command: str
    config: dict[str, Any]
    #: ``np.random.SeedSequence(seed).entropy`` -- the run's whole random
    #: identity in one integer (``None`` for unseeded runs).
    seed_entropy: int | None = None
    version: str = ""
    #: Provenance context (not part of the fingerprint).
    python: str = field(default_factory=lambda: sys.version.split()[0])
    numpy: str = field(default_factory=lambda: np.__version__)
    platform: str = field(default_factory=platform.platform)
    git_sha: str | None = None
    started_at: float = field(default_factory=time.time)

    @classmethod
    def create(
        cls,
        command: str,
        config: dict[str, Any] | None = None,
        seed: int | None = None,
    ) -> "RunManifest":
        """Build a manifest for ``command``, resolving version and git SHA."""
        from repro import __version__

        entropy = None
        if seed is not None:
            entropy = int(np.random.SeedSequence(seed).entropy)
        return cls(
            command=command,
            config=_jsonable(config or {}),
            seed_entropy=entropy,
            version=__version__,
            git_sha=git_revision(),
        )

    def identity(self) -> dict[str, Any]:
        """The deterministic part: same inputs => same dict, anywhere."""
        return {
            "command": self.command,
            "config": _jsonable(self.config),
            "seed_entropy": self.seed_entropy,
            "version": self.version,
        }

    def fingerprint(self) -> str:
        """Hex SHA-256 of the deterministic identity (sorted-key JSON)."""
        blob = json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))
        return sha256(blob.encode()).hexdigest()

    def to_dict(self) -> dict[str, Any]:
        out = dict(self.identity())
        out.update(
            fingerprint=self.fingerprint(),
            python=self.python,
            numpy=self.numpy,
            platform=self.platform,
            git_sha=self.git_sha,
            started_at=self.started_at,
        )
        return out

    def write(self, log_dir: str | Path) -> Path:
        """Write ``manifest.json`` under ``log_dir``; returns the path."""
        log_dir = Path(log_dir)
        log_dir.mkdir(parents=True, exist_ok=True)
        path = log_dir / MANIFEST_FILENAME
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def read(cls, log_dir: str | Path) -> dict[str, Any]:
        """Load a previously written manifest as a plain dict."""
        return json.loads((Path(log_dir) / MANIFEST_FILENAME).read_text())
