"""The one console reporting path for CLI and experiment scripts.

Informational progress lines and final result tables used to be ~19
ad-hoc ``print()`` calls; they now flow through a :class:`Console` so a
``--quiet`` run suppresses the chatter while keeping the actual results,
and every line can be mirrored into the run's event log.
"""

from __future__ import annotations

import sys
from typing import IO

from repro.obs.metrics import MetricsRecorder, NULL_RECORDER

__all__ = ["Console"]


class Console:
    """Leveled stdout reporting with an optional event-log mirror.

    - :meth:`out` -- the command's actual output (tables, summaries);
      always printed.
    - :meth:`info` -- progress/confirmation chatter; suppressed by
      ``quiet``.

    Every line (printed or not) is mirrored as an ``event`` into
    ``recorder``, so a quiet logged run still keeps its narrative.
    """

    def __init__(
        self,
        quiet: bool = False,
        recorder: MetricsRecorder | None = None,
        stream: IO[str] | None = None,
    ) -> None:
        self.quiet = quiet
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.stream = stream if stream is not None else sys.stdout

    def out(self, message: str) -> None:
        """Print a result line regardless of quietness."""
        print(message, file=self.stream)
        self.recorder.event("console", level="out", message=message)

    def info(self, message: str) -> None:
        """Print a progress line unless the console is quiet."""
        if not self.quiet:
            print(message, file=self.stream)
        self.recorder.event("console", level="info", message=message)
