"""Training/eval observability: metric series, event logs, run manifests.

The stack's fourth leg (after PR 1-3's rollout, emulator and evaluation
performance work): every train/experiment entry point reports through a
:class:`MetricsRecorder` (in-memory series + append-only JSONL event
log), writes a :class:`RunManifest` tying its artifacts to the config,
seed entropy, package version and code revision that produced them, and
routes its console lines through one :class:`Console`.

The no-op default (:data:`NULL_RECORDER`) keeps the unlogged path
bitwise identical to the uninstrumented code: recording never consumes
randomness, never mutates model or environment state, and costs a bound
no-op call when disabled.  Set ``$REPRO_LOG_DIR`` (or pass
``--log-dir`` on the CLI) to turn the lights on.
"""

from repro.obs.console import Console
from repro.obs.histogram import Histogram
from repro.obs.manifest import RunManifest, git_revision
from repro.obs.metrics import (
    LOG_DIR_ENV,
    METRICS_FILENAME,
    MetricsRecorder,
    NullRecorder,
    NULL_RECORDER,
    Timer,
)

__all__ = [
    "Console",
    "Histogram",
    "LOG_DIR_ENV",
    "METRICS_FILENAME",
    "MetricsRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "RunManifest",
    "Timer",
    "git_revision",
]
