"""Log-bucketed histograms for latency-style measurements.

:class:`Histogram` records positive samples into logarithmically spaced
buckets -- O(1) per sample, a fixed few-KB footprint regardless of
sample count -- and answers quantile queries by walking the cumulative
counts.  The resolution is bounded by the bucket ratio: with the default
32 buckets per decade, a reported quantile is within ~3.7% of the true
value (count, sum, min and max are tracked exactly).

This is the serving layer's per-request latency store: recording must
not allocate or sort, because it happens once per request on the event
loop, while summaries are read rarely (``GET /stats``, shutdown).
"""

from __future__ import annotations

import math

__all__ = ["Histogram"]


class Histogram:
    """Fixed-memory log-bucket histogram over ``(0, +inf)`` samples.

    Parameters
    ----------
    lowest, highest:
        The tracked range.  Samples below ``lowest`` land in an
        underflow bucket (reported as ``lowest``), samples above
        ``highest`` in an overflow bucket (reported as the exact
        maximum seen).
    buckets_per_decade:
        Resolution: buckets spanning each 10x range.
    """

    __slots__ = (
        "lowest",
        "highest",
        "buckets_per_decade",
        "_counts",
        "_log_lo",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(
        self,
        lowest: float = 1e-6,
        highest: float = 100.0,
        buckets_per_decade: int = 32,
    ) -> None:
        if not 0 < lowest < highest:
            raise ValueError(f"need 0 < lowest < highest, got {lowest}, {highest}")
        if buckets_per_decade < 1:
            raise ValueError(f"buckets_per_decade must be >= 1, got {buckets_per_decade}")
        self.lowest = float(lowest)
        self.highest = float(highest)
        self.buckets_per_decade = int(buckets_per_decade)
        self._log_lo = math.log10(self.lowest)
        decades = math.log10(self.highest) - self._log_lo
        n = int(math.ceil(decades * self.buckets_per_decade))
        # [0] underflow, [1..n] log buckets, [n+1] overflow.
        self._counts = [0] * (n + 2)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        """Add one sample (clamped into the tracked range's buckets)."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        counts = self._counts
        if value < self.lowest:
            counts[0] += 1
            return
        idx = 1 + int((math.log10(value) - self._log_lo) * self.buckets_per_decade)
        if idx > len(counts) - 2:
            idx = len(counts) - 1
        counts[idx] += 1

    def _bucket_value(self, idx: int) -> float:
        if idx <= 0:
            return self.lowest
        if idx >= len(self._counts) - 1:
            return self.max
        # Geometric midpoint of the bucket's edge pair.
        return self.lowest * 10.0 ** ((idx - 0.5) / self.buckets_per_decade)

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1] (0 with no samples)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = math.ceil(q * self.count)
        seen = 0
        for idx, n in enumerate(self._counts):
            seen += n
            if seen >= rank:
                value = self._bucket_value(idx)
                # Never report outside the exact envelope.
                return min(max(value, self.min), self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram (same geometry)."""
        if (
            other.lowest != self.lowest
            or other.highest != self.highest
            or other.buckets_per_decade != self.buckets_per_decade
        ):
            raise ValueError("cannot merge histograms with different bucket geometry")
        for idx, n in enumerate(other._counts):
            self._counts[idx] += n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def summary(self) -> dict[str, float]:
        """Count/mean/quantiles as a plain dict (empty-safe)."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                    "p99": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.summary()
        return (
            f"Histogram(count={s['count']}, mean={s['mean']:.6g}, "
            f"p50={s['p50']:.6g}, p99={s['p99']:.6g})"
        )
