"""ASCII rendering of experiment artifacts (CDFs, time series, tables).

The benches print these so that each paper figure has a terminal-readable
counterpart; no plotting dependency is needed.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import cdf

__all__ = ["ascii_cdf", "ascii_timeseries", "format_table"]


def format_table(headers: list[str], rows: list[list], precision: int = 3) -> str:
    """Render a fixed-width table with right-aligned numeric cells."""

    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_cdf(
    series: dict[str, list | np.ndarray],
    width: int = 60,
    height: int = 12,
    x_label: str = "value",
) -> str:
    """Plot several empirical CDFs on one character grid."""
    if not series:
        raise ValueError("no series given")
    marks = "abcdefghij"
    all_values = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for mark, (name, values) in zip(marks, series.items()):
        legend.append(f"{mark}={name}")
        xs, ys = cdf(values)
        for x, y in zip(xs, ys):
            col = int((x - lo) / (hi - lo) * (width - 1))
            row = height - 1 - int(y * (height - 1))
            grid[row][col] = mark
    lines = ["1.0 |" + "".join(r) for r in grid[:1]]
    lines += ["    |" + "".join(r) for r in grid[1:-1]]
    lines += ["0.0 |" + "".join(grid[-1])]
    lines.append("    +" + "-" * width)
    lines.append(f"     {lo:<10.2f}{x_label:^{max(width - 20, 0)}}{hi:>10.2f}")
    lines.append("     " + "  ".join(legend))
    return "\n".join(lines)


def ascii_timeseries(
    values, width: int = 70, height: int = 10, label: str = ""
) -> str:
    """Plot one time series as a character grid (index on the x axis)."""
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        raise ValueError("empty series")
    lo, hi = float(values.min()), float(values.max())
    if hi <= lo:
        hi = lo + 1.0
    # Downsample to the plot width by averaging bins.
    idx = np.linspace(0, len(values), width + 1).astype(int)
    binned = np.array(
        [values[a:b].mean() if b > a else values[min(a, len(values) - 1)]
         for a, b in zip(idx[:-1], idx[1:])]
    )
    grid = [[" "] * width for _ in range(height)]
    for col, v in enumerate(binned):
        row = height - 1 - int((v - lo) / (hi - lo) * (height - 1))
        grid[row][col] = "*"
    lines = [f"{hi:>8.2f} |" + "".join(grid[0])]
    lines += ["         |" + "".join(r) for r in grid[1:-1]]
    lines.append(f"{lo:>8.2f} |" + "".join(grid[-1]))
    lines.append("         +" + "-" * width + (f"  {label}" if label else ""))
    return "\n".join(lines)
