"""Statistics used by the experiment benches."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QoERatioSummary",
    "bootstrap_ci",
    "cdf",
    "fraction_better",
    "percentile",
    "qoe_ratio_summary",
]


def cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns ``(sorted_values, P[X <= x])``."""
    x = np.sort(np.asarray(values, dtype=float))
    if len(x) == 0:
        raise ValueError("empty sample")
    y = np.arange(1, len(x) + 1) / len(x)
    return x, y


def percentile(values, q: float) -> float:
    """The ``q``-th percentile (0-100), linear interpolation."""
    return float(np.percentile(np.asarray(values, dtype=float), q))


def fraction_better(a, b) -> float:
    """Fraction of paired samples where ``a > b``.

    Used for the paper's claim that "in over 75% of the adversary's
    traces, the targeted protocol performed worse than the other".
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("paired samples must have equal shape")
    if len(a) == 0:
        raise ValueError("empty sample")
    return float(np.mean(a > b))


@dataclass
class QoERatioSummary:
    """Figure-2 style summary of per-trace QoE ratios (mean/95th/max)."""

    mean: float
    p95: float
    max: float
    fraction_other_better: float
    n: int


def qoe_ratio_summary(
    other_qoe, targeted_qoe, floor: float = 0.05
) -> QoERatioSummary:
    """Per-trace ratio of the *other* protocol's QoE to the *targeted* one's.

    Ratios are computed per paired trace; QoE values are floored at
    ``floor`` (QoE can be arbitrarily negative under rebuffering, which
    would make raw ratios meaningless).  The paper reports the mean, the
    95th percentile and the max of this ratio (Figure 2).
    """
    other = np.maximum(np.asarray(other_qoe, dtype=float), floor)
    targeted = np.maximum(np.asarray(targeted_qoe, dtype=float), floor)
    if other.shape != targeted.shape or len(other) == 0:
        raise ValueError("need equal-length, non-empty paired samples")
    ratios = other / targeted
    return QoERatioSummary(
        mean=float(ratios.mean()),
        p95=percentile(ratios, 95),
        max=float(ratios.max()),
        fraction_other_better=fraction_better(other, targeted),
        n=len(ratios),
    )


def bootstrap_ci(
    values, stat=np.mean, n_boot: int = 1000, alpha: float = 0.05, seed: int = 0
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for ``stat`` of ``values``."""
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        raise ValueError("empty sample")
    rng = np.random.default_rng(seed)
    stats = np.array(
        [stat(values[rng.integers(0, len(values), len(values))]) for _ in range(n_boot)]
    )
    return (
        float(np.quantile(stats, alpha / 2.0)),
        float(np.quantile(stats, 1.0 - alpha / 2.0)),
    )
