"""Result analysis: CDFs, QoE ratios, bootstrap CIs, ASCII reporting."""

from repro.analysis.stats import (
    bootstrap_ci,
    cdf,
    fraction_better,
    percentile,
    qoe_ratio_summary,
)
from repro.analysis.report import ascii_cdf, ascii_timeseries, format_table

__all__ = [
    "ascii_cdf",
    "ascii_timeseries",
    "bootstrap_ci",
    "cdf",
    "format_table",
    "fraction_better",
    "percentile",
    "qoe_ratio_summary",
]
