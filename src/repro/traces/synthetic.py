"""Synthetic stand-ins for the paper's external trace datasets.

The paper trains Pensieve "once on the FCC broadband traces and once on
the 3G/HSDPA mobile dataset of traces collected in Norway" (section 3.3).
Both datasets are external artifacts; we generate statistically matched
synthetic corpora instead:

- :func:`fcc_broadband_like` -- wired broadband: relatively high mean
  bandwidth, mild mean-reverting variation, occasional short dips.
- :func:`hsdpa_3g_like` -- mobile 3G: low mean bandwidth, bursty
  Markov-modulated variation, outage periods close to zero throughput
  (the Norway traces were collected on commutes through tunnels).

What matters for reproducing Figure 4 is the *distribution shift*: the
broadband corpus lacks the deep-fade challenges of the 3G corpus, so a
Pensieve trained on broadband under-performs on 3G -- exactly the gap the
adversarial traces close.
"""

from __future__ import annotations

import numpy as np

from repro.traces.trace import Trace

__all__ = ["fcc_broadband_like", "hsdpa_3g_like", "make_dataset"]


def _ou_process(
    rng: np.random.Generator,
    n: int,
    mean: float,
    theta: float,
    sigma: float,
    x0: float | None = None,
) -> np.ndarray:
    """A discretized Ornstein-Uhlenbeck (mean-reverting) process."""
    x = np.empty(n)
    x[0] = mean if x0 is None else x0
    noise = rng.standard_normal(n)
    for t in range(1, n):
        x[t] = x[t - 1] + theta * (mean - x[t - 1]) + sigma * noise[t]
    return x


def fcc_broadband_like(
    rng: np.random.Generator,
    duration: float = 320.0,
    step_seconds: float = 1.0,
    name: str = "fcc-like",
) -> Trace:
    """One synthetic broadband trace (bandwidth-only, for ABR).

    Mean link rates are drawn log-normally around ~2.8 Mbps (the FCC 2016
    corpus as pre-processed for Pensieve concentrates in 0.2--6 Mbps);
    short-timescale variation is mild.
    """
    n = max(2, int(round(duration / step_seconds)))
    base = float(np.clip(rng.lognormal(mean=np.log(2.8), sigma=0.45), 0.6, 6.0))
    bw = _ou_process(rng, n, mean=base, theta=0.08, sigma=0.12 * base)
    # Occasional brief dips (heavy cross traffic), a few per trace.
    n_dips = rng.poisson(duration / 120.0)
    for _ in range(n_dips):
        start = int(rng.integers(0, n))
        width = int(rng.integers(2, 8))
        bw[start : start + width] *= rng.uniform(0.3, 0.7)
    bw = np.clip(bw, 0.2, 8.0)
    return Trace.from_steps(bw, step_seconds, name=name)


def hsdpa_3g_like(
    rng: np.random.Generator,
    duration: float = 320.0,
    step_seconds: float = 1.0,
    name: str = "hsdpa-like",
) -> Trace:
    """One synthetic 3G/HSDPA mobility trace (bandwidth-only, for ABR).

    A three-state Markov chain (good / degraded / outage) modulates a noisy
    rate process, reproducing the deep fades and near-outages of the
    Norway commute dataset.
    """
    n = max(2, int(round(duration / step_seconds)))
    base = float(np.clip(rng.lognormal(mean=np.log(1.3), sigma=0.5), 0.3, 4.0))
    # State transition matrix rows: good, degraded, outage.
    transition = np.array(
        [
            [0.92, 0.07, 0.01],
            [0.15, 0.78, 0.07],
            [0.10, 0.30, 0.60],
        ]
    )
    state_gain = np.array([1.0, 0.35, 0.12])
    states = np.empty(n, dtype=int)
    states[0] = 0
    for t in range(1, n):
        states[t] = rng.choice(3, p=transition[states[t - 1]])
    noise = _ou_process(rng, n, mean=1.0, theta=0.25, sigma=0.25)
    bw = base * state_gain[states] * np.clip(noise, 0.1, 2.5)
    bw = np.clip(bw, 0.08, 6.0)
    return Trace.from_steps(bw, step_seconds, name=name)


def make_dataset(
    kind: str,
    n_traces: int,
    seed: int = 0,
    duration: float = 320.0,
    step_seconds: float = 1.0,
) -> list[Trace]:
    """Generate a corpus of ``n_traces`` traces of the given ``kind``.

    ``kind`` is ``"broadband"`` (FCC-like) or ``"3g"`` (HSDPA-like).
    """
    generators = {"broadband": fcc_broadband_like, "3g": hsdpa_3g_like}
    if kind not in generators:
        raise ValueError(f"unknown dataset kind {kind!r}; choose from {sorted(generators)}")
    rng = np.random.default_rng(seed)
    gen = generators[kind]
    return [
        gen(rng, duration=duration, step_seconds=step_seconds, name=f"{kind}-{i:03d}")
        for i in range(n_traces)
    ]
