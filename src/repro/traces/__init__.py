"""Network traces: representation, synthetic datasets, random baselines, I/O.

The paper consumes three families of traces:

1. benign training corpora -- the FCC broadband dataset and the 3G/HSDPA
   Norway dataset (we ship statistically matched synthetic generators in
   :mod:`repro.traces.synthetic`, since the originals are external data),
2. uniformly random traces over the adversary's action space
   (:mod:`repro.traces.random_traces`) -- the paper's baseline, and
3. adversarially generated traces (produced by :mod:`repro.adversary`).
"""

from repro.traces.random_traces import random_abr_trace, random_cc_trace
from repro.traces.synthetic import (
    fcc_broadband_like,
    hsdpa_3g_like,
    make_dataset,
)
from repro.traces.trace import Trace

__all__ = [
    "Trace",
    "fcc_broadband_like",
    "hsdpa_3g_like",
    "make_dataset",
    "random_abr_trace",
    "random_cc_trace",
]
