"""The :class:`Trace` data structure.

A trace is "a time-ordered list of network conditions like bandwidth,
latency and loss rate" (section 2.1).  Segments are piecewise constant:
segment ``i`` spans ``[timestamps[i], timestamps[i+1])`` (the final segment
extends to :attr:`duration`).  Latency and loss are optional -- ABR traces
only vary bandwidth, congestion-control traces vary all three.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["Trace"]


@dataclass
class Trace:
    """A piecewise-constant network-condition schedule."""

    timestamps: np.ndarray
    bandwidths_mbps: np.ndarray
    latencies_ms: np.ndarray | None = None
    loss_rates: np.ndarray | None = None
    name: str = "trace"
    duration: float | None = None

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=float)
        self.bandwidths_mbps = np.asarray(self.bandwidths_mbps, dtype=float)
        if self.timestamps.ndim != 1 or len(self.timestamps) == 0:
            raise ValueError("timestamps must be a non-empty 1-D array")
        if len(self.timestamps) != len(self.bandwidths_mbps):
            raise ValueError("timestamps and bandwidths must have equal length")
        if np.any(np.diff(self.timestamps) <= 0):
            raise ValueError("timestamps must be strictly increasing")
        if np.any(self.bandwidths_mbps < 0):
            raise ValueError("bandwidths must be non-negative")
        for attr in ("latencies_ms", "loss_rates"):
            val = getattr(self, attr)
            if val is not None:
                val = np.asarray(val, dtype=float)
                if len(val) != len(self.timestamps):
                    raise ValueError(f"{attr} length must match timestamps")
                setattr(self, attr, val)
        if self.loss_rates is not None and (
            np.any(self.loss_rates < 0) or np.any(self.loss_rates > 1)
        ):
            raise ValueError("loss rates must be in [0, 1]")
        if self.duration is None:
            # Assume the last segment lasts as long as the median step.
            if len(self.timestamps) > 1:
                step = float(np.median(np.diff(self.timestamps)))
            else:
                step = 1.0
            self.duration = float(self.timestamps[-1] + step - self.timestamps[0])
        if self.duration <= self.timestamps[-1] - self.timestamps[0]:
            raise ValueError("duration must extend past the last timestamp")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def constant(
        cls,
        bandwidth_mbps: float,
        duration: float,
        latency_ms: float | None = None,
        loss_rate: float | None = None,
        name: str = "constant",
    ) -> "Trace":
        """A single-segment trace with fixed conditions."""
        return cls(
            timestamps=np.array([0.0]),
            bandwidths_mbps=np.array([float(bandwidth_mbps)]),
            latencies_ms=None if latency_ms is None else np.array([float(latency_ms)]),
            loss_rates=None if loss_rate is None else np.array([float(loss_rate)]),
            name=name,
            duration=float(duration),
        )

    @classmethod
    def from_steps(
        cls,
        bandwidths_mbps,
        step_seconds: float,
        latencies_ms=None,
        loss_rates=None,
        name: str = "steps",
    ) -> "Trace":
        """Build a trace from equally spaced segments of ``step_seconds``."""
        bw = np.asarray(bandwidths_mbps, dtype=float)
        ts = np.arange(len(bw)) * float(step_seconds)
        return cls(
            timestamps=ts,
            bandwidths_mbps=bw,
            latencies_ms=latencies_ms,
            loss_rates=loss_rates,
            name=name,
            duration=len(bw) * float(step_seconds),
        )

    # -- lookup ----------------------------------------------------------------

    def _segment_at(self, t: float, loop: bool) -> int:
        rel = t - self.timestamps[0]
        if loop:
            rel = rel % self.duration
        elif rel < 0 or rel >= self.duration:
            raise ValueError(f"time {t} outside trace duration {self.duration}")
        return int(np.searchsorted(self.timestamps - self.timestamps[0], rel, side="right") - 1)

    def bandwidth_at(self, t: float, loop: bool = True) -> float:
        """Bandwidth (Mbps) at absolute time ``t`` (looping by default)."""
        return float(self.bandwidths_mbps[self._segment_at(t, loop)])

    def latency_at(self, t: float, loop: bool = True) -> float:
        if self.latencies_ms is None:
            raise ValueError("trace has no latency schedule")
        return float(self.latencies_ms[self._segment_at(t, loop)])

    def loss_at(self, t: float, loop: bool = True) -> float:
        if self.loss_rates is None:
            raise ValueError("trace has no loss schedule")
        return float(self.loss_rates[self._segment_at(t, loop)])

    def segment_end(self, index: int) -> float:
        """End time (relative to trace start) of segment ``index``."""
        if index < len(self.timestamps) - 1:
            return float(self.timestamps[index + 1] - self.timestamps[0])
        return float(self.duration)

    # -- statistics --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    def mean_bandwidth(self) -> float:
        """Time-weighted mean bandwidth over the trace (Mbps)."""
        rel = self.timestamps - self.timestamps[0]
        widths = np.diff(np.append(rel, self.duration))
        return float(np.sum(self.bandwidths_mbps * widths) / self.duration)

    def smoothness(self) -> float:
        """Mean absolute step-to-step bandwidth change (Mbps).

        This is the quantity the adversary's ``p_smoothing`` term penalizes;
        lower means a more explainable trace (section 2.1).
        """
        if len(self.bandwidths_mbps) < 2:
            return 0.0
        return float(np.mean(np.abs(np.diff(self.bandwidths_mbps))))

    # -- transforms -----------------------------------------------------------------

    def slice(self, t_start: float, t_end: float, name: str | None = None) -> "Trace":
        """Return the sub-trace covering ``[t_start, t_end)`` (no looping)."""
        if not 0.0 <= t_start < t_end <= self.duration:
            raise ValueError("invalid slice bounds")
        rel = self.timestamps - self.timestamps[0]
        first = int(np.searchsorted(rel, t_start, side="right") - 1)
        last = int(np.searchsorted(rel, t_end, side="left"))
        ts = rel[first:last].copy()
        ts[0] = t_start
        pick = slice(first, last)
        return Trace(
            timestamps=ts - t_start,
            bandwidths_mbps=self.bandwidths_mbps[pick].copy(),
            latencies_ms=None if self.latencies_ms is None else self.latencies_ms[pick].copy(),
            loss_rates=None if self.loss_rates is None else self.loss_rates[pick].copy(),
            name=name if name is not None else f"{self.name}[{t_start:.1f}:{t_end:.1f}]",
            duration=t_end - t_start,
        )

    def scaled(self, factor: float, name: str | None = None) -> "Trace":
        """Return a copy with all bandwidths multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Trace(
            timestamps=self.timestamps.copy(),
            bandwidths_mbps=self.bandwidths_mbps * factor,
            latencies_ms=None if self.latencies_ms is None else self.latencies_ms.copy(),
            loss_rates=None if self.loss_rates is None else self.loss_rates.copy(),
            name=name if name is not None else f"{self.name}x{factor:g}",
            duration=self.duration,
        )

    # -- caching ----------------------------------------------------------------------

    def __cache_state__(self) -> dict:
        """Content identity for :mod:`repro.exec.cache`: the samples only.

        ``name`` is a display label -- renaming a trace must not change
        what any session replayed over it computes, so it is excluded
        from cache keys.
        """
        return {
            "timestamps": self.timestamps,
            "bandwidths_mbps": self.bandwidths_mbps,
            "latencies_ms": self.latencies_ms,
            "loss_rates": self.loss_rates,
            "duration": self.duration,
        }

    # -- persistence -------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration": self.duration,
            "timestamps": self.timestamps.tolist(),
            "bandwidths_mbps": self.bandwidths_mbps.tolist(),
            "latencies_ms": None if self.latencies_ms is None else self.latencies_ms.tolist(),
            "loss_rates": None if self.loss_rates is None else self.loss_rates.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        return cls(
            timestamps=np.asarray(data["timestamps"], dtype=float),
            bandwidths_mbps=np.asarray(data["bandwidths_mbps"], dtype=float),
            latencies_ms=data.get("latencies_ms"),
            loss_rates=data.get("loss_rates"),
            name=data.get("name", "trace"),
            duration=data.get("duration"),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        return cls.from_dict(json.loads(Path(path).read_text()))
