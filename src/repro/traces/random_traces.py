"""Uniformly random traces over an adversary's action space.

"As a baseline, we used 200 random traces generated using the same action
space as the adversary" (section 3.1).  These are the null hypothesis for
both domains: if random traces hurt a protocol as much as adversarial
ones, the adversary has learned nothing.
"""

from __future__ import annotations

import numpy as np

from repro.traces.trace import Trace

__all__ = ["random_abr_trace", "random_abr_traces", "random_cc_trace", "random_cc_traces"]

#: ABR adversary action range (section 3): bandwidth 0.8--4.8 Mbps per chunk.
ABR_BW_RANGE_MBPS = (0.8, 4.8)

#: CC adversary action ranges (Table 1).
CC_BW_RANGE_MBPS = (6.0, 24.0)
CC_LATENCY_RANGE_MS = (15.0, 60.0)
CC_LOSS_RANGE = (0.0, 0.10)
CC_STEP_SECONDS = 0.030


def random_abr_trace(
    rng: np.random.Generator,
    n_segments: int = 48,
    step_seconds: float = 4.0,
    bw_range: tuple[float, float] = ABR_BW_RANGE_MBPS,
    name: str = "random-abr",
) -> Trace:
    """A bandwidth-only trace with one uniform draw per video chunk.

    ``step_seconds`` defaults to the 4-second chunk duration so the trace
    carries one bandwidth value per chunk, matching the online adversary's
    decision granularity.
    """
    bw = rng.uniform(bw_range[0], bw_range[1], size=n_segments)
    return Trace.from_steps(bw, step_seconds, name=name)


def random_abr_traces(
    n_traces: int, seed: int = 0, n_segments: int = 48, **kwargs
) -> list[Trace]:
    """The paper's 200-random-trace baseline corpus (count configurable)."""
    rng = np.random.default_rng(seed)
    return [
        random_abr_trace(rng, n_segments=n_segments, name=f"random-abr-{i:03d}", **kwargs)
        for i in range(n_traces)
    ]


def random_cc_trace(
    rng: np.random.Generator,
    n_segments: int = 1000,
    step_seconds: float = CC_STEP_SECONDS,
    name: str = "random-cc",
) -> Trace:
    """A full (bandwidth, latency, loss) trace with 30 ms uniform segments."""
    bw = rng.uniform(*CC_BW_RANGE_MBPS, size=n_segments)
    lat = rng.uniform(*CC_LATENCY_RANGE_MS, size=n_segments)
    loss = rng.uniform(*CC_LOSS_RANGE, size=n_segments)
    return Trace.from_steps(bw, step_seconds, latencies_ms=lat, loss_rates=loss, name=name)


def random_cc_traces(n_traces: int, seed: int = 0, n_segments: int = 1000) -> list[Trace]:
    rng = np.random.default_rng(seed)
    return [
        random_cc_trace(rng, n_segments=n_segments, name=f"random-cc-{i:03d}")
        for i in range(n_traces)
    ]
