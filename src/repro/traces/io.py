"""Trace corpus persistence.

Two formats:

- JSON-lines (one trace per line) -- the library's native corpus format.
- Mahimahi packet-delivery format (one integer millisecond timestamp per
  MTU-sized packet opportunity) -- for interchange with the emulator
  tooling the paper modified.
"""

from __future__ import annotations

from pathlib import Path

import json

import numpy as np

from repro.traces.trace import Trace

__all__ = ["load_corpus", "save_corpus", "to_mahimahi_lines", "from_mahimahi_lines"]

_MTU_BITS = 12_000  # Mahimahi's 1500-byte packet granularity.


def save_corpus(traces: list[Trace], path: str | Path) -> None:
    """Write traces as JSON lines."""
    lines = [json.dumps(t.to_dict()) for t in traces]
    Path(path).write_text("\n".join(lines) + "\n")


def load_corpus(path: str | Path) -> list[Trace]:
    """Read a JSON-lines corpus written by :func:`save_corpus`."""
    traces = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            traces.append(Trace.from_dict(json.loads(line)))
    return traces


def to_mahimahi_lines(trace: Trace) -> list[int]:
    """Convert a trace to Mahimahi's ms-per-packet schedule.

    Each output integer is a millisecond timestamp at which one MTU-sized
    packet may be delivered; a bandwidth of B Mbps yields B/12 packets per
    millisecond (1500-byte packets).
    """
    out: list[int] = []
    credit = 0.0
    duration_ms = int(round(trace.duration * 1000))
    for ms in range(duration_ms):
        bw = trace.bandwidth_at(ms / 1000.0, loop=False)
        credit += bw * 1e6 / 1000.0 / _MTU_BITS
        while credit >= 1.0:
            out.append(ms)
            credit -= 1.0
    return out


def from_mahimahi_lines(
    lines: list[int], bin_ms: int = 1000, name: str = "mahimahi"
) -> Trace:
    """Reconstruct a piecewise-constant bandwidth trace from a schedule.

    Bins packet-delivery opportunities into ``bin_ms`` windows and converts
    counts back to Mbps.
    """
    if not lines:
        raise ValueError("empty Mahimahi schedule")
    arr = np.asarray(lines, dtype=float)
    if np.any(np.diff(arr) < 0):
        raise ValueError("Mahimahi timestamps must be non-decreasing")
    duration_ms = int(arr[-1]) + 1
    n_bins = max(1, int(np.ceil(duration_ms / bin_ms)))
    counts, _ = np.histogram(arr, bins=n_bins, range=(0, n_bins * bin_ms))
    bw = counts * _MTU_BITS / (bin_ms / 1000.0) / 1e6
    return Trace.from_steps(bw, bin_ms / 1000.0, name=name)
