"""Wire schema for the ABR decision service.

One request type flows client -> server: *decide* -- "here is my player
state, which ladder index should the next chunk use?" -- plus a *close*
teardown.  The payload mirrors :class:`~repro.abr.simulator.AbrObservation`
field for field, because that is exactly what the serial protocols (and
the paper's adversary) observe; the server reconstructs the observation
and the decision is a pure function of it plus per-session policy state.

Two codecs, selected by content type and bitwise-equivalent:

- ``application/json`` -- human-readable JSON.  Python's ``json``
  serializes floats with ``repr``, which round-trips every finite
  float64 exactly, so decoding recovers the client's bytes and the
  identity guarantee (served decision == inline policy call) survives
  the wire.
- ``application/x-repro-frame`` -- a little-endian struct-packed frame
  (floats as raw IEEE-754 doubles).  ~4x cheaper to encode+decode than
  JSON; this matters because codec work is per-request and cannot be
  batched, so at high concurrency it bounds the coalescing speedup.

Validation is layered: this module enforces *shape* invariants (types,
ranges, the fresh-start rules below); the session store checks state
against the served video (ladder width, chunk accounting, in-order
delivery).  Fresh-start rules: a chunk-0 observation must describe a
client that has downloaded nothing (no last quality, empty history,
zero buffer) because server-side adapters initialize their per-lane
state exactly like a fresh :class:`StreamingSession`; a chunk-``k>0``
observation must carry the previous download (``last_quality`` set,
``last_download_seconds > 0``) because the adapters' observe hooks
replay it.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

import numpy as np

from repro.abr.simulator import AbrObservation

__all__ = [
    "CONTENT_BINARY",
    "CONTENT_JSON",
    "DecisionRequest",
    "DecisionResponse",
    "ServeError",
    "decode_request",
    "decode_response",
    "encode_error",
    "encode_request",
    "encode_response",
]

CONTENT_JSON = "application/json"
CONTENT_BINARY = "application/x-repro-frame"

#: Upper bounds keeping one frame small and parse cost flat.
MAX_SESSION_ID = 128
MAX_LADDER = 64
MAX_HISTORY = 64
MAX_BODY_BYTES = 1 << 20

_MAGIC = 0xAB
_KIND_DECIDE = 1
_KIND_CLOSE = 2
_KIND_DECISION = 3
_KIND_CLOSED = 4
_KIND_ERROR = 5

_FLAG_PROTOCOL = 1
_FLAG_SEED = 2
_FLAG_LAST_QUALITY = 4


class ServeError(Exception):
    """A request the service refuses, with an HTTP status and stable code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message


@dataclass(slots=True)
class DecisionRequest:
    """One client->server frame.

    ``protocol`` and ``seed`` are only meaningful on a session's first
    request (they configure the new session); ``close`` requests carry
    no observation and tear the session down.
    """

    session: str
    observation: AbrObservation | None
    protocol: str | None = None
    seed: int | None = None
    close: bool = False


@dataclass(slots=True)
class DecisionResponse:
    """One server->client frame: the ladder decision (or a close ack)."""

    session: str
    chunk_index: int = -1
    quality: int = -1
    bitrate_kbps: float = 0.0
    closed: bool = False


def _bad(message: str) -> ServeError:
    return ServeError(400, "bad-request", message)


def _require_float(value, name: str, minimum: float | None = None) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _bad(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise _bad(f"{name} must be finite")
    if minimum is not None and value < minimum:
        raise _bad(f"{name} must be >= {minimum}, got {value}")
    return value


def _require_int(value, name: str, minimum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(f"{name} must be an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise _bad(f"{name} must be >= {minimum}, got {value}")
    return value


def _validate_session_id(session) -> str:
    if not isinstance(session, str) or not session:
        raise _bad("session must be a non-empty string")
    if len(session) > MAX_SESSION_ID:
        raise _bad(f"session id longer than {MAX_SESSION_ID} characters")
    return session


def validate_observation(obs: AbrObservation) -> AbrObservation:
    """Enforce the shape invariants documented in the module docstring."""
    n = len(obs.next_chunk_sizes)
    if not 0 < n <= MAX_LADDER:
        raise _bad(f"next_chunk_sizes must hold 1..{MAX_LADDER} entries, got {n}")
    if len(obs.throughput_history) > MAX_HISTORY:
        raise _bad(f"throughput_history longer than {MAX_HISTORY} entries")
    if obs.chunks_remaining < 1:
        raise _bad("chunks_remaining must be >= 1 (nothing left to decide)")
    if obs.last_quality is not None and not 0 <= obs.last_quality < n:
        raise _bad(f"last_quality {obs.last_quality} outside the {n}-rung ladder")
    for size, dl in obs.throughput_history:
        if size < 0 or dl <= 0:
            raise _bad("throughput_history entries must be (size >= 0, seconds > 0)")
    if obs.chunk_index == 0:
        if (
            obs.last_quality is not None
            or obs.throughput_history
            or obs.buffer_seconds != 0.0
            or obs.last_chunk_bytes != 0.0
            or obs.last_download_seconds != 0.0
        ):
            raise _bad("a chunk-0 observation must describe a fresh client "
                       "(no last quality/history, zero buffer)")
    else:
        if obs.last_quality is None:
            raise _bad("last_quality is required after chunk 0")
        if obs.last_download_seconds <= 0.0:
            raise _bad("last_download_seconds must be > 0 after chunk 0")
        if not obs.throughput_history:
            raise _bad("throughput_history must not be empty after chunk 0")
    return obs


def _observation_from_dict(data: dict) -> AbrObservation:
    chunk_index = _require_int(data.get("chunk_index"), "chunk_index", minimum=0)
    last_quality = data.get("last_quality")
    if last_quality is not None:
        last_quality = _require_int(last_quality, "last_quality", minimum=0)
    sizes = data.get("next_chunk_sizes")
    if not isinstance(sizes, list) or not sizes:
        raise _bad("next_chunk_sizes must be a non-empty list")
    history = data.get("throughput_history", [])
    if not isinstance(history, list):
        raise _bad("throughput_history must be a list of [size, seconds] pairs")
    pairs = []
    for entry in history:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise _bad("throughput_history must be a list of [size, seconds] pairs")
        pairs.append((_require_float(entry[0], "throughput_history size"),
                      _require_float(entry[1], "throughput_history seconds")))
    obs = AbrObservation(
        chunk_index=chunk_index,
        last_quality=last_quality,
        buffer_seconds=_require_float(
            data.get("buffer_seconds"), "buffer_seconds", minimum=0.0
        ),
        last_chunk_bytes=_require_float(
            data.get("last_chunk_bytes"), "last_chunk_bytes", minimum=0.0
        ),
        last_download_seconds=_require_float(
            data.get("last_download_seconds"), "last_download_seconds", minimum=0.0
        ),
        next_chunk_sizes=np.array(
            [_require_float(s, "next_chunk_sizes entry", minimum=0.0) for s in sizes]
        ),
        chunks_remaining=_require_int(
            data.get("chunks_remaining"), "chunks_remaining", minimum=0
        ),
        throughput_history=pairs,
    )
    return validate_observation(obs)


def _observation_to_jsonable(obs: AbrObservation) -> dict:
    return {
        "chunk_index": int(obs.chunk_index),
        "last_quality": None if obs.last_quality is None else int(obs.last_quality),
        "buffer_seconds": float(obs.buffer_seconds),
        "last_chunk_bytes": float(obs.last_chunk_bytes),
        "last_download_seconds": float(obs.last_download_seconds),
        "next_chunk_sizes": [float(s) for s in obs.next_chunk_sizes],
        "chunks_remaining": int(obs.chunks_remaining),
        "throughput_history": [[float(s), float(d)] for s, d in obs.throughput_history],
    }


# ---------------------------------------------------------------------------
# JSON codec
# ---------------------------------------------------------------------------


def _decode_request_json(body: bytes) -> DecisionRequest:
    try:
        data = json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise _bad(f"invalid JSON body: {exc}") from None
    if not isinstance(data, dict):
        raise _bad("request body must be a JSON object")
    session = _validate_session_id(data.get("session"))
    close = bool(data.get("close", False))
    if close:
        return DecisionRequest(session=session, observation=None, close=True)
    protocol = data.get("protocol")
    if protocol is not None and not isinstance(protocol, str):
        raise _bad("protocol must be a string")
    seed = data.get("seed")
    if seed is not None:
        seed = _require_int(seed, "seed", minimum=0)
    obs_data = data.get("observation")
    if not isinstance(obs_data, dict):
        raise _bad("observation must be a JSON object")
    return DecisionRequest(
        session=session,
        observation=_observation_from_dict(obs_data),
        protocol=protocol,
        seed=seed,
    )


def _encode_request_json(req: DecisionRequest) -> bytes:
    if req.close:
        payload: dict = {"session": req.session, "close": True}
    else:
        payload = {"session": req.session,
                   "observation": _observation_to_jsonable(req.observation)}
        if req.protocol is not None:
            payload["protocol"] = req.protocol
        if req.seed is not None:
            payload["seed"] = req.seed
    return json.dumps(payload, separators=(",", ":")).encode()


# ---------------------------------------------------------------------------
# Binary codec
# ---------------------------------------------------------------------------

_HEAD = struct.Struct("<BBB")          # magic, kind, flags
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_OBS_FIXED = struct.Struct("<IIddd")   # chunk_index, chunks_remaining, buffer, bytes, dl


def _encode_request_binary(req: DecisionRequest) -> bytes:
    sess = req.session.encode()
    if req.close:
        return _HEAD.pack(_MAGIC, _KIND_CLOSE, 0) + _U16.pack(len(sess)) + sess
    obs = req.observation
    flags = 0
    parts = []
    if req.protocol is not None:
        flags |= _FLAG_PROTOCOL
    if req.seed is not None:
        flags |= _FLAG_SEED
    if obs.last_quality is not None:
        flags |= _FLAG_LAST_QUALITY
    parts.append(_HEAD.pack(_MAGIC, _KIND_DECIDE, flags))
    parts.append(_U16.pack(len(sess)))
    parts.append(sess)
    if req.protocol is not None:
        proto = req.protocol.encode()
        parts.append(_U16.pack(len(proto)))
        parts.append(proto)
    if req.seed is not None:
        parts.append(_I64.pack(req.seed))
    parts.append(_OBS_FIXED.pack(
        obs.chunk_index, obs.chunks_remaining, obs.buffer_seconds,
        obs.last_chunk_bytes, obs.last_download_seconds,
    ))
    if obs.last_quality is not None:
        parts.append(_U16.pack(obs.last_quality))
    sizes = np.ascontiguousarray(obs.next_chunk_sizes, dtype="<f8")
    parts.append(_U16.pack(sizes.shape[0]))
    parts.append(sizes.tobytes())
    history = obs.throughput_history
    parts.append(_U16.pack(len(history)))
    if history:
        # One contiguous (size, seconds) pair block instead of 2N packs:
        # codec work is per-request and unbatchable, so it has to be flat.
        parts.append(np.asarray(history, dtype="<f8").tobytes())
    return b"".join(parts)


class _Cursor:
    """Bounds-checked sequential reads over one frame."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def unpack(self, fmt: struct.Struct):
        end = self.pos + fmt.size
        if end > len(self.data):
            raise _bad("truncated binary frame")
        values = fmt.unpack_from(self.data, self.pos)
        self.pos = end
        return values

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if n < 0 or end > len(self.data):
            raise _bad("truncated binary frame")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def text(self) -> str:
        (n,) = self.unpack(_U16)
        try:
            return self.take(n).decode()
        except UnicodeDecodeError:
            raise _bad("binary frame holds invalid UTF-8") from None


def _decode_request_binary(body: bytes) -> DecisionRequest:
    cur = _Cursor(body)
    magic, kind, flags = cur.unpack(_HEAD)
    if magic != _MAGIC:
        raise _bad("bad frame magic")
    session = _validate_session_id(cur.text())
    if kind == _KIND_CLOSE:
        return DecisionRequest(session=session, observation=None, close=True)
    if kind != _KIND_DECIDE:
        raise _bad(f"unexpected request frame kind {kind}")
    protocol = cur.text() if flags & _FLAG_PROTOCOL else None
    seed = cur.unpack(_I64)[0] if flags & _FLAG_SEED else None
    if seed is not None and seed < 0:
        raise _bad(f"seed must be >= 0, got {seed}")
    chunk_index, chunks_remaining, buffer_s, last_bytes, last_dl = cur.unpack(_OBS_FIXED)
    last_quality = cur.unpack(_U16)[0] if flags & _FLAG_LAST_QUALITY else None
    (n_sizes,) = cur.unpack(_U16)
    if not 0 < n_sizes <= MAX_LADDER:
        raise _bad(f"next_chunk_sizes must hold 1..{MAX_LADDER} entries, got {n_sizes}")
    sizes = np.frombuffer(cur.take(n_sizes * 8), dtype="<f8").astype(float)
    (n_hist,) = cur.unpack(_U16)
    if n_hist > MAX_HISTORY:
        raise _bad(f"throughput_history longer than {MAX_HISTORY} entries")
    # The pair block decodes with one frombuffer; per-entry range checks
    # happen vectorized here and in validate_observation.
    pairs = np.frombuffer(cur.take(n_hist * 16), dtype="<f8")
    history = list(zip(pairs[0::2].tolist(), pairs[1::2].tolist()))
    for name, value in (("buffer_seconds", buffer_s),
                        ("last_chunk_bytes", last_bytes),
                        ("last_download_seconds", last_dl)):
        _require_float(value, name, minimum=0.0)
    if not np.isfinite(sizes).all() or (sizes < 0.0).any():
        raise _bad("next_chunk_sizes entries must be finite and >= 0")
    if n_hist and not np.isfinite(pairs).all():
        raise _bad("throughput_history entries must be finite")
    obs = AbrObservation(
        chunk_index=chunk_index,
        last_quality=last_quality,
        buffer_seconds=buffer_s,
        last_chunk_bytes=last_bytes,
        last_download_seconds=last_dl,
        next_chunk_sizes=sizes,
        chunks_remaining=chunks_remaining,
        throughput_history=history,
    )
    return DecisionRequest(
        session=session,
        observation=validate_observation(obs),
        protocol=protocol,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Responses (both directions, both codecs)
# ---------------------------------------------------------------------------


def encode_response(resp: DecisionResponse, content_type: str = CONTENT_JSON) -> bytes:
    if content_type == CONTENT_BINARY:
        sess = resp.session.encode()
        if resp.closed:
            return _HEAD.pack(_MAGIC, _KIND_CLOSED, 0) + _U16.pack(len(sess)) + sess
        return (
            _HEAD.pack(_MAGIC, _KIND_DECISION, 0)
            + _U16.pack(len(sess)) + sess
            + _U32.pack(resp.chunk_index)
            + _U16.pack(resp.quality)
            + _F64.pack(resp.bitrate_kbps)
        )
    if resp.closed:
        payload: dict = {"session": resp.session, "closed": True}
    else:
        payload = {
            "session": resp.session,
            "chunk_index": resp.chunk_index,
            "quality": resp.quality,
            "bitrate_kbps": resp.bitrate_kbps,
        }
    return json.dumps(payload, separators=(",", ":")).encode()


def decode_response(body: bytes, content_type: str = CONTENT_JSON) -> DecisionResponse:
    """Client-side decode; raises :class:`ServeError` on error frames."""
    if content_type == CONTENT_BINARY:
        cur = _Cursor(body)
        magic, kind, _flags = cur.unpack(_HEAD)
        if magic != _MAGIC:
            raise _bad("bad frame magic")
        if kind == _KIND_ERROR:
            (status,) = cur.unpack(_U16)
            code = cur.text()
            raise ServeError(status, code, cur.text())
        if kind == _KIND_CLOSED:
            return DecisionResponse(session=cur.text(), closed=True)
        if kind != _KIND_DECISION:
            raise _bad(f"unexpected response frame kind {kind}")
        session = cur.text()
        (chunk_index,) = cur.unpack(_U32)
        (quality,) = cur.unpack(_U16)
        (bitrate,) = cur.unpack(_F64)
        return DecisionResponse(session, chunk_index, quality, bitrate)
    data = json.loads(body)
    if "error" in data:
        err = data["error"]
        raise ServeError(int(err.get("status", 500)),
                         err.get("code", "error"), err.get("message", ""))
    if data.get("closed"):
        return DecisionResponse(session=data["session"], closed=True)
    return DecisionResponse(
        session=data["session"],
        chunk_index=int(data["chunk_index"]),
        quality=int(data["quality"]),
        bitrate_kbps=float(data["bitrate_kbps"]),
    )


def encode_error(error: ServeError, content_type: str = CONTENT_JSON) -> bytes:
    if content_type == CONTENT_BINARY:
        code = error.code.encode()
        message = error.message.encode()
        return (
            _HEAD.pack(_MAGIC, _KIND_ERROR, 0)
            + _U16.pack(error.status)
            + _U16.pack(len(code)) + code
            + _U16.pack(len(message)) + message
        )
    payload = {"error": {"status": error.status, "code": error.code,
                         "message": error.message}}
    return json.dumps(payload, separators=(",", ":")).encode()


def decode_request(body: bytes, content_type: str = CONTENT_JSON) -> DecisionRequest:
    """Parse and shape-validate one request frame."""
    if len(body) > MAX_BODY_BYTES:
        raise ServeError(413, "too-large", f"request body over {MAX_BODY_BYTES} bytes")
    base = content_type.split(";", 1)[0].strip().lower()
    if base == CONTENT_BINARY:
        return _decode_request_binary(body)
    if base in (CONTENT_JSON, ""):
        return _decode_request_json(body)
    raise ServeError(415, "unsupported-media-type",
                     f"unsupported content type {content_type!r}")


def encode_request(req: DecisionRequest, content_type: str = CONTENT_JSON) -> bytes:
    """Client-side encode (the loadgen's half of the codec)."""
    if content_type == CONTENT_BINARY:
        return _encode_request_binary(req)
    return _encode_request_json(req)
