"""Server-side session state for the decision service.

The batched adapters of :mod:`repro.abr.batched` were written against
:class:`~repro.abr.simulator.StreamingSession`, but a decision server
does not simulate downloads -- the *client* downloads and reports what
happened.  :class:`RemoteSession` therefore mirrors exactly the session
surface the adapters read (``video``, ``buffer_seconds``,
``chunk_index``, ``done``, ``observation()``) and is refreshed from each
request's decoded observation, so the PR 6 adapters serve remote
clients unchanged and the serial/batched identity contract carries over
verbatim.

State checks live here because they need the served video: a reported
observation must agree with the video's ladder width, chunk accounting
and actual next-chunk sizes (the sizes feed the inline policies'
feature vectors -- accepting a lie would break the served-vs-inline
identity guarantee), and sessions must advance strictly in chunk order
(the adapters' per-lane state, like MPC's error window, advances once
per decision and cannot be rewound).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.abr.simulator import AbrObservation, ChunkResult
from repro.abr.video import Video
from repro.serve.protocol import ServeError

__all__ = ["RemoteSession", "SessionState", "SessionStore", "chunk_result_from"]


class RemoteSession:
    """The :class:`StreamingSession` surface the batched adapters read.

    Holds the latest client-reported observation; ``update`` validates
    it against the served video before anything downstream sees it.
    """

    __slots__ = ("video", "chunk_index", "buffer_seconds", "_obs")

    def __init__(self, video: Video) -> None:
        self.video = video
        self.chunk_index = 0
        self.buffer_seconds = 0.0
        self._obs: AbrObservation | None = None

    @property
    def done(self) -> bool:
        return self.chunk_index >= self.video.n_chunks

    def observation(self) -> AbrObservation:
        if self._obs is None:
            raise RuntimeError("no observation reported yet")
        return self._obs

    def update(self, obs: AbrObservation) -> None:
        """Adopt a shape-validated observation after video-level checks."""
        video = self.video
        n = video.n_bitrates
        if len(obs.next_chunk_sizes) != n:
            raise ServeError(
                400, "bad-observation",
                f"next_chunk_sizes has {len(obs.next_chunk_sizes)} entries; "
                f"the served video has {n} ladder rungs",
            )
        if obs.chunk_index >= video.n_chunks:
            raise ServeError(
                400, "bad-observation",
                f"chunk_index {obs.chunk_index} beyond the "
                f"{video.n_chunks}-chunk video",
            )
        if obs.chunks_remaining != video.n_chunks - obs.chunk_index:
            raise ServeError(
                400, "bad-observation",
                f"chunks_remaining {obs.chunks_remaining} inconsistent with "
                f"chunk_index {obs.chunk_index} of a {video.n_chunks}-chunk video",
            )
        if obs.last_quality is not None and obs.last_quality >= n:
            raise ServeError(
                400, "bad-observation",
                f"last_quality {obs.last_quality} outside the {n}-rung ladder",
            )
        # The inline policies build features from the reported sizes; a
        # mismatch would silently break served-vs-inline identity, so it
        # is rejected instead.
        if not np.array_equal(obs.next_chunk_sizes,
                              video.chunk_sizes_bytes[obs.chunk_index]):
            raise ServeError(
                400, "bad-observation",
                f"next_chunk_sizes do not match the served video's "
                f"chunk {obs.chunk_index}",
            )
        self._obs = obs
        self.chunk_index = obs.chunk_index
        self.buffer_seconds = obs.buffer_seconds


def chunk_result_from(obs: AbrObservation, video: Video) -> ChunkResult:
    """Reconstruct the previous download as a :class:`ChunkResult`.

    The adapters' observe hooks consume ``quality``, ``size_bytes`` and
    ``download_seconds`` (plus session state); QoE-side fields are not
    observable remotely and not read by any adapter, so they are zeroed.
    """
    quality = obs.last_quality
    return ChunkResult(
        chunk_index=obs.chunk_index - 1,
        quality=quality,
        bitrate_kbps=float(video.bitrates_kbps[quality]),
        size_bytes=obs.last_chunk_bytes,
        download_seconds=obs.last_download_seconds,
        rebuffer_seconds=0.0,
        sleep_seconds=0.0,
        buffer_seconds=obs.buffer_seconds,
        qoe=0.0,
        done=False,
    )


@dataclass(slots=True)
class SessionState:
    """One live session: its protocol group, adapter lane and progress."""

    sid: str
    protocol: str
    lane: int
    remote: RemoteSession
    next_chunk: int = 0
    decisions: int = 0


@dataclass
class SessionStore:
    """Sessions keyed by id, with lifetime counters for ``/stats``."""

    max_sessions: int = 65_536
    sessions: dict[str, SessionState] = field(default_factory=dict)
    created: int = 0
    retired: int = 0
    _ids: itertools.count = field(default_factory=itertools.count)

    def get(self, sid: str) -> SessionState | None:
        return self.sessions.get(sid)

    def next_index(self) -> int:
        """A monotone per-store counter seeding new sessions' RNG streams."""
        return next(self._ids)

    def add(self, state: SessionState) -> None:
        if len(self.sessions) >= self.max_sessions:
            raise ServeError(
                503, "at-capacity",
                f"server at its {self.max_sessions}-session capacity",
            )
        self.sessions[state.sid] = state
        self.created += 1

    def retire(self, sid: str) -> SessionState:
        state = self.sessions.pop(sid)
        self.retired += 1
        return state

    def __len__(self) -> int:
        return len(self.sessions)
