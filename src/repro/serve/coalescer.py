"""Micro-batching request coalescer: the serving layer's perf centerpiece.

Concurrent in-flight requests are queued and drained in *windows* of up
to ``max_batch`` items; each window is handed to one processing callback
-- which serves every request in it with a single batched policy
evaluation -- and the results are fanned back out to the per-request
futures.  Window formation policy:

- ``max_wait_us == 0`` (default): *opportunistic* batching.  After the
  first request wakes the worker it yields one event-loop tick
  (``asyncio.sleep(0)``), letting every already-runnable client task
  enqueue before the drain.  Under concurrency this naturally fills
  windows; a lone request is served on the very next tick, so idle-path
  latency cost is one loop iteration.
- ``max_wait_us > 0``: the worker additionally waits up to that long
  for the window to fill to ``max_batch``, trading per-request latency
  for occupancy -- useful when clients trickle in slower than one tick.

Requests beyond ``max_batch`` are never dropped: they stay queued and
spill into the immediately following window.  Closing the coalescer
drains everything already submitted before the worker exits, which is
what makes the server's shutdown graceful.

The processing callback runs on the event loop (not a thread): batched
numpy work holds the GIL anyway, and staying single-threaded keeps the
adapters' per-lane state free of locking.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Sequence

from repro.obs import NULL_RECORDER, MetricsRecorder

__all__ = ["Coalescer"]


class Coalescer:
    """Queue requests; serve them in batched windows via ``process``.

    ``process`` receives the window's items (in arrival order) and
    returns one result per item, aligned; a result that is an
    ``Exception`` instance rejects that item's future only, while an
    exception raised by ``process`` itself rejects the whole window.
    """

    def __init__(
        self,
        process: Callable[[list[Any]], Sequence[Any]],
        max_batch: int = 64,
        max_wait_us: float = 0.0,
        recorder: MetricsRecorder = NULL_RECORDER,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {max_wait_us}")
        self._process = process
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_us) * 1e-6
        self.recorder = recorder
        self._queue: list[tuple[Any, asyncio.Future]] = []
        self._wake: asyncio.Event = asyncio.Event()
        self._full: asyncio.Event = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closing = False
        # Occupancy accounting for /stats: windows served, items served,
        # the widest window, and the deepest post-drain backlog (spill).
        self.windows = 0
        self.items = 0
        self.max_occupancy = 0
        self.spills = 0
        self.max_queue_depth = 0

    async def start(self) -> None:
        if self._task is None:
            self._closing = False
            self._task = asyncio.get_running_loop().create_task(self._worker())

    async def submit(self, item: Any) -> Any:
        """Enqueue one request and await its result."""
        if self._closing or self._task is None:
            raise RuntimeError("coalescer is not running")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.append((item, future))
        if len(self._queue) > self.max_queue_depth:
            self.max_queue_depth = len(self._queue)
        if len(self._queue) >= self.max_batch:
            self._full.set()
        self._wake.set()
        return await future

    async def _worker(self) -> None:
        while True:
            if not self._queue:
                if self._closing:
                    return
                self._wake.clear()
                await self._wake.wait()
                if not self._queue:
                    continue  # spurious wake (e.g. close with empty queue)
            if len(self._queue) < self.max_batch and not self._closing:
                if self.max_wait_s > 0.0:
                    self._full.clear()
                    if len(self._queue) < self.max_batch:
                        try:
                            await asyncio.wait_for(self._full.wait(), self.max_wait_s)
                        except asyncio.TimeoutError:
                            pass
                else:
                    # One event-loop tick: every already-runnable client
                    # coroutine gets to enqueue before the drain below.
                    await asyncio.sleep(0)
            self._drain_one_window()

    def _drain_one_window(self) -> None:
        window = self._queue[: self.max_batch]
        del self._queue[: len(window)]
        if not window:
            return
        self.windows += 1
        self.items += len(window)
        if len(window) > self.max_occupancy:
            self.max_occupancy = len(window)
        if self._queue:
            self.spills += 1
        items = [item for item, _future in window]
        try:
            results = self._process(items)
        except Exception as exc:
            for _item, future in window:
                if not future.cancelled():
                    future.set_exception(exc)
            return
        if len(results) != len(window):
            exc = RuntimeError(
                f"coalescer process returned {len(results)} results "
                f"for {len(window)} items"
            )
            for _item, future in window:
                if not future.cancelled():
                    future.set_exception(exc)
            return
        for (_item, future), result in zip(window, results):
            if future.cancelled():
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def mean_occupancy(self) -> float:
        return self.items / self.windows if self.windows else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "max_batch": self.max_batch,
            "max_wait_us": self.max_wait_s * 1e6,
            "windows": self.windows,
            "items": self.items,
            "mean_occupancy": self.mean_occupancy,
            "max_occupancy": self.max_occupancy,
            "spills": self.spills,
            "max_queue_depth": self.max_queue_depth,
            "queue_depth": self.queue_depth,
        }

    def record_metrics(self, prefix: str = "serve/") -> None:
        rec = self.recorder
        if not rec.enabled:
            return
        rec.record(f"{prefix}windows", self.windows)
        rec.record(f"{prefix}batch_occupancy", self.mean_occupancy)
        rec.record(f"{prefix}max_occupancy", self.max_occupancy)
        rec.record(f"{prefix}spills", self.spills)
        rec.record(f"{prefix}max_queue_depth", self.max_queue_depth)

    async def close(self) -> None:
        """Drain every submitted request, then stop the worker."""
        if self._task is None:
            return
        self._closing = True
        self._wake.set()
        self._full.set()
        await self._task
        self._task = None
