"""Asyncio HTTP front end for the decision service.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` --
keep-alive, ``Content-Length`` bodies only (no chunked encoding, no
TLS), because the clients are ABR players issuing one small POST per
video chunk.  Routes:

- ``POST /v1/decide`` -- one decision request (JSON or binary frame,
  selected by ``Content-Type``; the response mirrors the codec).
- ``GET /stats`` -- the service's observability snapshot (always JSON),
  which also flushes serving telemetry through the recorder.
- ``GET /healthz`` -- liveness probe.

Graceful shutdown (:meth:`HttpServer.close`): stop accepting, mark the
server closing so keep-alive loops finish their current request and
stop, drain the coalescer (every already-submitted request is served),
then close lingering connections.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.protocol import CONTENT_JSON
from repro.serve.service import DecisionService

__all__ = ["HttpServer"]

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 409: "Conflict", 413: "Payload Too Large",
    415: "Unsupported Media Type", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _response_bytes(status: int, payload: bytes, content_type: str,
                    close: bool = False) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    )
    return head.encode() + payload


class HttpServer:
    """One listening socket fronting one :class:`DecisionService`."""

    def __init__(self, service: DecisionService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._closing = False

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`; 0 requests an ephemeral one)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port,
            limit=_MAX_HEADER_BYTES,
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drain in-flight requests, close connections."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let keep-alive handlers that already read a request finish it:
        # draining the coalescer serves everything submitted so far.
        await self.service.close()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        # Closed sockets surface as EOF in the handlers' next read; await
        # their orderly exit so no task outlives the server.
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        self._conn_tasks.clear()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            while not self._closing:
                try:
                    raw = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                except asyncio.LimitOverrunError:
                    writer.write(_response_bytes(
                        431, b'{"error":{"status":431}}', CONTENT_JSON, close=True))
                    await writer.drain()
                    break
                keep_alive = await self._handle_request(raw, reader, writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()

    @staticmethod
    def _parse_head(raw: bytes):
        lines = raw.decode("latin-1").split("\r\n")
        try:
            method, path, _version = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _handle_request(self, raw: bytes, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> bool:
        parsed = self._parse_head(raw)
        if parsed is None:
            writer.write(_response_bytes(
                400, b'{"error":{"status":400,"code":"bad-request-line"}}',
                CONTENT_JSON, close=True))
            await writer.drain()
            return False
        method, path, headers = parsed
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY_BYTES:
            writer.write(_response_bytes(
                413, b'{"error":{"status":413,"code":"too-large"}}',
                CONTENT_JSON, close=True))
            await writer.drain()
            return False
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return False
        status, payload, content_type = await self._dispatch(
            method, path, headers, body)
        client_close = headers.get("connection", "").lower() == "close"
        keep_alive = not (client_close or self._closing)
        writer.write(_response_bytes(status, payload, content_type,
                                     close=not keep_alive))
        await writer.drain()
        return keep_alive

    async def _dispatch(self, method: str, path: str, headers: dict,
                        body: bytes) -> tuple[int, bytes, str]:
        path = path.split("?", 1)[0]
        if path == "/v1/decide":
            if method != "POST":
                return 405, b'{"error":{"status":405,"code":"method"}}', CONTENT_JSON
            content_type = headers.get("content-type", CONTENT_JSON)
            return await self.service.handle_raw(body, content_type)
        if path in ("/stats", "/v1/stats"):
            if method != "GET":
                return 405, b'{"error":{"status":405,"code":"method"}}', CONTENT_JSON
            self.service.record_metrics()
            return 200, json.dumps(self.service.stats()).encode(), CONTENT_JSON
        if path == "/healthz":
            return 200, b'{"ok":true}', CONTENT_JSON
        return 404, b'{"error":{"status":404,"code":"not-found"}}', CONTENT_JSON
