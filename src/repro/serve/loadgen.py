"""Closed-loop load generator for the decision service.

Each simulated player owns a real client-side
:class:`~repro.abr.simulator.StreamingSession` (replaying a trace with
the chunk-indexed semantics), asks the server for every chunk decision,
*applies* it, and reports the resulting observation with the next
request -- the full request lifecycle a DASH player would drive, not a
canned-payload blaster.  All players run concurrently on one event
loop, which is exactly the concurrency shape the coalescer batches.

Two transports:

- :class:`InprocTransport` -- calls ``service.handle_raw`` directly:
  the full pipeline (codec, store, coalescer, batched adapters) minus
  the kernel socket hops.  This isolates the serving strategy from
  TCP overhead and is what the committed benchmark's headline numbers
  use.
- :class:`HttpTransport` -- real sockets against an
  :class:`~repro.serve.http.HttpServer`, over a keep-alive connection
  pool.

Verification: because decisions fully determine a session's evolution,
replaying each player's trace through the *inline* serial policy
(:func:`run_session`) yields the reference decision sequence; the
report counts every divergence.  ``mismatches == 0`` is the serve-layer
identity guarantee, end to end through whichever transport and codec
the run used.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass

from repro.abr.protocols.base import AbrPolicy, run_session
from repro.abr.simulator import ChunkIndexedBandwidth, StreamingSession
from repro.abr.video import Video
from repro.obs import Histogram
from repro.serve.protocol import (
    CONTENT_JSON,
    DecisionRequest,
    ServeError,
    decode_response,
    encode_request,
)
from repro.serve.service import DecisionService
from repro.traces.trace import Trace

__all__ = [
    "HttpTransport",
    "InprocTransport",
    "LoadReport",
    "reference_decisions",
    "run_loadgen",
]


class InprocTransport:
    """Drive a :class:`DecisionService` in-process (no sockets)."""

    name = "inproc"

    def __init__(self, service: DecisionService) -> None:
        self.service = service

    async def request(self, body: bytes, content_type: str) -> tuple[int, bytes]:
        status, payload, _ctype = await self.service.handle_raw(body, content_type)
        return status, payload

    async def fetch_stats(self) -> dict:
        return self.service.stats()

    async def close(self) -> None:
        pass


async def _read_http_response(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    raw = await reader.readuntil(b"\r\n\r\n")
    lines = raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    length = 0
    for line in lines[1:]:
        name, _sep, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status, body


class HttpTransport:
    """Keep-alive connection pool against an :class:`HttpServer`."""

    name = "http"

    def __init__(self, host: str, port: int, connections: int = 32) -> None:
        self.host = host
        self.port = int(port)
        self.connections = int(connections)
        self._pool: asyncio.Queue | None = None

    def _ensure_pool(self) -> asyncio.Queue:
        if self._pool is None:
            # Connections open lazily, one per pool slot, on first use.
            self._pool = asyncio.Queue()
            for _ in range(self.connections):
                self._pool.put_nowait(None)
        return self._pool

    async def _roundtrip(self, conn, head: bytes, body: bytes):
        if conn is None:
            conn = await asyncio.open_connection(self.host, self.port)
        reader, writer = conn
        writer.write(head + body)
        await writer.drain()
        status, payload = await _read_http_response(reader)
        return conn, status, payload

    async def request(self, body: bytes, content_type: str) -> tuple[int, bytes]:
        pool = self._ensure_pool()
        conn = await pool.get()
        head = (
            f"POST /v1/decide HTTP/1.1\r\nHost: {self.host}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        try:
            conn, status, payload = await self._roundtrip(conn, head, body)
        except Exception:
            if conn is not None:
                conn[1].close()
            pool.put_nowait(None)
            raise
        pool.put_nowait(conn)
        return status, payload

    async def _get(self, path: str) -> tuple[int, bytes]:
        pool = self._ensure_pool()
        conn = await pool.get()
        head = f"GET {path} HTTP/1.1\r\nHost: {self.host}\r\n\r\n".encode()
        try:
            conn, status, payload = await self._roundtrip(conn, head, b"")
        except Exception:
            if conn is not None:
                conn[1].close()
            pool.put_nowait(None)
            raise
        pool.put_nowait(conn)
        return status, payload

    async def fetch_stats(self) -> dict:
        _status, payload = await self._get("/stats")
        return json.loads(payload)

    async def close(self) -> None:
        if self._pool is None:
            return
        while not self._pool.empty():
            conn = self._pool.get_nowait()
            if conn is not None:
                conn[1].close()
        self._pool = None


@dataclass
class LoadReport:
    """One loadgen run's outcome (requests/sec, latency, identity)."""

    transport: str
    protocol: str
    players: int
    requests: int
    errors: int
    wall_seconds: float
    requests_per_second: float
    latency_seconds: dict
    mismatches: int  # -1 = not verified
    server_stats: dict | None = None

    def lines(self) -> list[str]:
        lat = self.latency_seconds
        out = [
            f"transport {self.transport}, protocol {self.protocol}: "
            f"{self.players} players, {self.requests} requests, "
            f"{self.errors} errors",
            f"  {self.requests_per_second:,.0f} req/s over "
            f"{self.wall_seconds:.3f}s",
            f"  latency p50 {lat['p50'] * 1e3:.3f} ms, "
            f"p90 {lat['p90'] * 1e3:.3f} ms, "
            f"p99 {lat['p99'] * 1e3:.3f} ms, "
            f"max {lat['max'] * 1e3:.3f} ms",
        ]
        if self.mismatches >= 0:
            out.append(f"  decision mismatches vs inline reference: "
                       f"{self.mismatches}")
        return out

    def summary_dict(self) -> dict:
        """JSON-safe summary (the CI latency artifact's row format)."""
        return {
            "transport": self.transport,
            "protocol": self.protocol,
            "players": self.players,
            "requests": self.requests,
            "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "requests_per_second": self.requests_per_second,
            "latency_ms": {k: (v * 1e3 if k != "count" else v)
                           for k, v in self.latency_seconds.items()},
            "mismatches": self.mismatches,
        }


def reference_decisions(video: Video, trace: Trace, policy: AbrPolicy) -> list[int]:
    """The inline serial decision sequence for one trace (the oracle)."""
    result = run_session(video, trace, policy, chunk_indexed=True)
    return [int(q) for q in result.qualities]


async def _player(
    sid: str,
    video: Video,
    trace: Trace,
    protocol: str,
    transport,
    content_type: str,
    latency: Histogram,
    decisions: list[int],
    failures: list[str],
) -> None:
    session = StreamingSession(
        video, ChunkIndexedBandwidth(trace.bandwidths_mbps, cycle=True)
    )
    first = True
    try:
        while not session.done:
            request = DecisionRequest(
                session=sid,
                observation=session.observation(),
                protocol=protocol if first else None,
            )
            first = False
            body = encode_request(request, content_type)
            t0 = time.perf_counter()
            _status, payload = await transport.request(body, content_type)
            latency.record(time.perf_counter() - t0)
            response = decode_response(payload, content_type)
            decisions.append(response.quality)
            session.download_chunk(response.quality)
    except ServeError as exc:
        failures.append(f"{sid}: {exc.status} {exc.code}: {exc.message}")
    except Exception as exc:  # transport failures end this player only
        failures.append(f"{sid}: {type(exc).__name__}: {exc}")


async def run_loadgen(
    transport,
    video: Video,
    traces: list[Trace],
    protocol: str,
    players: int,
    content_type: str = CONTENT_JSON,
    reference: AbrPolicy | None = None,
    session_prefix: str = "player",
    fetch_stats: bool = True,
) -> LoadReport:
    """Run ``players`` concurrent closed-loop sessions; report throughput.

    Players share the trace corpus round-robin.  With ``reference`` (a
    serial policy instance constructed like the server's), every
    player's decisions are verified against the inline
    :func:`run_session` replay of its trace.
    """
    if players < 1:
        raise ValueError(f"players must be >= 1, got {players}")
    if not traces:
        raise ValueError("need at least one trace")
    latency = Histogram()
    decisions: list[list[int]] = [[] for _ in range(players)]
    failures: list[str] = []
    tasks = [
        _player(
            f"{session_prefix}-{p}", video, traces[p % len(traces)], protocol,
            transport, content_type, latency, decisions[p], failures,
        )
        for p in range(players)
    ]
    t0 = time.perf_counter()
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - t0

    mismatches = -1
    if reference is not None:
        mismatches = 0
        refs: dict[int, list[int]] = {}
        for p in range(players):
            u = p % len(traces)
            if u not in refs:
                refs[u] = reference_decisions(video, traces[u], reference)
            ref = refs[u]
            got = decisions[p]
            mismatches += sum(a != b for a, b in zip(got, ref))
            mismatches += abs(len(got) - len(ref))

    requests = sum(len(d) for d in decisions)
    stats = await transport.fetch_stats() if fetch_stats else None
    return LoadReport(
        transport=transport.name,
        protocol=protocol,
        players=players,
        requests=requests,
        errors=len(failures),
        wall_seconds=wall,
        requests_per_second=requests / wall if wall > 0 else 0.0,
        latency_seconds=latency.summary(),
        mismatches=mismatches,
        server_stats=stats,
    )
