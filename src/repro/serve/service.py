"""The decision service: session lifecycle + coalesced batched serving.

:class:`DecisionService` fronts a set of named ABR protocols over one
video.  Requests flow through the :class:`~repro.serve.coalescer.Coalescer`;
each window is processed synchronously on the event loop: sessions are
created/validated/advanced, the window is grouped by protocol, and every
group is served with **one** batched adapter call -- a single flat-NN
forward for Pensieve, one vectorized combo scan per lookahead group for
MPC, one broadcast rule sweep for BB/BOLA.  This reuses the PR 6 batched
adapters unchanged (they only read the session surface that
:class:`~repro.serve.state.RemoteSession` mirrors), so the serial/batched
identity contract -- served decision == inline policy call -- carries
over to the network boundary.

Serving modes (``batch_size``):

- ``1``: the *inline* baseline.  Every request is answered by the plain
  serial ``AbrPolicy.select`` call -- the exact code path the simulator
  and the identity tests use.  This is the reference the coalesced mode
  is benchmarked against.
- ``>= 2``: coalesced windows of up to ``batch_size`` requests, served
  by the batched adapters.

With a :class:`~repro.exec.cache.ResultCache`, MPC's exhaustive plan
scan -- a pure function of (video, QoE weights, lookahead, chunk index,
predicted rate, buffer, previous quality) -- is memoized content-
addressed, so repeat decision states (players on the same trace corpus
hit identical states constantly) skip the ``6^h`` sweep entirely.  The
stateful throughput predictor still runs per request, which is what
keeps cached and uncached decision sequences bitwise identical.
"""

from __future__ import annotations

import copy
import time

import numpy as np

from repro.abr.features import feature_dim
from repro.abr.protocols.base import AbrPolicy
from repro.abr.protocols.bola import Bola
from repro.abr.protocols.buffer_based import BufferBased
from repro.abr.protocols.mpc import MPC
from repro.abr.protocols.pensieve import PensieveAgent
from repro.abr.protocols.rate_based import RateBased
from repro.abr.batched import BatchedAbrPolicy, BatchedMPC, GenericBatched, as_batched
from repro.abr.simulator import PACKET_PAYLOAD_PORTION
from repro.abr.video import Video
from repro.exec.cache import ResultCache, fingerprint, make_key
from repro.obs import Histogram, NULL_RECORDER, MetricsRecorder
from repro.rl.policy import ActorCritic
from repro.rl.running_stat import RunningMeanStd
from repro.rl.spaces import Discrete
from repro.serve.coalescer import Coalescer
from repro.serve.protocol import (
    CONTENT_BINARY,
    CONTENT_JSON,
    DecisionRequest,
    DecisionResponse,
    ServeError,
    decode_request,
    encode_error,
    encode_response,
)
from repro.serve.state import RemoteSession, SessionState, SessionStore, chunk_result_from

__all__ = [
    "CachedBatchedMPC",
    "DecisionService",
    "InlineAdapter",
    "default_protocols",
    "make_demo_pensieve",
]


class InlineAdapter(GenericBatched):
    """The ``batch_size=1`` backend: serial policy calls behind lanes.

    Each request is answered by ``AbrPolicy.select`` on a per-session
    policy exactly as :func:`~repro.abr.protocols.base.run_session`
    would call it.  Per-playback-stateless policies (BB, BOLA,
    deterministic Pensieve -- the service serves one video, so their
    post-``reset`` state is shared too) use one shared clone instead of
    a deep copy per session; MPC keeps per-session predictor state but
    shares the ``6^h`` combo tables across lanes, mirroring
    :class:`~repro.abr.batched.BatchedMPC`.
    """

    def __init__(self, prototype: AbrPolicy) -> None:
        super().__init__(prototype)
        self._shared: AbrPolicy | None = None
        self._mpc_combos: dict[tuple[int, int], dict[int, np.ndarray]] = {}

    def start(self, lane, session, rng) -> None:
        proto = self._prototype
        if isinstance(proto, MPC):
            clone = MPC(horizon=proto.horizon, window=proto.window,
                        robust=proto.robust, weights=proto.weights)
            key = (session.video.n_bitrates, proto.horizon)
            if key in self._mpc_combos:
                clone._combos = self._mpc_combos[key]
                clone._combos_key = key
            clone.reset(session.video)
            self._mpc_combos[key] = clone._combos
        elif isinstance(proto, (BufferBased, Bola)) or (
            isinstance(proto, PensieveAgent) and proto.deterministic
        ):
            if self._shared is None:
                self._shared = copy.deepcopy(proto)
            clone = self._shared
            clone.reset(session.video)
        else:
            clone = copy.deepcopy(proto)
            clone.reset(session.video)
        self._clones[lane] = clone


class CachedBatchedMPC(BatchedMPC):
    """:class:`BatchedMPC` with the pure plan scan memoized.

    The stateful half of MPC -- the robust throughput predictor, which
    mutates the per-session error window -- always runs, so cached and
    uncached decision *sequences* stay bitwise identical.  The stateless
    half -- the exhaustive lookahead scan -- is a pure function of its
    content-addressed key and its winning first step is served from the
    :class:`ResultCache` on repeat states.
    """

    def __init__(self, policy: MPC, cache: ResultCache) -> None:
        super().__init__(policy)
        self._cache = cache
        self._video_fps: dict[int, str] = {}
        # Write-through in-process memo over the disk store: players on a
        # shared trace corpus hit identical decision states every window,
        # and a dict probe is ~100x cheaper than a file read + unpickle.
        # The ResultCache stays the cross-process source of truth.
        self._memo: dict[str, int] = {}
        # The QoE weights are constant for this adapter's lifetime; hash
        # them once so per-request keys only digest scalars.
        self._weights_fp = fingerprint(policy.weights)

    def _video_fp(self, video: Video) -> str:
        fp = self._video_fps.get(id(video))
        if fp is None:
            fp = fingerprint(video)
            self._video_fps[id(video)] = fp
        return fp

    def select(self, lanes, sessions):
        actions = np.zeros(len(lanes), dtype=int)
        groups: dict[tuple[int, int], list[tuple]] = {}
        # key -> window positions sharing that decision state.  Players on
        # the same trace sit in identical states, so a 64-wide window often
        # holds only a handful of distinct plan problems -- scan each once
        # and fan the winning first step out to every sharer.
        pending: dict[str, list[int]] = {}
        for pos, (lane, session) in enumerate(zip(lanes, sessions)):
            clone = self._clones[lane]
            obs = session.observation()
            predicted = clone._predict_throughput(obs)
            if predicted <= 0:
                actions[pos] = 0
                continue
            steps = min(clone.horizon, obs.chunks_remaining)
            rate = predicted * 1e6 / 8.0 * PACKET_PAYLOAD_PORTION
            key = make_key(
                "serve-mpc-plan",
                self._video_fp(session.video), self._weights_fp,
                steps, obs.chunk_index, rate, obs.buffer_seconds, obs.last_quality,
            )
            memoized = self._memo.get(key)
            if memoized is not None:
                actions[pos] = memoized
                continue
            sharers = pending.get(key)
            if sharers is not None:
                sharers.append(pos)
                continue
            hit, value = self._cache.lookup(key)
            if hit:
                self._memo[key] = int(value)
                actions[pos] = value
                continue
            pending[key] = [pos]
            groups.setdefault((id(session.video), steps), []).append(
                (pos, clone, obs, rate)
            )
        for (_, steps), members in groups.items():
            self._scan_group(steps, members, actions)
        for key, positions in pending.items():
            action = int(actions[positions[0]])
            self._memo[key] = action
            self._cache.put(key, action)
            for pos in positions[1:]:
                actions[pos] = action
        return actions


def make_demo_pensieve(
    n_bitrates: int = 6,
    hidden: tuple[int, ...] = (64, 32),
    seed: int = 11,
) -> PensieveAgent:
    """A frozen-seed deterministic Pensieve head for serving demos/benches.

    Same construction as the benchmark suite's reference agent: a seeded
    actor-critic plus an obs-normalizer warmed on seeded data, so every
    process that builds it with the same arguments gets bitwise the same
    policy -- which lets an HTTP loadgen verify the served decisions
    against a locally constructed inline reference.
    """
    d = feature_dim(n_bitrates)
    policy = ActorCritic(
        d, Discrete(n_bitrates), hidden=tuple(hidden),
        rng=np.random.default_rng(seed),
    )
    obs_rms = RunningMeanStd(shape=(d,))
    obs_rms.update(np.random.default_rng(seed + 1).uniform(0.0, 3.0, size=(64, d)))
    return PensieveAgent(policy, obs_rms=obs_rms, deterministic=True)


def default_protocols(
    n_bitrates: int = 6,
    pensieve_hidden: tuple[int, ...] = (64, 32),
    pensieve_seed: int = 11,
) -> dict[str, AbrPolicy]:
    """The full protocol lineup a demo server fronts."""
    return {
        "bb": BufferBased(),
        "bola": Bola(),
        "mpc": MPC(robust=False),
        "robust-mpc": MPC(),
        "rb": RateBased(),
        "pensieve": make_demo_pensieve(
            n_bitrates, hidden=pensieve_hidden, seed=pensieve_seed
        ),
    }


class _Group:
    """One served protocol: its adapter plus lane bookkeeping."""

    __slots__ = ("name", "adapter", "free", "n_lanes", "decisions")

    def __init__(self, name: str, adapter: BatchedAbrPolicy) -> None:
        self.name = name
        self.adapter = adapter
        self.free: list[int] = []
        self.n_lanes = 0
        self.decisions = 0

    def alloc(self) -> int:
        if self.free:
            return self.free.pop()
        lane = self.n_lanes
        self.n_lanes += 1
        return lane


class DecisionService:
    """Session store + coalescer + batched protocol backends."""

    def __init__(
        self,
        video: Video,
        protocols: dict[str, AbrPolicy],
        batch_size: int = 64,
        max_wait_us: float = 0.0,
        max_sessions: int = 65_536,
        seed: int = 0,
        cache: ResultCache | None = None,
        recorder: MetricsRecorder = NULL_RECORDER,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        if not protocols:
            raise ValueError("need at least one protocol to serve")
        self.video = video
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.cache = cache
        self.recorder = recorder
        self.store = SessionStore(max_sessions=max_sessions)
        inline = self.batch_size == 1
        self._groups: dict[str, _Group] = {}
        for name, proto in protocols.items():
            if inline:
                adapter: BatchedAbrPolicy = InlineAdapter(proto)
            elif isinstance(proto, MPC) and cache is not None:
                adapter = CachedBatchedMPC(proto, cache)
            else:
                adapter = as_batched(proto)
            self._groups[name] = _Group(name, adapter)
        self.coalescer = Coalescer(
            self._process_window, max_batch=self.batch_size,
            max_wait_us=max_wait_us, recorder=recorder,
        )
        self.latency = Histogram()
        self.requests = 0
        self.decisions = 0
        self.errors = 0
        self.closes = 0
        self._started = time.time()

    @property
    def mode(self) -> str:
        return "inline" if self.batch_size == 1 else "coalesced"

    @property
    def protocol_names(self) -> list[str]:
        return sorted(self._groups)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        await self.coalescer.start()

    async def close(self) -> None:
        """Drain every in-flight request, then flush telemetry."""
        await self.coalescer.close()
        self.record_metrics()

    async def __aenter__(self) -> "DecisionService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- request entry points ----------------------------------------------

    async def decide(self, request: DecisionRequest) -> DecisionResponse:
        """Serve one decoded request (raises :class:`ServeError`)."""
        return await self.coalescer.submit(request)

    async def handle_raw(
        self, body: bytes, content_type: str = CONTENT_JSON
    ) -> tuple[int, bytes, str]:
        """The transport-facing path: bytes in, ``(status, bytes, type)`` out.

        Responses use the request's codec; unknown content types are
        answered with a JSON 415.
        """
        t0 = time.perf_counter()
        self.requests += 1
        base = content_type.split(";", 1)[0].strip().lower()
        out_type = CONTENT_BINARY if base == CONTENT_BINARY else CONTENT_JSON
        try:
            request = decode_request(body, content_type)
        except ServeError as exc:
            self.errors += 1
            self.latency.record(time.perf_counter() - t0)
            return exc.status, encode_error(exc, out_type), out_type
        try:
            response = await self.decide(request)
            payload = encode_response(response, out_type)
            status = 200
        except ServeError as exc:  # counted where it was raised
            payload = encode_error(exc, out_type)
            status = exc.status
        self.latency.record(time.perf_counter() - t0)
        return status, payload, out_type

    # -- window processing (synchronous, on the event loop) ----------------

    def _process_window(self, batch: list[DecisionRequest]) -> list:
        out: list[DecisionResponse | ServeError | None] = [None] * len(batch)
        seen: set[str] = set()
        group_entries: dict[str, list[tuple[int, SessionState, bool]]] = {}
        for i, req in enumerate(batch):
            try:
                if req.session in seen:
                    raise ServeError(
                        409, "concurrent-session",
                        f"another request for session {req.session!r} is already "
                        "in flight; a session must be driven one request at a time",
                    )
                seen.add(req.session)
                state = self.store.get(req.session)
                if req.close:
                    if state is None:
                        raise ServeError(
                            404, "unknown-session",
                            f"cannot close unknown session {req.session!r}",
                        )
                    self._retire(state)
                    self.closes += 1
                    out[i] = DecisionResponse(session=req.session, closed=True)
                    continue
                obs = req.observation
                if state is None:
                    if obs.chunk_index != 0:
                        raise ServeError(
                            404, "unknown-session",
                            f"session {req.session!r} is unknown; new sessions "
                            "must start at chunk 0",
                        )
                    state = self._create_session(req)
                    fresh = True
                else:
                    if req.protocol is not None and req.protocol != state.protocol:
                        raise ServeError(
                            409, "protocol-mismatch",
                            f"session {req.session!r} is served by "
                            f"{state.protocol!r}, not {req.protocol!r}",
                        )
                    if obs.chunk_index != state.next_chunk:
                        raise ServeError(
                            409, "out-of-order",
                            f"session {req.session!r} expects chunk "
                            f"{state.next_chunk}, got {obs.chunk_index}",
                        )
                    state.remote.update(obs)
                    fresh = False
                group_entries.setdefault(state.protocol, []).append((i, state, fresh))
            except ServeError as exc:
                self.errors += 1
                out[i] = exc
            except Exception as exc:  # one bad request must not kill the window
                self.errors += 1
                out[i] = ServeError(500, "internal", f"{type(exc).__name__}: {exc}")
        for name, entries in group_entries.items():
            group = self._groups[name]
            try:
                self._serve_group(group, entries, out)
            except Exception as exc:
                err = ServeError(500, "internal", f"{type(exc).__name__}: {exc}")
                for i, _state, _fresh in entries:
                    if out[i] is None:
                        self.errors += 1
                        out[i] = err
        return out

    def _create_session(self, req: DecisionRequest) -> SessionState:
        name = req.protocol
        if name is None:
            if len(self._groups) != 1:
                raise ServeError(
                    400, "protocol-required",
                    "a session's first request must name a protocol: "
                    + ", ".join(self.protocol_names),
                )
            name = next(iter(self._groups))
        group = self._groups.get(name)
        if group is None:
            raise ServeError(
                404, "unknown-protocol",
                f"unknown protocol {name!r}; serving "
                + ", ".join(self.protocol_names),
            )
        if len(self.store) >= self.store.max_sessions:
            raise ServeError(
                503, "at-capacity",
                f"server at its {self.store.max_sessions}-session capacity",
            )
        remote = RemoteSession(self.video)
        remote.update(req.observation)  # validates before any allocation
        # Same stream construction as BatchedSessionEngine._session_rng:
        # the per-session stream depends only on the session's identity.
        if req.seed is not None:
            rng = np.random.default_rng(np.random.SeedSequence(req.seed))
        else:
            rng = np.random.default_rng(np.random.SeedSequence(
                entropy=self.seed, spawn_key=(self.store.next_index(),)
            ))
        lane = group.alloc()
        group.adapter.start(lane, remote, rng)
        state = SessionState(sid=req.session, protocol=name, lane=lane, remote=remote)
        self.store.add(state)
        return state

    def _serve_group(
        self,
        group: _Group,
        entries: list[tuple[int, SessionState, bool]],
        out: list,
    ) -> None:
        # Continuing sessions first report their finished download -- the
        # engine's observe_round step, reconstructed from the client's
        # observation.  Fresh sessions were initialized by start().
        continuing = [state for _i, state, fresh in entries if not fresh]
        if continuing:
            group.adapter.observe_round(
                [s.lane for s in continuing],
                [s.remote for s in continuing],
                [chunk_result_from(s.remote.observation(), self.video)
                 for s in continuing],
            )
        actions = group.adapter.select(
            [state.lane for _i, state, _fresh in entries],
            [state.remote for _i, state, _fresh in entries],
        )
        if isinstance(actions, np.ndarray):
            actions = actions.tolist()
        for (i, state, _fresh), action in zip(entries, actions):
            quality = int(action)
            obs = state.remote.observation()
            out[i] = DecisionResponse(
                session=state.sid,
                chunk_index=obs.chunk_index,
                quality=quality,
                bitrate_kbps=float(self.video.bitrates_kbps[quality]),
            )
            state.next_chunk = obs.chunk_index + 1
            state.decisions += 1
            group.decisions += 1
            self.decisions += 1
            if obs.chunks_remaining <= 1:
                # That was the video's last decision: the lane frees now.
                self._retire(state)

    def _retire(self, state: SessionState) -> None:
        group = self._groups[state.protocol]
        group.adapter.finish(state.lane)
        group.free.append(state.lane)
        self.store.retire(state.sid)

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """The ``GET /stats`` payload (JSON-safe plain types)."""
        cache_stats = None
        if self.cache is not None:
            cache_stats = {k: int(v) for k, v in self.cache.stats().items()}
            cache_stats["hit_rate"] = self.cache.hit_rate()
        return {
            "uptime_seconds": time.time() - self._started,
            "mode": self.mode,
            "batch_size": self.batch_size,
            "video": {"n_chunks": self.video.n_chunks,
                      "n_bitrates": self.video.n_bitrates},
            "protocols": {
                name: {"decisions": g.decisions, "lanes": g.n_lanes}
                for name, g in sorted(self._groups.items())
            },
            "requests": {"total": self.requests, "decisions": self.decisions,
                         "errors": self.errors, "closed": self.closes},
            "sessions": {"active": len(self.store), "created": self.store.created,
                         "retired": self.store.retired},
            "coalescer": self.coalescer.stats(),
            "latency_seconds": self.latency.summary(),
            "cache": cache_stats,
        }

    def record_metrics(self) -> None:
        """Flush serving telemetry into the recorder (metrics.jsonl)."""
        rec = self.recorder
        if not rec.enabled:
            return
        self.coalescer.record_metrics()
        rec.record("serve/requests", self.requests)
        rec.record("serve/decisions", self.decisions)
        rec.record("serve/errors", self.errors)
        rec.record("serve/sessions_created", self.store.created)
        rec.record_dict(self.latency.summary(), prefix="serve/latency_")
        if self.cache is not None:
            self.cache.record_metrics(rec, prefix="serve/cache/")
