"""repro.serve: an asyncio ABR decision service with request coalescing.

Production ABR runs as a decision server the player queries once per
chunk; this package puts that serving boundary on top of the repo's
protocol stack.  The perf centerpiece is the micro-batching coalescer:
concurrent in-flight requests are drained in windows and each window is
served with **one** batched policy evaluation via the PR 6 adapters, so
requests/sec scales with the batched engine instead of per-request
policy-call overhead -- while every served decision stays bitwise
identical to the inline policy call (see ``docs/architecture.md``).

Layout: :mod:`~repro.serve.protocol` (wire schema, JSON + binary
codecs), :mod:`~repro.serve.state` (session store),
:mod:`~repro.serve.coalescer` (micro-batcher),
:mod:`~repro.serve.service` (lifecycle + backends),
:mod:`~repro.serve.http` (asyncio HTTP server),
:mod:`~repro.serve.loadgen` (closed-loop load generator + identity
verification).
"""

from repro.serve.coalescer import Coalescer
from repro.serve.http import HttpServer
from repro.serve.loadgen import (
    HttpTransport,
    InprocTransport,
    LoadReport,
    reference_decisions,
    run_loadgen,
)
from repro.serve.protocol import (
    CONTENT_BINARY,
    CONTENT_JSON,
    DecisionRequest,
    DecisionResponse,
    ServeError,
    decode_request,
    decode_response,
    encode_error,
    encode_request,
    encode_response,
)
from repro.serve.service import (
    CachedBatchedMPC,
    DecisionService,
    InlineAdapter,
    default_protocols,
    make_demo_pensieve,
)
from repro.serve.state import RemoteSession, SessionState, SessionStore

__all__ = [
    "CONTENT_BINARY",
    "CONTENT_JSON",
    "CachedBatchedMPC",
    "Coalescer",
    "DecisionRequest",
    "DecisionResponse",
    "DecisionService",
    "HttpServer",
    "HttpTransport",
    "InlineAdapter",
    "InprocTransport",
    "LoadReport",
    "RemoteSession",
    "ServeError",
    "SessionState",
    "SessionStore",
    "decode_request",
    "decode_response",
    "default_protocols",
    "encode_error",
    "encode_request",
    "encode_response",
    "make_demo_pensieve",
    "reference_decisions",
    "run_loadgen",
]
