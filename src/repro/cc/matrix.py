"""The adversarial scenario matrix: 5 protocols x 4 contention scenarios.

Section 5's agenda goes past single-flow utilization: "finding conditions
in which the protocol causes the highest amount of congestion", incast,
unfairness.  This module evaluates every congestion-control protocol in
the tree under a fixed grid of contention scenarios on the multi-flow
fast path (:class:`repro.cc.multiflow.MultiFlowEmulator`):

- ``solo``        -- one flow on the steady mid-range link (baseline),
- ``pair-same``   -- two flows of the same protocol (intra-protocol
  fairness),
- ``pair-mixed``  -- the protocol vs a fixed reference competitor
  (inter-protocol fairness; BBR, the paper's protagonist, except for BBR
  itself which meets Cubic),
- ``adversarial`` -- the protocol under a *replayed trace-adversary link
  schedule* (bandwidth square-waves at the probing cadence, latency
  spikes, loss bursts -- the shape the paper's learned adversary
  converges to, frozen into a seeded schedule so every cell replays the
  identical attack) while the adversary also controls the cross-traffic:
  it picks the competing flow's congestion control *and* start time from
  :data:`ADVERSARIAL_CROSS` x :data:`ADVERSARIAL_STARTS` and the cell
  reports the worst outcome for the target.

Per cell the matrix reports the paper's Figure-5 metric generalized to
contention -- the target flow's **capacity fraction** (mean throughput
over mean link capacity) -- and the **Jain-fairness regret** ``1 -
jain_fairness(per-flow rates)`` (0 = perfectly fair split).

Every emulator run is one independent task fanned through
:class:`repro.exec.ParallelMap` and memoized in a
:class:`repro.exec.ResultCache` under a content key of the full task
spec, so results are bitwise-independent of the worker count and a
warm-cache re-run recomputes nothing.  :func:`run_cc_matrix` is the
entry point; ``repro.cli eval-cc-matrix`` renders the committed
``results/cc_matrix.txt``.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass

import numpy as np

from repro.cc.link import TimeVaryingLink
from repro.cc.multiflow import MultiFlowEmulator, jain_fairness
from repro.cc.protocols.bbr import BBRSender
from repro.cc.protocols.copa import CopaSender
from repro.cc.protocols.cubic import CubicSender
from repro.cc.protocols.reno import RenoSender
from repro.cc.protocols.vivace import VivaceSender
from repro.exec import ResultCache, as_runner, cached_map, make_key
from repro.obs.metrics import MetricsRecorder, NULL_RECORDER

__all__ = [
    "MATRIX_TICK_S",
    "PROTOCOLS",
    "SCENARIOS",
    "CcMatrixResult",
    "MatrixCell",
    "MatrixTask",
    "adversarial_schedule",
    "format_matrix",
    "run_cc_matrix",
    "run_matrix_task",
    "steady_schedule",
]

PROTOCOLS = {
    "bbr": BBRSender,
    "cubic": CubicSender,
    "reno": RenoSender,
    "copa": CopaSender,
    "vivace": VivaceSender,
}

SCENARIOS = ("solo", "pair-same", "pair-mixed", "adversarial")

#: The adversary's cross-traffic arsenal: which congestion control the
#: competing flow runs, and when it starts (late joiners catch the target
#: at its steady-state window).
ADVERSARIAL_CROSS = ("cubic", "vivace")
ADVERSARIAL_STARTS = (0.0, 1.5)

#: RTO-check period for matrix cells: 0.1 s would realign with the 30 ms
#: adversary interval every 300 ms, synchronizing timeout checks with
#: condition changes; 95 ms pushes the common period out to 5.7 s.
MATRIX_TICK_S = 0.095

# Steady-cell conditions: the middle of the Table-1 action ranges
# (bandwidth 6-24 Mbps, latency 15-60 ms, no loss).
_STEADY_BW_MBPS = 15.0
_STEADY_LAT_MS = 37.5

# Adversarial schedule ranges (the Table-1 action space the paper's
# adversary acts in).
_BW_LOW, _BW_HIGH = 6.0, 24.0
_LAT_LOW, _LAT_HIGH = 15.0, 60.0
_LOSS_BURST = 0.02


def steady_schedule(n_intervals: int) -> np.ndarray:
    """``(n, 3)`` array of steady mid-range (bw_mbps, lat_ms, loss)."""
    schedule = np.empty((n_intervals, 3))
    schedule[:, 0] = _STEADY_BW_MBPS
    schedule[:, 1] = _STEADY_LAT_MS
    schedule[:, 2] = 0.0
    return schedule


def adversarial_schedule(n_intervals: int, seed: int) -> np.ndarray:
    """A replayed trace-adversary link schedule, ``(n, 3)``.

    The shape the trained CC adversary converges to (section 4, Figure
    6): bandwidth square-waves between the Table-1 extremes with dwell
    times of 4-10 intervals (120-300 ms, bracketing BBR's probing
    cadence), occasional latency spikes to the range top (poisoning
    RTprop exactly as the paper describes around PROBE_RTT), and short
    2% loss bursts that starve the loss-based protocols.  Seeded and
    deterministic: every matrix cell replays the identical schedule, so
    differences between cells are attributable to the protocols, not the
    draw.
    """
    rng = np.random.default_rng(seed)
    schedule = np.empty((n_intervals, 3))
    i = 0
    high = True
    while i < n_intervals:
        dwell = int(rng.integers(4, 11))
        end = min(i + dwell, n_intervals)
        schedule[i:end, 0] = _BW_HIGH if high else _BW_LOW
        # Latency spikes ride on the low-bandwidth phases (the paper's
        # adversary pairs them); otherwise latency sits at the range floor.
        spike = (not high) and rng.random() < 0.5
        schedule[i:end, 1] = _LAT_HIGH if spike else _LAT_LOW
        schedule[i:end, 2] = _LOSS_BURST if rng.random() < 0.15 else 0.0
        high = not high
        i = end
    return schedule


@dataclass(frozen=True)
class MatrixTask:
    """One independent emulator run (a cell, or one adversarial variant).

    Frozen and built from primitives only, so it pickles to workers and
    fingerprints into a cache key without special cases.
    """

    protocol: str
    scenario: str
    flows: tuple[str, ...]
    start_times: tuple[float, ...]
    n_intervals: int
    interval_s: float
    queue_packets: int
    tick_s: float
    seed: int
    schedule_seed: int
    adversarial: bool

    def cache_key(self) -> str:
        return make_key("cc-matrix", astuple(self))


@dataclass
class MatrixCell:
    """Per-cell outcome; ``flows[0]`` is always the target protocol."""

    protocol: str
    scenario: str
    flows: tuple[str, ...]
    start_times: tuple[float, ...]
    throughput_mbps: tuple[float, ...]
    capacity_mbps: float
    capacity_fraction: float
    fairness: float
    fairness_regret: float


@dataclass
class CcMatrixResult:
    """The full grid plus every adversarial variant that was tried."""

    cells: list[MatrixCell]
    adversarial_variants: list[MatrixCell]

    def cell(self, protocol: str, scenario: str) -> MatrixCell:
        for cell in self.cells:
            if cell.protocol == protocol and cell.scenario == scenario:
                return cell
        raise KeyError(f"no cell ({protocol}, {scenario})")


def run_matrix_task(task: MatrixTask) -> MatrixCell:
    """Run one scenario-matrix task on the multi-flow fast path."""
    senders = [PROTOCOLS[name]() for name in task.flows]
    schedule = (
        adversarial_schedule(task.n_intervals, task.schedule_seed)
        if task.adversarial
        else steady_schedule(task.n_intervals)
    )
    link = TimeVaryingLink(
        bandwidth_mbps=float(schedule[0, 0]),
        latency_ms=float(schedule[0, 1]),
        loss_rate=float(schedule[0, 2]),
        queue_packets=task.queue_packets,
    )
    emulator = MultiFlowEmulator(
        senders,
        link,
        seed=task.seed,
        tick_s=task.tick_s,
        start_times=list(task.start_times),
    )
    for bw, lat, loss in schedule:
        emulator.set_conditions(float(bw), float(lat), float(loss))
        emulator.run_interval(task.interval_s)
    duration = task.n_intervals * task.interval_s
    rates = tuple(
        flow.delivered_bytes_total * 8.0 / duration / 1e6
        for flow in emulator.flows
    )
    capacity = float(schedule[:, 0].mean())
    fairness = jain_fairness(rates)
    return MatrixCell(
        protocol=task.protocol,
        scenario=task.scenario,
        flows=task.flows,
        start_times=task.start_times,
        throughput_mbps=rates,
        capacity_mbps=capacity,
        capacity_fraction=rates[0] / capacity if capacity > 0 else 0.0,
        fairness=fairness,
        fairness_regret=1.0 - fairness,
    )


def _mixed_partner(protocol: str) -> str:
    return "cubic" if protocol == "bbr" else "bbr"


def build_tasks(
    protocols: list[str],
    n_intervals: int,
    interval_s: float,
    queue_packets: int,
    tick_s: float,
    seed: int,
    schedule_seed: int,
) -> list[MatrixTask]:
    """The flat, deterministic task list behind the 5 x 4 grid.

    Adversarial cells expand into one task per (cross-CC, start-time)
    option; :func:`run_cc_matrix` folds them back to the worst case.
    """
    common = dict(
        n_intervals=n_intervals,
        interval_s=interval_s,
        queue_packets=queue_packets,
        tick_s=tick_s,
        seed=seed,
        schedule_seed=schedule_seed,
    )
    tasks: list[MatrixTask] = []
    for protocol in protocols:
        tasks.append(MatrixTask(
            protocol=protocol, scenario="solo", flows=(protocol,),
            start_times=(0.0,), adversarial=False, **common,
        ))
        tasks.append(MatrixTask(
            protocol=protocol, scenario="pair-same",
            flows=(protocol, protocol), start_times=(0.0, 0.0),
            adversarial=False, **common,
        ))
        tasks.append(MatrixTask(
            protocol=protocol, scenario="pair-mixed",
            flows=(protocol, _mixed_partner(protocol)),
            start_times=(0.0, 0.0), adversarial=False, **common,
        ))
        for cross in ADVERSARIAL_CROSS:
            for start in ADVERSARIAL_STARTS:
                tasks.append(MatrixTask(
                    protocol=protocol, scenario="adversarial",
                    flows=(protocol, cross), start_times=(0.0, start),
                    adversarial=True, **common,
                ))
    return tasks


def run_cc_matrix(
    protocols: list[str] | None = None,
    n_intervals: int = 600,
    interval_s: float = 0.030,
    queue_packets: int = 120,
    tick_s: float = MATRIX_TICK_S,
    seed: int = 0,
    schedule_seed: int = 42,
    workers=None,
    cache=None,
    recorder: MetricsRecorder | None = None,
) -> CcMatrixResult:
    """Evaluate the scenario matrix; results independent of ``workers``.

    Each task is a fresh-emulator run, so ``workers`` fans them over a
    :class:`~repro.exec.ParallelMap` (order-preserving: the grid is
    bitwise-identical at any worker count) and ``cache`` memoizes each
    cell under a content key of the task spec -- a warm-cache re-run is
    served entirely from disk.  The adversarial cell reports the variant
    with the *lowest* target capacity fraction (ties broken by task
    order, which is deterministic).  ``recorder`` observes per-cell
    metrics, phase timing and cache counters; it never changes results.
    """
    if protocols is None:
        protocols = list(PROTOCOLS)
    unknown = [p for p in protocols if p not in PROTOCOLS]
    if unknown:
        raise ValueError(f"unknown protocols: {unknown} (have {list(PROTOCOLS)})")
    recorder = recorder if recorder is not None else NULL_RECORDER
    cache = ResultCache.resolve(cache)
    tasks = build_tasks(
        protocols, n_intervals, interval_s, queue_packets, tick_s,
        seed, schedule_seed,
    )
    keys = [task.cache_key() for task in tasks] if cache is not None else None
    with as_runner(workers, recorder=recorder) as runner:
        with recorder.timer("matrix/run_seconds", tasks=len(tasks)):
            outcomes = cached_map(run_matrix_task, tasks, runner,
                                  cache=cache, keys=keys)
    by_task = dict(zip(tasks, outcomes))
    cells: list[MatrixCell] = []
    variants: list[MatrixCell] = []
    for protocol in protocols:
        for scenario in SCENARIOS:
            matching = [
                by_task[t] for t in tasks
                if t.protocol == protocol and t.scenario == scenario
            ]
            if scenario == "adversarial":
                variants.extend(matching)
                # The adversary picks its best attack: worst capacity
                # fraction for the target (first match on ties).
                cells.append(min(matching, key=lambda c: c.capacity_fraction))
            else:
                cells.append(matching[0])
    for step, cell in enumerate(cells):
        recorder.record("matrix/capacity_fraction", cell.capacity_fraction,
                        step=step, protocol=cell.protocol,
                        scenario=cell.scenario)
        recorder.record("matrix/fairness_regret", cell.fairness_regret,
                        step=step, protocol=cell.protocol,
                        scenario=cell.scenario)
    if cache is not None:
        cache.record_metrics(recorder, prefix="matrix_cache/")
    return CcMatrixResult(cells=cells, adversarial_variants=variants)


def format_matrix(result: CcMatrixResult) -> str:
    """Render the grid as the fixed-width table committed to results/."""
    lines = [
        "CC scenario matrix: capacity fraction / Jain fairness regret",
        "(adversarial = worst replayed-schedule + cross-traffic variant)",
        "",
        f"{'protocol':>10s}" + "".join(f"{s:>16s}" for s in SCENARIOS),
    ]
    protocols = list(dict.fromkeys(cell.protocol for cell in result.cells))
    for protocol in protocols:
        row = f"{protocol:>10s}"
        for scenario in SCENARIOS:
            cell = result.cell(protocol, scenario)
            row += f"{cell.capacity_fraction:>9.2f}/{cell.fairness_regret:<6.3f}"
        lines.append(row)
    lines.append("")
    adv = [c for c in result.cells if c.scenario == "adversarial"]
    for cell in adv:
        cross = cell.flows[1] if len(cell.flows) > 1 else "-"
        lines.append(
            f"worst attack vs {cell.protocol:>7s}: cross={cross:>7s} "
            f"start={cell.start_times[1]:.1f}s "
            f"capacity_fraction={cell.capacity_fraction:.2f} "
            f"fairness_regret={cell.fairness_regret:.3f}"
        )
    return "\n".join(lines) + "\n"
