"""Multi-flow emulation: several senders sharing one bottleneck.

Section 5 points at adversarial goals beyond single-flow utilization --
"finding conditions in which the protocol causes the highest amount of
congestion", incast, unfairness.  Those need more than one flow through
the bottleneck; this module extends the single-flow emulator to N
senders sharing the droptail queue, and provides Jain's fairness index
over their goodputs.

The mechanics mirror :class:`repro.cc.network.PacketNetworkEmulator`:
per-sender pacing timers and sequence spaces, one shared FIFO served at
the link rate, Bernoulli loss at ingress, symmetric propagation delay.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.cc.link import TimeVaryingLink
from repro.cc.packet import Packet
from repro.cc.protocols.base import Sender

__all__ = ["FlowStats", "MultiFlowEmulator", "jain_fairness"]

_TICK_S = 0.1


def jain_fairness(rates) -> float:
    """Jain's index: (sum x)^2 / (n * sum x^2); 1.0 is perfectly fair."""
    x = np.asarray(list(rates), dtype=float)
    if len(x) == 0:
        raise ValueError("need at least one rate")
    if np.all(x == 0):
        return 1.0
    return float(x.sum() ** 2 / (len(x) * np.sum(x * x)))


@dataclass
class FlowStats:
    """Per-flow outcome over an interval or a whole run."""

    bytes_delivered: int
    throughput_mbps: float


@dataclass
class _Flow:
    sender: Sender
    next_seq: int = 0
    send_blocked: bool = False
    last_progress: float = 0.0
    delivered_bytes_interval: int = 0


class MultiFlowEmulator:
    """N senders contending for one time-varying bottleneck."""

    def __init__(
        self,
        senders: list[Sender],
        link: TimeVaryingLink,
        seed: int = 0,
        start_stagger_s: float = 0.0,
    ) -> None:
        if not senders:
            raise ValueError("need at least one sender")
        self.link = link
        self.rng = np.random.default_rng(seed)
        self.now = 0.0
        self._events: list[tuple[float, int, str, int, Packet | None]] = []
        self._counter = 0
        self.flows = [_Flow(sender=s) for s in senders]
        for index, _flow in enumerate(self.flows):
            self._schedule(index * start_stagger_s, "send", index, None)
        self._schedule(_TICK_S, "tick", -1, None)

    # -- events ------------------------------------------------------------------

    def _schedule(self, t: float, kind: str, flow: int, packet: Packet | None) -> None:
        self._counter += 1
        heapq.heappush(self._events, (t, self._counter, kind, flow, packet))

    def run_until(self, t_end: float) -> None:
        if t_end < self.now:
            raise ValueError("cannot run backwards in time")
        while self._events and self._events[0][0] <= t_end:
            t, _count, kind, flow_index, packet = heapq.heappop(self._events)
            self.now = t
            if kind == "send":
                self._on_send_timer(flow_index)
            elif kind == "egress":
                self._on_egress()
            elif kind == "deliver":
                assert packet is not None
                self._schedule(self.now + self.link.one_way_delay_s, "ack",
                               flow_index, packet)
            elif kind == "ack":
                assert packet is not None
                self._on_ack(flow_index, packet)
            elif kind == "tick":
                self._on_tick()
        self.now = t_end

    def _on_send_timer(self, flow_index: int) -> None:
        flow = self.flows[flow_index]
        if not flow.sender.can_send():
            flow.send_blocked = True
            return
        packet = Packet(
            seq=flow.next_seq,
            size_bytes=flow.sender.mss,
            sent_time=self.now,
            delivered_at_send=flow.sender.delivered_bytes,
            delivered_time_at_send=flow.sender.delivered_time,
        )
        flow.next_seq += 1
        flow.sender.register_send(packet)
        if self.rng.random() >= self.link.loss_rate:
            if not self.link.queue_full:
                packet.ingress_time = self.now
                # Tag the owner flow on the packet for demultiplexing.
                packet.owner = flow_index
                self.link.enqueue(packet)
                if not self.link.busy:
                    self._start_service()
            else:
                self.link.drops_queue += 1
        else:
            self.link.drops_loss += 1
        rate = max(flow.sender.pacing_rate_bps(self.now), 1e3)
        self._schedule(self.now + flow.sender.mss * 8.0 / rate, "send",
                       flow_index, None)

    def _start_service(self) -> None:
        self.link.busy = True
        head = self.link.queue[0]
        head.service_start = self.now
        self._schedule(self.now + self.link.service_time(head), "egress", -1, None)

    def _on_egress(self) -> None:
        packet = self.link.dequeue()
        owner = packet.owner
        self.link.bytes_delivered += packet.size_bytes
        self.flows[owner].delivered_bytes_interval += packet.size_bytes
        self._schedule(self.now + self.link.one_way_delay_s, "deliver", owner, packet)
        if self.link.queue:
            self._start_service()
        else:
            self.link.busy = False

    def _on_ack(self, flow_index: int, packet: Packet) -> None:
        flow = self.flows[flow_index]
        flow.sender.handle_ack(packet, self.now)
        flow.last_progress = self.now
        if flow.send_blocked and flow.sender.can_send():
            flow.send_blocked = False
            self._schedule(self.now, "send", flow_index, None)

    def _on_tick(self) -> None:
        for index, flow in enumerate(self.flows):
            sender = flow.sender
            if sender.inflight and self.now - flow.last_progress > sender.rto_s():
                sender.handle_timeout(self.now)
                flow.last_progress = self.now
                if flow.send_blocked:
                    flow.send_blocked = False
                    self._schedule(self.now, "send", index, None)
        self._schedule(self.now + _TICK_S, "tick", -1, None)

    # -- controller API ---------------------------------------------------------------

    def set_conditions(self, bandwidth_mbps: float, latency_ms: float,
                       loss_rate: float) -> None:
        self.link.set_conditions(bandwidth_mbps, latency_ms, loss_rate)

    def run_interval(self, dt: float) -> list[FlowStats]:
        """Advance ``dt`` seconds; return per-flow delivery stats."""
        if dt <= 0:
            raise ValueError("interval must be positive")
        for flow in self.flows:
            flow.delivered_bytes_interval = 0
        self.run_until(self.now + dt)
        return [
            FlowStats(
                bytes_delivered=flow.delivered_bytes_interval,
                throughput_mbps=flow.delivered_bytes_interval * 8.0 / dt / 1e6,
            )
            for flow in self.flows
        ]

    def fairness(self, stats: list[FlowStats]) -> float:
        return jain_fairness(s.throughput_mbps for s in stats)
