"""Multi-flow emulation: several senders sharing one bottleneck.

Section 5 points at adversarial goals beyond single-flow utilization --
"finding conditions in which the protocol causes the highest amount of
congestion", incast, unfairness.  Those need more than one flow through
the bottleneck; this module extends the single-flow emulator to N
senders sharing the droptail queue, and provides Jain's fairness index
over their goodputs.

The mechanics mirror :class:`repro.cc.network.PacketNetworkEmulator`,
and so does the hot-path architecture (the multi-flow port of the PR 2
fast path): integer event kinds, pre-drawn Bernoulli loss uniforms, a
dedicated send-timer slot per flow instead of heap-resident send events,
inlined queue admission with a maintained byte counter, and ``__slots__``
flow records.  Two deliberate differences from the single-flow fast
path, both forced by the bit-identity requirement (goldens pinned in
``tests/test_multiflow_goldens.py`` for all five senders, *not*
re-pinned):

- *The deliver hop folds conditionally.*  The ack's second leg must be
  priced at the one-way delay *in force when the packet reaches the
  receiver*, and the adversarial scenario matrix changes latency every
  interval; the single-flow emulator folds unconditionally (and
  re-pinned its goldens for the interval-boundary cases where that moves
  ack arrival times).  Here a receiver hop landing inside the current
  ``run_until`` horizon schedules its ack directly at ``+2 x
  one_way_delay`` -- conditions cannot change mid-window
  (``set_conditions`` is only called between ``run_interval`` calls), so
  both legs provably see the same delay and the folded ack time is the
  identical float.  A hop that crosses the window boundary goes to a
  *pending-delivers* list instead of the heap; each later ``run_until``
  converts the entries whose deliver time falls inside its window,
  pricing the return leg at the delay then in force -- the same float
  the historical ``deliver`` event read when it popped.  No heap
  traffic either way.
- *The event loop is fused.*  ``run_until`` dispatches on the kind int
  and inlines the send/egress/ack bodies directly, mirroring the hot
  counters (event counter, loss-block cursor, conservation totals) in
  locals and syncing them back on exit; per-event attribute traffic is
  what the handler-table indirection cost at N flows.  Only the rare
  RTO tick remains a method call.

Event kinds:

- ``SEND``   -- a flow's pacing timer fires; transmit if its cwnd allows
  (never heap-resident: each flow has a dedicated timer slot),
- ``EGRESS`` -- the head-of-line packet finishes transmission,
- ``ACK``    -- the ack reaches the owning sender,
- ``TICK``   -- periodic per-flow RTO check on a fixed ``tick_s`` grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush

import numpy as np

from repro.cc.link import TimeVaryingLink
from repro.cc.packet import Packet
from repro.cc.protocols.base import Sender

__all__ = ["FlowStats", "MultiFlowEmulator", "jain_fairness"]

_TICK_S = 0.1

# Integer event kinds: tuple comparison in the heap and the run_until
# dispatch both reduce to small-int operations instead of string
# compares.  SEND never enters the heap (each flow has a dedicated timer
# slot) and DELIVER never exists as an event (in-window hops fold into
# the ack, boundary-crossing hops wait in the pending-delivers list).
_EGRESS, _ACK, _TICK = 0, 1, 2

#: Uniform draws fetched from the generator per block.  Blocks preserve
#: the exact per-packet draw sequence of the historical one-``random()``-
#: per-packet implementation: ``Generator.random(n)`` consumes the same
#: doubles in the same order as ``n`` scalar calls, and the loss-rate
#: comparison happens at consumption time, so mid-block ``loss_rate``
#: changes never perturb the stream.
_LOSS_BLOCK = 4096


def jain_fairness(rates) -> float:
    """Jain's index: (sum x)^2 / (n * sum x^2); 1.0 is perfectly fair.

    Rates must be non-negative -- the index is only meaningful over
    resource shares, and a negative rate can push it outside (0, 1]
    silently, so it raises :class:`ValueError` instead.
    """
    x = np.asarray(list(rates), dtype=float)
    if len(x) == 0:
        raise ValueError("need at least one rate")
    if np.any(x < 0):
        raise ValueError(f"rates must be non-negative, got {x[x < 0].tolist()}")
    if np.all(x == 0):
        return 1.0
    return float(x.sum() ** 2 / (len(x) * np.sum(x * x)))


@dataclass
class FlowStats:
    """Per-flow outcome over an interval or a whole run."""

    bytes_delivered: int
    throughput_mbps: float


class _Flow:
    """Hot per-flow record; one per sender, touched on every event."""

    __slots__ = (
        "sender",
        "ack_fn",
        "cwnd",
        "next_seq",
        "send_blocked",
        "last_progress",
        "delivered_bytes_interval",
        "delivered_bytes_total",
        "send_t",
        "send_c",
    )

    def __init__(self, sender: Sender) -> None:
        self.sender = sender
        #: Bound ``handle_ack`` (one descriptor lookup per flow, not per ack).
        self.ack_fn = sender.handle_ack
        #: Cached ``sender.cwnd_packets``.  Every protocol's cwnd depends
        #: only on state mutated inside ``handle_ack``/``handle_timeout``,
        #: so recomputing the property once after each of those calls is
        #: exactly the per-check property read the naive loop performed.
        self.cwnd = sender.cwnd_packets
        self.next_seq = 0
        self.send_blocked = False
        self.last_progress = 0.0
        self.delivered_bytes_interval = 0
        #: Cumulative delivered bytes (conservation: these sum to
        #: ``link.bytes_delivered`` across flows at any event boundary).
        self.delivered_bytes_total = 0
        # The pacing timer lives in this dedicated slot instead of the
        # heap: a flow has at most one pending send at any time (its send
        # chain is self-perpetuating and parks in ``send_blocked`` when
        # the window closes), so a (time, counter) pair replaces a heap
        # push+pop per packet.  The counter preserves the exact FIFO
        # tie-break order of the historical all-in-one-heap emulator.
        self.send_t: float | None = None
        self.send_c = 0


class MultiFlowEmulator:
    """N senders contending for one time-varying bottleneck.

    Conservation counters (exact at any event boundary, tested in
    tests/test_cc_multiflow.py)::

        packets_sent == packets_delivered + link.drops_loss
                        + link.drops_queue + len(link.queue) + acks_in_flight

    where ``packets_delivered`` counts acks handed back to senders and
    ``acks_in_flight`` counts packets past egress whose deliver/ack legs
    are still propagating.

    Parameters
    ----------
    tick_s:
        RTO-check period.  The tick grid is fixed at multiples of
        ``tick_s``; matrix cells pick values that do not alias the 30 ms
        adversary interval.  Default 0.1 s (the historical constant).
    start_stagger_s:
        Flow *i* starts sending at ``i * start_stagger_s``.
    start_times:
        Explicit per-flow start times (seconds), overriding the stagger
        -- this is the knob the adversarial scenario matrix uses for
        competing-flow start control.
    """

    def __init__(
        self,
        senders: list[Sender],
        link: TimeVaryingLink,
        seed: int = 0,
        start_stagger_s: float = 0.0,
        tick_s: float = _TICK_S,
        start_times: list[float] | None = None,
    ) -> None:
        if not senders:
            raise ValueError("need at least one sender")
        tick_s = float(tick_s)
        if not math.isfinite(tick_s) or tick_s <= 0:
            raise ValueError(f"tick_s must be a positive finite float, got {tick_s}")
        if start_times is not None:
            if len(start_times) != len(senders):
                raise ValueError(
                    f"got {len(start_times)} start times for {len(senders)} senders"
                )
            if any(t < 0 for t in start_times):
                raise ValueError(f"start times must be non-negative: {start_times}")
        self.link = link
        self.rng = np.random.default_rng(seed)
        self.now = 0.0
        self.tick_s = tick_s
        self._events: list[tuple[float, int, int, Packet | None]] = []
        self._counter = 0
        # Packets past egress whose receiver hop crosses the current
        # window boundary: (deliver_time, counter, packet), converted to
        # ack events by the run_until window containing deliver_time (see
        # the module docstring).  The counter is the one the historical
        # deliver event would have carried; it orders conversions.
        self._pending_delivers: list[tuple[float, int, Packet]] = []
        self.flows = [_Flow(s) for s in senders]
        # Pre-drawn Bernoulli loss uniforms; see _LOSS_BLOCK.
        self._loss_block: list[float] = self.rng.random(_LOSS_BLOCK).tolist()
        self._loss_idx = 0
        # Conservation counters (see class docstring).
        self.packets_sent = 0
        self.packets_delivered = 0
        self.acks_in_flight = 0
        # Counter assignment order matches the historical implementation:
        # one send per flow (counters 1..N), then the first tick (N+1).
        for index, flow in enumerate(self.flows):
            self._counter += 1
            flow.send_t = (
                start_times[index] if start_times is not None
                else index * start_stagger_s
            )
            flow.send_c = self._counter
        self._counter += 1
        heappush(self._events, (tick_s, self._counter, _TICK, None))

    # -- events ------------------------------------------------------------------

    def run_until(self, t_end: float) -> None:
        """Process all events up to simulated time ``t_end``.

        The fused hot loop (see the module docstring): interleaves the
        heap with the per-flow send slots under the same (time, counter)
        key the heap uses -- so event order is identical to scheduling
        sends through the heap -- and inlines the send/egress/ack bodies
        around the dispatch, mirroring the hot counters in locals.
        """
        if t_end < self.now:
            raise ValueError("cannot run backwards in time")
        link = self.link
        events = self._events
        flows = self.flows
        counter = self._counter
        pending = self._pending_delivers
        # Constant for the whole window (set_conditions only runs between
        # run_interval calls).
        delay = link.one_way_delay_s
        loss_rate = link.loss_rate
        rate_bps = link.rate_bps
        queue_packets = link.queue_packets
        queue = link.queue
        # Convert the pending receiver hops this window reaches: the
        # return leg is priced at the delay now in force -- the same
        # float the historical deliver event read when it popped at
        # deliver_t inside this window.  Sorting on (deliver_t, counter)
        # reproduces the order those pops would have assigned fresh ack
        # counters in.  (A delay drop can make a later hop due before an
        # earlier still-crossing one, so the list is not always sorted.)
        if pending:
            due = [e for e in pending if e[0] <= t_end]
            if due:
                if len(due) == len(pending):
                    del pending[:]
                else:
                    self._pending_delivers = pending = [
                        e for e in pending if e[0] > t_end
                    ]
                due.sort()
                for deliver_t, _c, packet in due:
                    counter += 1
                    heappush(events, (deliver_t + delay, counter, _ACK, packet))
        loss_block = self._loss_block
        loss_idx = self._loss_idx
        packets_sent = self.packets_sent
        packets_delivered = self.packets_delivered
        acks_in_flight = self.acks_in_flight
        # Link accumulators mirrored in locals (nothing reads them
        # mid-window; synced back at exit).
        queue_bytes = link._queue_bytes
        bytes_delivered = link.bytes_delivered
        drops_loss = link.drops_loss
        drops_queue = link.drops_queue
        # Earliest pending send across the flow slots; rescanned after a
        # send fires (O(n_flows), N is a handful), compare-updated on the
        # unblock paths (the waking slot was empty, so the cached min
        # cannot already point at it).
        send_t: float | None = None
        send_c = 0
        send_i = -1
        rescan = True
        while True:
            if rescan:
                rescan = False
                send_t = None
                for i, fl in enumerate(flows):
                    t = fl.send_t
                    if t is not None and (
                        send_t is None
                        or t < send_t
                        or (t == send_t and fl.send_c < send_c)
                    ):
                        send_t = t
                        send_c = fl.send_c
                        send_i = i
            if events:
                head = events[0]
                head_t = head[0]
                if send_t is None or head_t < send_t or (
                    head_t == send_t and head[1] < send_c
                ):
                    # -- heap event ------------------------------------
                    if head_t > t_end:
                        break
                    heappop(events)
                    now = head_t
                    kind = head[2]
                    if kind == _ACK:
                        packet = head[3]
                        acks_in_flight -= 1
                        packets_delivered += 1
                        owner = packet.owner
                        flow = flows[owner]
                        flow.ack_fn(packet, now)
                        sender = flow.sender
                        flow.cwnd = sender.cwnd_packets
                        flow.last_progress = now
                        # can_send() inlined (sole definition lives in
                        # base.Sender; no subclass overrides it).
                        if flow.send_blocked and len(sender.inflight) < flow.cwnd:
                            flow.send_blocked = False
                            counter += 1
                            flow.send_t = now
                            flow.send_c = counter
                            if send_t is None or now < send_t or (
                                now == send_t and counter < send_c
                            ):
                                send_t = now
                                send_c = counter
                                send_i = owner
                    elif kind == _EGRESS:
                        # link.dequeue/start-service inlined.
                        packet = queue.popleft()
                        size = packet.size_bytes
                        queue_bytes -= size
                        bytes_delivered += size
                        flow = flows[packet.owner]
                        flow.delivered_bytes_interval += size
                        flow.delivered_bytes_total += size
                        acks_in_flight += 1
                        deliver_t = now + delay
                        counter += 1
                        if deliver_t <= t_end:
                            # In-window receiver hop: fold (both legs see
                            # the same frozen delay).
                            heappush(
                                events, (deliver_t + delay, counter, _ACK, packet)
                            )
                        else:
                            pending.append((deliver_t, counter, packet))
                        if queue:
                            nxt = queue[0]
                            nxt.service_start = now
                            counter += 1
                            heappush(
                                events,
                                (
                                    now + nxt.size_bytes * 8.0 / rate_bps,
                                    counter,
                                    _EGRESS,
                                    None,
                                ),
                            )
                        else:
                            link.busy = False
                    else:  # _TICK (rare: every tick_s)
                        self.now = now
                        self._counter = counter
                        self._on_tick(None)
                        counter = self._counter
                        rescan = True  # the tick may have woken flows
                    continue
            if send_t is None or send_t > t_end:
                break
            # -- send timer (from the flow slot, never the heap) -------
            now = send_t
            flow = flows[send_i]
            flow.send_t = None
            rescan = True
            sender = flow.sender
            if len(sender.inflight) >= flow.cwnd:  # can_send() inlined
                flow.send_blocked = True
                continue
            seq = flow.next_seq
            mss = sender.mss
            packet = Packet(
                seq,
                mss,
                now,
                sender.delivered_bytes,
                sender.delivered_time,
            )
            flow.next_seq = seq + 1
            packets_sent += 1
            # register_send() inlined (sole definition in base.Sender).
            sender.inflight[seq] = packet
            if seq > sender.highest_seq_sent:
                sender.highest_seq_sent = seq
            if loss_idx == _LOSS_BLOCK:
                self._loss_block = loss_block = self.rng.random(_LOSS_BLOCK).tolist()
                loss_idx = 0
            u = loss_block[loss_idx]
            loss_idx += 1
            if u >= loss_rate:
                if len(queue) < queue_packets:
                    packet.ingress_time = now
                    # Tag the owner flow on the packet for demultiplexing.
                    packet.owner = send_i
                    # link.enqueue/start-service inlined.
                    queue.append(packet)
                    queue_bytes += mss
                    if not link.busy:
                        link.busy = True
                        packet.service_start = now
                        counter += 1
                        heappush(
                            events,
                            (
                                now + mss * 8.0 / rate_bps,
                                counter,
                                _EGRESS,
                                None,
                            ),
                        )
                else:
                    drops_queue += 1
            else:
                drops_loss += 1
            rate = sender.pacing_rate_bps(now)
            if rate < 1e3:
                rate = 1e3
            counter += 1
            flow.send_t = now + mss * 8.0 / rate
            flow.send_c = counter
        self.now = t_end
        self._counter = counter
        self._loss_idx = loss_idx
        self.packets_sent = packets_sent
        self.packets_delivered = packets_delivered
        self.acks_in_flight = acks_in_flight
        link._queue_bytes = queue_bytes
        link.bytes_delivered = bytes_delivered
        link.drops_loss = drops_loss
        link.drops_queue = drops_queue

    def _on_tick(self, _packet: Packet | None) -> None:
        now = self.now
        for flow in self.flows:
            sender = flow.sender
            if sender.inflight and now - flow.last_progress > sender.rto_s():
                sender.handle_timeout(now)
                flow.cwnd = sender.cwnd_packets
                flow.last_progress = now
                if flow.send_blocked:
                    flow.send_blocked = False
                    self._counter += 1
                    flow.send_t = now
                    flow.send_c = self._counter
        self._counter += 1
        heappush(self._events, (now + self.tick_s, self._counter, _TICK, None))

    # -- controller API ---------------------------------------------------------------

    def set_conditions(self, bandwidth_mbps: float, latency_ms: float,
                       loss_rate: float) -> None:
        self.link.set_conditions(bandwidth_mbps, latency_ms, loss_rate)

    def run_interval(self, dt: float) -> list[FlowStats]:
        """Advance ``dt`` seconds; return per-flow delivery stats."""
        if dt <= 0:
            raise ValueError("interval must be positive")
        for flow in self.flows:
            flow.delivered_bytes_interval = 0
        self.run_until(self.now + dt)
        return [
            FlowStats(
                bytes_delivered=flow.delivered_bytes_interval,
                throughput_mbps=flow.delivered_bytes_interval * 8.0 / dt / 1e6,
            )
            for flow in self.flows
        ]

    def fairness(self, stats: list[FlowStats]) -> float:
        return jain_fairness(s.throughput_mbps for s in stats)
