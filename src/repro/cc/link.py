"""The time-varying bottleneck link: rate, propagation delay, random loss.

The adversary "is given control over link bandwidth, latency and random
loss rate at a granularity of 30 milliseconds" (section 4); the emulator
calls :meth:`TimeVaryingLink.set_conditions` at each interval boundary.
The queue is droptail, sized in packets.

Hot-path notes: ``rate_bps`` and ``one_way_delay_s`` are plain float
attributes recomputed in :meth:`set_conditions` (conditions change once
per 30 ms interval; they are read several times per packet), and the
queue's byte total is a running counter maintained by
:meth:`enqueue`/:meth:`dequeue` instead of an O(queue) sum.  Use those
two methods -- not ``link.queue.append``/``popleft`` directly -- so the
counter stays exact.
"""

from __future__ import annotations

from collections import deque

from repro.cc.packet import Packet

__all__ = ["TimeVaryingLink"]


class TimeVaryingLink:
    """Single FIFO bottleneck with piecewise-constant conditions."""

    def __init__(
        self,
        bandwidth_mbps: float,
        latency_ms: float,
        loss_rate: float = 0.0,
        queue_packets: int = 120,
    ) -> None:
        if queue_packets <= 0:
            raise ValueError("queue must hold at least one packet")
        self.queue_packets = int(queue_packets)
        self.queue: deque[Packet] = deque()
        self._queue_bytes = 0
        self.busy = False
        self.bytes_delivered = 0
        self.drops_loss = 0
        self.drops_queue = 0
        self.set_conditions(bandwidth_mbps, latency_ms, loss_rate)

    def set_conditions(
        self, bandwidth_mbps: float, latency_ms: float, loss_rate: float
    ) -> None:
        """Apply a new (bandwidth, latency, loss) tuple."""
        if bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_mbps}")
        if latency_ms < 0:
            raise ValueError(f"latency cannot be negative, got {latency_ms}")
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {loss_rate}")
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.latency_ms = float(latency_ms)
        self.loss_rate = float(loss_rate)
        #: Derived per-condition constants, cached for the event hot path.
        self.rate_bps = self.bandwidth_mbps * 1e6
        #: Half the configured round-trip latency, applied per direction.
        self.one_way_delay_s = self.latency_ms / 1000.0 / 2.0

    def service_time(self, packet: Packet) -> float:
        """Transmission time of ``packet`` at the current rate."""
        return packet.size_bytes * 8.0 / self.rate_bps

    @property
    def queue_full(self) -> bool:
        return len(self.queue) >= self.queue_packets

    def enqueue(self, packet: Packet) -> None:
        """Admit ``packet`` to the tail of the FIFO (no capacity check)."""
        self.queue.append(packet)
        self._queue_bytes += packet.size_bytes

    def dequeue(self) -> Packet:
        """Remove and return the head-of-line packet."""
        packet = self.queue.popleft()
        self._queue_bytes -= packet.size_bytes
        return packet

    def queue_bytes(self) -> int:
        return self._queue_bytes

    def queuing_delay_estimate_s(self) -> float:
        """Instantaneous standing-queue delay at the current rate."""
        return self._queue_bytes * 8.0 / self.rate_bps
