"""Congestion-control substrate.

A discrete-event, packet-level single-bottleneck emulator in the spirit of
the modified Mahimahi the paper used ("an event-based approach to packet
delivery", section 4), plus sender implementations:

- :mod:`repro.cc.protocols.bbr` -- BBRv1 state machine (the paper's case
  study),
- :mod:`repro.cc.protocols.cubic` / :mod:`repro.cc.protocols.reno` --
  loss-based TCP variants ("a trivial weakness to packet loss even as low
  as 1%", section 4).

As in the paper's setup, the emulator is event-driven and not designed for
exact timing reproducibility; adversarial traces replayed against it give
statistically similar -- not bit-identical -- results.
"""

from repro.cc.link import TimeVaryingLink
from repro.cc.multiflow import MultiFlowEmulator, jain_fairness
from repro.cc.network import IntervalStats, PacketNetworkEmulator
from repro.cc.protocols.bbr import BBRSender
from repro.cc.protocols.copa import CopaSender
from repro.cc.protocols.cubic import CubicSender
from repro.cc.protocols.reno import RenoSender
from repro.cc.protocols.vivace import VivaceSender

__all__ = [
    "BBRSender",
    "CopaSender",
    "CubicSender",
    "IntervalStats",
    "MultiFlowEmulator",
    "PacketNetworkEmulator",
    "jain_fairness",
    "RenoSender",
    "TimeVaryingLink",
    "VivaceSender",
]
