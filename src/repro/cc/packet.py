"""Packet and ACK records exchanged between the emulator and senders."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AckInfo", "Packet"]

MSS_BYTES = 1500


@dataclass
class Packet:
    """One MSS-sized data packet in flight."""

    seq: int
    size_bytes: int
    sent_time: float
    # Delivery-rate sampling state (Cheng et al., "Delivery Rate Estimation"):
    # snapshot of the connection's delivered counter when this packet left.
    delivered_at_send: int
    delivered_time_at_send: float
    ingress_time: float = 0.0
    service_start: float = 0.0


@dataclass
class AckInfo:
    """What the sender learns when a packet is acknowledged."""

    seq: int
    now: float
    rtt_s: float
    delivered_bytes: int
    delivery_rate_bps: float
    queue_sojourn_s: float
