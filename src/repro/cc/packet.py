"""Packet and ACK records exchanged between the emulator and senders."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AckInfo", "Packet"]

MSS_BYTES = 1500


@dataclass(slots=True)
class Packet:
    """One MSS-sized data packet in flight.

    ``slots=True`` keeps the per-packet footprint small: the emulators
    allocate one of these per transmitted MSS, which at Table-1 rates is
    tens of millions of instances per training run.
    """

    seq: int
    size_bytes: int
    sent_time: float
    # Delivery-rate sampling state (Cheng et al., "Delivery Rate Estimation"):
    # snapshot of the connection's delivered counter when this packet left.
    delivered_at_send: int
    delivered_time_at_send: float
    ingress_time: float = 0.0
    service_start: float = 0.0
    #: Owning flow index in :class:`~repro.cc.multiflow.MultiFlowEmulator`
    #: (-1 for the single-flow emulator, which has no demultiplexing).
    owner: int = -1


@dataclass(slots=True)
class AckInfo:
    """What the sender learns when a packet is acknowledged."""

    seq: int
    now: float
    rtt_s: float
    delivered_bytes: int
    delivery_rate_bps: float
    queue_sojourn_s: float
    #: Snapshot of the delivered counter when the acked packet was sent
    #: (the packet's ``delivered_at_send``); lets rate-sampling protocols
    #: like BBR track round trips without wrapping ``handle_ack``.
    delivered_at_send: int = 0
