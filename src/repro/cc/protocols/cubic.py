"""TCP Cubic (Ha et al. 2008).

Included as the loss-based comparison point: "TCP congestion control
variants like Cubic, Reno and HTCP all share a trivial weakness to packet
loss even as low as 1%" (section 4).  The window-growth function and
multiplicative decrease follow RFC 8312.
"""

from __future__ import annotations

import numpy as np

from repro.cc.packet import AckInfo
from repro.cc.protocols.base import Sender

__all__ = ["CubicSender"]


class CubicSender(Sender):
    """Cubic window growth over a loss-based AIMD skeleton."""

    name = "cubic"

    C = 0.4
    BETA = 0.7

    def __init__(self, initial_cwnd: float = 10.0) -> None:
        super().__init__()
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float("inf")
        self.w_max = 0.0
        self._epoch_start: float | None = None
        self._origin: float = 0.0
        self._k: float = 0.0
        self._recovery_end = -1

    # -- hooks ---------------------------------------------------------------

    def on_ack(self, ack: AckInfo) -> None:
        if ack.seq <= self._recovery_end:
            return  # still recovering from the last loss event
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
            return
        if self._epoch_start is None:
            self._epoch_start = ack.now
            self._origin = max(self.w_max, self.cwnd)
            if self.w_max > self.cwnd:
                self._k = float(np.cbrt(self.w_max * (1.0 - self.BETA) / self.C))
            else:
                self._k = 0.0
        t = ack.now - self._epoch_start
        target = self._origin + self.C * (t - self._k) ** 3
        if target > self.cwnd:
            self.cwnd += (target - self.cwnd) / self.cwnd
        else:
            self.cwnd += 0.01 / self.cwnd  # minimal probing below the curve

    def on_packet_lost(self, seq: int, now: float) -> None:
        if seq <= self._recovery_end:
            return  # one multiplicative decrease per window of loss
        self._recovery_end = self.highest_seq_sent
        self.w_max = self.cwnd
        self.cwnd = max(self.cwnd * self.BETA, 2.0)
        self.ssthresh = self.cwnd
        self._epoch_start = None

    def on_timeout(self, now: float) -> None:
        self._recovery_end = self.highest_seq_sent
        self.w_max = self.cwnd
        self.ssthresh = max(self.cwnd * self.BETA, 2.0)
        self.cwnd = 1.0
        self._epoch_start = None

    # -- controls --------------------------------------------------------------

    @property
    def cwnd_packets(self) -> int:
        return max(int(self.cwnd), 1)

    def pacing_rate_bps(self, now: float) -> float:
        """Pace the window over one smoothed RTT (x2 so cwnd governs)."""
        srtt = self.srtt_s if self.srtt_s is not None else 0.1
        return 2.0 * self.cwnd * self.mss * 8.0 / srtt
