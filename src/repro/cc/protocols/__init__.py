"""Congestion-control sender implementations."""

from repro.cc.protocols.base import Sender
from repro.cc.protocols.bbr import BBRSender
from repro.cc.protocols.copa import CopaSender
from repro.cc.protocols.cubic import CubicSender
from repro.cc.protocols.reno import RenoSender
from repro.cc.protocols.vivace import VivaceSender

__all__ = [
    "BBRSender",
    "CopaSender",
    "CubicSender",
    "RenoSender",
    "Sender",
    "VivaceSender",
]
