"""Copa (Arun & Balakrishnan, NSDI '18) -- simplified default mode.

The paper lists Copa among the recently proposed protocols that "do not
have as clear weaknesses" as loss-based TCP (section 4); implementing it
lets the adversarial framework be pointed at a delay-based target.

Model: Copa steers its sending rate toward ``1 / (delta * dq)`` packets
per RTT-second, where ``dq`` is the measured queuing delay (RTTstanding
minus RTTmin).  The window moves toward the target by ``v / (delta *
cwnd)`` per ack, with the velocity ``v`` doubling each RTT the direction
is stable and resetting on reversal.
"""

from __future__ import annotations

from collections import deque

from repro.cc.packet import AckInfo
from repro.cc.protocols.base import Sender

__all__ = ["CopaSender"]


class CopaSender(Sender):
    """Delay-based congestion control targeting low standing queues."""

    name = "copa"

    def __init__(
        self,
        delta: float = 0.5,
        initial_cwnd: float = 10.0,
        rtt_min_window_s: float = 10.0,
        standing_window_factor: float = 0.5,
    ) -> None:
        super().__init__()
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta
        self.cwnd = float(initial_cwnd)
        self.rtt_min_window_s = rtt_min_window_s
        self.standing_window_factor = standing_window_factor
        # Windowed-min filters as monotonic deques of (time, rtt).
        self._rtt_min: deque[tuple[float, float]] = deque()
        self._rtt_standing: deque[tuple[float, float]] = deque()
        self.velocity = 1.0
        self._direction = 0  # +1 growing, -1 shrinking
        self._direction_since = 0.0
        self._last_rtt_update = 0.0

    # -- filters --------------------------------------------------------------

    @staticmethod
    def _push_min(filt: deque, now: float, rtt: float, window: float) -> None:
        while filt and filt[-1][1] >= rtt:
            filt.pop()
        filt.append((now, rtt))
        while filt and filt[0][0] < now - window:
            filt.popleft()

    @property
    def rtt_min_s(self) -> float | None:
        return self._rtt_min[0][1] if self._rtt_min else None

    @property
    def rtt_standing_s(self) -> float | None:
        return self._rtt_standing[0][1] if self._rtt_standing else None

    def queuing_delay_s(self) -> float:
        if self.rtt_min_s is None or self.rtt_standing_s is None:
            return 0.0
        return max(self.rtt_standing_s - self.rtt_min_s, 0.0)

    # -- hooks -----------------------------------------------------------------

    def on_ack(self, ack: AckInfo) -> None:
        srtt = self.srtt_s if self.srtt_s is not None else ack.rtt_s
        self._push_min(self._rtt_min, ack.now, ack.rtt_s, self.rtt_min_window_s)
        self._push_min(
            self._rtt_standing, ack.now, ack.rtt_s,
            max(self.standing_window_factor * srtt, 0.01),
        )

        dq = self.queuing_delay_s()
        if dq <= 1e-6:
            target_rate = float("inf")
        else:
            target_rate = 1.0 / (self.delta * dq)  # packets per second
        current_rate = self.cwnd / max(self.rtt_standing_s or srtt, 1e-6)

        direction = 1 if current_rate < target_rate else -1
        if direction != self._direction:
            self._direction = direction
            self._direction_since = ack.now
            self.velocity = 1.0
        elif ack.now - self._direction_since > 2.0 * srtt:
            # Stable direction for a couple of RTTs: accelerate.
            self.velocity = min(self.velocity * 2.0, self.cwnd)
            self._direction_since = ack.now
        self.cwnd += direction * self.velocity / (self.delta * self.cwnd)
        self.cwnd = max(self.cwnd, 2.0)

    def on_packet_lost(self, seq: int, now: float) -> None:
        # Default-mode Copa reacts to loss only through the delay signal.
        return

    def on_timeout(self, now: float) -> None:
        self.cwnd = 2.0
        self.velocity = 1.0
        self._direction = 0

    # -- controls ------------------------------------------------------------------

    @property
    def cwnd_packets(self) -> int:
        return max(int(self.cwnd), 2)

    def pacing_rate_bps(self, now: float) -> float:
        rtt = self.rtt_standing_s or self.srtt_s or 0.1
        return 2.0 * self.cwnd * self.mss * 8.0 / rtt
