"""TCP Reno / NewReno-style AIMD (slow start + congestion avoidance)."""

from __future__ import annotations

from repro.cc.packet import AckInfo
from repro.cc.protocols.base import Sender

__all__ = ["RenoSender"]


class RenoSender(Sender):
    """Classic AIMD: +1/cwnd per ack, halve on loss."""

    name = "reno"

    def __init__(self, initial_cwnd: float = 10.0) -> None:
        super().__init__()
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float("inf")
        self._recovery_end = -1

    def on_ack(self, ack: AckInfo) -> None:
        if ack.seq <= self._recovery_end:
            return
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / self.cwnd

    def on_packet_lost(self, seq: int, now: float) -> None:
        if seq <= self._recovery_end:
            return
        self._recovery_end = self.highest_seq_sent
        self.cwnd = max(self.cwnd / 2.0, 2.0)
        self.ssthresh = self.cwnd

    def on_timeout(self, now: float) -> None:
        self._recovery_end = self.highest_seq_sent
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0

    @property
    def cwnd_packets(self) -> int:
        return max(int(self.cwnd), 1)

    def pacing_rate_bps(self, now: float) -> float:
        srtt = self.srtt_s if self.srtt_s is not None else 0.1
        return 2.0 * self.cwnd * self.mss * 8.0 / srtt
