"""PCC Vivace (Dong et al., NSDI '18) -- simplified online-learning model.

Like Copa, Vivace is named by the paper as a modern protocol without the
trivial loss weakness of Cubic/Reno (section 4).  This model keeps the
essential structure: the sender runs monitor intervals (MIs) at perturbed
rates ``r(1 + eps)`` and ``r(1 - eps)``, scores each MI with the Vivace
utility

    U(r) = r^0.9 - b * r * max(dRTT/dt, 0) - c * r * loss_rate

(rate in Mbps), estimates the utility gradient, and takes a
confidence-amplified gradient step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.packet import AckInfo
from repro.cc.protocols.base import Sender

__all__ = ["VivaceSender"]


@dataclass
class _MonitorInterval:
    start: float
    duration: float
    rate_mbps: float
    acked: int = 0
    lost_before: int = 0
    first_rtt: float | None = None
    last_rtt: float | None = None
    first_rtt_time: float = 0.0
    last_rtt_time: float = 0.0


class VivaceSender(Sender):
    """Utility-gradient rate control."""

    name = "vivace"

    EXPONENT = 0.9
    LATENCY_COEF = 900.0
    LOSS_COEF = 11.35

    def __init__(
        self,
        initial_rate_mbps: float = 2.0,
        epsilon: float = 0.05,
        base_step_mbps: float = 0.25,
        min_rate_mbps: float = 0.2,
        max_rate_mbps: float = 200.0,
    ) -> None:
        super().__init__()
        self.rate_mbps = float(initial_rate_mbps)
        self.epsilon = epsilon
        self.base_step_mbps = base_step_mbps
        self.min_rate_mbps = min_rate_mbps
        self.max_rate_mbps = max_rate_mbps
        self._mi: _MonitorInterval | None = None
        self._pending: list[tuple[float, float]] = []  # (tested rate, utility)
        self._phase = 0  # 0: test r(1+eps), 1: test r(1-eps)
        self._confidence = 1
        self._last_direction = 0
        self.utility_log: list[tuple[float, float]] = []

    # -- monitor intervals ------------------------------------------------------

    def _mi_rate(self) -> float:
        sign = 1.0 if self._phase == 0 else -1.0
        return self.rate_mbps * (1.0 + sign * self.epsilon)

    def _start_mi(self, now: float) -> None:
        duration = max(self.srtt_s or 0.05, 0.02)
        self._mi = _MonitorInterval(
            start=now,
            duration=duration,
            rate_mbps=self._mi_rate(),
            lost_before=self.total_lost,
        )

    def _utility(self, mi: _MonitorInterval) -> float:
        span = max(mi.last_rtt_time - mi.first_rtt_time, 1e-6)
        if mi.first_rtt is not None and mi.last_rtt is not None and mi.acked > 1:
            rtt_slope = max((mi.last_rtt - mi.first_rtt) / span, 0.0)
        else:
            rtt_slope = 0.0
        lost = self.total_lost - mi.lost_before
        total = mi.acked + lost
        loss_rate = lost / total if total else 0.0
        rate = mi.rate_mbps
        return (
            rate**self.EXPONENT
            - self.LATENCY_COEF * rate * rtt_slope
            - self.LOSS_COEF * rate * loss_rate
        )

    def _finish_mi(self, now: float) -> None:
        assert self._mi is not None
        utility = self._utility(self._mi)
        self.utility_log.append((now, utility))
        self._pending.append((self._mi.rate_mbps, utility))
        self._mi = None
        if len(self._pending) == 2:
            self._gradient_step()
            self._pending = []
            self._phase = 0
        else:
            self._phase = 1

    def _gradient_step(self) -> None:
        (r_hi, u_hi), (r_lo, u_lo) = self._pending
        if r_hi < r_lo:
            r_hi, r_lo, u_hi, u_lo = r_lo, r_hi, u_lo, u_hi
        if r_hi - r_lo < 1e-9:
            return
        gradient = (u_hi - u_lo) / (r_hi - r_lo)
        direction = 1 if gradient > 0 else -1
        if direction == self._last_direction:
            self._confidence = min(self._confidence + 1, 8)
        else:
            self._confidence = 1
        self._last_direction = direction
        step = self._confidence * self.base_step_mbps * direction
        self.rate_mbps = float(
            min(max(self.rate_mbps + step, self.min_rate_mbps), self.max_rate_mbps)
        )

    # -- hooks ---------------------------------------------------------------------

    def on_ack(self, ack: AckInfo) -> None:
        if self._mi is None:
            self._start_mi(ack.now)
        mi = self._mi
        assert mi is not None
        mi.acked += 1
        if mi.first_rtt is None:
            mi.first_rtt = ack.rtt_s
            mi.first_rtt_time = ack.now
        mi.last_rtt = ack.rtt_s
        mi.last_rtt_time = ack.now
        if ack.now - mi.start >= mi.duration:
            self._finish_mi(ack.now)

    def on_packet_lost(self, seq: int, now: float) -> None:
        # Loss enters through the MI utility; no immediate rate cut.
        return

    def on_timeout(self, now: float) -> None:
        self.rate_mbps = max(self.rate_mbps / 2.0, self.min_rate_mbps)
        self._mi = None
        self._pending = []
        self._phase = 0
        self._confidence = 1

    # -- controls --------------------------------------------------------------------

    @property
    def cwnd_packets(self) -> int:
        # Rate-based: the window only bounds worst-case inflight.
        rtt = self.srtt_s or 0.1
        bdp = self.rate_mbps * 1e6 * rtt / 8.0 / self.mss
        return max(int(2.0 * bdp) + 4, 4)

    def pacing_rate_bps(self, now: float) -> float:
        return self._mi_rate() * 1e6 if self._mi is None else self._mi.rate_mbps * 1e6
