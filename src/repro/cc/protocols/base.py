"""The sender interface and the bookkeeping shared by all protocols.

The emulator interacts with a sender through four calls:

- :meth:`Sender.can_send` -- congestion-window admission,
- :meth:`Sender.register_send` -- a packet left the host,
- :meth:`Sender.handle_ack` -- an acknowledgment arrived (the base class
  derives RTT and delivery-rate samples, detects losses by reordering
  threshold, and then invokes the protocol hooks),
- :meth:`Sender.handle_timeout` -- no progress for an RTO.

Protocols implement the ``on_ack`` / ``on_packet_lost`` / ``on_timeout``
hooks plus the :attr:`cwnd_packets` and :meth:`pacing_rate_bps` controls.
"""

from __future__ import annotations

from repro.cc.packet import MSS_BYTES, AckInfo, Packet

__all__ = ["Sender"]

_DUP_THRESHOLD = 3


class Sender:
    """Base congestion-control sender with sequence/ack bookkeeping."""

    name = "sender"

    def __init__(self) -> None:
        self.mss = MSS_BYTES
        self.delivered_bytes = 0
        self.delivered_time = 0.0
        self.inflight: dict[int, Packet] = {}
        self.highest_seq_sent = -1
        self.highest_seq_acked = -1
        self.srtt_s: float | None = None
        self.last_rtt_s: float | None = None
        self.total_acked = 0
        self.total_lost = 0

    # -- emulator-facing API ------------------------------------------------

    def can_send(self) -> bool:
        return len(self.inflight) < self.cwnd_packets

    def register_send(self, packet: Packet) -> None:
        self.inflight[packet.seq] = packet
        if packet.seq > self.highest_seq_sent:
            self.highest_seq_sent = packet.seq

    def handle_ack(self, packet: Packet, now: float) -> None:
        """Process the arrival of an ack for ``packet``."""
        inflight = self.inflight
        seq = packet.seq
        if seq not in inflight:
            return  # already declared lost (spurious)
        del inflight[seq]
        rtt = now - packet.sent_time
        self.last_rtt_s = rtt
        srtt = self.srtt_s
        self.srtt_s = rtt if srtt is None else 0.875 * srtt + 0.125 * rtt
        delivered = self.delivered_bytes + packet.size_bytes
        self.delivered_bytes = delivered
        self.delivered_time = now
        self.total_acked += 1
        interval = now - packet.delivered_time_at_send
        if interval > 0:
            rate = (delivered - packet.delivered_at_send) * 8.0 / interval
        else:
            rate = 0.0
        if seq > self.highest_seq_acked:
            self.highest_seq_acked = seq
        # Positional construction: this runs once per delivered packet.
        ack = AckInfo(
            seq,
            now,
            rtt,
            delivered,
            rate,
            max(packet.service_start - packet.ingress_time, 0.0),
            packet.delivered_at_send,
        )
        self.on_ack(ack)
        self._detect_losses(now)

    def _detect_losses(self, now: float) -> None:
        """Declare packets reordered past the dup-ack threshold as lost.

        ``inflight`` is insertion-ordered by strictly increasing seq, so
        the packets past the reordering threshold are exactly a prefix of
        the dict: scan from the front and stop at the first survivor
        (O(1) amortized, vs the historical full scan per ack).
        """
        threshold = self.highest_seq_acked - _DUP_THRESHOLD
        inflight = self.inflight
        while inflight:
            seq = next(iter(inflight))
            if seq >= threshold:
                break
            del inflight[seq]
            self.total_lost += 1
            self.on_packet_lost(seq, now)

    def handle_timeout(self, now: float) -> None:
        """RTO fired: everything in flight is presumed lost."""
        self.total_lost += len(self.inflight)
        self.inflight.clear()
        self.on_timeout(now)

    def rto_s(self) -> float:
        """Retransmission timeout (coarse: 4x smoothed RTT, floor 1 s)."""
        if self.srtt_s is None:
            return 1.0
        return max(1.0, 4.0 * self.srtt_s)

    # -- protocol hooks -------------------------------------------------------

    def on_ack(self, ack: AckInfo) -> None:
        raise NotImplementedError

    def on_packet_lost(self, seq: int, now: float) -> None:
        raise NotImplementedError

    def on_timeout(self, now: float) -> None:
        raise NotImplementedError

    @property
    def cwnd_packets(self) -> int:
        raise NotImplementedError

    def pacing_rate_bps(self, now: float) -> float:
        raise NotImplementedError

    # -- conveniences -------------------------------------------------------------

    @property
    def inflight_packets(self) -> int:
        return len(self.inflight)

    def bdp_packets(self, bw_bps: float, rtt_s: float) -> float:
        return bw_bps * rtt_s / 8.0 / self.mss

    def loss_fraction(self) -> float:
        total = self.total_acked + self.total_lost
        return self.total_lost / total if total else 0.0


def ewma(previous: float | None, sample: float, alpha: float) -> float:
    """Exponentially weighted moving average helper."""
    if previous is None:
        return sample
    return (1.0 - alpha) * previous + alpha * sample
