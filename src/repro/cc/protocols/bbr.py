"""BBRv1 (Cardwell et al. 2016) -- the paper's congestion-control case study.

Implements the mechanisms whose interaction the paper's adversary
exploits (section 4, Figures 5 and 6):

- a **windowed-max bandwidth filter** over the last 10 round trips,
- a **windowed-min RTprop filter** over the last 10 seconds,
- the **state machine** STARTUP -> DRAIN -> PROBE_BW (8-phase pacing-gain
  cycle 1.25, 0.75, 1, ...) with **PROBE_RTT** entered whenever the RTprop
  estimate has not been refreshed for 10 seconds.

"The rapid fluctuations in bandwidth and latency correspond exactly to the
probing phases of BBR, and cause BBR to choose a very low sending rate" --
an adversary that poisons the filters exactly while they are receptive
(bandwidth during the 1.25x probe, latency around PROBE_RTT) drags both
estimates down, and BBR's sending rate with them.

Loss is deliberately ignored by the rate control, as in BBRv1.
"""

from __future__ import annotations

from collections import deque

from repro.cc.packet import AckInfo
from repro.cc.protocols.base import Sender

__all__ = ["BBRSender"]


class BBRSender(Sender):
    """Model-based congestion control: pace at gain * estimated bottleneck bw."""

    name = "bbr"

    HIGH_GAIN = 2.885  # 2/ln(2)
    CYCLE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    STARTUP, DRAIN, PROBE_BW, PROBE_RTT = "STARTUP", "DRAIN", "PROBE_BW", "PROBE_RTT"

    def __init__(
        self,
        probe_rtt_interval_s: float = 10.0,
        probe_rtt_duration_s: float = 0.2,
        bw_window_rounds: int = 10,
        rtprop_window_s: float = 10.0,
        min_cwnd_packets: int = 4,
        init_bw_mbps: float = 1.0,
    ) -> None:
        super().__init__()
        self.probe_rtt_interval_s = probe_rtt_interval_s
        self.probe_rtt_duration_s = probe_rtt_duration_s
        self.bw_window_rounds = bw_window_rounds
        self.rtprop_window_s = rtprop_window_s
        self.min_cwnd_packets = min_cwnd_packets
        self.init_bw_bps = init_bw_mbps * 1e6

        self.mode = self.STARTUP
        # Max-bandwidth filter: a monotonic (decreasing-rate) deque gives
        # the windowed max over rounds in O(1) per ack.
        self._bw_samples: deque[tuple[int, float]] = deque()  # (round, bps)
        # Min-RTT filter: the kernel's scalar filter -- a new minimum (or
        # an expired window) replaces the estimate and restamps it.
        self._min_rtt_s: float | None = None
        self._rtprop_expired = False
        self.round_count = 0
        self._next_round_delivered = 0
        self._full_bw = 0.0
        self._full_bw_count = 0
        self.filled_pipe = False
        self._last_round_checked = -1
        self.cycle_index = 0
        self._cycle_start = 0.0
        self._probe_rtt_done: float | None = None
        self._rtprop_stamp = 0.0
        self.mode_log: list[tuple[float, str]] = [(0.0, self.STARTUP)]

    # -- filters --------------------------------------------------------------

    @property
    def max_bw_bps(self) -> float:
        """Windowed-max delivery rate; the init value before any sample."""
        if not self._bw_samples:
            return self.init_bw_bps
        return self._bw_samples[0][1]

    @property
    def rtprop_s(self) -> float | None:
        return self._min_rtt_s

    def _update_filters(self, ack: AckInfo) -> None:
        if ack.delivery_rate_bps > 0:
            while self._bw_samples and self._bw_samples[-1][1] <= ack.delivery_rate_bps:
                self._bw_samples.pop()
            self._bw_samples.append((self.round_count, ack.delivery_rate_bps))
            cutoff = self.round_count - self.bw_window_rounds
            while self._bw_samples and self._bw_samples[0][0] < cutoff:
                self._bw_samples.popleft()

        # Kernel-style min filter: a strictly lower sample, or an expired
        # window, replaces the estimate and restamps it.  The pre-update
        # expiry flag is what triggers PROBE_RTT in ``_update_state``.
        self._rtprop_expired = (
            self._min_rtt_s is not None
            and ack.now - self._rtprop_stamp > self.rtprop_window_s
        )
        if self._min_rtt_s is None or ack.rtt_s < self._min_rtt_s or self._rtprop_expired:
            self._min_rtt_s = ack.rtt_s
            self._rtprop_stamp = ack.now

    # -- state machine --------------------------------------------------------

    def _set_mode(self, mode: str, now: float) -> None:
        if mode != self.mode:
            self.mode = mode
            self.mode_log.append((now, mode))

    def _check_full_pipe(self) -> None:
        if self.filled_pipe or self.round_count <= self._last_round_checked:
            return
        self._last_round_checked = self.round_count
        bw = self.max_bw_bps
        if bw >= self._full_bw * 1.25:
            self._full_bw = bw
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= 3:
            self.filled_pipe = True

    def _bdp_packets(self) -> float:
        rtprop = self.rtprop_s
        if rtprop is None:
            return 10.0
        return max(self.bdp_packets(self.max_bw_bps, rtprop), 1.0)

    def _update_state(self, now: float) -> None:
        if self.mode == self.STARTUP:
            self._check_full_pipe()
            if self.filled_pipe:
                self._set_mode(self.DRAIN, now)
        if self.mode == self.DRAIN and self.inflight_packets <= self._bdp_packets():
            self._set_mode(self.PROBE_BW, now)
            self.cycle_index = 0
            self._cycle_start = now
        if self.mode == self.PROBE_BW:
            rtprop = self.rtprop_s or 0.05
            if now - self._cycle_start > rtprop:
                self.cycle_index = (self.cycle_index + 1) % len(self.CYCLE_GAINS)
                self._cycle_start = now
        # PROBE_RTT entry: the RTprop estimate went stale (no sample at or
        # below the running minimum for a full window).
        if self.mode != self.PROBE_RTT and self._rtprop_expired:
            self._rtprop_expired = False
            self._set_mode(self.PROBE_RTT, now)
            self._probe_rtt_done = now + self.probe_rtt_duration_s
        if self.mode == self.PROBE_RTT and self._probe_rtt_done is not None:
            if now >= self._probe_rtt_done:
                self._rtprop_stamp = now
                self._probe_rtt_done = None
                if self.filled_pipe:
                    self._set_mode(self.PROBE_BW, now)
                    self.cycle_index = 0
                    self._cycle_start = now
                else:
                    self._set_mode(self.STARTUP, now)

    # -- Sender hooks -----------------------------------------------------------

    def on_ack(self, ack: AckInfo) -> None:
        # Hot path (one call per delivered packet): the bodies of
        # ``_update_filters`` and ``_update_state`` inlined with local
        # lookups, in the same operation order -- identical floats (the
        # CC and multi-flow goldens pin this).  The standalone methods
        # remain the reference implementation (tests and the timeout
        # path use them).
        #
        # Round accounting first (a bw sample is stamped with the round it
        # arrived in): the acked packet left after the previous round's
        # marker was delivered, so a new round begins.  ``delivered_bytes``
        # already includes this packet, matching the historical
        # ``delivered_bytes + packet.size_bytes`` computed pre-update.
        if ack.delivered_at_send >= self._next_round_delivered:
            self.round_count += 1
            self._next_round_delivered = ack.delivered_bytes

        # -- _update_filters, inlined --
        rate = ack.delivery_rate_bps
        if rate > 0:
            samples = self._bw_samples
            while samples and samples[-1][1] <= rate:
                samples.pop()
            samples.append((self.round_count, rate))
            cutoff = self.round_count - self.bw_window_rounds
            while samples and samples[0][0] < cutoff:
                samples.popleft()
        now = ack.now
        min_rtt = self._min_rtt_s
        expired = min_rtt is not None and now - self._rtprop_stamp > self.rtprop_window_s
        self._rtprop_expired = expired
        if min_rtt is None or ack.rtt_s < min_rtt or expired:
            self._min_rtt_s = ack.rtt_s
            self._rtprop_stamp = now

        # -- _update_state, inlined (mode mirrored in a local) --
        mode = self.mode
        if mode == self.STARTUP:
            self._check_full_pipe()
            if self.filled_pipe:
                self._set_mode(self.DRAIN, now)
                mode = self.DRAIN
        if mode == self.DRAIN and len(self.inflight) <= self._bdp_packets():
            self._set_mode(self.PROBE_BW, now)
            mode = self.PROBE_BW
            self.cycle_index = 0
            self._cycle_start = now
        if mode == self.PROBE_BW:
            rtprop = self._min_rtt_s or 0.05
            if now - self._cycle_start > rtprop:
                self.cycle_index = (self.cycle_index + 1) % len(self.CYCLE_GAINS)
                self._cycle_start = now
        if expired and mode != self.PROBE_RTT:
            self._rtprop_expired = False
            self._set_mode(self.PROBE_RTT, now)
            mode = self.PROBE_RTT
            self._probe_rtt_done = now + self.probe_rtt_duration_s
        if mode == self.PROBE_RTT and self._probe_rtt_done is not None:
            if now >= self._probe_rtt_done:
                self._rtprop_stamp = now
                self._probe_rtt_done = None
                if self.filled_pipe:
                    self._set_mode(self.PROBE_BW, now)
                    self.cycle_index = 0
                    self._cycle_start = now
                else:
                    self._set_mode(self.STARTUP, now)

    def on_packet_lost(self, seq: int, now: float) -> None:
        # BBRv1's rate control disregards individual losses.
        return

    def on_timeout(self, now: float) -> None:
        # Conservative restart: forget that the pipe was full so STARTUP
        # re-probes, but keep the filters (they window out naturally).
        self.filled_pipe = False
        self._full_bw = 0.0
        self._full_bw_count = 0
        self._set_mode(self.STARTUP, now)

    # -- controls ------------------------------------------------------------------

    @property
    def pacing_gain(self) -> float:
        if self.mode == self.STARTUP:
            return self.HIGH_GAIN
        if self.mode == self.DRAIN:
            return 1.0 / self.HIGH_GAIN
        if self.mode == self.PROBE_RTT:
            return 1.0
        return self.CYCLE_GAINS[self.cycle_index]

    def pacing_rate_bps(self, now: float) -> float:
        # Hot path (one call per sent packet): ``pacing_gain * max_bw_bps``
        # with the property chain flattened into local lookups.
        mode = self.mode
        if mode == self.PROBE_BW:
            gain = self.CYCLE_GAINS[self.cycle_index]
        elif mode == self.STARTUP:
            gain = self.HIGH_GAIN
        elif mode == self.DRAIN:
            gain = 1.0 / self.HIGH_GAIN
        else:
            gain = 1.0
        samples = self._bw_samples
        return gain * (samples[0][1] if samples else self.init_bw_bps)

    @property
    def cwnd_packets(self) -> int:
        # Hot path (one call per cwnd admission check): identical math to
        # ``max(int(gain * self._bdp_packets()), self.min_cwnd_packets)``
        # with the max_bw/rtprop property chain flattened.
        mode = self.mode
        if mode == self.PROBE_RTT:
            return self.min_cwnd_packets
        rtprop = self._min_rtt_s
        if rtprop is None:
            bdp = 10.0
        else:
            samples = self._bw_samples
            bw = samples[0][1] if samples else self.init_bw_bps
            bdp = bw * rtprop / 8.0 / self.mss
            if bdp < 1.0:
                bdp = 1.0
        gain = self.HIGH_GAIN if mode == self.STARTUP else 2.0
        cwnd = int(gain * bdp)
        return cwnd if cwnd > self.min_cwnd_packets else self.min_cwnd_packets
