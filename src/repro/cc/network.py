"""Discrete-event, packet-level single-bottleneck emulator.

Models the path the paper emulated with its modified Mahimahi: a paced
sender, a droptail queue served at a time-varying rate, symmetric
propagation delay, and Bernoulli random loss on the data direction.

Event kinds (small integers, dispatched through a handler table):

- ``SEND``   -- the sender's pacing timer fires; transmit if cwnd allows,
- ``EGRESS`` -- the head-of-line packet finishes transmission; its ack is
  scheduled directly at ``+2 x one_way_delay`` (the old ``deliver`` event
  existed only to split that delay into two hops and cost one heap
  push/pop per packet -- see docs/architecture.md for the fold),
- ``ACK``    -- the ack reaches the sender,
- ``TICK``   -- periodic RTO check, armed only while packets are in flight.

The controller (adversary or trace player) drives the emulator with
:meth:`PacketNetworkEmulator.run_interval`, which advances simulated time
by one interval (30 ms in the paper) and returns that interval's link
statistics -- exactly the adversary's observation.

Hot-path discipline: the paper trains "for around 600k action/observation
pairs of 30 ms each", i.e. tens of millions of emulated packets per run,
so per-packet work is kept to integer dispatch, pre-drawn loss uniforms,
running-sum accumulators and three heap operations (send, egress, ack).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from heapq import heappop, heappush

import numpy as np

from repro.cc.link import TimeVaryingLink
from repro.cc.packet import Packet
from repro.cc.protocols.base import Sender

__all__ = ["IntervalStats", "PacketNetworkEmulator"]

_TICK_S = 0.1

# Integer event kinds: tuple comparison in the heap and handler dispatch
# both reduce to small-int operations instead of string compares.
_SEND, _EGRESS, _ACK, _TICK = 0, 1, 2, 3

#: Uniform draws fetched from the generator per block.  Blocks preserve
#: the exact per-packet draw sequence of the historical one-``random()``-
#: per-packet implementation: ``Generator.random(n)`` consumes the same
#: doubles in the same order as ``n`` scalar calls, and the loss-rate
#: comparison happens at consumption time, so mid-block ``loss_rate``
#: changes never perturb the stream.
_LOSS_BLOCK = 4096


@dataclass
class IntervalStats:
    """Link statistics over one controller interval."""

    t_start: float
    t_end: float
    bandwidth_mbps: float
    latency_ms: float
    loss_rate: float
    bytes_delivered: int
    #: Delivered bytes over interval capacity, clamped to 1.0 -- the
    #: adversary's observation and reward input.
    utilization: float
    mean_queue_sojourn_s: float
    queue_delay_end_s: float
    drops_loss: int
    drops_queue: int
    #: The unclamped delivered/capacity ratio.  Exceeds 1.0 when a standing
    #: queue drains through an interval (bytes queued under earlier
    #: conditions egress on top of the interval's own capacity); the
    #: clamped ``utilization`` hides those drain intervals.
    utilization_raw: float = 0.0

    @property
    def throughput_mbps(self) -> float:
        span = self.t_end - self.t_start
        return self.bytes_delivered * 8.0 / span / 1e6 if span > 0 else 0.0


class PacketNetworkEmulator:
    """Couples one sender to one time-varying link.

    Conservation counters (exact at any event boundary, tested in
    tests/test_cc_network.py)::

        packets_sent == packets_delivered + link.drops_loss
                        + link.drops_queue + len(link.queue) + acks_in_flight

    where ``packets_delivered`` counts acks handed to the sender and
    ``acks_in_flight`` counts packets past egress whose ack is still
    propagating.
    """

    def __init__(
        self,
        sender: Sender,
        link: TimeVaryingLink,
        seed: int = 0,
    ) -> None:
        self.sender = sender
        self.link = link
        self.rng = np.random.default_rng(seed)
        self.now = 0.0
        self._events: list[tuple[float, int, int, Packet | None]] = []
        self._counter = 0
        # The pacing timer lives in a dedicated slot instead of the heap:
        # there is at most one pending send at any time (the send chain is
        # self-perpetuating and parks in ``_send_blocked`` when the window
        # closes), so a (time, counter) pair replaces a heap push+pop per
        # packet.  The counter preserves the exact FIFO tie-break order of
        # the historical all-in-one-heap implementation.
        self._send_t: float | None = None
        self._send_c = 0
        self._next_seq = 0
        self._send_blocked = False
        self._last_progress = 0.0
        # RTO tick state: armed only while the sender has packets in flight
        # (an idle link would otherwise churn the heap every 100 ms forever).
        self._tick_armed = False
        # Pre-drawn Bernoulli loss uniforms; see _LOSS_BLOCK.
        self._loss_block: list[float] = self.rng.random(_LOSS_BLOCK).tolist()
        self._loss_idx = 0
        # Conservation counters (see class docstring).
        self.packets_sent = 0
        self.packets_delivered = 0
        self.acks_in_flight = 0
        # Per-interval accumulators (running sums; no per-packet appends).
        self._interval_bytes = 0
        self._interval_sojourn_sum = 0.0
        self._interval_sojourn_n = 0
        self._interval_drops_loss = 0
        self._interval_drops_queue = 0
        self.history: list[IntervalStats] = []
        self._handlers = (
            self._on_send_timer,
            self._on_egress,
            self._on_ack,
            self._on_tick,
        )
        self._schedule(0.0, _SEND, None)

    # -- event plumbing -------------------------------------------------------

    def _schedule(self, t: float, kind: int, packet: Packet | None) -> None:
        self._counter += 1
        if kind == _SEND:
            if self._send_t is None or t < self._send_t:
                self._send_t = t
                self._send_c = self._counter
            return
        heapq.heappush(self._events, (t, self._counter, kind, packet))

    def run_until(self, t_end: float) -> None:
        """Process all events up to simulated time ``t_end``.

        Interleaves the heap with the dedicated send slot, ordered by the
        same (time, counter) key the heap uses, so event order is
        identical to scheduling sends through the heap.
        """
        if t_end < self.now:
            raise ValueError("cannot run backwards in time")
        events = self._events
        handlers = self._handlers
        on_send = self._on_send_timer
        while True:
            send_t = self._send_t
            if events:
                head = events[0]
                head_t = head[0]
                if send_t is not None and (
                    send_t < head_t or (send_t == head_t and self._send_c < head[1])
                ):
                    if send_t > t_end:
                        break
                    self._send_t = None
                    self.now = send_t
                    on_send(None)
                else:
                    if head_t > t_end:
                        break
                    heappop(events)
                    self.now = head_t
                    handlers[head[2]](head[3])
            elif send_t is not None and send_t <= t_end:
                self._send_t = None
                self.now = send_t
                on_send(None)
            else:
                break
        self.now = t_end

    # -- sender side ------------------------------------------------------------

    def _on_send_timer(self, _packet: Packet | None = None) -> None:
        sender = self.sender
        if not sender.can_send():
            self._send_blocked = True
            return
        link = self.link
        now = self.now
        packet = Packet(
            self._next_seq,
            sender.mss,
            now,
            sender.delivered_bytes,
            sender.delivered_time,
        )
        self._next_seq += 1
        self.packets_sent += 1
        sender.register_send(packet)
        if not self._tick_armed:
            self._tick_armed = True
            self._schedule(now + _TICK_S, _TICK, None)
        idx = self._loss_idx
        if idx == _LOSS_BLOCK:
            self._loss_block = self.rng.random(_LOSS_BLOCK).tolist()
            idx = 0
        self._loss_idx = idx + 1
        if self._loss_block[idx] < link.loss_rate:
            link.drops_loss += 1
            self._interval_drops_loss += 1
        elif len(link.queue) >= link.queue_packets:
            link.drops_queue += 1
            self._interval_drops_queue += 1
        else:
            packet.ingress_time = now
            # link.enqueue/start-service inlined (one call per packet).
            link.queue.append(packet)
            link._queue_bytes += packet.size_bytes
            if not link.busy:
                link.busy = True
                packet.service_start = now
                self._counter += 1
                heappush(
                    self._events,
                    (
                        now + packet.size_bytes * 8.0 / link.rate_bps,
                        self._counter,
                        _EGRESS,
                        None,
                    ),
                )
        rate = sender.pacing_rate_bps(now)
        if rate < 1e3:
            rate = 1e3
        self._counter += 1
        self._send_t = now + sender.mss * 8.0 / rate
        self._send_c = self._counter

    def _on_ack(self, packet: Packet) -> None:
        self.acks_in_flight -= 1
        self.packets_delivered += 1
        sender = self.sender
        sender.handle_ack(packet, self.now)
        self._last_progress = self.now
        if self._send_blocked and sender.can_send():
            self._send_blocked = False
            self._schedule(self.now, _SEND, None)

    def _on_tick(self, _packet: Packet | None = None) -> None:
        sender = self.sender
        if not sender.inflight:
            # Idle link: disarm instead of rescheduling; the next transmit
            # re-arms the tick (RTO is only meaningful with data in flight).
            self._tick_armed = False
            return
        if self.now - self._last_progress > sender.rto_s():
            sender.handle_timeout(self.now)
            self._last_progress = self.now
            if self._send_blocked:
                self._send_blocked = False
                self._schedule(self.now, _SEND, None)
        self._schedule(self.now + _TICK_S, _TICK, None)

    # -- link side -----------------------------------------------------------------

    def _on_egress(self, _packet: Packet | None = None) -> None:
        # link.dequeue/start-service inlined (one call per packet).
        link = self.link
        queue = link.queue
        packet = queue.popleft()
        size = packet.size_bytes
        link._queue_bytes -= size
        link.bytes_delivered += size
        self._interval_bytes += size
        sojourn = packet.service_start - packet.ingress_time
        if sojourn > 0.0:
            self._interval_sojourn_sum += sojourn
        self._interval_sojourn_n += 1
        # Deliver folded into egress: the ack is due one full propagation
        # round-trip from now, both legs priced at the *current* one-way
        # delay (the historical deliver event re-read the delay at the
        # receiver hop; see docs/architecture.md for the equivalence note).
        self.acks_in_flight += 1
        now = self.now
        self._counter += 1
        heappush(
            self._events,
            (now + 2.0 * link.one_way_delay_s, self._counter, _ACK, packet),
        )
        if queue:
            head = queue[0]
            head.service_start = now
            self._counter += 1
            heappush(
                self._events,
                (
                    now + head.size_bytes * 8.0 / link.rate_bps,
                    self._counter,
                    _EGRESS,
                    None,
                ),
            )
        else:
            link.busy = False

    # -- controller API ----------------------------------------------------------------

    def set_conditions(
        self, bandwidth_mbps: float, latency_ms: float, loss_rate: float
    ) -> None:
        self.link.set_conditions(bandwidth_mbps, latency_ms, loss_rate)

    def run_interval(self, dt: float) -> IntervalStats:
        """Advance ``dt`` seconds and return this interval's link stats."""
        if dt <= 0:
            raise ValueError("interval must be positive")
        t_start = self.now
        self._interval_bytes = 0
        self._interval_sojourn_sum = 0.0
        self._interval_sojourn_n = 0
        self._interval_drops_loss = 0
        self._interval_drops_queue = 0
        self.run_until(t_start + dt)
        capacity_bytes = self.link.rate_bps * dt / 8.0
        utilization_raw = self._interval_bytes / capacity_bytes
        stats = IntervalStats(
            t_start=t_start,
            t_end=self.now,
            bandwidth_mbps=self.link.bandwidth_mbps,
            latency_ms=self.link.latency_ms,
            loss_rate=self.link.loss_rate,
            bytes_delivered=self._interval_bytes,
            utilization=min(utilization_raw, 1.0),
            utilization_raw=utilization_raw,
            mean_queue_sojourn_s=(
                self._interval_sojourn_sum / self._interval_sojourn_n
                if self._interval_sojourn_n
                else 0.0
            ),
            queue_delay_end_s=self.link.queuing_delay_estimate_s(),
            drops_loss=self._interval_drops_loss,
            drops_queue=self._interval_drops_queue,
        )
        self.history.append(stats)
        return stats
