"""Discrete-event, packet-level single-bottleneck emulator.

Models the path the paper emulated with its modified Mahimahi: a paced
sender, a droptail queue served at a time-varying rate, symmetric
propagation delay, and Bernoulli random loss on the data direction.

Event kinds:

- ``send``    -- the sender's pacing timer fires; transmit if cwnd allows,
- ``egress``  -- the head-of-line packet finishes transmission,
- ``deliver`` -- a packet reaches the receiver (one-way delay later),
- ``ack``     -- the ack reaches the sender (another one-way delay later),
- ``tick``    -- periodic RTO check.

The controller (adversary or trace player) drives the emulator with
:meth:`PacketNetworkEmulator.run_interval`, which advances simulated time
by one interval (30 ms in the paper) and returns that interval's link
statistics -- exactly the adversary's observation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.cc.link import TimeVaryingLink
from repro.cc.packet import Packet
from repro.cc.protocols.base import Sender

__all__ = ["IntervalStats", "PacketNetworkEmulator"]

_TICK_S = 0.1


@dataclass
class IntervalStats:
    """Link statistics over one controller interval."""

    t_start: float
    t_end: float
    bandwidth_mbps: float
    latency_ms: float
    loss_rate: float
    bytes_delivered: int
    utilization: float
    mean_queue_sojourn_s: float
    queue_delay_end_s: float
    drops_loss: int
    drops_queue: int

    @property
    def throughput_mbps(self) -> float:
        span = self.t_end - self.t_start
        return self.bytes_delivered * 8.0 / span / 1e6 if span > 0 else 0.0


class PacketNetworkEmulator:
    """Couples one sender to one time-varying link."""

    def __init__(
        self,
        sender: Sender,
        link: TimeVaryingLink,
        seed: int = 0,
    ) -> None:
        self.sender = sender
        self.link = link
        self.rng = np.random.default_rng(seed)
        self.now = 0.0
        self._events: list[tuple[float, int, str, Packet | None]] = []
        self._counter = 0
        self._next_seq = 0
        self._send_blocked = False
        self._last_progress = 0.0
        # Per-interval accumulators.
        self._interval_bytes = 0
        self._interval_sojourns: list[float] = []
        self._interval_drops_loss = 0
        self._interval_drops_queue = 0
        self.history: list[IntervalStats] = []
        self._schedule(0.0, "send", None)
        self._schedule(_TICK_S, "tick", None)

    # -- event plumbing -------------------------------------------------------

    def _schedule(self, t: float, kind: str, packet: Packet | None) -> None:
        self._counter += 1
        heapq.heappush(self._events, (t, self._counter, kind, packet))

    def run_until(self, t_end: float) -> None:
        """Process all events up to simulated time ``t_end``."""
        if t_end < self.now:
            raise ValueError("cannot run backwards in time")
        while self._events and self._events[0][0] <= t_end:
            t, _count, kind, packet = heapq.heappop(self._events)
            self.now = t
            if kind == "send":
                self._on_send_timer()
            elif kind == "egress":
                self._on_egress()
            elif kind == "deliver":
                assert packet is not None
                self._schedule(self.now + self.link.one_way_delay_s, "ack", packet)
            elif kind == "ack":
                assert packet is not None
                self._on_ack(packet)
            elif kind == "tick":
                self._on_tick()
        self.now = t_end

    # -- sender side ------------------------------------------------------------

    def _transmit(self) -> None:
        sender = self.sender
        packet = Packet(
            seq=self._next_seq,
            size_bytes=sender.mss,
            sent_time=self.now,
            delivered_at_send=sender.delivered_bytes,
            delivered_time_at_send=sender.delivered_time,
        )
        self._next_seq += 1
        sender.register_send(packet)
        if self.rng.random() < self.link.loss_rate:
            self.link.drops_loss += 1
            self._interval_drops_loss += 1
            return
        if self.link.queue_full:
            self.link.drops_queue += 1
            self._interval_drops_queue += 1
            return
        packet.ingress_time = self.now
        self.link.queue.append(packet)
        if not self.link.busy:
            self._start_service()

    def _on_send_timer(self) -> None:
        if not self.sender.can_send():
            self._send_blocked = True
            return
        self._transmit()
        rate = max(self.sender.pacing_rate_bps(self.now), 1e3)
        self._schedule(self.now + self.sender.mss * 8.0 / rate, "send", None)

    def _on_ack(self, packet: Packet) -> None:
        self.sender.handle_ack(packet, self.now)
        self._last_progress = self.now
        if self._send_blocked and self.sender.can_send():
            self._send_blocked = False
            self._schedule(self.now, "send", None)

    def _on_tick(self) -> None:
        sender = self.sender
        if sender.inflight and self.now - self._last_progress > sender.rto_s():
            sender.handle_timeout(self.now)
            self._last_progress = self.now
            if self._send_blocked:
                self._send_blocked = False
                self._schedule(self.now, "send", None)
        self._schedule(self.now + _TICK_S, "tick", None)

    # -- link side -----------------------------------------------------------------

    def _start_service(self) -> None:
        self.link.busy = True
        head = self.link.queue[0]
        head.service_start = self.now
        self._schedule(self.now + self.link.service_time(head), "egress", None)

    def _on_egress(self) -> None:
        packet = self.link.queue.popleft()
        self.link.bytes_delivered += packet.size_bytes
        self._interval_bytes += packet.size_bytes
        self._interval_sojourns.append(max(packet.service_start - packet.ingress_time, 0.0))
        self._schedule(self.now + self.link.one_way_delay_s, "deliver", packet)
        if self.link.queue:
            self._start_service()
        else:
            self.link.busy = False

    # -- controller API ----------------------------------------------------------------

    def set_conditions(
        self, bandwidth_mbps: float, latency_ms: float, loss_rate: float
    ) -> None:
        self.link.set_conditions(bandwidth_mbps, latency_ms, loss_rate)

    def run_interval(self, dt: float) -> IntervalStats:
        """Advance ``dt`` seconds and return this interval's link stats."""
        if dt <= 0:
            raise ValueError("interval must be positive")
        t_start = self.now
        self._interval_bytes = 0
        self._interval_sojourns = []
        self._interval_drops_loss = 0
        self._interval_drops_queue = 0
        self.run_until(t_start + dt)
        capacity_bytes = self.link.rate_bps * dt / 8.0
        stats = IntervalStats(
            t_start=t_start,
            t_end=self.now,
            bandwidth_mbps=self.link.bandwidth_mbps,
            latency_ms=self.link.latency_ms,
            loss_rate=self.link.loss_rate,
            bytes_delivered=self._interval_bytes,
            utilization=min(self._interval_bytes / capacity_bytes, 1.0),
            mean_queue_sojourn_s=(
                float(np.mean(self._interval_sojourns)) if self._interval_sojourns else 0.0
            ),
            queue_delay_end_s=self.link.queuing_delay_estimate_s(),
            drops_loss=self._interval_drops_loss,
            drops_queue=self._interval_drops_queue,
        )
        self.history.append(stats)
        return stats
