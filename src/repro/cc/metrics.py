"""Running senders over traces and summarizing link-level outcomes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.cc.link import TimeVaryingLink
from repro.cc.network import IntervalStats, PacketNetworkEmulator
from repro.cc.protocols.base import Sender
from repro.exec import ResultCache, as_runner, cached_map, make_key
from repro.traces.trace import Trace

__all__ = [
    "CcRunResult",
    "run_sender_on_trace",
    "run_sender_on_traces",
    "summarize_intervals",
]


@dataclass
class CcRunResult:
    """Outcome of one sender playing one congestion-control trace."""

    intervals: list[IntervalStats]
    mean_utilization: float
    mean_throughput_mbps: float
    mean_capacity_mbps: float
    loss_fraction: float
    mean_queue_delay_s: float

    @property
    def capacity_fraction(self) -> float:
        """Average throughput as a fraction of average link capacity.

        This is the paper's headline metric for Figure 5: the adversary
        "can reduce BBR's average throughput to just 45-65% of link
        capacity".
        """
        if self.mean_capacity_mbps <= 0:
            return 0.0
        return self.mean_throughput_mbps / self.mean_capacity_mbps


def summarize_intervals(intervals: list[IntervalStats], sender: Sender) -> CcRunResult:
    """Aggregate per-interval statistics into a run summary."""
    if not intervals:
        raise ValueError("no intervals recorded")
    throughput = np.array([s.throughput_mbps for s in intervals])
    capacity = np.array([s.bandwidth_mbps for s in intervals])
    return CcRunResult(
        intervals=list(intervals),
        mean_utilization=float(np.mean([s.utilization for s in intervals])),
        mean_throughput_mbps=float(throughput.mean()),
        mean_capacity_mbps=float(capacity.mean()),
        loss_fraction=sender.loss_fraction(),
        mean_queue_delay_s=float(np.mean([s.mean_queue_sojourn_s for s in intervals])),
    )


def run_sender_on_trace(
    sender: Sender,
    trace: Trace,
    interval_s: float = 0.030,
    queue_packets: int = 120,
    seed: int = 0,
    warmup_s: float = 0.0,
) -> CcRunResult:
    """Replay a (bandwidth, latency, loss) trace against ``sender``.

    The trace must carry latency and loss schedules.  Conditions update at
    every ``interval_s`` boundary (30 ms in the paper).  ``warmup_s``
    intervals (run under the trace's first conditions) are excluded from
    the summary so slow-start does not dominate short traces.
    """
    if trace.latencies_ms is None or trace.loss_rates is None:
        raise ValueError("congestion-control traces need latency and loss schedules")
    link = TimeVaryingLink(
        bandwidth_mbps=float(trace.bandwidths_mbps[0]),
        latency_ms=float(trace.latencies_ms[0]),
        loss_rate=float(trace.loss_rates[0]),
        queue_packets=queue_packets,
    )
    emulator = PacketNetworkEmulator(sender, link, seed=seed)
    n_warmup = int(round(warmup_s / interval_s))
    for _ in range(n_warmup):
        emulator.run_interval(interval_s)
    measured_from = len(emulator.history)
    t = 0.0
    while t < trace.duration - 1e-9:
        emulator.set_conditions(
            trace.bandwidth_at(t, loop=False),
            trace.latency_at(t, loop=False),
            trace.loss_at(t, loop=False),
        )
        emulator.run_interval(interval_s)
        t += interval_s
    return summarize_intervals(emulator.history[measured_from:], sender)


def _replay_task(task) -> CcRunResult:
    sender_factory, trace, interval_s, queue_packets, seed, warmup_s = task
    return run_sender_on_trace(
        sender_factory(), trace, interval_s=interval_s,
        queue_packets=queue_packets, seed=seed, warmup_s=warmup_s,
    )


def run_sender_on_traces(
    sender_factory: Callable[[], Sender],
    traces: Sequence[Trace],
    seeds: Sequence[int],
    interval_s: float = 0.030,
    queue_packets: int = 120,
    warmup_s: float = 0.0,
    workers=None,
    cache=None,
    recorder=None,
) -> list[CcRunResult]:
    """Replay a corpus of traces, one fresh sender per trace.

    Each replay is independent (fresh sender, its own emulator seed), so
    ``workers`` parallelizes them and ``cache`` memoizes each
    :class:`CcRunResult` under a digest of (sender construction state,
    trace samples, emulator seed, replay parameters, schema version).
    Results are in trace order and identical to calling
    :func:`run_sender_on_trace` in a loop.  ``recorder`` (a
    :class:`~repro.obs.MetricsRecorder`) observes the replay timing and
    cache counters; it never changes results.
    """
    traces = list(traces)
    if len(seeds) != len(traces):
        raise ValueError(f"got {len(seeds)} seeds for {len(traces)} traces")
    cache = ResultCache.resolve(cache)
    tasks = [
        (sender_factory, trace, interval_s, queue_packets, int(seed), warmup_s)
        for trace, seed in zip(traces, seeds)
    ]
    keys = None
    if cache is not None:
        keys = [
            make_key(
                "cc-replay", sender_factory(), trace, interval_s,
                queue_packets, int(seed), warmup_s,
            )
            for trace, seed in zip(traces, seeds)
        ]
    with as_runner(workers, recorder=recorder) as runner:
        results = cached_map(_replay_task, tasks, runner, cache=cache, keys=keys)
    if cache is not None and recorder is not None:
        cache.record_metrics(recorder)
    return results
