"""The paper's contribution: RL adversaries that generate challenging
network conditions for a target protocol.

- :mod:`repro.adversary.reward` -- Equation 1 (``r_adv = r_opt -
  r_protocol - p_smoothing``) and the smoothing penalties of both domains,
- :mod:`repro.adversary.abr_env` -- the adaptive-video-streaming adversary
  (acts once per chunk, controls bandwidth; section 3),
- :mod:`repro.adversary.cc_env` -- the congestion-control adversary (acts
  every 30 ms, controls bandwidth/latency/loss; section 4, Table 1),
- :mod:`repro.adversary.trace_adversary` -- the trace-based alternative
  formulation discussed (and argued against) in section 2.1,
- :mod:`repro.adversary.generation` -- rolling trained adversaries out
  into reusable traces, plus the random-trace baseline,
- :mod:`repro.adversary.robust_training` -- the section-2.3 pipeline that
  folds adversarial traces back into Pensieve's training.
"""

from repro.adversary.abr_env import AbrAdversaryEnv, train_abr_adversary
from repro.adversary.cc_env import CcAdversaryEnv, train_cc_adversary
from repro.adversary.constrained import PerturbationAdversaryEnv
from repro.adversary.generation import (
    generate_abr_traces,
    generate_cc_traces,
    rollout_abr_adversary,
    rollout_cc_adversary,
)
from repro.adversary.regression import AdversarialRegressionSuite
from repro.adversary.reward import AdversaryReward, EwmaSmoothing, LastActionSmoothing
from repro.adversary.robust_training import robustify_pensieve

__all__ = [
    "AbrAdversaryEnv",
    "AdversarialRegressionSuite",
    "AdversaryReward",
    "CcAdversaryEnv",
    "EwmaSmoothing",
    "LastActionSmoothing",
    "PerturbationAdversaryEnv",
    "generate_abr_traces",
    "generate_cc_traces",
    "robustify_pensieve",
    "rollout_abr_adversary",
    "rollout_cc_adversary",
    "train_abr_adversary",
    "train_cc_adversary",
]
