"""Equation 1: the adversary's reward.

    r_adversary = r_opt - r_protocol - p_smoothing

"Equation 1 captures the adversary's goal of outputting network conditions
for which the performance of the target protocol is far from the optimal
performance.  The p_smoothing term penalizes the adversary for producing
noisy or high-variance traces, which may be less explainable and thus less
useful for protocol development." (section 2.2)

The three terms are domain-specific; this module provides the assembly and
the two smoothing penalties the paper uses:

- :class:`LastActionSmoothing` (ABR): "the absolute difference between the
  last two chosen bandwidths" (section 3),
- :class:`EwmaSmoothing` (CC): "a smoothing factor computed based on the
  difference between the current bandwidth and latency, and an
  exponentially-weighted moving average of both" (section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AdversaryReward", "EwmaSmoothing", "LastActionSmoothing"]


@dataclass
class AdversaryReward:
    """Assembles Equation 1 with a configurable smoothing weight."""

    smoothing_weight: float = 1.0

    def __call__(self, r_opt: float, r_protocol: float, smoothing: float) -> float:
        if smoothing < 0:
            raise ValueError("smoothing penalty cannot be negative")
        return r_opt - r_protocol - self.smoothing_weight * smoothing


class LastActionSmoothing:
    """Penalty = |a_t - a_{t-1}| per action dimension, summed.

    Zero on the first action of an episode.
    """

    def __init__(self) -> None:
        self._last: np.ndarray | None = None

    def reset(self) -> None:
        self._last = None

    def __call__(self, action: np.ndarray) -> float:
        action = np.atleast_1d(np.asarray(action, dtype=float))
        if self._last is None:
            penalty = 0.0
        else:
            penalty = float(np.sum(np.abs(action - self._last)))
        self._last = action.copy()
        return penalty


class EwmaSmoothing:
    """Penalty = sum_d |a_d - ewma_d| / range_d over tracked dimensions.

    Deviations are normalized by each dimension's allowed range so that
    bandwidth (Mbps) and latency (ms) contribute comparably; the EWMA is
    seeded with the first action.
    """

    def __init__(self, ranges: np.ndarray, alpha: float = 0.125) -> None:
        self.ranges = np.asarray(ranges, dtype=float)
        if np.any(self.ranges <= 0):
            raise ValueError("ranges must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._ewma: np.ndarray | None = None

    def reset(self) -> None:
        self._ewma = None

    def __call__(self, action: np.ndarray) -> float:
        action = np.atleast_1d(np.asarray(action, dtype=float))
        if action.shape != self.ranges.shape:
            raise ValueError(f"expected action shape {self.ranges.shape}, got {action.shape}")
        if self._ewma is None:
            self._ewma = action.copy()
            return 0.0
        penalty = float(np.sum(np.abs(action - self._ewma) / self.ranges))
        self._ewma = (1.0 - self.alpha) * self._ewma + self.alpha * action
        return penalty
