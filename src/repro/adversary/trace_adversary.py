"""The trace-based adversary formulation (section 2.1's alternative).

"A trace-based adversary generates an entire trace ... as a single output,
and is evaluated by running the target protocol on that trace."  The paper
argues this trains slowly -- "each trace constitutes only a single data
point" -- and uses online adversaries instead.  We implement it so the
claim can be tested (``benchmarks/bench_ablation_trace_vs_online.py``).

Formulation: an episode emits one bandwidth per chunk while observing only
its own progress (no protocol feedback); the entire Equation-1 reward
arrives on the final step, computed by replaying the target protocol and
the offline optimum over the finished trace.
"""

from __future__ import annotations

import numpy as np

from repro.abr.protocols.base import AbrPolicy, run_session
from repro.abr.protocols.optimal import optimal_plan_dp
from repro.abr.qoe import QoEWeights
from repro.abr.video import Video
from repro.adversary.abr_env import ABR_BW_HIGH_MBPS, ABR_BW_LOW_MBPS
from repro.adversary.reward import AdversaryReward
from repro.rl.env import Env
from repro.rl.spaces import Box
from repro.traces.trace import Trace

__all__ = ["TraceAdversaryEnv"]


class TraceAdversaryEnv(Env):
    """Blind trace emission with a single end-of-episode reward."""

    def __init__(
        self,
        target: AbrPolicy,
        video: Video,
        weights: QoEWeights = QoEWeights(),
        smoothing_weight: float = 1.0,
    ) -> None:
        self.target = target
        self.video = video
        self.weights = weights
        self.reward_fn = AdversaryReward(smoothing_weight=smoothing_weight)
        self.bw_box = Box([ABR_BW_LOW_MBPS], [ABR_BW_HIGH_MBPS])
        self.action_space = Box([-1.0], [1.0])
        # Observation: episode progress and the previous choice only.
        self.observation_space = Box([-1e6] * 2, [1e6] * 2)
        self._chosen: list[float] = []

    def _observe(self) -> np.ndarray:
        progress = len(self._chosen) / self.video.n_chunks
        last = self._chosen[-1] if self._chosen else 0.0
        return np.array([progress, last / ABR_BW_HIGH_MBPS])

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        self._chosen = []
        return self._observe()

    def step(self, action) -> tuple[np.ndarray, float, bool, dict]:
        if len(self._chosen) >= self.video.n_chunks:
            raise RuntimeError("trace finished; call reset()")
        bandwidth = float(self.bw_box.scale_from_unit(np.asarray(action, dtype=float))[0])
        self._chosen.append(bandwidth)
        done = len(self._chosen) == self.video.n_chunks
        if not done:
            return self._observe(), 0.0, False, {}
        trace = self.build_trace()
        result = run_session(self.video, trace, self.target, weights=self.weights)
        r_opt, _plan = optimal_plan_dp(
            self.video, np.asarray(self._chosen), weights=self.weights
        )
        smoothing = float(np.sum(np.abs(np.diff(self._chosen))))
        reward = self.reward_fn(r_opt, result.qoe_total, smoothing)
        info = {
            "r_opt": r_opt,
            "r_protocol": result.qoe_total,
            "smoothing": smoothing,
            "target_qoe_mean": result.qoe_mean,
        }
        return self._observe(), reward, True, info

    def build_trace(self, name: str = "trace-adv") -> Trace:
        """The trace assembled so far (one segment per chunk)."""
        if not self._chosen:
            raise RuntimeError("no actions taken yet")
        return Trace.from_steps(self._chosen, self.video.chunk_seconds, name=name)
