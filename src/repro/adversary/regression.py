"""Adversarial regression testing (section 5, "Guiding protocol development").

"Consider the case of continuous integration, where the protocol is
changed over time, but it is desirable that all previously-fixed problems
remain fixed.  In such a case, using an adversary to create inputs that
cause the exact problem in question, instead of running a fixed set of
traces that caused problems in an earlier version of the code, would help
developers create a more robust fix."

:class:`AdversarialRegressionSuite` packages both halves of that idea:

- a corpus of recorded adversarial traces with per-trace QoE thresholds
  (the classic fixed regression suite), checked by :meth:`check`, and
- :meth:`refresh`, which re-trains an adversary against the *current*
  protocol and folds its newly discovered worst cases into the suite, so
  the tests chase the implementation rather than its history.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.abr.protocols.base import AbrPolicy, run_session
from repro.abr.qoe import QoEWeights
from repro.abr.video import Video
from repro.adversary.abr_env import train_abr_adversary
from repro.adversary.generation import generate_abr_traces
from repro.traces.trace import Trace

__all__ = ["AdversarialRegressionSuite", "RegressionCase", "RegressionReport"]


@dataclass
class RegressionCase:
    """One recorded trace with the minimum QoE the protocol must achieve."""

    trace: Trace
    min_qoe: float
    origin: str = "recorded"

    def to_dict(self) -> dict:
        return {
            "trace": self.trace.to_dict(),
            "min_qoe": self.min_qoe,
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RegressionCase":
        return cls(
            trace=Trace.from_dict(data["trace"]),
            min_qoe=float(data["min_qoe"]),
            origin=data.get("origin", "recorded"),
        )


@dataclass
class RegressionReport:
    """Outcome of running a protocol against the suite."""

    passed: list[str] = field(default_factory=list)
    failed: list[tuple[str, float, float]] = field(default_factory=list)  # (name, qoe, min)

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        lines = [f"{len(self.passed)} passed, {len(self.failed)} failed"]
        for name, qoe, threshold in self.failed:
            lines.append(f"  FAIL {name}: QoE {qoe:.3f} < required {threshold:.3f}")
        return "\n".join(lines)


class AdversarialRegressionSuite:
    """A refreshable, persistent suite of adversarial test cases."""

    def __init__(
        self,
        video: Video,
        weights: QoEWeights = QoEWeights(),
        margin: float = 0.1,
    ) -> None:
        """``margin`` loosens recorded thresholds (QoE units per chunk)."""
        self.video = video
        self.weights = weights
        self.margin = margin
        self.cases: list[RegressionCase] = []

    # -- building the suite -----------------------------------------------------

    def record(self, trace: Trace, reference: AbrPolicy, origin: str = "recorded") -> RegressionCase:
        """Add a case whose threshold is the reference protocol's QoE."""
        result = run_session(
            self.video, trace, reference, weights=self.weights, chunk_indexed=True
        )
        case = RegressionCase(
            trace=trace, min_qoe=result.qoe_mean - self.margin, origin=origin
        )
        self.cases.append(case)
        return case

    def refresh(
        self,
        protocol: AbrPolicy,
        adversary_steps: int = 30_000,
        n_traces: int = 10,
        keep_worst: int = 5,
        seed: int = 0,
    ) -> list[RegressionCase]:
        """Hunt fresh worst cases against the *current* protocol.

        Trains a new adversary, keeps the ``keep_worst`` most damaging
        traces, and records them with the protocol's current QoE as the
        never-regress threshold.
        """
        result = train_abr_adversary(
            protocol, self.video, total_steps=adversary_steps, seed=seed,
            weights=self.weights,
        )
        rolls = generate_abr_traces(result.trainer, result.env, n_traces)
        rolls.sort(key=lambda r: r.target_qoe_mean)
        added = []
        for roll in rolls[:keep_worst]:
            added.append(self.record(roll.trace, protocol, origin="refresh"))
        return added

    # -- running the suite ---------------------------------------------------------

    def check(self, protocol: AbrPolicy) -> RegressionReport:
        """Replay every case against ``protocol``; fail below threshold."""
        if not self.cases:
            raise RuntimeError("suite is empty; record() or refresh() first")
        report = RegressionReport()
        for case in self.cases:
            result = run_session(
                self.video, case.trace, protocol, weights=self.weights,
                chunk_indexed=True,
            )
            if result.qoe_mean >= case.min_qoe:
                report.passed.append(case.trace.name)
            else:
                report.failed.append((case.trace.name, result.qoe_mean, case.min_qoe))
        return report

    # -- persistence ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = {
            "margin": self.margin,
            "cases": [c.to_dict() for c in self.cases],
        }
        Path(path).write_text(json.dumps(payload))

    def load(self, path: str | Path) -> None:
        payload = json.loads(Path(path).read_text())
        self.margin = float(payload["margin"])
        self.cases = [RegressionCase.from_dict(c) for c in payload["cases"]]

    def worst_cases(self, k: int = 3) -> list[RegressionCase]:
        """The ``k`` cases with the lowest recorded thresholds."""
        return sorted(self.cases, key=lambda c: c.min_qoe)[:k]


def suite_mean_threshold(suite: AdversarialRegressionSuite) -> float:
    """Mean per-chunk QoE threshold across the suite (difficulty proxy)."""
    if not suite.cases:
        raise RuntimeError("suite is empty")
    return float(np.mean([c.min_qoe for c in suite.cases]))
