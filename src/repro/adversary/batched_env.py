"""Batched adversary rollouts: all envs advanced by one vectorized step.

:class:`BatchedAbrVecEnv` is a third rollout-collection backend
(``vec_backend="batched"``) beside :class:`~repro.rl.vec_env.SyncVecEnv`
and :class:`~repro.rl.vec_env.SubprocVecEnv`.  Where the sync backend
steps ``n_envs`` independent :class:`~repro.adversary.abr_env.AbrAdversaryEnv`
instances -- n serial ``target.select()`` calls plus per-env Python frame
stacking per vec-step -- this backend owns the worlds directly and runs
one vectorized pass over all of them:

- the frozen target's bitrate decisions are served by **one** batched
  policy call per step through the PR 6 adapters
  (:class:`~repro.abr.batched.BatchedPensieve` /
  :class:`~repro.abr.batched.BatchedMPC` / ...), so a Pensieve target
  costs one ``(n_envs, d)`` MLP forward instead of ``n_envs`` width-1
  forwards;
- observations live in a persistent ``(n_envs, history_len, d)`` frame
  ring written with a single vectorized scatter per step, so the serial
  path's per-env list-append + pad + concatenate becomes one reshape;
- action scaling, smoothing penalties, the ``r_opt`` exhaustive search
  (one :func:`~repro.abr.protocols.optimal.optimal_qoe_exhaustive_mixed`
  call per (video, weights) group) and reward assembly are all batched.

Equivalence contract
--------------------

Rollouts are bitwise identical to the ``"sync"`` backend at every width
(the PR 1/2/5/6 contract; pinned by ``tests/test_batched_rollout.py``):

- Every lane owns a private :class:`~repro.abr.simulator.StreamingSession`
  downloading through the ordinary ``download_chunk`` -- the simulator
  math is untouched.
- Every vectorized expression replays the serial op order elementwise
  (``Box.scale_from_unit`` clip+affine, the ``_frame()`` formulas, the
  left-associated Equation 1 assembly), so identical inputs give
  identical bytes per element.
- The r_opt batch solver is bitwise equal to the scalar solver row by
  row (PR 1), and seeding runs the identical ``VecEnv._spawn_seeds``
  (per-env seeds are drawn with the same side effects and -- exactly like
  the sync path -- discarded, because ``AbrAdversaryEnv.reset`` ignores
  them).
- Target decisions: BB/BOLA/MPC adapters are bitwise by construction;
  deterministic Pensieve rests on the PR 6 argmax-stability contract
  (bitwise at width 1, where the batched forward degenerates to the
  serial shape).  Stochastic or unknown targets fall back to one
  persistent deep-copied policy per lane -- the exact arrangement the
  sync backend's per-env target copies produce, RNG streams included.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.abr.batched import (
    BatchedAbrPolicy,
    BatchedMPC,
    BatchedPensieve,
    as_batched,
)
from repro.abr.protocols.base import AbrPolicy
from repro.abr.protocols.bola import Bola
from repro.abr.protocols.buffer_based import BufferBased
from repro.abr.protocols.mpc import MPC
from repro.abr.protocols.optimal import (
    optimal_qoe_exhaustive_batch,
    optimal_qoe_exhaustive_mixed,
)
from repro.abr.protocols.pensieve import PensieveAgent
from repro.abr.qoe import QoEWeights
from repro.abr.simulator import ControlledBandwidth, StreamingSession
from repro.abr.video import Video
from repro.rl.spaces import Box
from repro.rl.vec_env import VecEnv

__all__ = ["BatchedAbrVecEnv", "adapter_for_target"]


class _SerialLaneAdapter(BatchedAbrPolicy):
    """Persistent per-lane policy clones, stepped serially.

    The fallback for targets the batched adapters cannot reproduce
    bitwise -- stochastic Pensieve (whose action noise is drawn from the
    *policy's own* RNG stream) and unknown policy classes.  Unlike
    :class:`~repro.abr.batched.GenericBatched`, clones persist across
    episodes: the sync backend deep-copies the target once per env at
    construction and only ``reset(video)``s it between episodes, so any
    cross-episode state (e.g. ``PensieveAgent._rng``) must survive here
    too for the streams to match.
    """

    def __init__(self, prototype: AbrPolicy) -> None:
        self._prototype = prototype
        self._clones: dict[int, AbrPolicy] = {}

    def start(self, lane: int, session: StreamingSession, rng: np.random.Generator) -> None:
        clone = self._clones.get(lane)
        if clone is None:
            clone = copy.deepcopy(self._prototype)
            self._clones[lane] = clone
        clone.reset(session.video)

    def select(self, lanes, sessions):
        return [
            int(self._clones[lane].select(session.observation()))
            for lane, session in zip(lanes, sessions)
        ]


def adapter_for_target(target: AbrPolicy) -> BatchedAbrPolicy:
    """Pick the batched adapter that reproduces ``target`` bitwise.

    Deterministic targets get the PR 6 vectorized adapters; stochastic
    Pensieve and unknown classes get :class:`_SerialLaneAdapter` (correct
    for any policy, no batching benefit).
    """
    if isinstance(target, (BufferBased, Bola, MPC)):
        return as_batched(target)
    if isinstance(target, PensieveAgent) and target.deterministic:
        return BatchedPensieve.from_agent(target)
    return _SerialLaneAdapter(target)


class BatchedAbrVecEnv(VecEnv):
    """``n_envs`` ABR-adversary worlds advanced in lockstep, vectorized.

    Same interface and auto-reset/seeding semantics as
    :class:`~repro.rl.vec_env.SyncVecEnv`, but no per-env ``Env``
    instances exist: the backend holds the per-lane sessions and rings
    directly.  Build one via
    :meth:`AbrAdversaryEnv.batched_vec_env <repro.adversary.abr_env.AbrAdversaryEnv.batched_vec_env>`
    or ``make_vec_env(env, n, backend="batched")``.

    Parameters mirror :class:`~repro.adversary.abr_env.AbrAdversaryEnv`;
    ``targets`` optionally gives each env its own frozen target prototype
    (envs sharing a prototype share one adapter call per step), which is
    how a mixed pensieve/mpc/bb population trains in one batch.
    """

    def __init__(
        self,
        target: AbrPolicy,
        video: Video,
        n_envs: int,
        *,
        targets: list[AbrPolicy] | None = None,
        weights: QoEWeights = QoEWeights(),
        smoothing_weight: float = 1.0,
        bw_low_mbps: float = 0.8,
        bw_high_mbps: float = 4.8,
        history_len: int = 10,
        opt_window: int = 4,
        goal: str = "qoe_regret",
        seed: int | None = None,
    ) -> None:
        if n_envs <= 0:
            raise ValueError("n_envs must be positive")
        if bw_low_mbps <= 0 or bw_high_mbps <= bw_low_mbps:
            raise ValueError("need 0 < bw_low < bw_high")
        if goal not in ("qoe_regret", "rebuffer"):
            raise ValueError(
                f"unknown goal {goal!r}; choose from ('qoe_regret', 'rebuffer')"
            )
        if targets is not None and len(targets) != n_envs:
            raise ValueError(f"need {n_envs} targets, got {len(targets)}")
        super().__init__(n_envs, seed=seed)
        self.video = video
        self.weights = weights
        self.goal = goal
        self.smoothing_weight = float(smoothing_weight)
        self.history_len = int(history_len)
        self.opt_window = int(opt_window)
        self.bw_box = Box([bw_low_mbps], [bw_high_mbps])
        self.action_space = Box([-1.0], [1.0])
        self._frame_dim = 5 + video.n_bitrates
        dim = self._frame_dim * self.history_len
        self.observation_space = Box([-1e6] * dim, [1e6] * dim)

        #: One (adapter, lane list) per distinct target prototype; the
        #: common single-prototype case is one group spanning every lane.
        self._groups: list[tuple[BatchedAbrPolicy, list[int]]] = []
        prototypes = targets if targets is not None else [target] * n_envs
        by_proto: dict[int, list[int]] = {}
        order: list[AbrPolicy] = []
        for i, proto in enumerate(prototypes):
            if id(proto) not in by_proto:
                order.append(proto)
            by_proto.setdefault(id(proto), []).append(i)
        for proto in order:
            self._groups.append((adapter_for_target(proto), by_proto[id(proto)]))

        n = n_envs
        self._sessions: list[StreamingSession | None] = [None] * n
        # Observation frame ring, oldest first; reshape(n, -1) IS the
        # serial `_stacked()` concatenation (zero rows = the front pad).
        self._ring = np.zeros((n, self.history_len, self._frame_dim))
        # r_opt window rings, one column per chunk, newest last.  Shifted
        # left each step; zero columns in an episode's first chunks are
        # never read because the window slice excludes them.
        self._bw_ring = np.zeros((n, self.opt_window))
        self._buf_ring = np.zeros((n, self.opt_window))
        self._qoe_ring = np.zeros((n, self.opt_window))
        self._pq_ring = np.full((n, self.opt_window), -1, dtype=int)  # -1 == None
        self._steps = np.zeros(n, dtype=int)
        self._last_bw = np.zeros(n)
        self._has_last = np.zeros(n, dtype=bool)
        self._was_reset = False
        # Adapter-API rngs for unseeded resets; replaced by VecEnv.rngs
        # after a seeded reset.  Never consulted by any routed adapter
        # (the stochastic-Pensieve path goes through _SerialLaneAdapter),
        # so their state cannot affect results.
        self._fallback_rngs = [np.random.default_rng(i) for i in range(n)]
        # First frame of every episode: nothing downloaded yet, full
        # video remaining, chunk 0's sizes on offer.
        self._frame0 = np.concatenate(
            [
                [0.0, 0.0, video.n_chunks / max(video.n_chunks, 1), 0.0, 0.0],
                video.chunk_sizes_bytes[0] / 1e6,
            ]
        )
        self._ladder_f = np.asarray(video.bitrates_kbps, dtype=float)
        self._max_bitrate = float(video.bitrates_kbps[-1])

    # -- lifecycle --------------------------------------------------------------

    def _adapter_rng(self, i: int) -> np.random.Generator:
        return self.rngs[i] if self.rngs is not None else self._fallback_rngs[i]

    def _reset_env(self, i: int) -> None:
        session = StreamingSession(self.video, ControlledBandwidth(), weights=self.weights)
        self._sessions[i] = session
        for adapter, lanes in self._groups:
            if i in lanes:
                adapter.start(i, session, self._adapter_rng(i))
                break
        self._ring[i] = 0.0
        self._ring[i, -1] = self._frame0
        self._bw_ring[i] = 0.0
        self._buf_ring[i] = 0.0
        self._qoe_ring[i] = 0.0
        self._pq_ring[i] = -1
        self._steps[i] = 0
        self._last_bw[i] = 0.0
        self._has_last[i] = False

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        """Reset every env; returns stacked observations ``(n_envs, obs_dim)``.

        Seeding side effects are exactly :meth:`SyncVecEnv.reset`'s: the
        same SeedSequence spawn populates :attr:`rngs` and draws the same
        per-env integers -- which are then discarded, because the
        underlying env's ``reset`` ignores its seed on the sync path too.
        """
        self._spawn_seeds(self._consume_seed(seed))
        for i in range(self.n_envs):
            self._reset_env(i)
        self._was_reset = True
        return self._ring.reshape(self.n_envs, -1).copy()

    def close(self) -> None:
        pass

    # -- stepping ---------------------------------------------------------------

    def step(
        self, actions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[dict]]:
        """Advance every world one chunk; same contract as ``SyncVecEnv.step``."""
        if not self._was_reset:
            raise RuntimeError("call reset() before step()")
        actions = self._check_actions(actions)
        n = self.n_envs
        video = self.video
        sessions = self._sessions

        # 1. action -> bandwidth, elementwise scale_from_unit (clip+affine).
        unit = np.asarray(actions, dtype=float).reshape(n, -1)
        bw = self.bw_box.scale_from_unit(unit)[:, 0]

        # 2. smoothing penalty |bw_t - bw_{t-1}|, zero on an episode's
        #    first action (LastActionSmoothing on a 1-D action).
        pen = np.abs(bw - self._last_bw)
        pen[~self._has_last] = 0.0
        self._last_bw = bw
        self._has_last[:] = True

        # 3. Record the pre-download world state the r_opt window needs
        #    (buffer and prev-quality *before* this chunk), then set each
        #    lane's controlled link rate.
        self._bw_ring[:, :-1] = self._bw_ring[:, 1:]
        self._buf_ring[:, :-1] = self._buf_ring[:, 1:]
        self._pq_ring[:, :-1] = self._pq_ring[:, 1:]
        self._qoe_ring[:, :-1] = self._qoe_ring[:, 1:]
        self._bw_ring[:, -1] = bw
        for i in range(n):
            session = sessions[i]
            assert session is not None
            session.bandwidth.set_mbps(bw[i])
            self._buf_ring[i, -1] = session.buffer_seconds
            self._pq_ring[i, -1] = (
                -1 if session.prev_quality is None else session.prev_quality
            )

        # 4. One batched target decision per adapter group.
        qualities = np.zeros(n, dtype=int)
        for adapter, lanes in self._groups:
            picked = adapter.select(lanes, [sessions[i] for i in lanes])
            qualities[lanes] = np.asarray(picked, dtype=int)

        # 5. Downloads (the untouched serial simulator, one per lane).
        results = [sessions[i].download_chunk(int(qualities[i])) for i in range(n)]
        self._qoe_ring[:, -1] = [r.qoe for r in results]
        for adapter, lanes in self._groups:
            adapter.observe_round(
                lanes, [sessions[i] for i in lanes], [results[i] for i in lanes]
            )

        # 6. Frame ring: shift, then write the newest frame for all lanes
        #    with the serial `_frame()` formulas vectorized (delays always
        #    include LINK_RTT_S, so the throughput division is safe).
        ring = self._ring
        ring[:, :-1] = ring[:, 1:]
        frame = ring[:, -1]
        chunk_idx = np.asarray([s.chunk_index for s in sessions])
        delays = np.asarray([r.download_seconds for r in results])
        sizes_b = np.asarray([r.size_bytes for r in results])
        done_mask = chunk_idx >= video.n_chunks
        frame[:, 0] = self._ladder_f[qualities] / self._max_bitrate
        frame[:, 1] = np.asarray([s.buffer_seconds for s in sessions]) / 10.0
        frame[:, 2] = (video.n_chunks - chunk_idx) / max(video.n_chunks, 1)
        frame[:, 3] = sizes_b * 8.0 / delays / 1e6 / 10.0
        frame[:, 4] = delays / 10.0
        next_sizes = video.chunk_sizes_bytes[np.where(done_mask, 0, chunk_idx)] / 1e6
        if done_mask.any():
            next_sizes[done_mask] = 0.0
        frame[:, 5:] = next_sizes

        # 7. r_opt over the last min(opt_window, steps) chunks.  Lockstep
        #    episodes keep every lane's window the same length, so the
        #    common case is one direct batch solve over ring slices; the
        #    mixed solver covers any ragged state (identical values, it
        #    just regroups by length first).
        self._steps += 1
        widths = np.minimum(self._steps, self.opt_window)
        off = self.opt_window - widths
        o0 = int(off[0])
        if (off == o0).all():
            r_opt = optimal_qoe_exhaustive_batch(
                video,
                start_chunks=self._steps - widths,
                bandwidth_windows=self._bw_ring[:, o0:],
                start_buffers_s=self._buf_ring[:, o0],
                prev_qualities=[
                    None if q < 0 else int(q) for q in self._pq_ring[:, o0]
                ],
                weights=self.weights,
            )
        else:
            r_opt = optimal_qoe_exhaustive_mixed(
                video,
                start_chunks=(self._steps - widths).tolist(),
                bandwidth_windows=[self._bw_ring[i, off[i]:] for i in range(n)],
                start_buffers_s=[self._buf_ring[i, off[i]] for i in range(n)],
                prev_qualities=[
                    None if self._pq_ring[i, off[i]] < 0 else int(self._pq_ring[i, off[i]])
                    for i in range(n)
                ],
                weights=self.weights,
            )

        # 8. Equation 1, left-associated exactly like AdversaryReward:
        #    (first - second) - w*smoothing.  Zero-padded qoe columns make
        #    np.add.reduce over the full ring equal the serial
        #    sum(qoe[start:]) (sequential at this width).
        r_protocol = np.add.reduce(self._qoe_ring, axis=1)
        if self.goal == "rebuffer":
            first = np.asarray([r.rebuffer_seconds for r in results])
            second = np.zeros(n)
        else:
            first = r_opt
            second = r_protocol
        rewards = (first - second) - self.smoothing_weight * pen

        infos: list[dict] = [
            {
                "bandwidth_mbps": float(bw[i]),
                "quality": int(qualities[i]),
                "chunk_qoe": results[i].qoe,
                "r_opt": float(r_opt[i]),
                "r_protocol": float(r_protocol[i]),
                "smoothing": float(pen[i]),
                "rebuffer": results[i].rebuffer_seconds,
            }
            for i in range(n)
        ]

        # 9. Auto-reset finished lanes, stashing the terminal observation.
        dones = done_mask.copy()
        for i in np.flatnonzero(dones):
            infos[i]["terminal_observation"] = ring[i].reshape(-1).copy()
            self._reset_env(i)
        return ring.reshape(n, -1).copy(), rewards, dones, infos

    def __repr__(self) -> str:
        return f"BatchedAbrVecEnv({self.n_envs} lanes, {len(self._groups)} target group(s))"
