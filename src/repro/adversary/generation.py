"""Rolling trained adversaries out into reusable traces.

"We show that traces from these adversaries are sufficient to reproduce
flawed performance in a variety of target protocols without having to
re-run the adversary" (section 2.1): an adversary episode is recorded as a
:class:`~repro.traces.trace.Trace` that can be replayed against any
protocol.

Stochastic rollouts (``deterministic=False``) sample the policy's
exploration noise, yielding a *corpus* of distinct traces (the paper
produces 200 per target); deterministic rollouts give the single
noise-free action sequence used for Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adversary.abr_env import AbrAdversaryEnv
from repro.adversary.cc_env import CcAdversaryEnv
from repro.cc.network import IntervalStats
from repro.rl.ppo import PPO
from repro.traces.trace import Trace

__all__ = [
    "AbrRollout",
    "CcRollout",
    "generate_abr_traces",
    "generate_cc_traces",
    "rollout_abr_adversary",
    "rollout_cc_adversary",
]


@dataclass
class AbrRollout:
    """One adversary episode against an ABR protocol."""

    trace: Trace
    target_qoe_mean: float
    adversary_return: float
    qualities: list[int]


@dataclass
class CcRollout:
    """One adversary episode against a congestion-control protocol."""

    trace: Trace
    raw_actions: np.ndarray
    intervals: list[IntervalStats]
    mean_utilization: float
    capacity_fraction: float
    adversary_return: float


def rollout_abr_adversary(
    trainer: PPO,
    env: AbrAdversaryEnv,
    deterministic: bool = False,
    name: str = "adv-abr",
    rng: np.random.Generator | None = None,
) -> AbrRollout:
    """Run one adversary episode; record the bandwidth trace it produced.

    ``rng`` supplies the exploration noise of stochastic rollouts; leaving
    it ``None`` draws from the trainer's own generator (the historical
    behaviour, which depends on how much of that stream training consumed).
    """
    obs = env.reset()
    total = 0.0
    qualities: list[int] = []
    done = False
    while not done:
        action = trainer.predict(obs, deterministic=deterministic, rng=rng)
        obs, reward, done, info = env.step(action)
        total += reward
        qualities.append(info["quality"])
    session = env._session
    assert session is not None
    summary = session.summary()
    trace = Trace.from_steps(
        env.chosen_bandwidths(), env.video.chunk_seconds, name=name
    )
    return AbrRollout(
        trace=trace,
        target_qoe_mean=summary.qoe_mean,
        adversary_return=total,
        qualities=qualities,
    )


def generate_abr_traces(
    trainer: PPO,
    env: AbrAdversaryEnv,
    n_traces: int,
    deterministic: bool = False,
    name_prefix: str = "adv-abr",
    seed: int | None = None,
) -> list[AbrRollout]:
    """Produce a corpus of adversarial traces (the paper generates 200).

    With ``seed`` set, each rollout samples its exploration noise from its
    own generator spawned via ``np.random.SeedSequence(seed)``, so trace i
    of the corpus is reproducible independently of the trainer's internal
    generator state and of the other traces.
    """
    if n_traces <= 0:
        raise ValueError("n_traces must be positive")
    rngs = _spawn_rngs(seed, n_traces)
    return [
        rollout_abr_adversary(
            trainer, env, deterministic=deterministic,
            name=f"{name_prefix}-{i:03d}", rng=rngs[i],
        )
        for i in range(n_traces)
    ]


def _spawn_rngs(
    seed: int | None, n: int
) -> list[np.random.Generator] | list[None]:
    if seed is None:
        return [None] * n
    return [np.random.default_rng(c) for c in np.random.SeedSequence(seed).spawn(n)]


def rollout_cc_adversary(
    trainer: PPO,
    env: CcAdversaryEnv,
    deterministic: bool = False,
    name: str = "adv-cc",
    rng: np.random.Generator | None = None,
) -> CcRollout:
    """Run one adversary episode against a congestion-control sender.

    ``rng`` supplies the exploration noise of stochastic rollouts (see
    :func:`rollout_abr_adversary`).
    """
    obs = env.reset()
    total = 0.0
    done = False
    while not done:
        action = trainer.predict(obs, deterministic=deterministic, rng=rng)
        obs, reward, done, _info = env.step(action)
        total += reward
    conditions = np.asarray(env.condition_log)
    trace = Trace.from_steps(
        conditions[:, 0],
        env.interval_s,
        latencies_ms=conditions[:, 1],
        loss_rates=conditions[:, 2],
        name=name,
    )
    assert env.emulator is not None
    intervals = list(env.emulator.history)
    utilizations = [s.utilization for s in intervals]
    throughput = float(np.mean([s.throughput_mbps for s in intervals]))
    capacity = float(np.mean([s.bandwidth_mbps for s in intervals]))
    return CcRollout(
        trace=trace,
        raw_actions=np.asarray(env.action_log),
        intervals=intervals,
        mean_utilization=float(np.mean(utilizations)),
        capacity_fraction=throughput / capacity if capacity > 0 else 0.0,
        adversary_return=total,
    )


def generate_cc_traces(
    trainer: PPO,
    env: CcAdversaryEnv,
    n_traces: int,
    deterministic: bool = False,
    name_prefix: str = "adv-cc",
    seed: int | None = None,
) -> list[CcRollout]:
    """Produce a corpus of adversarial congestion-control traces.

    ``seed`` makes each trace independently reproducible; see
    :func:`generate_abr_traces`.
    """
    if n_traces <= 0:
        raise ValueError("n_traces must be positive")
    rngs = _spawn_rngs(seed, n_traces)
    return [
        rollout_cc_adversary(
            trainer, env, deterministic=deterministic,
            name=f"{name_prefix}-{i:03d}", rng=rngs[i],
        )
        for i in range(n_traces)
    ]
