"""Rolling trained adversaries out into reusable traces.

"We show that traces from these adversaries are sufficient to reproduce
flawed performance in a variety of target protocols without having to
re-run the adversary" (section 2.1): an adversary episode is recorded as a
:class:`~repro.traces.trace.Trace` that can be replayed against any
protocol.

Stochastic rollouts (``deterministic=False``) sample the policy's
exploration noise, yielding a *corpus* of distinct traces (the paper
produces 200 per target); deterministic rollouts give the single
noise-free action sequence used for Figure 6.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.abr.batched import resolve_batch_size
from repro.adversary.abr_env import AbrAdversaryEnv
from repro.adversary.cc_env import CcAdversaryEnv
from repro.cc.network import IntervalStats
from repro.exec import as_runner, spawn_rngs
from repro.rl.ppo import PPO
from repro.traces.trace import Trace

__all__ = [
    "AbrRollout",
    "CcRollout",
    "generate_abr_traces",
    "generate_cc_traces",
    "rollout_abr_adversary",
    "rollout_cc_adversary",
]


@dataclass
class AbrRollout:
    """One adversary episode against an ABR protocol."""

    trace: Trace
    target_qoe_mean: float
    adversary_return: float
    qualities: list[int]


@dataclass
class CcRollout:
    """One adversary episode against a congestion-control protocol."""

    trace: Trace
    raw_actions: np.ndarray
    intervals: list[IntervalStats]
    mean_utilization: float
    capacity_fraction: float
    adversary_return: float


def rollout_abr_adversary(
    trainer: PPO,
    env: AbrAdversaryEnv,
    deterministic: bool = False,
    name: str = "adv-abr",
    rng: np.random.Generator | None = None,
) -> AbrRollout:
    """Run one adversary episode; record the bandwidth trace it produced.

    ``rng`` supplies the exploration noise of stochastic rollouts; leaving
    it ``None`` draws from the trainer's own generator (the historical
    behaviour, which depends on how much of that stream training consumed).
    """
    obs = env.reset()
    total = 0.0
    qualities: list[int] = []
    done = False
    while not done:
        action = trainer.predict(obs, deterministic=deterministic, rng=rng)
        obs, reward, done, info = env.step(action)
        total += reward
        qualities.append(info["quality"])
    return _finish_abr_rollout(env, name, total, qualities)


def _finish_abr_rollout(
    env: AbrAdversaryEnv, name: str, total: float, qualities: list[int]
) -> AbrRollout:
    """Package a finished adversary episode as an :class:`AbrRollout`."""
    session = env._session
    assert session is not None
    summary = session.summary()
    trace = Trace.from_steps(
        env.chosen_bandwidths(), env.video.chunk_seconds, name=name
    )
    return AbrRollout(
        trace=trace,
        target_qoe_mean=summary.qoe_mean,
        adversary_return=total,
        qualities=qualities,
    )


def _batched_abr_rollouts(
    trainer,
    env: AbrAdversaryEnv,
    deterministic: bool,
    names: list[str],
    rngs,
    batch_size: int,
) -> list[AbrRollout]:
    """Roll out ``len(names)`` episodes over lockstep env copies.

    Actions stay on the serial per-env prediction path (continuous
    adversary actions feed the simulator directly, so a batched policy
    forward's last-ulp GEMM differences would change results); what the
    batch amortizes is the dominant per-step cost, the exhaustive
    ``r_opt`` search, via :meth:`AbrAdversaryEnv.batch_step` -- which is
    pinned bitwise-identical to per-env ``step``.  Each lane replays
    against its own deep copy, so (unlike the serial loop) the caller's
    ``env`` is left untouched.
    """
    rollouts: list[AbrRollout | None] = [None] * len(names)
    queue = iter(range(len(names)))
    lanes: list[list] = []  # [trace index, env copy, obs, return, qualities]

    def refill() -> None:
        while len(lanes) < batch_size:
            i = next(queue, None)
            if i is None:
                return
            env_i = copy.deepcopy(env)
            lanes.append([i, env_i, env_i.reset(), 0.0, []])

    refill()
    while lanes:
        actions = [
            trainer.predict(lane[2], deterministic=deterministic, rng=rngs[lane[0]])
            for lane in lanes
        ]
        outs = AbrAdversaryEnv.batch_step([lane[1] for lane in lanes], actions)
        still: list[list] = []
        for lane, (obs, reward, done, info) in zip(lanes, outs):
            lane[2] = obs
            lane[3] += reward
            lane[4].append(info["quality"])
            if done:
                i, env_i, _, total, qualities = lane
                rollouts[i] = _finish_abr_rollout(env_i, names[i], total, qualities)
            else:
                still.append(lane)
        retired = len(still) != len(lanes)
        lanes = still
        if retired:
            refill()
    return rollouts  # type: ignore[return-value]


def _abr_batch_rollout_task(task) -> list[AbrRollout]:
    predictor, env, deterministic, names, rngs, batch_size = task
    return _batched_abr_rollouts(predictor, env, deterministic, names, rngs, batch_size)


def generate_abr_traces(
    trainer: PPO,
    env: AbrAdversaryEnv,
    n_traces: int,
    deterministic: bool = False,
    name_prefix: str = "adv-abr",
    seed: int | None = None,
    workers: int | None = None,
    names: list[str] | None = None,
    batch_size: int | None = None,
) -> list[AbrRollout]:
    """Produce a corpus of adversarial traces (the paper generates 200).

    With ``seed`` set, each rollout samples its exploration noise from its
    own generator spawned via ``np.random.SeedSequence(seed)``, so trace i
    of the corpus is reproducible independently of the trainer's internal
    generator state and of the other traces.

    That same independence makes the corpus embarrassingly parallel:
    ``workers > 1`` fans the rollouts over a process pool
    (:class:`repro.exec.ParallelMap`), each worker replaying against its
    own copy of the frozen policy and environment, with results returned
    in trace order -- bitwise-identical to the serial loop.  Stochastic
    parallel generation therefore *requires* ``seed`` (without it, noise
    would come from the trainer's serially-consumed generator).

    ``batch_size`` >= 2 advances that many episodes in lockstep
    (``None`` honours ``$REPRO_BATCH_SIZE``), batching each round's
    exhaustive ``r_opt`` searches through
    :meth:`AbrAdversaryEnv.batch_step`; it composes with ``workers``
    (each worker task runs one lockstep batch) and obeys the same
    stochastic-needs-``seed`` rule.  Results are bitwise-identical to
    the serial loop; the only side difference is that the caller's
    ``env`` keeps its pre-call state (lanes replay deep copies) instead
    of the last rollout's.
    """
    if n_traces <= 0:
        raise ValueError("n_traces must be positive")
    names = _trace_names(names, name_prefix, n_traces)
    rngs = spawn_rngs(seed, n_traces)
    batch_size = resolve_batch_size(batch_size)
    if batch_size >= 2 and seed is None and not deterministic:
        raise ValueError(
            "batched stochastic generation needs seed= (per-trace rngs)"
        )
    with as_runner(workers) as runner:
        if not runner.parallel:
            if batch_size >= 2:
                return _batched_abr_rollouts(
                    trainer, env, deterministic, names, rngs, batch_size
                )
            return [
                rollout_abr_adversary(
                    trainer, env, deterministic=deterministic,
                    name=names[i], rng=rngs[i],
                )
                for i in range(n_traces)
            ]
        if seed is None and not deterministic:
            raise ValueError(
                "parallel stochastic generation needs seed= (per-trace rngs)"
            )
        predictor = _FrozenPredictor.from_trainer(trainer)
        if batch_size >= 2:
            spans = [
                (lo, min(lo + batch_size, n_traces))
                for lo in range(0, n_traces, batch_size)
            ]
            batches = runner.map(
                _abr_batch_rollout_task,
                [
                    (predictor, env, deterministic, names[lo:hi], rngs[lo:hi],
                     batch_size)
                    for lo, hi in spans
                ],
            )
            return [rollout for batch in batches for rollout in batch]
        tasks = [
            (predictor, env, deterministic, names[i], rngs[i])
            for i in range(n_traces)
        ]
        return runner.map(_abr_rollout_task, tasks)


def _trace_names(names: list[str] | None, prefix: str, n: int) -> list[str]:
    if names is None:
        return [f"{prefix}-{i:03d}" for i in range(n)]
    if len(names) != n:
        raise ValueError(f"got {len(names)} names for {n} traces")
    return list(names)


class _FrozenPredictor:
    """A picklable stand-in for ``PPO.predict`` on a frozen policy.

    Shipping the full trainer to workers would drag its (possibly
    subprocess-backed, unpicklable) vec env along; rollouts only need the
    policy weights and observation statistics, and this reproduces
    :meth:`repro.rl.ppo.PPO.predict` exactly for an explicitly supplied
    ``rng`` or a deterministic rollout.
    """

    def __init__(self, policy, obs_rms) -> None:
        self.policy = policy
        self.obs_rms = obs_rms

    @classmethod
    def from_trainer(cls, trainer: PPO) -> "_FrozenPredictor":
        return cls(trainer.policy, trainer.obs_rms if trainer.cfg.normalize_obs else None)

    def predict(self, obs, deterministic: bool = True, rng=None):
        if rng is None and not deterministic:
            raise ValueError("stochastic frozen prediction needs an explicit rng")
        if self.obs_rms is not None:
            obs = self.obs_rms.normalize(obs)
        else:
            obs = np.asarray(obs, dtype=float)
        action, _logp, _value = self.policy.act(obs, rng, deterministic=deterministic)
        return action


def _abr_rollout_task(task) -> AbrRollout:
    predictor, env, deterministic, name, rng = task
    return rollout_abr_adversary(
        predictor, env, deterministic=deterministic, name=name, rng=rng
    )


def _cc_rollout_task(task) -> CcRollout:
    predictor, env, deterministic, name, rng = task
    return rollout_cc_adversary(
        predictor, env, deterministic=deterministic, name=name, rng=rng
    )


def rollout_cc_adversary(
    trainer: PPO,
    env: CcAdversaryEnv,
    deterministic: bool = False,
    name: str = "adv-cc",
    rng: np.random.Generator | None = None,
) -> CcRollout:
    """Run one adversary episode against a congestion-control sender.

    ``rng`` supplies the exploration noise of stochastic rollouts (see
    :func:`rollout_abr_adversary`).
    """
    obs = env.reset()
    total = 0.0
    done = False
    while not done:
        action = trainer.predict(obs, deterministic=deterministic, rng=rng)
        obs, reward, done, _info = env.step(action)
        total += reward
    conditions = np.asarray(env.condition_log)
    trace = Trace.from_steps(
        conditions[:, 0],
        env.interval_s,
        latencies_ms=conditions[:, 1],
        loss_rates=conditions[:, 2],
        name=name,
    )
    assert env.emulator is not None
    intervals = list(env.emulator.history)
    utilizations = [s.utilization for s in intervals]
    throughput = float(np.mean([s.throughput_mbps for s in intervals]))
    capacity = float(np.mean([s.bandwidth_mbps for s in intervals]))
    return CcRollout(
        trace=trace,
        raw_actions=np.asarray(env.action_log),
        intervals=intervals,
        mean_utilization=float(np.mean(utilizations)),
        capacity_fraction=throughput / capacity if capacity > 0 else 0.0,
        adversary_return=total,
    )


def generate_cc_traces(
    trainer: PPO,
    env: CcAdversaryEnv,
    n_traces: int,
    deterministic: bool = False,
    name_prefix: str = "adv-cc",
    seed: int | None = None,
    workers: int | None = None,
    names: list[str] | None = None,
) -> list[CcRollout]:
    """Produce a corpus of adversarial congestion-control traces.

    ``seed`` makes each trace independently reproducible and ``workers``
    parallelizes the rollouts; see :func:`generate_abr_traces`.  The CC
    env derives each episode's emulator seed from its episode counter, so
    the parallel path gives worker *i*'s env copy the counter value its
    rollout would have seen serially (and advances the caller's env by
    ``n_traces``), keeping the corpus bitwise-identical to the serial
    loop; only the caller's env *emulator* state afterwards differs (it
    is left untouched instead of holding the last rollout's wreckage).
    """
    if n_traces <= 0:
        raise ValueError("n_traces must be positive")
    names = _trace_names(names, name_prefix, n_traces)
    rngs = spawn_rngs(seed, n_traces)
    with as_runner(workers) as runner:
        if not runner.parallel:
            return [
                rollout_cc_adversary(
                    trainer, env, deterministic=deterministic,
                    name=names[i], rng=rngs[i],
                )
                for i in range(n_traces)
            ]
        if seed is None and not deterministic:
            raise ValueError(
                "parallel stochastic generation needs seed= (per-trace rngs)"
            )
        predictor = _FrozenPredictor.from_trainer(trainer)
        tasks = []
        base_episode = env._episode
        for i in range(n_traces):
            env_i = copy.deepcopy(env)
            env_i._episode = base_episode + i
            tasks.append((predictor, env_i, deterministic, names[i], rngs[i]))
        env._episode = base_episode + n_traces
        return runner.map(_cc_rollout_task, tasks)
