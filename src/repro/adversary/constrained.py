"""Constrained adversaries (section 5, "Constraining Adversaries").

"Developers might also be interested in constraining adversaries relative
to a particular set of traces, e.g., to making only small changes to an
existing test case."

:class:`PerturbationAdversaryEnv` wraps the ABR adversary so that each
action is a bounded multiplicative *perturbation* of a reference trace's
bandwidth: chunk ``i`` downloads at ``base_i * (1 + a_i * max_relative)``.
The reward is still Equation 1, so the adversary searches for the most
damaging small deviation from a realistic test case.
"""

from __future__ import annotations

import numpy as np

from repro.abr.protocols.base import AbrPolicy
from repro.abr.qoe import QoEWeights
from repro.abr.video import Video
from repro.adversary.abr_env import AbrAdversaryEnv
from repro.traces.trace import Trace

__all__ = ["PerturbationAdversaryEnv"]


class PerturbationAdversaryEnv(AbrAdversaryEnv):
    """An ABR adversary restricted to small deviations from a base trace.

    Parameters
    ----------
    base_trace:
        The reference test case; its bandwidth values are consumed one per
        chunk (cycling if shorter than the video).
    max_relative:
        Largest allowed relative deviation, e.g. 0.25 for +-25%.
    """

    def __init__(
        self,
        target: AbrPolicy,
        video: Video,
        base_trace: Trace,
        max_relative: float = 0.25,
        weights: QoEWeights = QoEWeights(),
        smoothing_weight: float = 1.0,
        min_bandwidth_mbps: float = 0.05,
    ) -> None:
        if not 0.0 < max_relative <= 1.0:
            raise ValueError("max_relative must be in (0, 1]")
        if len(base_trace) == 0:
            raise ValueError("base trace is empty")
        super().__init__(
            target,
            video,
            weights=weights,
            smoothing_weight=smoothing_weight,
        )
        self.base_trace = base_trace
        self.max_relative = max_relative
        self.min_bandwidth_mbps = min_bandwidth_mbps

    def _base_bandwidth(self) -> float:
        index = len(self._chosen_bw) % len(self.base_trace)
        return float(self.base_trace.bandwidths_mbps[index])

    def action_to_bandwidth(self, action) -> float:
        """Interpret the action as a bounded relative perturbation."""
        unit = float(np.clip(np.asarray(action, dtype=float).ravel()[0], -1.0, 1.0))
        bandwidth = self._base_bandwidth() * (1.0 + unit * self.max_relative)
        return max(bandwidth, self.min_bandwidth_mbps)

    def deviation_from_base(self) -> float:
        """Mean relative deviation of the chosen bandwidths so far."""
        if not self._chosen_bw:
            return 0.0
        deviations = []
        for i, chosen in enumerate(self._chosen_bw):
            base = float(self.base_trace.bandwidths_mbps[i % len(self.base_trace)])
            deviations.append(abs(chosen - base) / base)
        return float(np.mean(deviations))
