"""The section-2.3 robustification pipeline.

"(1) train the protocol of interest, (2) train an adversary against it,
(3) use the trained adversary to generate traces, and (4) continue the
protocol's training with the new adversarial traces in its training
dataset."

"To avoid over-fitting to adversarial examples, which might be edge
cases, we suggest incorporating the generated traces late into the
training" -- the paper pauses at 90% (and alternatively 70%) of the
training iterations (section 3.3); :func:`robustify_pensieve` exposes the
switch point as ``switch_fraction``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.abr.protocols.pensieve import (
    PensieveTrainResult,
    continue_training,
    train_pensieve,
)
from repro.abr.qoe import QoEWeights
from repro.abr.video import Video
from repro.adversary.abr_env import train_abr_adversary
from repro.adversary.generation import generate_abr_traces
from repro.obs.metrics import MetricsRecorder, NULL_RECORDER
from repro.rl.ppo import PPOConfig
from repro.traces.trace import Trace

__all__ = ["RobustificationResult", "robustify_pensieve"]


@dataclass
class RobustificationResult:
    """Both arms of the experiment, trained from a shared checkpoint.

    ``baseline`` finished its training on the original corpus only;
    ``robust`` continued from the *same* partially-trained checkpoint with
    the adversarial traces added to its corpus.
    """

    baseline: PensieveTrainResult
    robust: PensieveTrainResult
    adversarial_traces: list[Trace]
    switch_fraction: float


def robustify_pensieve(
    corpus: list[Trace],
    video: Video,
    total_steps: int = 40_000,
    switch_fraction: float = 0.9,
    adversary_steps: int = 30_000,
    n_adversarial_traces: int = 50,
    seed: int = 0,
    config: PPOConfig | None = None,
    adversary_config: PPOConfig | None = None,
    weights: QoEWeights = QoEWeights(),
    recorder: MetricsRecorder | None = None,
    n_envs: int = 1,
    vec_backend: str = "sync",
) -> RobustificationResult:
    """Run the full four-step pipeline and return both trained agents.

    ``recorder`` receives per-phase wall-clock timings plus the
    adversary's per-update PPO diagnostics; inspecting the training
    curves around the 70%/90% switch point is how the paper's schedule
    is tuned.  Recording never alters any result.  ``n_envs`` /
    ``vec_backend`` configure the adversary-training phase's rollout
    collection (step 2, the pipeline's dominant cost for NN targets);
    ``vec_backend="batched"`` serves the frozen Pensieve target with one
    batched forward per step and collects the same rollouts bit for bit.
    """
    if not 0.0 < switch_fraction < 1.0:
        raise ValueError("switch_fraction must be in (0, 1)")
    recorder = recorder if recorder is not None else NULL_RECORDER
    phase1 = int(total_steps * switch_fraction)
    phase2 = total_steps - phase1

    # (1) train the protocol up to the pause point.
    recorder.event("robustify_phase", phase="train_protocol", steps=phase1)
    with recorder.timer("robustify/train_protocol_seconds"):
        partial = train_pensieve(
            corpus, video, total_steps=phase1, seed=seed, config=config,
            weights=weights,
        )

    # Fork: the baseline arm finishes training on the unchanged corpus.
    with recorder.timer("robustify/baseline_arm_seconds"):
        baseline = copy.deepcopy(partial)
        baseline = continue_training(baseline, phase2)

    # (2) train an adversary against the frozen partially-trained model.
    recorder.event("robustify_phase", phase="train_adversary",
                   steps=adversary_steps)
    frozen_target = copy.deepcopy(partial.agent)
    with recorder.timer("robustify/train_adversary_seconds"):
        adversary = train_abr_adversary(
            frozen_target,
            video,
            total_steps=adversary_steps,
            seed=seed + 1,
            config=adversary_config,
            weights=weights,
            recorder=recorder,
            n_envs=n_envs,
            vec_backend=vec_backend,
        )

    # (3) generate adversarial traces.
    with recorder.timer("robustify/generate_traces_seconds"):
        rollouts = generate_abr_traces(
            adversary.trainer, adversary.env, n_adversarial_traces
        )
    adv_traces = [r.trace for r in rollouts]
    recorder.record("robustify/adversarial_traces", len(adv_traces))

    # (4) resume the protocol's training on the augmented corpus.
    recorder.event("robustify_phase", phase="resume_augmented", steps=phase2)
    with recorder.timer("robustify/resume_augmented_seconds"):
        robust = continue_training(partial, phase2, new_traces=adv_traces)

    return RobustificationResult(
        baseline=baseline,
        robust=robust,
        adversarial_traces=adv_traces,
        switch_fraction=switch_fraction,
    )
