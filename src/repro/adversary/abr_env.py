"""The adaptive-video-streaming adversary environment (section 3).

Per time step (one video chunk):

1. the adversary chooses the link bandwidth for the next chunk download
   (action in [0.8, 4.8] Mbps -- the policy acts in normalized [-1, 1]
   units which the environment clips and scales, matching the paper's
   note that "exploration and clipping done by PPO will return the
   actions to the acceptable range"),
2. the frozen target protocol picks a bitrate from its own observation,
3. the chunk downloads at the chosen bandwidth, and
4. the adversary is rewarded with Equation 1, where ``r_opt`` is "the
   highest possible QoE over the last 4 network changes", ``r_protocol``
   the QoE the protocol actually obtained over those chunks, and
   ``p_smoothing`` "the absolute difference between the last two chosen
   bandwidths".

The adversary observes "the bitrate chosen by the protocol for the
previous chunk, the client buffer occupancy, the possible sizes of the
next chunk, the number of remaining chunks, and the throughput and
download time for the last downloaded video chunk", stacked over the last
10 steps.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.abr.protocols.base import AbrPolicy
from repro.abr.protocols.optimal import (
    optimal_qoe_exhaustive,
    optimal_qoe_exhaustive_mixed,
)
from repro.abr.qoe import QoEWeights
from repro.abr.simulator import ControlledBandwidth, StreamingSession
from repro.abr.video import Video
from repro.adversary.reward import AdversaryReward, LastActionSmoothing
from repro.obs.metrics import MetricsRecorder
from repro.rl.env import Env
from repro.rl.ppo import PPO, PPOConfig
from repro.rl.spaces import Box
from repro.rl.vec_env import SubprocVecEnv, SyncVecEnv, VecEnv

__all__ = ["AbrAdversaryEnv", "AbrAdversaryResult", "train_abr_adversary"]

#: The paper's ABR adversary action range (section 3).
ABR_BW_LOW_MBPS = 0.8
ABR_BW_HIGH_MBPS = 4.8

#: "The adversary's state is the history of the last 10 observations."
HISTORY_LEN = 10

#: "r_opt is the highest possible QoE over the last 4 network changes."
OPT_WINDOW = 4


class AbrAdversaryEnv(Env):
    """An RL environment whose agent is the network, not the protocol."""

    #: Supported adversarial goals (section 5, "Different adversarial
    #: goals"): the default QoE-regret objective of Equation 1, or a
    #: rebuffering-specific objective ("an ABR adversary could be created
    #: with the specific goal of causing rebuffering").
    GOALS = ("qoe_regret", "rebuffer")

    def __init__(
        self,
        target: AbrPolicy,
        video: Video,
        weights: QoEWeights = QoEWeights(),
        smoothing_weight: float = 1.0,
        bw_low_mbps: float = ABR_BW_LOW_MBPS,
        bw_high_mbps: float = ABR_BW_HIGH_MBPS,
        history_len: int = HISTORY_LEN,
        opt_window: int = OPT_WINDOW,
        goal: str = "qoe_regret",
    ) -> None:
        if bw_low_mbps <= 0 or bw_high_mbps <= bw_low_mbps:
            raise ValueError("need 0 < bw_low < bw_high")
        if goal not in self.GOALS:
            raise ValueError(f"unknown goal {goal!r}; choose from {self.GOALS}")
        self.goal = goal
        self.target = target
        self.video = video
        self.weights = weights
        self.history_len = history_len
        self.opt_window = opt_window
        self.reward_fn = AdversaryReward(smoothing_weight=smoothing_weight)
        self.smoothing = LastActionSmoothing()
        self.bw_box = Box([bw_low_mbps], [bw_high_mbps])
        self.action_space = Box([-1.0], [1.0])
        self._frame_dim = 5 + video.n_bitrates
        dim = self._frame_dim * history_len
        self.observation_space = Box([-1e6] * dim, [1e6] * dim)
        self._session: StreamingSession | None = None
        self._bandwidth = ControlledBandwidth()
        self._frames: list[np.ndarray] = []
        # Per-chunk records needed to evaluate r_opt windows.
        self._chosen_bw: list[float] = []
        self._buffer_before: list[float] = []
        self._prev_quality_before: list[int | None] = []
        self._protocol_qoe: list[float] = []

    # -- featurization ----------------------------------------------------------

    def _frame(self) -> np.ndarray:
        """One observation frame from the target's point of view."""
        assert self._session is not None
        obs = self._session.observation()
        max_bitrate = float(self.video.bitrates_kbps[-1])
        last_bitrate = (
            0.0
            if obs.last_quality is None
            else self.video.bitrates_kbps[obs.last_quality] / max_bitrate
        )
        return np.concatenate(
            [
                [
                    last_bitrate,
                    obs.buffer_seconds / 10.0,
                    obs.chunks_remaining / max(self.video.n_chunks, 1),
                    obs.last_throughput_mbps() / 10.0,
                    obs.last_download_seconds / 10.0,
                ],
                obs.next_chunk_sizes / 1e6,
            ]
        )

    def _stacked(self) -> np.ndarray:
        frames = self._frames[-self.history_len :]
        pad = self.history_len - len(frames)
        if pad:
            frames = [np.zeros(self._frame_dim)] * pad + frames
        return np.concatenate(frames)

    # -- env API -------------------------------------------------------------------

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        self._bandwidth = ControlledBandwidth()
        self._session = StreamingSession(self.video, self._bandwidth, weights=self.weights)
        self.target.reset(self.video)
        self.smoothing.reset()
        self._chosen_bw = []
        self._buffer_before = []
        self._prev_quality_before = []
        self._protocol_qoe = []
        self._frames = [self._frame()]
        return self._stacked()

    def action_to_bandwidth(self, action) -> float:
        """Map a raw (possibly out-of-range) policy action to Mbps."""
        return float(self.bw_box.scale_from_unit(np.asarray(action, dtype=float))[0])

    def _advance_world(self, action):
        """Everything in one step *except* the r_opt search.

        Returns the intermediates the reward needs: ``(bandwidth,
        smoothing, quality, result, start)`` with ``start`` the first chunk
        of the current r_opt window.  Split out so that
        :meth:`batch_step` can run the expensive exhaustive search once
        over a whole batch of envs.
        """
        session = self._session
        if session is None:
            raise RuntimeError("call reset() before step()")
        if session.done:
            raise RuntimeError("episode finished; call reset()")
        bandwidth = self.action_to_bandwidth(action)
        smoothing = self.smoothing(np.array([bandwidth]))
        self._bandwidth.set_mbps(bandwidth)

        self._buffer_before.append(session.buffer_seconds)
        self._prev_quality_before.append(session.prev_quality)
        self._chosen_bw.append(bandwidth)

        quality = self.target.select(session.observation())
        result = session.download_chunk(quality)
        self._protocol_qoe.append(result.qoe)
        self._frames.append(self._frame())

        window = min(self.opt_window, len(self._chosen_bw))
        start = len(self._chosen_bw) - window
        return bandwidth, smoothing, quality, result, start

    def _finish_step(
        self, bandwidth, smoothing, quality, result, start, r_opt
    ) -> tuple[np.ndarray, float, bool, dict]:
        """Assemble (obs, reward, done, info) once ``r_opt`` is known."""
        r_protocol = float(sum(self._protocol_qoe[start:]))
        if self.goal == "rebuffer":
            # Specific goal: cause stalls the optimum would have avoided.
            reward = self.reward_fn(result.rebuffer_seconds, 0.0, smoothing)
        else:
            reward = self.reward_fn(r_opt, r_protocol, smoothing)
        info = {
            "bandwidth_mbps": bandwidth,
            "quality": quality,
            "chunk_qoe": result.qoe,
            "r_opt": r_opt,
            "r_protocol": r_protocol,
            "smoothing": smoothing,
            "rebuffer": result.rebuffer_seconds,
        }
        assert self._session is not None
        return self._stacked(), reward, self._session.done, info

    def step(self, action) -> tuple[np.ndarray, float, bool, dict]:
        bandwidth, smoothing, quality, result, start = self._advance_world(action)
        r_opt, _plan = optimal_qoe_exhaustive(
            self.video,
            start_chunk=start,
            bandwidths_mbps=self._chosen_bw[start:],
            start_buffer_s=self._buffer_before[start],
            prev_quality=self._prev_quality_before[start],
            weights=self.weights,
        )
        return self._finish_step(bandwidth, smoothing, quality, result, start, r_opt)

    @staticmethod
    def batch_step(envs, actions):
        """Step a batch of :class:`AbrAdversaryEnv` in lockstep.

        The :class:`~repro.rl.vec_env.SyncVecEnv` fast path: worlds advance
        serially (cheap), then the exhaustive ``r_opt`` searches -- the
        dominant per-step cost -- run as one vectorized
        :func:`optimal_qoe_exhaustive_mixed` call per distinct
        (video, weights) pair, which itself groups mixed window lengths so
        a staggered batch still searches in as few lattice sweeps as there
        are distinct lengths.  Values are bitwise identical to per-env
        :meth:`step`.
        """
        pre = [env._advance_world(actions[i]) for i, env in enumerate(envs)]
        r_opts: list[float | None] = [None] * len(envs)
        groups: dict[tuple, list[int]] = {}
        for i, env in enumerate(envs):
            groups.setdefault((id(env.video), id(env.weights)), []).append(i)
        for idxs in groups.values():
            first = envs[idxs[0]]
            starts = [pre[i][4] for i in idxs]
            values = optimal_qoe_exhaustive_mixed(
                first.video,
                start_chunks=starts,
                bandwidth_windows=[envs[i]._chosen_bw[s:] for i, s in zip(idxs, starts)],
                start_buffers_s=[envs[i]._buffer_before[s] for i, s in zip(idxs, starts)],
                prev_qualities=[
                    envs[i]._prev_quality_before[s] for i, s in zip(idxs, starts)
                ],
                weights=first.weights,
            )
            for i, value in zip(idxs, values):
                r_opts[i] = float(value)
        return [
            env._finish_step(*p, r_opts[i]) for i, (env, p) in enumerate(zip(envs, pre))
        ]

    # -- conveniences -----------------------------------------------------------------

    def chosen_bandwidths(self) -> list[float]:
        """The bandwidths chosen so far this episode (one per chunk)."""
        return list(self._chosen_bw)

    def batched_vec_env(self, n_envs: int, seed: int | None = None) -> VecEnv:
        """The ``"batched"`` vec backend: this env's world, fully vectorized.

        Returns a :class:`~repro.adversary.batched_env.BatchedAbrVecEnv`
        configured like this env (same target/video/weights/goal/bounds)
        that advances ``n_envs`` worlds per step with one batched target
        call -- rollouts bitwise identical to
        ``SyncVecEnv([this env] * n_envs)``.  This instance itself is not
        consumed; it stays usable as a serial env.
        """
        from repro.adversary.batched_env import BatchedAbrVecEnv

        return BatchedAbrVecEnv(
            self.target,
            self.video,
            n_envs,
            weights=self.weights,
            smoothing_weight=self.reward_fn.smoothing_weight,
            bw_low_mbps=float(self.bw_box.low[0]),
            bw_high_mbps=float(self.bw_box.high[0]),
            history_len=self.history_len,
            opt_window=self.opt_window,
            goal=self.goal,
            seed=seed,
        )


@dataclass
class AbrAdversaryResult:
    """A trained ABR adversary with its environment and learning curve."""

    trainer: PPO
    env: AbrAdversaryEnv
    history: list[dict]


def default_abr_adversary_config() -> PPOConfig:
    """PPO defaults for the ABR adversary.

    The network is the paper's: "two fully connected hidden layers, the
    first with 32 neurons and the second with 16 neurons"; the learning
    rate is constant (the paper's one deviation from stable-baselines
    defaults).
    """
    return PPOConfig(
        n_steps=384,
        batch_size=96,
        n_epochs=4,
        learning_rate=7e-4,
        ent_coef=0.01,
        hidden=(32, 16),
        init_log_std=-0.3,
    )


def train_abr_adversary(
    target: AbrPolicy,
    video: Video,
    total_steps: int = 40_000,
    seed: int = 0,
    config: PPOConfig | None = None,
    smoothing_weight: float = 1.0,
    weights: QoEWeights = QoEWeights(),
    callback: Callable[[PPO, dict], None] | None = None,
    goal: str = "qoe_regret",
    n_envs: int = 1,
    vec_backend: str = "sync",
    recorder: MetricsRecorder | None = None,
) -> AbrAdversaryResult:
    """Train an adversary against a frozen ABR protocol.

    ``n_envs > 1`` collects rollouts from that many parallel env copies
    (each with its own copy of the frozen target, sharing the video);
    ``n_envs == 1`` is the exact historical single-env path.  Either way
    the run is fully determined by ``seed``.  ``vec_backend`` picks the
    collection backend: ``"sync"`` (default) steps the copies in-process
    and exploits the batched ``r_opt`` solver, ``"subproc"`` gives each
    copy a worker process, and ``"batched"`` advances every world inside
    one fully vectorized
    :class:`~repro.adversary.batched_env.BatchedAbrVecEnv` -- a single
    batched target-policy call and one frame-ring scatter per step, the
    fastest choice by a wide margin for NN targets (see
    ``benchmarks/bench_vec_rollout.py``).  All three backends produce the
    same rollouts bit for bit; with subproc/batched the returned ``env``
    is a fresh local instance.  ``recorder`` receives the trainer's
    per-update diagnostics (see :class:`~repro.rl.ppo.PPO`); it never
    alters results.
    """
    cfg = config or default_abr_adversary_config()
    if n_envs != 1 or vec_backend != "sync":
        cfg = replace(cfg, n_envs=n_envs, vec_backend=vec_backend)

    def make_env() -> AbrAdversaryEnv:
        return AbrAdversaryEnv(
            copy.deepcopy(target), video, weights=weights,
            smoothing_weight=smoothing_weight, goal=goal,
        )

    if cfg.n_envs == 1:
        env = AbrAdversaryEnv(
            target, video, weights=weights, smoothing_weight=smoothing_weight,
            goal=goal,
        )
        trainer = PPO(env, cfg, seed=seed, recorder=recorder)
        history = trainer.learn(total_steps, callback=callback)
    else:
        vec: VecEnv
        if cfg.vec_backend == "subproc":
            vec = SubprocVecEnv([make_env] * cfg.n_envs)
            env = make_env()
        elif cfg.vec_backend == "batched":
            env = make_env()
            vec = env.batched_vec_env(cfg.n_envs)
        else:
            vec = SyncVecEnv([make_env] * cfg.n_envs)
            env = vec.envs[0]
        try:
            trainer = PPO(vec, cfg, seed=seed, recorder=recorder)
            history = trainer.learn(total_steps, callback=callback)
        finally:
            # An exception mid-training must not strand forked workers.
            if cfg.vec_backend == "subproc":
                vec.close()
    return AbrAdversaryResult(trainer=trainer, env=env, history=history)
