"""The congestion-control adversary environment (section 4).

Every 30 ms the adversary re-sets the link's (bandwidth, latency, loss)
within the Table 1 ranges:

    bandwidth 6-24 Mbps | latency 15-60 ms | loss rate 0-10%

It observes "current link utilization and current queuing delay" and is
rewarded with ``1 - U - L - 0.01 * S``: utilization ``U`` it failed to
suppress, loss ``L`` it had to inject (discouraging the trivial
drop-everything attack), and an EWMA-based smoothing factor ``S`` over its
bandwidth and latency choices.  In Equation 1 terms, ``r_opt = 1`` (a
well-behaved protocol could drive utilization to ~1 on any conditions in
these ranges) and ``r_protocol = U + L``.

The paper's chosen adversary network is "a simple neural network with only
one hidden layer of 4 neurons" -- see :func:`default_cc_adversary_config`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.adversary.reward import AdversaryReward, EwmaSmoothing
from repro.cc.link import TimeVaryingLink
from repro.obs.metrics import MetricsRecorder
from repro.cc.network import IntervalStats, PacketNetworkEmulator
from repro.cc.protocols.base import Sender
from repro.rl.env import Env
from repro.rl.ppo import PPO, PPOConfig
from repro.rl.spaces import Box
from repro.rl.vec_env import SubprocVecEnv, SyncVecEnv, VecEnv

__all__ = [
    "CC_ACTION_RANGES",
    "CcAdversaryEnv",
    "CcAdversaryResult",
    "train_cc_adversary",
]

#: Table 1: ranges of link parameters produced by the adversary.
CC_ACTION_RANGES = {
    "bandwidth_mbps": (6.0, 24.0),
    "latency_ms": (15.0, 60.0),
    "loss_rate": (0.0, 0.10),
}

INTERVAL_S = 0.030


class CcAdversaryEnv(Env):
    """The adversary controls the link; the sender under test reacts."""

    #: Adversarial goals (section 5): suppress utilization (the paper's
    #: reward, "1 - U - L - 0.01 S"), or maximize self-inflicted
    #: congestion ("finding conditions in which the protocol causes the
    #: highest amount of congestion").
    GOALS = ("utilization", "congestion")

    #: Queuing delay treated as "fully congested" under the congestion goal.
    CONGESTION_REF_DELAY_S = 0.1

    def __init__(
        self,
        sender_factory: Callable[[], Sender],
        episode_intervals: int = 1000,
        interval_s: float = INTERVAL_S,
        smoothing_weight: float = 0.01,
        queue_packets: int = 120,
        seed: int = 0,
        goal: str = "utilization",
    ) -> None:
        if episode_intervals <= 0:
            raise ValueError("episode_intervals must be positive")
        if goal not in self.GOALS:
            raise ValueError(f"unknown goal {goal!r}; choose from {self.GOALS}")
        self.goal = goal
        self.sender_factory = sender_factory
        self.episode_intervals = episode_intervals
        self.interval_s = interval_s
        self.queue_packets = queue_packets
        low = [r[0] for r in CC_ACTION_RANGES.values()]
        high = [r[1] for r in CC_ACTION_RANGES.values()]
        self.param_box = Box(low, high)
        self.action_space = Box([-1.0] * 3, [1.0] * 3)
        self.observation_space = Box([-1e6] * 2, [1e6] * 2)
        self.reward_fn = AdversaryReward(smoothing_weight=smoothing_weight)
        # Smoothing tracks bandwidth and latency only (loss is already
        # priced by the L term).
        ranges = np.array(
            [high[0] - low[0], high[1] - low[1]]
        )
        self.smoothing = EwmaSmoothing(ranges=ranges)
        self._seed = seed
        self._episode = 0
        self.emulator: PacketNetworkEmulator | None = None
        self.sender: Sender | None = None
        self._t = 0
        self._last_stats: IntervalStats | None = None
        self.action_log: list[np.ndarray] = []
        self.condition_log: list[tuple[float, float, float]] = []

    def _observe(self) -> np.ndarray:
        if self._last_stats is None:
            return np.zeros(2)
        return np.array(
            [self._last_stats.utilization, self._last_stats.queue_delay_end_s * 10.0]
        )

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        if seed is not None:
            self._seed = seed
        self._episode += 1
        self.sender = self.sender_factory()
        mid = {k: (lo + hi) / 2.0 for k, (lo, hi) in CC_ACTION_RANGES.items()}
        link = TimeVaryingLink(
            bandwidth_mbps=mid["bandwidth_mbps"],
            latency_ms=mid["latency_ms"],
            loss_rate=0.0,
            queue_packets=self.queue_packets,
        )
        self.emulator = PacketNetworkEmulator(
            self.sender, link, seed=self._seed + self._episode
        )
        self.smoothing.reset()
        self._t = 0
        self._last_stats = None
        self.action_log = []
        self.condition_log = []
        return self._observe()

    def action_to_conditions(self, action) -> tuple[float, float, float]:
        """Map a raw policy action to (bandwidth, latency, loss)."""
        scaled = self.param_box.scale_from_unit(np.asarray(action, dtype=float))
        return float(scaled[0]), float(scaled[1]), float(scaled[2])

    def step(self, action) -> tuple[np.ndarray, float, bool, dict]:
        if self.emulator is None:
            raise RuntimeError("call reset() before step()")
        action = np.asarray(action, dtype=float)
        bandwidth, latency, loss = self.action_to_conditions(action)
        smoothing = self.smoothing(np.array([bandwidth, latency]))
        self.emulator.set_conditions(bandwidth, latency, loss)
        stats = self.emulator.run_interval(self.interval_s)
        self._last_stats = stats
        self._t += 1
        self.action_log.append(action.copy())
        self.condition_log.append((bandwidth, latency, loss))
        if self.goal == "congestion":
            congestion = min(stats.queue_delay_end_s / self.CONGESTION_REF_DELAY_S, 1.0)
            reward = self.reward_fn(congestion, loss, smoothing)
        else:
            # r_opt = 1, r_protocol = U + L (see module docstring).
            reward = self.reward_fn(1.0, stats.utilization + loss, smoothing)
        done = self._t >= self.episode_intervals
        info = {
            "utilization": stats.utilization,
            "throughput_mbps": stats.throughput_mbps,
            "bandwidth_mbps": bandwidth,
            "latency_ms": latency,
            "loss_rate": loss,
            "queue_delay_s": stats.queue_delay_end_s,
            "smoothing": smoothing,
        }
        return self._observe(), reward, done, info


@dataclass
class CcAdversaryResult:
    """A trained CC adversary with its environment and learning curve."""

    trainer: PPO
    env: CcAdversaryEnv
    history: list[dict]


def default_cc_adversary_config() -> PPOConfig:
    """PPO defaults for the CC adversary (one hidden layer of 4 neurons)."""
    return PPOConfig(
        n_steps=512,
        batch_size=128,
        n_epochs=4,
        learning_rate=7e-4,
        ent_coef=0.01,
        hidden=(4,),
        init_log_std=-0.5,
    )


def train_cc_adversary(
    sender_factory: Callable[[], Sender],
    total_steps: int = 60_000,
    seed: int = 0,
    config: PPOConfig | None = None,
    episode_intervals: int = 1000,
    smoothing_weight: float = 0.01,
    callback: Callable[[PPO, dict], None] | None = None,
    goal: str = "utilization",
    n_envs: int = 1,
    vec_backend: str = "sync",
    recorder: MetricsRecorder | None = None,
) -> CcAdversaryResult:
    """Train an adversary against a congestion-control protocol.

    The paper trains "for around 600k action/observation pairs of 30 ms
    each, split into 200 training iterations"; ``total_steps`` scales that
    down for laptop runs.

    ``n_envs > 1`` collects rollouts from that many parallel emulators.
    Each env gets its own base seed spawned from
    ``np.random.SeedSequence(seed)``, so the emulators' loss processes are
    independent across envs yet the whole run is reproducible from
    ``seed`` alone; ``n_envs == 1`` is the exact historical single-env
    path.  ``vec_backend="subproc"`` runs one emulator per worker process
    (:class:`~repro.rl.vec_env.SubprocVecEnv`) -- the right choice here,
    since the CC env's cost is the per-packet event loop itself -- and
    produces the same rollouts as the default in-process backend; the
    workers are shut down when training completes (even when training
    raises) and the returned ``env`` is a fresh local instance with env
    0's seed, ready for rollouts.  ``recorder`` receives the trainer's
    per-update diagnostics (see :class:`~repro.rl.ppo.PPO`).
    """
    cfg = config or default_cc_adversary_config()
    if vec_backend == "batched":
        # The fully vectorized backend is ABR-only: the CC emulator's
        # per-packet event loop has no lockstep batched equivalent.
        raise ValueError(
            "vec_backend='batched' is not supported for the CC adversary; "
            "use 'sync' or 'subproc'"
        )
    if n_envs != 1 or vec_backend != "sync":
        cfg = replace(cfg, n_envs=n_envs, vec_backend=vec_backend)

    def make_env(env_seed: int) -> Callable[[], CcAdversaryEnv]:
        def build() -> CcAdversaryEnv:
            return CcAdversaryEnv(
                sender_factory,
                episode_intervals=episode_intervals,
                smoothing_weight=smoothing_weight,
                seed=env_seed,
                goal=goal,
            )

        return build

    if cfg.n_envs == 1:
        env = CcAdversaryEnv(
            sender_factory,
            episode_intervals=episode_intervals,
            smoothing_weight=smoothing_weight,
            seed=seed,
            goal=goal,
        )
        trainer = PPO(env, cfg, seed=seed, recorder=recorder)
        history = trainer.learn(total_steps, callback=callback)
    else:
        children = np.random.SeedSequence(seed).spawn(cfg.n_envs)
        env_seeds = [int(c.generate_state(1)[0] % (2**31 - 1)) for c in children]
        vec: VecEnv
        if cfg.vec_backend == "subproc":
            vec = SubprocVecEnv([make_env(s) for s in env_seeds])
            env = make_env(env_seeds[0])()
        else:
            vec = SyncVecEnv([make_env(s) for s in env_seeds])
            env = vec.envs[0]
        try:
            trainer = PPO(vec, cfg, seed=seed, recorder=recorder)
            history = trainer.learn(total_steps, callback=callback)
        finally:
            # An exception mid-training must not strand forked workers.
            if cfg.vec_backend == "subproc":
                vec.close()
    return CcAdversaryResult(trainer=trainer, env=env, history=history)
