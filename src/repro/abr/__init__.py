"""Adaptive bitrate (ABR) video streaming substrate.

Re-implements the chunk-level streaming simulator of Pensieve (Mao et al.,
SIGCOMM '17) that the paper used "for training and testing" (section 3),
the linear QoE metric of MPC (Yin et al.), and the ABR protocols the paper
evaluates: buffer-based (BB), robust MPC, Pensieve (RL), plus a rate-based
baseline and the offline optimum used for the adversary's ``r_opt``.
"""

from repro.abr.batched import (
    BatchedSessionEngine,
    SessionSpec,
    resolve_batch_size,
    run_batched_sessions,
)
from repro.abr.qoe import QoEWeights, chunk_qoe, video_qoe
from repro.abr.simulator import ChunkResult, StreamingSession
from repro.abr.video import BITRATES_KBPS, CHUNK_SECONDS, Video

__all__ = [
    "BITRATES_KBPS",
    "BatchedSessionEngine",
    "CHUNK_SECONDS",
    "ChunkResult",
    "QoEWeights",
    "SessionSpec",
    "StreamingSession",
    "Video",
    "chunk_qoe",
    "resolve_batch_size",
    "run_batched_sessions",
    "video_qoe",
]
