"""Chunk-level ABR streaming simulator.

Re-implementation of the Pensieve simulator (``fixed_env.py`` of Mao et
al.), which the paper used "for training and testing" (section 3).  The
mechanics and constants match the original:

- downloads deliver ``PACKET_PAYLOAD_PORTION`` of the raw link rate,
- every chunk pays one ``LINK_RTT`` of latency,
- the client buffer gains 4 s of content per chunk, drains in real time
  during downloads, rebuffers when it empties, and is capped at 60 s
  (the client sleeps in 500 ms quanta when the cap is exceeded).

Bandwidth comes from a :class:`BandwidthSchedule`.  Two implementations:

- :class:`TraceBandwidth` integrates downloads over a time-indexed
  :class:`~repro.traces.trace.Trace` (the benign-corpus case),
- :class:`ControlledBandwidth` holds a constant rate per download, set
  before each chunk (the online adversary case: "adversaries make
  observations every video chunk" and then fix the next conditions).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.abr.qoe import QoEWeights, chunk_qoe
from repro.abr.video import Video
from repro.traces.trace import Trace

__all__ = [
    "AbrObservation",
    "BandwidthSchedule",
    "ChunkIndexedBandwidth",
    "ChunkResult",
    "ControlledBandwidth",
    "SessionResult",
    "StreamingSession",
    "TraceBandwidth",
]

PACKET_PAYLOAD_PORTION = 0.95
LINK_RTT_S = 0.08
BUFFER_CAP_S = 60.0
SLEEP_QUANTUM_S = 0.5


class BandwidthSchedule:
    """Maps a download request to a download time."""

    def download_time(self, size_bytes: float, t_start: float) -> float:
        """Seconds needed to deliver ``size_bytes`` starting at ``t_start``."""
        raise NotImplementedError


class TraceBandwidth(BandwidthSchedule):
    """Integrates downloads across a piecewise-constant trace.

    Traces shorter than the playback loop (Pensieve's behaviour) unless
    ``loop=False``.
    """

    def __init__(self, trace: Trace, loop: bool = True) -> None:
        self.trace = trace
        self.loop = loop

    def download_time(self, size_bytes: float, t_start: float) -> float:
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        remaining = float(size_bytes)
        t = float(t_start)
        elapsed = 0.0
        # Hard cap to avoid infinite loops on pathological all-zero traces.
        max_elapsed = 3600.0
        while remaining > 0:
            if not self.loop and t - self.trace.timestamps[0] >= self.trace.duration:
                # Past the end of a non-looping trace: last rate persists.
                bw = float(self.trace.bandwidths_mbps[-1])
                seg_end = float("inf")
            else:
                seg = self.trace._segment_at(t, self.loop)
                bw = float(self.trace.bandwidths_mbps[seg])
                offset = (t - self.trace.timestamps[0]) % self.trace.duration
                seg_end = self.trace.segment_end(seg)
                seg_end = t + (seg_end - offset)
            rate = bw * 1e6 / 8.0 * PACKET_PAYLOAD_PORTION  # bytes/s
            span = seg_end - t
            if rate <= 1e-9:
                delivered = 0.0
            else:
                delivered = rate * span
            if delivered >= remaining and rate > 1e-9:
                dt = remaining / rate
                elapsed += dt
                return elapsed
            remaining -= delivered
            elapsed += span
            t = seg_end
            if elapsed > max_elapsed:
                raise RuntimeError("download exceeded one hour; trace rate is ~zero")
        return elapsed


class ChunkIndexedBandwidth(BandwidthSchedule):
    """One fixed bandwidth per chunk *download*, regardless of wall time.

    This is the replay semantics of the online ABR adversary: it fixes the
    conditions for the duration of each chunk download, so a recorded
    trace is indexed by chunk, not by wall-clock time.  Each call to
    :meth:`download_time` consumes the next entry.

    ``on_exhausted`` selects what a non-cycling schedule does once every
    entry is consumed: ``"raise"`` (the historical behaviour) fails the
    download, ``"hold"`` lets the final bandwidth persist -- mirroring
    :class:`TraceBandwidth`'s ``loop=False`` semantics, where "the last
    rate persists" past the end of the trace.  This matters for ragged
    replays in which a session outlives its recorded schedule (e.g. a
    batched-engine session whose video has more chunks than the trace
    has entries).
    """

    ON_EXHAUSTED = ("raise", "hold")

    def __init__(
        self, bandwidths_mbps, cycle: bool = False, on_exhausted: str = "raise"
    ) -> None:
        self.bandwidths_mbps = [float(b) for b in np.atleast_1d(bandwidths_mbps)]
        if not self.bandwidths_mbps or any(b <= 0 for b in self.bandwidths_mbps):
            raise ValueError("need a non-empty list of positive bandwidths")
        if on_exhausted not in self.ON_EXHAUSTED:
            raise ValueError(
                f"on_exhausted must be one of {self.ON_EXHAUSTED}, got {on_exhausted!r}"
            )
        self.cycle = cycle
        self.on_exhausted = on_exhausted
        self._index = 0
        self._rates = [
            b * 1e6 / 8.0 * PACKET_PAYLOAD_PORTION for b in self.bandwidths_mbps
        ]

    def download_time(self, size_bytes: float, t_start: float) -> float:
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        index = self._index
        if index >= len(self._rates):
            if self.cycle:
                index = 0
            elif self.on_exhausted == "hold":
                return size_bytes / self._rates[-1]
            else:
                raise RuntimeError(
                    f"chunk-indexed schedule exhausted after {index} downloads"
                )
        self._index = index + 1
        return size_bytes / self._rates[index]


class ControlledBandwidth(BandwidthSchedule):
    """A constant download rate, reset by a controller before each chunk."""

    def __init__(self, initial_mbps: float = 1.0) -> None:
        self.set_mbps(initial_mbps)

    def set_mbps(self, bandwidth_mbps: float) -> None:
        if bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_mbps}")
        self.bandwidth_mbps = float(bandwidth_mbps)

    def download_time(self, size_bytes: float, t_start: float) -> float:
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        rate = self.bandwidth_mbps * 1e6 / 8.0 * PACKET_PAYLOAD_PORTION
        return size_bytes / rate


@dataclass(slots=True)
class ChunkResult:
    """Outcome of downloading one chunk."""

    chunk_index: int
    quality: int
    bitrate_kbps: float
    size_bytes: float
    download_seconds: float
    rebuffer_seconds: float
    sleep_seconds: float
    buffer_seconds: float
    qoe: float
    done: bool


@dataclass
class AbrObservation:
    """What an ABR protocol (and the adversary) sees between chunks.

    Matches the observation list in section 3: "the bitrate chosen by the
    protocol for the previous chunk, the client buffer occupancy, the
    possible sizes of the next chunk, the number of remaining chunks, and
    the throughput and download time for the last downloaded video chunk".
    """

    chunk_index: int
    last_quality: int | None
    buffer_seconds: float
    last_chunk_bytes: float
    last_download_seconds: float
    next_chunk_sizes: np.ndarray
    chunks_remaining: int
    throughput_history: list[tuple[float, float]] = field(default_factory=list)

    def last_throughput_mbps(self) -> float:
        """Measured throughput of the last download (0 before any chunk)."""
        if self.last_download_seconds <= 0:
            return 0.0
        return self.last_chunk_bytes * 8.0 / self.last_download_seconds / 1e6


@dataclass
class SessionResult:
    """Full-playback summary."""

    bitrates_kbps: list[float]
    rebuffer_seconds: list[float]
    download_seconds: list[float]
    buffer_seconds: list[float]
    qualities: list[int]
    qoe_total: float
    qoe_mean: float
    total_rebuffer: float
    chunks: list[ChunkResult]


class StreamingSession:
    """One client streaming one video over one bandwidth schedule."""

    def __init__(
        self,
        video: Video,
        bandwidth: BandwidthSchedule,
        weights: QoEWeights = QoEWeights(),
        history_len: int = 8,
    ) -> None:
        self.video = video
        self.bandwidth = bandwidth
        self.weights = weights
        self.history_len = history_len
        # The default linear QoE inlines to three float ops per chunk;
        # other metrics (or QoEWeights subclasses) go through chunk_qoe.
        self._linear_qoe = type(weights) is QoEWeights and weights.metric == "linear"
        self.reset()

    def reset(self) -> None:
        self.chunk_index = 0
        self.buffer_seconds = 0.0
        self.wall_time = 0.0
        self.prev_quality: int | None = None
        self.last_chunk_bytes = 0.0
        self.last_download_seconds = 0.0
        # Bounded ring of (size_bytes, download_seconds) pairs; a deque
        # with ``maxlen`` drops the oldest entry in O(1) where the old
        # ``list.pop(0)`` shifted the whole window every chunk (the same
        # shape fixed for ``MPC._errors``).  Contents are identical to
        # the list implementation at every step.
        self.throughput_history: deque[tuple[float, float]] = deque(
            maxlen=self.history_len
        )
        self.results: list[ChunkResult] = []

    @property
    def done(self) -> bool:
        return self.chunk_index >= self.video.n_chunks

    def observation(self) -> AbrObservation:
        """The protocol-facing state before the next chunk decision."""
        if self.done:
            next_sizes = np.zeros(self.video.n_bitrates)
        else:
            next_sizes = self.video.chunk_sizes_bytes[self.chunk_index].copy()
        return AbrObservation(
            chunk_index=self.chunk_index,
            last_quality=self.prev_quality,
            buffer_seconds=self.buffer_seconds,
            last_chunk_bytes=self.last_chunk_bytes,
            last_download_seconds=self.last_download_seconds,
            next_chunk_sizes=next_sizes,
            chunks_remaining=self.video.n_chunks - self.chunk_index,
            throughput_history=list(self.throughput_history),
        )

    def download_chunk(self, quality: int) -> ChunkResult:
        """Download the next chunk at ladder index ``quality``."""
        video = self.video
        chunk_index = self.chunk_index
        if chunk_index >= video.n_chunks:
            raise RuntimeError("video already finished")
        if not 0 <= quality < video.n_bitrates:
            raise ValueError(f"quality {quality} outside ladder")
        size = video._sizes_rows[chunk_index][quality]
        delay = self.bandwidth.download_time(size, self.wall_time) + LINK_RTT_S
        # `x if x > 0.0 else 0.0` is bitwise max(x, 0.0) (both keep -0.0).
        rebuffer = delay - self.buffer_seconds
        if rebuffer < 0.0:
            rebuffer = 0.0
        buffer = self.buffer_seconds - delay
        if buffer < 0.0:
            buffer = 0.0
        buffer += video.chunk_seconds
        wall_time = self.wall_time + delay

        sleep = 0.0
        if buffer > BUFFER_CAP_S:
            excess = buffer - BUFFER_CAP_S
            sleep = math.ceil(excess / SLEEP_QUANTUM_S) * SLEEP_QUANTUM_S
            buffer -= sleep
            wall_time += sleep
        self.buffer_seconds = buffer
        self.wall_time = wall_time

        bitrate = video._bitrates_f[quality]
        prev_quality = self.prev_quality
        weights = self.weights
        if self._linear_qoe:
            value = bitrate / 1000.0
            qoe = value - weights.rebuffer_penalty * rebuffer
            if prev_quality is not None:
                qoe -= weights.smooth_penalty * abs(
                    value - video._bitrates_f[prev_quality] / 1000.0
                )
        else:
            prev_bitrate = None if prev_quality is None else video._bitrates_f[prev_quality]
            qoe = chunk_qoe(bitrate, rebuffer, prev_bitrate, weights)

        self.prev_quality = quality
        self.last_chunk_bytes = size
        self.last_download_seconds = delay
        # ``maxlen`` evicts the oldest entry automatically (O(1)).
        self.throughput_history.append((size, delay))
        self.chunk_index = chunk_index + 1

        result = ChunkResult(
            chunk_index,
            quality,
            bitrate,
            size,
            delay,
            rebuffer,
            sleep,
            buffer,
            qoe,
            chunk_index + 1 >= video.n_chunks,
        )
        self.results.append(result)
        return result

    def summary(self) -> SessionResult:
        """Summarize the playback so far."""
        if not self.results:
            raise RuntimeError("no chunks downloaded yet")
        qoes = [r.qoe for r in self.results]
        total = float(sum(qoes))
        return SessionResult(
            bitrates_kbps=[r.bitrate_kbps for r in self.results],
            rebuffer_seconds=[r.rebuffer_seconds for r in self.results],
            download_seconds=[r.download_seconds for r in self.results],
            buffer_seconds=[r.buffer_seconds for r in self.results],
            qualities=[r.quality for r in self.results],
            qoe_total=total,
            qoe_mean=total / len(self.results),
            total_rebuffer=float(sum(r.rebuffer_seconds for r in self.results)),
            chunks=list(self.results),
        )
