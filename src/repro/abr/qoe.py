"""Quality-of-experience metrics for ABR streaming.

The paper uses "the linear QoE used in MPC":

    QoE_lin = sum_i R_i - 4.3 * sum_i T_i - sum_i |R_i - R_{i+1}|

with ``R_i`` the bitrate of chunk ``i`` (in Mbps) and ``T_i`` the rebuffer
time it caused (section 3).  Log and HD variants from the MPC paper are
provided as extensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.abr.video import BITRATES_KBPS

__all__ = ["QoEWeights", "chunk_qoe", "video_qoe"]


@dataclass(frozen=True)
class QoEWeights:
    """Weights of the QoE objective.

    ``rebuffer_penalty`` defaults to 4.3 (the maximum bitrate in Mbps, as
    in MPC's QoE_lin); ``smooth_penalty`` weighs bitrate switches.
    """

    rebuffer_penalty: float = 4.3
    smooth_penalty: float = 1.0
    metric: str = "linear"

    def quality(self, bitrate_kbps: float) -> float:
        """Map a bitrate to its quality score ``q(R)``."""
        if self.metric == "linear":
            return bitrate_kbps / 1000.0
        if self.metric == "log":
            return float(np.log(bitrate_kbps / BITRATES_KBPS[0]))
        if self.metric == "hd":
            # The MPC paper's HD reward: low bitrates are worth little,
            # HD bitrates disproportionately more.
            table = dict(zip(BITRATES_KBPS, (1.0, 2.0, 3.0, 12.0, 15.0, 20.0)))
            if bitrate_kbps not in table:
                raise ValueError(f"HD metric requires ladder bitrates, got {bitrate_kbps}")
            return table[bitrate_kbps]
        raise ValueError(f"unknown QoE metric {self.metric!r}")


def chunk_qoe(
    bitrate_kbps: float,
    rebuffer_seconds: float,
    prev_bitrate_kbps: float | None,
    weights: QoEWeights = QoEWeights(),
) -> float:
    """QoE contribution of a single chunk.

    The smoothness term compares against the previous chunk's bitrate and
    is zero for the first chunk (``prev_bitrate_kbps is None``).
    """
    if rebuffer_seconds < 0:
        raise ValueError("rebuffer time cannot be negative")
    value = weights.quality(bitrate_kbps) - weights.rebuffer_penalty * rebuffer_seconds
    if prev_bitrate_kbps is not None:
        value -= weights.smooth_penalty * abs(
            weights.quality(bitrate_kbps) - weights.quality(prev_bitrate_kbps)
        )
    return value


def video_qoe(
    bitrates_kbps: Sequence[float],
    rebuffer_seconds: Sequence[float],
    weights: QoEWeights = QoEWeights(),
) -> tuple[float, float]:
    """Total and per-chunk-mean QoE of a whole playback.

    Returns ``(total, mean_per_chunk)``.  Figure 1 of the paper reports the
    per-video QoE normalized per chunk, which is the second value.
    """
    bitrates = list(bitrates_kbps)
    rebuffers = list(rebuffer_seconds)
    if len(bitrates) != len(rebuffers):
        raise ValueError("bitrates and rebuffers must have equal length")
    if not bitrates:
        raise ValueError("empty playback")
    total = 0.0
    prev = None
    for bitrate, rebuf in zip(bitrates, rebuffers):
        total += chunk_qoe(bitrate, rebuf, prev, weights)
        prev = bitrate
    return total, total / len(bitrates)
