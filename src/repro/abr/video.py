"""The video model: a bitrate ladder and per-chunk sizes.

Pensieve's evaluation video (EnvivioDash3) has 48 four-second chunks
encoded at {300, 750, 1200, 1850, 2850, 4300} kbps.  Chunk sizes deviate
from ``bitrate * duration`` because of variable-bitrate encoding; we model
that with per-chunk log-normal jitter, keeping sizes monotone across the
ladder within each chunk (a property real encodes satisfy and on which
ABR lookahead logic relies).
"""

from __future__ import annotations

import numpy as np

__all__ = ["BITRATES_KBPS", "CHUNK_SECONDS", "Video"]

#: The Pensieve bitrate ladder (kbps).
BITRATES_KBPS: tuple[int, ...] = (300, 750, 1200, 1850, 2850, 4300)

#: Chunk duration in seconds.
CHUNK_SECONDS: float = 4.0


class Video:
    """A fixed-ladder video with known per-chunk sizes.

    Parameters
    ----------
    chunk_sizes_bytes:
        Array ``(n_chunks, n_bitrates)`` of chunk sizes in bytes, ascending
        in the bitrate dimension.
    bitrates_kbps:
        The bitrate ladder; must match the second dimension.
    chunk_seconds:
        Playback duration of each chunk.
    """

    def __init__(
        self,
        chunk_sizes_bytes: np.ndarray,
        bitrates_kbps: tuple[int, ...] = BITRATES_KBPS,
        chunk_seconds: float = CHUNK_SECONDS,
    ) -> None:
        sizes = np.asarray(chunk_sizes_bytes, dtype=float)
        if sizes.ndim != 2 or sizes.shape[1] != len(bitrates_kbps):
            raise ValueError(
                f"chunk_sizes must be (n_chunks, {len(bitrates_kbps)}), got {sizes.shape}"
            )
        if np.any(sizes <= 0):
            raise ValueError("chunk sizes must be positive")
        if np.any(np.diff(sizes, axis=1) < 0):
            raise ValueError("chunk sizes must be non-decreasing across the ladder")
        if list(bitrates_kbps) != sorted(bitrates_kbps):
            raise ValueError("bitrate ladder must be ascending")
        self.chunk_sizes_bytes = sizes
        self.bitrates_kbps = tuple(int(b) for b in bitrates_kbps)
        self.chunk_seconds = float(chunk_seconds)
        # Plain attributes and plain-float mirrors: chunk downloads hit
        # these once per chunk, and list indexing beats ndarray scalar
        # indexing by ~5x on the simulator's per-chunk hot path.
        self.n_chunks: int = sizes.shape[0]
        self.n_bitrates: int = len(self.bitrates_kbps)
        self._sizes_rows: list[list[float]] = sizes.tolist()
        self._bitrates_f: tuple[float, ...] = tuple(float(b) for b in self.bitrates_kbps)

    @property
    def duration(self) -> float:
        return self.n_chunks * self.chunk_seconds

    def chunk_size(self, chunk_index: int, quality: int) -> float:
        """Size in bytes of chunk ``chunk_index`` at ladder index ``quality``."""
        if not 0 <= chunk_index < self.n_chunks:
            raise IndexError(f"chunk index {chunk_index} out of range")
        if not 0 <= quality < self.n_bitrates:
            raise IndexError(f"quality {quality} out of range")
        return self._sizes_rows[chunk_index][quality]

    def bitrate_mbps(self, quality: int) -> float:
        return self.bitrates_kbps[quality] / 1000.0

    @classmethod
    def synthetic(
        cls,
        n_chunks: int = 48,
        seed: int = 0,
        bitrates_kbps: tuple[int, ...] = BITRATES_KBPS,
        chunk_seconds: float = CHUNK_SECONDS,
        size_jitter_sigma: float = 0.12,
    ) -> "Video":
        """Generate a VBR-like video with log-normal per-chunk size jitter."""
        if n_chunks <= 0:
            raise ValueError("n_chunks must be positive")
        rng = np.random.default_rng(seed)
        nominal = np.asarray(bitrates_kbps, dtype=float) * 1000.0 / 8.0 * chunk_seconds
        jitter = rng.lognormal(mean=-0.5 * size_jitter_sigma**2, sigma=size_jitter_sigma,
                               size=(n_chunks, len(bitrates_kbps)))
        sizes = nominal[None, :] * jitter
        # Restore within-chunk monotonicity that independent jitter can break.
        sizes = np.sort(sizes, axis=1)
        return cls(sizes, bitrates_kbps=bitrates_kbps, chunk_seconds=chunk_seconds)
