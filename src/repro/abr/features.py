"""Observation featurization shared by Pensieve training and inference.

Mirrors Pensieve's state (Mao et al., section 5.1): last chunk's bitrate,
current buffer, an 8-deep throughput and download-time history, the sizes
of the next chunk at every ladder rate, and the number of chunks left --
flattened into one vector for the MLP policy.
"""

from __future__ import annotations

import numpy as np

from repro.abr.simulator import AbrObservation
from repro.abr.video import Video

__all__ = ["N_HISTORY", "build_features", "feature_dim"]

#: History depth (Pensieve uses the past 8 chunks).
N_HISTORY = 8

_BUFFER_NORM_S = 10.0
_TIME_NORM_S = 10.0
_SIZE_NORM_BYTES = 1e6
_THROUGHPUT_NORM_MBPS = 10.0


def feature_dim(n_bitrates: int) -> int:
    """Length of the flattened feature vector."""
    return 2 + 2 * N_HISTORY + n_bitrates + 1


def build_features(observation: AbrObservation, video: Video) -> np.ndarray:
    """Flatten an :class:`AbrObservation` into the Pensieve feature vector."""
    max_bitrate = float(video.bitrates_kbps[-1])
    last_bitrate = (
        0.0
        if observation.last_quality is None
        else video.bitrates_kbps[observation.last_quality] / max_bitrate
    )
    throughputs = np.zeros(N_HISTORY)
    delays = np.zeros(N_HISTORY)
    # ``StreamingSession`` keeps a bounded deque; deques don't support
    # slicing, so materialise to a list first when needed.
    raw_history = observation.throughput_history
    if not isinstance(raw_history, list):
        raw_history = list(raw_history)
    history = raw_history[-N_HISTORY:]
    for slot, (size, dl) in enumerate(reversed(history)):
        if dl > 0:
            throughputs[slot] = (size * 8.0 / dl / 1e6) / _THROUGHPUT_NORM_MBPS
            delays[slot] = dl / _TIME_NORM_S
    features = np.concatenate(
        [
            [last_bitrate, observation.buffer_seconds / _BUFFER_NORM_S],
            throughputs,
            delays,
            observation.next_chunk_sizes / _SIZE_NORM_BYTES,
            [observation.chunks_remaining / max(video.n_chunks, 1)],
        ]
    )
    return features
