"""Batched ABR session evaluation: K sessions advanced in lockstep.

The serial evaluation path (:func:`repro.abr.protocols.run_session`) plays
one video at a time: observe, select, download, repeat.  This module runs
``K`` independent :class:`~repro.abr.simulator.StreamingSession`s
side-by-side and serves all their bitrate decisions with **one** batched
policy evaluation per chunk round -- a single flat-NN forward for
Pensieve, one vectorized combo scan per (video, horizon) group for MPC,
and one broadcast rule evaluation for BB/BOLA.  Sessions retire
independently as they finish and free lanes are refilled from the work
queue, so ragged batches (sessions with different chunk counts) keep all
lanes busy.

Equivalence contract
--------------------

The simulator math is untouched: every lane owns a private
:class:`StreamingSession` and chunks are downloaded through the ordinary
``download_chunk``.  A batched run therefore produces bitwise-identical
:class:`~repro.abr.simulator.SessionResult`s to the serial path whenever
the *action sequence* is identical, and the adapters below guarantee
that:

- BB, BOLA and MPC are replayed with elementwise/broadcast numpy ops in
  exactly the serial op order, so every comparison and argmax sees
  bitwise-identical floats regardless of batch width -- identity **by
  construction**.
- Pensieve's batched ``(K, d)`` forward is *not* bitwise equal to K
  single-row forwards (BLAS GEMM results depend on the batch dimension
  in the last ulp), so its identity rests on **argmax stability**: the
  logit gaps of a trained policy are many orders of magnitude above ulp
  noise.  ``tests/test_batched_identity.py`` pins this empirically for
  every batch width the suite exercises; at ``batch_size == 1`` the
  forward is the exact serial shape and identity is again bitwise by
  construction.

RNG-stream layout
-----------------

Each session gets its own ``np.random.Generator`` derived as
``SeedSequence(engine_seed, spawn_key=(session_index,))`` (or from
``SessionSpec.seed`` when set).  The stream depends only on the session's
identity -- never on batch width, lane placement, or which sessions it
shares a round with -- so results are invariant to batch composition and
per-session streams cannot cross-contaminate.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field

import numpy as np

from repro.abr.features import N_HISTORY, feature_dim
from repro.abr.protocols.base import AbrPolicy
from repro.abr.protocols.bola import Bola
from repro.abr.protocols.buffer_based import BufferBased
from repro.abr.protocols.mpc import MPC
from repro.abr.protocols.pensieve import PensieveAgent
from repro.abr.qoe import QoEWeights
from repro.abr.simulator import (
    LINK_RTT_S,
    PACKET_PAYLOAD_PORTION,
    BandwidthSchedule,
    ChunkIndexedBandwidth,
    ChunkResult,
    SessionResult,
    StreamingSession,
    TraceBandwidth,
)
from repro.abr.video import Video
from repro.obs import NULL_RECORDER, MetricsRecorder
from repro.traces.trace import Trace

__all__ = [
    "BatchedAbrPolicy",
    "BatchedBola",
    "BatchedBufferBased",
    "BatchedMPC",
    "BatchedPensieve",
    "BatchedSessionEngine",
    "GenericBatched",
    "SessionSpec",
    "as_batched",
    "resolve_batch_size",
    "run_batched_sessions",
]

_BATCH_ENV = "REPRO_BATCH_SIZE"


def resolve_batch_size(batch_size: int | None) -> int:
    """Resolve a batch-size setting against ``$REPRO_BATCH_SIZE``.

    ``None`` defers to the environment variable; absent both, the result
    is 0, which every caller treats as "use the serial path exactly as
    before".
    """
    from_env = False
    if batch_size is None:
        raw = os.environ.get(_BATCH_ENV, "").strip()
        if not raw:
            return 0
        try:
            batch_size = int(raw)
        except ValueError as exc:
            raise ValueError(f"${_BATCH_ENV} must be an integer, got {raw!r}") from exc
        from_env = True
    batch_size = int(batch_size)
    if batch_size < 0:
        # Name the setting's origin: a bad environment variable should
        # point at the environment variable, not at some callsite arg.
        source = f"${_BATCH_ENV}" if from_env else "batch size"
        raise ValueError(f"{source} must be >= 0, got {batch_size}")
    return batch_size


@dataclass
class SessionSpec:
    """One session of work for the batched engine.

    Mirrors the arguments of :func:`~repro.abr.protocols.run_session`:
    ``bandwidth`` may be a :class:`Trace` (wrapped exactly as the serial
    runner wraps it, honouring ``chunk_indexed``) or a ready
    :class:`BandwidthSchedule` (which must not be shared between specs --
    schedules are stateful).  ``seed`` optionally overrides the engine's
    derived per-session RNG stream.
    """

    video: Video
    bandwidth: Trace | BandwidthSchedule
    chunk_indexed: bool = False
    weights: QoEWeights = field(default_factory=QoEWeights)
    seed: int | None = None

    def make_schedule(self) -> BandwidthSchedule:
        if isinstance(self.bandwidth, Trace):
            if self.chunk_indexed:
                return ChunkIndexedBandwidth(self.bandwidth.bandwidths_mbps, cycle=True)
            return TraceBandwidth(self.bandwidth)
        return self.bandwidth


# ---------------------------------------------------------------------------
# Adapter interface
# ---------------------------------------------------------------------------


class BatchedAbrPolicy:
    """Serves bitrate decisions for many lockstep sessions at once.

    Lanes are stable integer slots ``0..K-1``; the engine calls
    :meth:`start` when a session enters a lane, :meth:`select` once per
    chunk round with the currently active lanes, :meth:`observe` after
    every download (so adapters can track state incrementally), and
    :meth:`finish` when a session retires.
    """

    def start(self, lane: int, session: StreamingSession, rng: np.random.Generator) -> None:
        """A new session entered ``lane``."""

    def select(
        self, lanes: list[int], sessions: list[StreamingSession]
    ) -> np.ndarray | list[int]:
        """Return one ladder index per active lane (aligned with ``lanes``)."""
        raise NotImplementedError

    def observe(self, lane: int, session: StreamingSession, result: ChunkResult) -> None:
        """``lane``'s session downloaded a chunk."""

    def observe_round(
        self,
        lanes: list[int],
        sessions: list[StreamingSession],
        results: list[ChunkResult],
    ) -> None:
        """One whole chunk round downloaded; adapters may vectorize this."""
        for lane, session, result in zip(lanes, sessions, results):
            self.observe(lane, session, result)

    def finish(self, lane: int) -> None:
        """``lane``'s session completed; the slot may be reused."""


class GenericBatched(BatchedAbrPolicy):
    """Fallback adapter: an independent deep-copied policy per lane.

    Works for any :class:`AbrPolicy`; each lane replays the exact serial
    code path, so results are bitwise identical by construction (no
    vectorization benefit).
    """

    def __init__(self, prototype: AbrPolicy) -> None:
        self._prototype = prototype
        self._clones: dict[int, AbrPolicy] = {}

    def start(self, lane: int, session: StreamingSession, rng: np.random.Generator) -> None:
        clone = copy.deepcopy(self._prototype)
        clone.reset(session.video)
        self._clones[lane] = clone

    def select(self, lanes, sessions):
        return [
            int(self._clones[lane].select(session.observation()))
            for lane, session in zip(lanes, sessions)
        ]

    def finish(self, lane: int) -> None:
        self._clones.pop(lane, None)


class BatchedBufferBased(BatchedAbrPolicy):
    """Vectorized BBA-0: the rule evaluated for all lanes in one sweep.

    Elementwise float64 arithmetic is shape-independent, so each lane's
    comparison/floor sees bytes identical to the serial scalar rule.
    """

    def __init__(self, policy: BufferBased) -> None:
        self.reservoir_s = policy.reservoir_s
        self.cushion_s = policy.cushion_s
        self._n: dict[int, int] = {}

    def start(self, lane: int, session: StreamingSession, rng: np.random.Generator) -> None:
        self._n[lane] = session.video.n_bitrates

    def select(self, lanes, sessions):
        buffers = np.array([s.buffer_seconds for s in sessions])
        n = np.array([self._n[lane] for lane in lanes])
        frac = (buffers - self.reservoir_s) / self.cushion_s
        mid = np.floor(frac * (n - 1)).astype(int)
        return np.where(
            buffers < self.reservoir_s,
            0,
            np.where(buffers >= self.reservoir_s + self.cushion_s, n - 1, mid),
        )

    def finish(self, lane: int) -> None:
        self._n.pop(lane, None)


class BatchedBola(BatchedAbrPolicy):
    """Vectorized BOLA: one broadcast score matrix per video group.

    Serial BOLA computes ``(v*(u+gamma_p) - Q) / s`` with a scalar buffer
    level; broadcasting the same expression over a ``(L, n)`` grid applies
    the identical op sequence per element, and a row-wise argmax matches
    the serial 1-D argmax (same first-max tie break).
    """

    def __init__(self, policy: Bola) -> None:
        self.buffer_target_s = policy.buffer_target_s
        self.gamma_p = policy.gamma_p
        #: lane -> (video-identity key, chunk_seconds)
        self._lane_video: dict[int, tuple[int, float]] = {}
        #: video-identity key -> (v*(u+gamma_p), relative sizes)
        self._tables: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def start(self, lane: int, session: StreamingSession, rng: np.random.Generator) -> None:
        video = session.video
        key = id(video)
        if key not in self._tables:
            bitrates = np.asarray(video.bitrates_kbps, dtype=float)
            utilities = np.log(bitrates / bitrates[0])
            q_target = self.buffer_target_s / video.chunk_seconds
            v = q_target / (utilities[-1] + self.gamma_p)
            relative_sizes = bitrates / bitrates[0]
            self._tables[key] = (v * (utilities + self.gamma_p), relative_sizes)
        self._lane_video[lane] = (key, video.chunk_seconds)

    def select(self, lanes, sessions):
        actions = np.zeros(len(lanes), dtype=int)
        groups: dict[int, list[int]] = {}
        for pos, lane in enumerate(lanes):
            groups.setdefault(self._lane_video[lane][0], []).append(pos)
        buffers = np.array([s.buffer_seconds for s in sessions])
        for key, positions in groups.items():
            vu, relative_sizes = self._tables[key]
            chunk_seconds = self._lane_video[lanes[positions[0]]][1]
            buffer_chunks = buffers[positions] / chunk_seconds
            scores = (vu[None, :] - buffer_chunks[:, None]) / relative_sizes[None, :]
            actions[positions] = np.argmax(scores, axis=1)
        return actions

    def finish(self, lane: int) -> None:
        self._lane_video.pop(lane, None)


class BatchedMPC(BatchedAbrPolicy):
    """Vectorized robust MPC.

    Throughput prediction is sequential per-lane state (error window,
    last prediction) and cheap, so each lane keeps a private MPC clone
    and runs the *serial* ``_predict_throughput``.  The expensive part --
    the exhaustive ``6^h`` plan scan -- is batched: lanes sharing a
    (video, lookahead-steps) pair are scored in one ``(L, n_combos)``
    sweep whose elementwise ops replay the serial scan's exact order, so
    per-lane rows are bitwise identical to the serial arrays.
    """

    def __init__(self, policy: MPC) -> None:
        self._prototype = policy
        self._clones: dict[int, MPC] = {}
        #: shared plan tables, keyed like MPC._combos_key
        self._combos: dict[tuple[int, int], dict[int, np.ndarray]] = {}

    def start(self, lane: int, session: StreamingSession, rng: np.random.Generator) -> None:
        p = self._prototype
        clone = MPC(horizon=p.horizon, window=p.window, robust=p.robust, weights=p.weights)
        key = (session.video.n_bitrates, p.horizon)
        if key in self._combos:
            # Plan tables depend only on (n_bitrates, horizon): share them
            # across lanes instead of rebuilding 6^h combo arrays per lane.
            clone._combos = self._combos[key]
            clone._combos_key = key
        clone.reset(session.video)
        self._combos[key] = clone._combos
        self._clones[lane] = clone

    def select(self, lanes, sessions):
        actions = np.zeros(len(lanes), dtype=int)
        # (video identity, steps) -> list of (position, clone, observation, rate)
        groups: dict[tuple[int, int], list[tuple]] = {}
        for pos, (lane, session) in enumerate(zip(lanes, sessions)):
            clone = self._clones[lane]
            obs = session.observation()
            predicted = clone._predict_throughput(obs)
            if predicted <= 0:
                actions[pos] = 0  # serial: no information yet, start conservative
                continue
            steps = min(clone.horizon, obs.chunks_remaining)
            rate = predicted * 1e6 / 8.0 * PACKET_PAYLOAD_PORTION
            groups.setdefault((id(session.video), steps), []).append(
                (pos, clone, obs, rate)
            )
        for (_, steps), members in groups.items():
            self._scan_group(steps, members, actions)
        return actions

    #: Lane-block size for the plan scan.  At horizon 4 the sweep is 1296
    #: combos wide, so a full ``(L, 1296)`` pass streams several MB of
    #: float64 temporaries per op once L grows -- the uncached batched-MPC
    #: regression measured against serial in the serving benchmark.
    #: Scanning a few lanes at a time keeps every temporary ~100 KB, i.e.
    #: L2-resident across the whole op chain.  Rows are independent, so
    #: tiling changes nothing at the bit level.
    _SCAN_LANE_TILE = 8

    @staticmethod
    def _scan_group(steps: int, members: list[tuple], actions: np.ndarray) -> None:
        clone0 = members[0][1]
        video = clone0._video
        combos = clone0._combos[steps]
        qualities = clone0._qualities
        weights = clone0.weights
        n = combos.shape[0]
        m = len(members)

        rate = np.array([rate for _, _, _, rate in members])
        chunks = np.array([obs.chunk_index for _, _, obs, _ in members])
        buffers0 = np.array([obs.buffer_seconds for _, _, obs, _ in members])
        prev0 = np.array(
            [
                0.0 if obs.last_quality is None else qualities[obs.last_quality]
                for _, _, obs, _ in members
            ]
        )
        first = np.array([obs.last_quality is None for _, _, obs, _ in members])
        # Per-step rows that do not depend on the lane: the chosen quality
        # per combo and (past the first step) the smoothing penalty --
        # hoisted once, shared by every lane tile.
        quality_rows = [qualities[combos[:, k]] for k in range(steps)]
        penalty_rows: list[np.ndarray | None] = [None]
        for k in range(1, steps):
            penalty_rows.append(
                (weights.smooth_penalty * np.abs(quality_rows[k] - quality_rows[k - 1]))[None, :]
            )

        best = np.empty(m, dtype=int)
        tile = BatchedMPC._SCAN_LANE_TILE
        for t0 in range(0, m, tile):
            t1 = min(t0 + tile, m)
            buffer = np.repeat(buffers0[t0:t1, None], n, axis=1)
            rate_t = rate[t0:t1, None]
            chunks_t = chunks[t0:t1]
            total = np.zeros((t1 - t0, n))
            for k in range(steps):
                sizes = video.chunk_sizes_bytes[(chunks_t + k)[:, None], combos[None, :, k]]
                download = sizes / rate_t + LINK_RTT_S
                rebuffer = np.maximum(download - buffer, 0.0)
                buffer = np.maximum(buffer - download, 0.0) + video.chunk_seconds
                quality = quality_rows[k]
                total += quality[None, :] - weights.rebuffer_penalty * rebuffer
                if k == 0:
                    smooth = ~first[t0:t1]
                    if smooth.any():
                        total[smooth] -= weights.smooth_penalty * np.abs(
                            quality[None, :] - prev0[t0:t1][smooth, None]
                        )
                else:
                    total -= penalty_rows[k]
            best[t0:t1] = np.argmax(total, axis=1)
        for i, (pos, _, _, _) in enumerate(members):
            actions[pos] = combos[best[i], 0]

    def finish(self, lane: int) -> None:
        self._clones.pop(lane, None)


class BatchedPensieve(BatchedAbrPolicy):
    """Pensieve served by one batched policy-net forward per chunk round.

    The engine's per-download :meth:`observe` hook keeps a ``(K, d)``
    feature matrix incrementally up to date (each slot written with the
    exact :func:`~repro.abr.features.build_features` formula, then
    shifted byte-for-byte), so a round costs one normalize + one MLP
    forward + one argmax for all lanes -- no per-lane observation
    dataclasses, no value-net or log-prob work (serial ``act`` discards
    both).

    See the module docstring for the (documented, test-pinned) argmax
    -stability caveat on batched GEMM.  Stochastic selection draws each
    lane's Gumbel noise from that lane's private RNG stream with the same
    ``(1, n)`` shape the serial agent uses, so the consumed stream is
    batch-composition independent.
    """

    _T0 = 2  # throughput history slots start
    _D0 = 2 + N_HISTORY  # delay history slots start
    _S0 = 2 + 2 * N_HISTORY  # next-chunk-size slots start

    def __init__(
        self,
        policy,
        obs_rms=None,
        deterministic: bool = True,
    ) -> None:
        self.policy = policy
        self.obs_rms = obs_rms
        self.deterministic = deterministic
        self._features: np.ndarray | None = None
        #: lane -> (video, max bitrate, rng stream, ladder as an int array)
        self._lane_info: dict[
            int, tuple[Video, float, np.random.Generator, np.ndarray]
        ] = {}

    @classmethod
    def from_agent(cls, agent: PensieveAgent) -> "BatchedPensieve":
        return cls(agent.policy, obs_rms=agent.obs_rms, deterministic=agent.deterministic)

    def start(self, lane: int, session: StreamingSession, rng: np.random.Generator) -> None:
        video = session.video
        d = feature_dim(video.n_bitrates)
        if d != self.policy.obs_dim:
            raise ValueError(
                f"video has {video.n_bitrates} bitrates -> feature dim {d}, "
                f"but the policy expects obs_dim {self.policy.obs_dim}"
            )
        if self._features is None:
            self._features = np.zeros((lane + 1, d))
        elif lane >= self._features.shape[0]:
            grown = np.zeros((lane + 1, d))
            grown[: self._features.shape[0]] = self._features
            self._features = grown
        row = self._features[lane]
        row[:] = 0.0
        row[self._S0 : self._S0 + video.n_bitrates] = video.chunk_sizes_bytes[0] / 1e6
        row[self._S0 + video.n_bitrates] = video.n_chunks / max(video.n_chunks, 1)
        self._lane_info[lane] = (
            video,
            float(video.bitrates_kbps[-1]),
            rng,
            np.asarray(video.bitrates_kbps),
        )

    def observe(self, lane: int, session: StreamingSession, result: ChunkResult) -> None:
        video, max_bitrate = self._lane_info[lane][:2]
        row = self._features[lane]
        n = video.n_bitrates
        size, dl = result.size_bytes, result.download_seconds
        row[0] = video.bitrates_kbps[result.quality] / max_bitrate
        row[1] = session.buffer_seconds / 10.0
        # History slots are newest-first: shift, then write slot 0 with
        # the exact build_features formulas.
        t0, d0, s0 = self._T0, self._D0, self._S0
        row[t0 + 1 : t0 + N_HISTORY] = row[t0 : t0 + N_HISTORY - 1]
        row[d0 + 1 : d0 + N_HISTORY] = row[d0 : d0 + N_HISTORY - 1]
        if dl > 0:
            row[t0] = (size * 8.0 / dl / 1e6) / 10.0
            row[d0] = dl / 10.0
        else:
            row[t0] = 0.0
            row[d0] = 0.0
        if session.done:
            row[s0 : s0 + n] = 0.0
        else:
            row[s0 : s0 + n] = video.chunk_sizes_bytes[session.chunk_index] / 1e6
        row[s0 + n] = (video.n_chunks - session.chunk_index) / max(video.n_chunks, 1)

    def observe_round(self, lanes, sessions, results):
        """Vectorized :meth:`observe`: one fancy-indexed update per round.

        Elementwise float64 ops in the same order as the scalar formulas
        are bitwise-identical per element, so this is pure bookkeeping
        speed -- the per-lane Python observe dominates the batched
        engine's cost otherwise.  ``download_chunk`` delays always
        include ``LINK_RTT_S``, so the serial ``dl > 0`` guard cannot
        fire here and the divisions are safe.
        """
        m = len(lanes)
        if m == 1:
            self.observe(lanes[0], sessions[0], results[0])
            return
        info = self._lane_info
        video, max_bitrate, _, ladder = info[lanes[0]]
        for lane in lanes[1:]:
            if info[lane][0] is not video:
                self._observe_round_mixed(lanes, sessions, results)
                return
        # Fast path: every lane plays the same video (the corpus-sweep
        # case).  An observe rewrites every feature slot, so the round
        # builds one fresh (m, d) block and scatters it with a single
        # advanced-index assignment -- two gathers (the history shifts,
        # which read the pre-round rows) and one scatter total.
        n = video.n_bitrates
        n_chunks = video.n_chunks
        quality = np.asarray([result.quality for result in results])
        indices = np.asarray([session.chunk_index for session in sessions])
        live = indices < n_chunks
        # The fancy gather copies, so zeroing retired rows is safe.
        next_sizes = video.chunk_sizes_bytes[np.where(live, indices, 0)]
        if not live.all():
            next_sizes[~live] = 0.0
        features = self._features
        rows = np.asarray(lanes)
        t0, d0, s0 = self._T0, self._D0, self._S0
        block = np.empty((m, features.shape[1]))
        block[:, t0 + 1 : t0 + N_HISTORY] = features[rows, t0 : t0 + N_HISTORY - 1]
        block[:, d0 + 1 : d0 + N_HISTORY] = features[rows, d0 : d0 + N_HISTORY - 1]
        block[:, 0] = ladder[quality] / max_bitrate
        block[:, 1] = np.asarray([s.buffer_seconds for s in sessions]) / 10.0
        delays = np.asarray([result.download_seconds for result in results])
        sizes = np.asarray([result.size_bytes for result in results])
        block[:, t0] = (sizes * 8.0 / delays / 1e6) / 10.0
        block[:, d0] = delays / 10.0
        block[:, s0 : s0 + n] = next_sizes / 1e6
        block[:, s0 + n] = (n_chunks - indices) / max(n_chunks, 1)
        features[rows] = block

    def _observe_round_mixed(self, lanes, sessions, results):
        """Vectorized update for lanes playing different videos."""
        m = len(lanes)
        info = self._lane_info
        n = sessions[0].video.n_bitrates  # uniform: start() pins obs_dim
        bitrates = []
        max_bitrates = []
        buffers = []
        sizes = []
        delays = []
        remaining = []
        totals = []
        next_sizes = np.zeros((m, n))
        for i, (lane, session, result) in enumerate(zip(lanes, sessions, results)):
            video, max_bitrate = info[lane][:2]
            chunk_index = session.chunk_index
            bitrates.append(video.bitrates_kbps[result.quality])
            max_bitrates.append(max_bitrate)
            buffers.append(session.buffer_seconds)
            sizes.append(result.size_bytes)
            delays.append(result.download_seconds)
            if chunk_index < video.n_chunks:
                next_sizes[i] = video.chunk_sizes_bytes[chunk_index]
            remaining.append(video.n_chunks - chunk_index)
            totals.append(max(video.n_chunks, 1))
        features = self._features
        rows = np.asarray(lanes)
        t0, d0, s0 = self._T0, self._D0, self._S0
        features[rows, t0 + 1 : t0 + N_HISTORY] = features[rows, t0 : t0 + N_HISTORY - 1]
        features[rows, d0 + 1 : d0 + N_HISTORY] = features[rows, d0 : d0 + N_HISTORY - 1]
        features[rows, 0] = np.asarray(bitrates) / np.asarray(max_bitrates)
        features[rows, 1] = np.asarray(buffers) / 10.0
        delays_arr = np.asarray(delays)
        features[rows, t0] = (np.asarray(sizes) * 8.0 / delays_arr / 1e6) / 10.0
        features[rows, d0] = delays_arr / 10.0
        features[rows, s0 : s0 + n] = next_sizes / 1e6
        features[rows, s0 + n] = np.asarray(remaining) / np.asarray(totals)

    def select(self, lanes, sessions):
        features = self._features[lanes]
        if self.obs_rms is not None:
            features = self.obs_rms.normalize(features)
        logits = self.policy.policy_net.forward(features)
        if self.deterministic:
            return np.argmax(logits, axis=-1)
        actions = np.empty(len(lanes), dtype=int)
        for i, lane in enumerate(lanes):
            rng = self._lane_info[lane][2]
            row = logits[i : i + 1]
            gumbel = -np.log(-np.log(rng.uniform(size=row.shape) + 1e-12) + 1e-12)
            actions[i] = np.argmax(row + gumbel, axis=-1)[0]
        return actions

    def finish(self, lane: int) -> None:
        self._lane_info.pop(lane, None)


def as_batched(policy: AbrPolicy | BatchedAbrPolicy) -> BatchedAbrPolicy:
    """Wrap a serial :class:`AbrPolicy` with its batched adapter.

    Known policies get a vectorized adapter; anything else falls back to
    :class:`GenericBatched` (correct for every policy, no speedup).
    Policies outside this module can register their own adapter by
    defining ``__batched_adapter__() -> BatchedAbrPolicy`` (e.g.
    ``repro.attacks.AttackedPensieve`` -- the hook avoids importing
    higher-level packages from here).
    """
    if isinstance(policy, BatchedAbrPolicy):
        return policy
    adapter_factory = getattr(policy, "__batched_adapter__", None)
    if adapter_factory is not None:
        adapter = adapter_factory()
        if not isinstance(adapter, BatchedAbrPolicy):
            raise TypeError(
                f"{type(policy).__name__}.__batched_adapter__ returned "
                f"{type(adapter).__name__}, expected a BatchedAbrPolicy"
            )
        return adapter
    if isinstance(policy, BufferBased):
        return BatchedBufferBased(policy)
    if isinstance(policy, Bola):
        return BatchedBola(policy)
    if isinstance(policy, MPC):
        return BatchedMPC(policy)
    if isinstance(policy, PensieveAgent):
        return BatchedPensieve.from_agent(policy)
    return GenericBatched(policy)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class BatchedSessionEngine:
    """Advances up to ``batch_size`` sessions in lockstep chunk rounds.

    Each round: one batched :meth:`BatchedAbrPolicy.select` over the
    active lanes, then one ``download_chunk`` per lane.  Finished
    sessions retire immediately and their lanes are refilled from the
    remaining work queue, so a long session never stalls the batch and
    ragged corpora keep full occupancy until the queue drains.
    """

    def __init__(
        self,
        policy: AbrPolicy | BatchedAbrPolicy,
        batch_size: int,
        seed: int = 0,
        recorder: MetricsRecorder = NULL_RECORDER,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        self.adapter = as_batched(policy)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.recorder = recorder

    def _session_rng(self, index: int, spec: SessionSpec) -> np.random.Generator:
        if spec.seed is not None:
            return np.random.default_rng(np.random.SeedSequence(spec.seed))
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(index,))
        )

    def run(self, specs: list[SessionSpec]) -> list[SessionResult]:
        """Play every spec to completion; results are in spec order."""
        results: list[SessionResult | None] = [None] * len(specs)
        queue = iter(enumerate(specs))
        lanes: list[int] = []  # active lane ids, stable order
        owners: dict[int, tuple[int, StreamingSession]] = {}
        free = list(range(self.batch_size - 1, -1, -1))  # pop() yields lane 0 first
        chunks_done = 0
        rounds = 0

        def refill() -> None:
            while free:
                try:
                    index, spec = next(queue)
                except StopIteration:
                    return
                lane = free.pop()
                session = StreamingSession(spec.video, spec.make_schedule(), weights=spec.weights)
                owners[lane] = (index, session)
                lanes.append(lane)
                self.adapter.start(lane, session, self._session_rng(index, spec))

        refill()
        sessions = [owners[lane][1] for lane in lanes]
        with self.recorder.timer("batched.run", batch_size=self.batch_size):
            while lanes:
                actions = self.adapter.select(lanes, sessions)
                if isinstance(actions, np.ndarray):
                    actions = actions.tolist()
                chunks = [
                    session.download_chunk(action)
                    for session, action in zip(sessions, actions)
                ]
                self.adapter.observe_round(lanes, sessions, chunks)
                chunks_done += len(lanes)
                rounds += 1
                retired = False
                for lane, chunk in zip(lanes, chunks):
                    if chunk.done:
                        index, session = owners.pop(lane)
                        results[index] = session.summary()
                        self.adapter.finish(lane)
                        free.append(lane)
                        retired = True
                if retired:
                    lanes = [lane for lane in lanes if lane in owners]
                    refill()
                    lanes.sort()
                    sessions = [owners[lane][1] for lane in lanes]
        self.recorder.count("batched.chunks", chunks_done, batch_size=self.batch_size)
        self.recorder.count("batched.sessions", len(specs), batch_size=self.batch_size)
        self.recorder.record("batched.rounds", rounds, batch_size=self.batch_size)
        return results  # type: ignore[return-value]


def run_batched_sessions(
    specs: list[SessionSpec],
    policy: AbrPolicy | BatchedAbrPolicy,
    batch_size: int,
    seed: int = 0,
    recorder: MetricsRecorder = NULL_RECORDER,
) -> list[SessionResult]:
    """Convenience wrapper: build an engine and play ``specs`` through it."""
    engine = BatchedSessionEngine(policy, batch_size, seed=seed, recorder=recorder)
    return engine.run(specs)
