"""Gym-style environment for training Pensieve over a trace corpus."""

from __future__ import annotations

import numpy as np

from repro.abr.features import build_features, feature_dim
from repro.abr.qoe import QoEWeights
from repro.abr.simulator import StreamingSession, TraceBandwidth
from repro.abr.video import Video
from repro.rl.env import Env
from repro.rl.spaces import Box, Discrete
from repro.traces.trace import Trace

__all__ = ["AbrTrainingEnv"]


class AbrTrainingEnv(Env):
    """One episode = one full playback over a randomly drawn trace.

    Each step downloads one chunk at the chosen ladder index; the reward is
    that chunk's linear-QoE contribution, so the undiscounted episode
    return is exactly ``QoE_lin`` of the playback.

    The trace corpus is mutable on purpose: the section-2.3 robustification
    pipeline appends adversarial traces mid-training via
    :meth:`extend_corpus`.
    """

    def __init__(
        self,
        traces: list[Trace],
        video: Video,
        weights: QoEWeights = QoEWeights(),
        random_start: bool = True,
        seed: int = 0,
    ) -> None:
        if not traces:
            raise ValueError("trace corpus is empty")
        self.traces = list(traces)
        self.video = video
        self.weights = weights
        self.random_start = random_start
        self._rng = np.random.default_rng(seed)
        big = 1e6
        dim = feature_dim(video.n_bitrates)
        self.observation_space = Box(low=[-big] * dim, high=[big] * dim)
        self.action_space = Discrete(video.n_bitrates)
        self._session: StreamingSession | None = None

    def extend_corpus(self, traces: list[Trace]) -> None:
        """Add traces to the sampling pool (used for adversarial training)."""
        if not traces:
            raise ValueError("no traces to add")
        self.traces.extend(traces)

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        trace = self.traces[int(self._rng.integers(len(self.traces)))]
        self._session = StreamingSession(
            self.video, TraceBandwidth(trace), weights=self.weights
        )
        if self.random_start:
            # Start at a random point of the (looping) trace, as Pensieve does.
            self._session.wall_time = float(self._rng.uniform(0.0, trace.duration))
        return build_features(self._session.observation(), self.video)

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict]:
        if self._session is None:
            raise RuntimeError("call reset() before step()")
        result = self._session.download_chunk(int(action))
        obs = build_features(self._session.observation(), self.video)
        info = {
            "rebuffer": result.rebuffer_seconds,
            "bitrate_kbps": result.bitrate_kbps,
            "buffer": result.buffer_seconds,
        }
        return obs, result.qoe, result.done, info
