"""Pensieve: RL-based adaptive bitrate selection (Mao et al., SIGCOMM '17).

The paper attacks "a pre-trained model of Pensieve, provided by its
authors"; since that TensorFlow artifact is external, we train an
equivalent policy-gradient ABR agent from scratch in our simulator (the
attack surface -- a learned throughput-history -> bitrate mapping -- is
the same).  Training uses our PPO; the section-2.3 pipeline resumes
training with adversarial traces through :func:`continue_training`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abr.env import AbrTrainingEnv
from repro.abr.features import build_features
from repro.abr.protocols.base import AbrPolicy
from repro.abr.qoe import QoEWeights
from repro.abr.simulator import AbrObservation
from repro.abr.video import Video
from repro.rl.policy import ActorCritic
from repro.rl.ppo import PPO, PPOConfig
from repro.rl.running_stat import RunningMeanStd
from repro.traces.trace import Trace

__all__ = ["PensieveAgent", "continue_training", "train_pensieve"]


class PensieveAgent(AbrPolicy):
    """Inference wrapper: a trained actor-critic acting as an ABR policy."""

    name = "pensieve"

    def __init__(
        self,
        policy: ActorCritic,
        obs_rms: RunningMeanStd | None = None,
        deterministic: bool = True,
        seed: int = 0,
    ) -> None:
        self.policy = policy
        self.obs_rms = obs_rms
        self.deterministic = deterministic
        self._rng = np.random.default_rng(seed)
        self._video: Video | None = None

    def reset(self, video: Video) -> None:
        self._video = video

    def select(self, observation: AbrObservation) -> int:
        if self._video is None:
            raise RuntimeError("policy not reset with a video")
        features = build_features(observation, self._video)
        if self.obs_rms is not None:
            features = self.obs_rms.normalize(features)
        action, _logp, _value = self.policy.act(
            features, self._rng, deterministic=self.deterministic
        )
        return int(action)

    @classmethod
    def from_trainer(cls, trainer: PPO, deterministic: bool = True) -> "PensieveAgent":
        rms = trainer.obs_rms if trainer.cfg.normalize_obs else None
        return cls(trainer.policy, obs_rms=rms, deterministic=deterministic)


@dataclass
class PensieveTrainResult:
    """A trained agent plus its trainer (for resuming) and learning curve."""

    agent: PensieveAgent
    trainer: PPO
    env: AbrTrainingEnv
    history: list[dict]


def default_pensieve_config() -> PPOConfig:
    """PPO hyper-parameters that train a competent ABR agent quickly."""
    return PPOConfig(
        n_steps=384,
        batch_size=96,
        n_epochs=4,
        learning_rate=1e-3,
        ent_coef=0.02,
        hidden=(64, 32),
        gamma=0.99,
    )


def train_pensieve(
    traces: list[Trace],
    video: Video,
    total_steps: int = 30_000,
    seed: int = 0,
    config: PPOConfig | None = None,
    weights: QoEWeights = QoEWeights(),
) -> PensieveTrainResult:
    """Train a Pensieve agent on a trace corpus from scratch."""
    env = AbrTrainingEnv(traces, video, weights=weights, seed=seed)
    trainer = PPO(env, config or default_pensieve_config(), seed=seed)
    history = trainer.learn(total_steps)
    return PensieveTrainResult(
        agent=PensieveAgent.from_trainer(trainer),
        trainer=trainer,
        env=env,
        history=history,
    )


def continue_training(
    result: PensieveTrainResult,
    extra_steps: int,
    new_traces: list[Trace] | None = None,
) -> PensieveTrainResult:
    """Resume a Pensieve training run, optionally with an augmented corpus.

    This is step (4) of the paper's robustification recipe: "continue the
    protocol's training with the new adversarial traces in its training
    dataset" (section 2.3).
    """
    if new_traces:
        result.env.extend_corpus(new_traces)
    history = result.trainer.learn(extra_steps)
    return PensieveTrainResult(
        agent=PensieveAgent.from_trainer(result.trainer),
        trainer=result.trainer,
        env=result.env,
        history=history,
    )
