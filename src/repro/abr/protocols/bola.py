"""BOLA (Spiteri, Urgaonkar, Sitaraman, INFOCOM '16) -- Lyapunov ABR.

An additional rule-based baseline beyond the paper's lineup (BB, MPC,
Pensieve): BOLA maximizes a buffer-parameterized Lyapunov score per chunk,

    score(q) = (V * (u_q + gamma_p) - Q) / s_q

with ``u_q = ln(bitrate_q / bitrate_min)`` the quality utility, ``Q`` the
buffer level in chunks, ``s_q`` the relative chunk size, and ``V`` chosen
so that the highest quality is selected exactly when the buffer reaches
``buffer_target``.  Useful as a further adversary target: like BB it is
driven purely by the buffer, but with a smooth, utility-shaped map.
"""

from __future__ import annotations

import numpy as np

from repro.abr.protocols.base import AbrPolicy
from repro.abr.simulator import AbrObservation
from repro.abr.video import Video

__all__ = ["Bola"]


class Bola(AbrPolicy):
    """BOLA-BASIC over the video's bitrate ladder."""

    name = "bola"

    def __init__(self, buffer_target_s: float = 25.0, gamma_p: float = 5.0) -> None:
        if buffer_target_s <= 0:
            raise ValueError("buffer target must be positive")
        if gamma_p <= 0:
            raise ValueError("gamma_p must be positive")
        self.buffer_target_s = float(buffer_target_s)
        self.gamma_p = float(gamma_p)
        self._video: Video | None = None
        self._utilities: np.ndarray | None = None
        self._v: float = 0.0

    def reset(self, video: Video) -> None:
        self._video = video
        bitrates = np.asarray(video.bitrates_kbps, dtype=float)
        self._utilities = np.log(bitrates / bitrates[0])
        # Choose V so the top quality wins exactly at the buffer target:
        # V * (u_max + gamma_p) - Q_target = 0.
        q_target = self.buffer_target_s / video.chunk_seconds
        self._v = q_target / (self._utilities[-1] + self.gamma_p)

    def scores(self, observation: AbrObservation) -> np.ndarray:
        """The per-quality BOLA objective values."""
        video = self._video
        if video is None or self._utilities is None:
            raise RuntimeError("policy not reset with a video")
        buffer_chunks = observation.buffer_seconds / video.chunk_seconds
        relative_sizes = np.asarray(video.bitrates_kbps, dtype=float)
        relative_sizes = relative_sizes / relative_sizes[0]
        return (
            self._v * (self._utilities + self.gamma_p) - buffer_chunks
        ) / relative_sizes

    def select(self, observation: AbrObservation) -> int:
        return int(np.argmax(self.scores(observation)))
