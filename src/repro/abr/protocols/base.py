"""The ABR protocol interface and the session runner."""

from __future__ import annotations

from repro.abr.qoe import QoEWeights
from repro.abr.simulator import (
    AbrObservation,
    BandwidthSchedule,
    ChunkIndexedBandwidth,
    SessionResult,
    StreamingSession,
    TraceBandwidth,
)
from repro.abr.video import Video
from repro.traces.trace import Trace

__all__ = ["AbrPolicy", "run_session"]


class AbrPolicy:
    """An adaptive-bitrate protocol: maps observations to ladder indices.

    Protocols are stateful across a playback (MPC tracks prediction
    errors, Pensieve stacks observation history); :meth:`reset` is called
    once per video before the first decision.
    """

    name = "abr"

    def reset(self, video: Video) -> None:
        """Prepare for a new playback of ``video``."""

    def select(self, observation: AbrObservation) -> int:
        """Return the ladder index for the next chunk."""
        raise NotImplementedError


def run_session(
    video: Video,
    bandwidth: BandwidthSchedule | Trace,
    policy: AbrPolicy,
    weights: QoEWeights = QoEWeights(),
    chunk_indexed: bool = False,
) -> SessionResult:
    """Play ``video`` end-to-end under ``policy`` and return the summary.

    ``bandwidth`` may be a :class:`Trace` (wrapped in
    :class:`TraceBandwidth`) or any :class:`BandwidthSchedule`.  With
    ``chunk_indexed=True``, a Trace's bandwidth values are applied one per
    chunk download (the online-adversary replay semantics) instead of by
    wall-clock time; this reproduces an adversary episode exactly.
    """
    if isinstance(bandwidth, Trace):
        if chunk_indexed:
            bandwidth = ChunkIndexedBandwidth(bandwidth.bandwidths_mbps, cycle=True)
        else:
            bandwidth = TraceBandwidth(bandwidth)
    session = StreamingSession(video, bandwidth, weights=weights)
    policy.reset(video)
    while not session.done:
        quality = policy.select(session.observation())
        session.download_chunk(quality)
    return session.summary()
