"""Robust MPC (Yin et al. 2015) -- the paper's "re-implementation of the
MPC ABR protocol".

At each chunk the controller:

1. predicts throughput as the harmonic mean of the last ``window``
   measured samples, discounted by the maximum recent prediction error
   (the "robust" part),
2. exhaustively evaluates every bitrate plan over a ``horizon``-chunk
   lookahead against the predicted throughput, simulating the buffer, and
3. executes the first step of the best plan.

The plan search is vectorized over all ``6^horizon`` combinations, so a
full 48-chunk playback costs a few milliseconds.
"""

from __future__ import annotations

import itertools
from collections import deque

import numpy as np

from repro.abr.protocols.base import AbrPolicy
from repro.abr.protocols.rate_based import harmonic_mean_mbps
from repro.abr.qoe import QoEWeights
from repro.abr.simulator import LINK_RTT_S, PACKET_PAYLOAD_PORTION, AbrObservation
from repro.abr.video import Video

__all__ = ["MPC"]


class MPC(AbrPolicy):
    """Robust model-predictive ABR control."""

    name = "mpc"

    def __init__(
        self,
        horizon: int = 5,
        window: int = 5,
        robust: bool = True,
        weights: QoEWeights = QoEWeights(),
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = int(horizon)
        self.window = int(window)
        self.robust = robust
        self.weights = weights
        self._video: Video | None = None
        self._combos: dict[int, np.ndarray] = {}
        #: What the cached plan tables were built for, so a reset with a
        #: video of a different bitrate count rebuilds them.
        self._combos_key: tuple[int, int] | None = None
        self._qualities: np.ndarray | None = None
        # maxlen evicts the oldest error in O(1); the list-based
        # ``pop(0)`` this replaces shifted the whole window every chunk.
        self._errors: deque[float] = deque(maxlen=self.window)
        self._last_prediction: float | None = None

    def reset(self, video: Video) -> None:
        self._video = video
        # The per-bitrate quality scores depend only on the video's
        # bitrate ladder, not the playback state: computed once here
        # instead of once per chunk in :meth:`select`.
        self._qualities = np.array(
            [self.weights.quality(b) for b in video.bitrates_kbps]
        )
        self._errors = deque(maxlen=self.window)
        self._last_prediction = None
        key = (video.n_bitrates, self.horizon)
        if self._combos_key != key:
            self._combos = {
                h: np.array(list(itertools.product(range(video.n_bitrates), repeat=h)), dtype=int)
                for h in range(1, self.horizon + 1)
            }
            self._combos_key = key

    # -- prediction -----------------------------------------------------------

    def _predict_throughput(self, observation: AbrObservation) -> float:
        measured = harmonic_mean_mbps(observation.throughput_history, self.window)
        if measured <= 0:
            return 0.0
        if self.robust and self._last_prediction is not None:
            actual = observation.last_throughput_mbps()
            if actual > 0:
                self._errors.append(abs(self._last_prediction - actual) / actual)
        discount = 1.0 + (max(self._errors) if self._errors else 0.0)
        prediction = measured / discount
        self._last_prediction = prediction
        return prediction

    # -- plan search -----------------------------------------------------------

    def select(self, observation: AbrObservation) -> int:
        video = self._video
        if video is None:
            raise RuntimeError("policy not reset with a video")
        predicted = self._predict_throughput(observation)
        if predicted <= 0:
            return 0  # no information yet: start conservative

        steps = min(self.horizon, observation.chunks_remaining)
        combos = self._combos[steps]
        n = combos.shape[0]
        rate = predicted * 1e6 / 8.0 * PACKET_PAYLOAD_PORTION  # bytes/s

        qualities = self._qualities
        buffer = np.full(n, observation.buffer_seconds)
        total = np.zeros(n)
        prev_q = (
            None
            if observation.last_quality is None
            else qualities[observation.last_quality]
        )
        prev = np.full(n, 0.0 if prev_q is None else prev_q)
        first = observation.last_quality is None
        for k in range(steps):
            chunk = observation.chunk_index + k
            sizes = video.chunk_sizes_bytes[chunk, combos[:, k]]
            download = sizes / rate + LINK_RTT_S
            rebuffer = np.maximum(download - buffer, 0.0)
            buffer = np.maximum(buffer - download, 0.0) + video.chunk_seconds
            quality = qualities[combos[:, k]]
            total += quality - self.weights.rebuffer_penalty * rebuffer
            if not (first and k == 0):
                total -= self.weights.smooth_penalty * np.abs(quality - prev)
            prev = quality
        best = int(np.argmax(total))
        return int(combos[best, 0])
