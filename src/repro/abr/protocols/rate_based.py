"""Rate-based adaptation: pick the highest bitrate under predicted throughput.

A classic throughput-rule baseline (the "RB" in the MPC paper): predict
future throughput as the harmonic mean of recent samples and choose the
highest ladder rate not exceeding it.
"""

from __future__ import annotations

from repro.abr.protocols.base import AbrPolicy
from repro.abr.simulator import AbrObservation
from repro.abr.video import Video

__all__ = ["RateBased", "harmonic_mean_mbps"]


def harmonic_mean_mbps(history: list[tuple[float, float]], window: int = 5) -> float:
    """Harmonic-mean throughput (Mbps) of the last ``window`` downloads.

    ``history`` holds ``(size_bytes, download_seconds)`` pairs.  Returns 0
    when no samples exist.
    """
    samples = [
        size * 8.0 / dl / 1e6 for size, dl in history[-window:] if dl > 0 and size > 0
    ]
    if not samples:
        return 0.0
    return len(samples) / sum(1.0 / s for s in samples)


class RateBased(AbrPolicy):
    """Throughput-rule ABR with a configurable safety factor."""

    name = "rb"

    def __init__(self, safety: float = 1.0, window: int = 5) -> None:
        if safety <= 0:
            raise ValueError("safety factor must be positive")
        self.safety = float(safety)
        self.window = int(window)
        self._video: Video | None = None

    def reset(self, video: Video) -> None:
        self._video = video

    def select(self, observation: AbrObservation) -> int:
        if self._video is None:
            raise RuntimeError("policy not reset with a video")
        predicted = harmonic_mean_mbps(observation.throughput_history, self.window)
        budget = predicted * self.safety * 1000.0  # kbps
        choice = 0
        for idx, rate in enumerate(self._video.bitrates_kbps):
            if rate <= budget:
                choice = idx
        return choice
