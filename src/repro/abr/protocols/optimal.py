"""Offline-optimal ABR given known future per-chunk bandwidth.

Two solvers:

- :func:`optimal_qoe_exhaustive` -- exact maximum QoE over a short window
  by enumerating every plan.  This computes the adversary's ``r_opt``:
  "the highest possible QoE over the last 4 network changes" (section 3).
- :func:`optimal_plan_dp` -- full-video optimum by dynamic programming
  over a discretized buffer, used for the "Offline Optimum" overlay in
  Figure 3.

Both assume the per-chunk bandwidth schedule of the online adversary:
conditions are fixed for the duration of each chunk download, which makes
the download time of chunk ``i`` at quality ``q`` simply
``size(i, q) / rate_i + RTT``.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.abr.qoe import QoEWeights
from repro.abr.simulator import BUFFER_CAP_S, LINK_RTT_S, PACKET_PAYLOAD_PORTION
from repro.abr.video import Video

__all__ = [
    "optimal_plan_dp",
    "optimal_qoe_exhaustive",
    "optimal_qoe_exhaustive_batch",
    "optimal_qoe_exhaustive_mixed",
]

#: Cached plan tables keyed by (n_bitrates, steps); building the
#: ``n_bitrates ** steps`` product from scratch dominates a single
#: exhaustive call, and the table is identical for every window of the
#: same shape.
_COMBO_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _combo_table(n_bitrates: int, steps: int) -> np.ndarray:
    key = (n_bitrates, steps)
    combos = _COMBO_CACHE.get(key)
    if combos is None:
        combos = np.array(
            list(itertools.product(range(n_bitrates), repeat=steps)), dtype=int
        )
        _COMBO_CACHE[key] = combos
    return combos


#: Per-(ladder, weights) quality-score vectors.  ``weights.quality`` is a
#: pure function of its inputs, so the table is reusable across the
#: millions of solver calls a training run makes; unhashable weights
#: (exotic subclasses) just skip the cache.
_QUALITY_CACHE: dict[tuple, np.ndarray] = {}


def _quality_table(video: Video, weights: QoEWeights) -> np.ndarray:
    try:
        key = (video.bitrates_kbps, type(weights), weights)
        cached = _QUALITY_CACHE.get(key)
    except TypeError:
        return np.array([weights.quality(b) for b in video.bitrates_kbps])
    if cached is None:
        cached = np.array([weights.quality(b) for b in video.bitrates_kbps])
        _QUALITY_CACHE[key] = cached
    return cached


def _download_times(
    video: Video, start_chunk: int, bandwidths_mbps: np.ndarray
) -> np.ndarray:
    """Matrix ``(len(bandwidths), n_bitrates)`` of download times in seconds."""
    rates = np.asarray(bandwidths_mbps, dtype=float) * 1e6 / 8.0 * PACKET_PAYLOAD_PORTION
    if np.any(rates <= 0):
        raise ValueError("bandwidths must be positive")
    sizes = video.chunk_sizes_bytes[start_chunk : start_chunk + len(rates)]
    if sizes.shape[0] < len(rates):
        raise ValueError("bandwidth schedule runs past the end of the video")
    return sizes / rates[:, None] + LINK_RTT_S


def optimal_qoe_exhaustive(
    video: Video,
    start_chunk: int,
    bandwidths_mbps,
    start_buffer_s: float,
    prev_quality: int | None,
    weights: QoEWeights = QoEWeights(),
) -> tuple[float, list[int]]:
    """Exact max QoE over ``len(bandwidths_mbps)`` chunks; returns (qoe, plan).

    Enumeration is vectorized over all ``n_bitrates ** window`` plans;
    windows up to ~6 chunks are instantaneous.
    """
    bandwidths = np.asarray(bandwidths_mbps, dtype=float)
    steps = len(bandwidths)
    if steps == 0:
        raise ValueError("empty bandwidth window")
    if steps > 8:
        raise ValueError("exhaustive search limited to 8 chunks; use optimal_plan_dp")
    downloads = _download_times(video, start_chunk, bandwidths)
    qualities = np.array([weights.quality(b) for b in video.bitrates_kbps])

    combos = np.array(
        list(itertools.product(range(video.n_bitrates), repeat=steps)), dtype=int
    )
    n = combos.shape[0]
    buffer = np.full(n, float(start_buffer_s))
    total = np.zeros(n)
    prev = None if prev_quality is None else np.full(n, qualities[prev_quality])
    for k in range(steps):
        download = downloads[k, combos[:, k]]
        rebuffer = np.maximum(download - buffer, 0.0)
        buffer = np.minimum(
            np.maximum(buffer - download, 0.0) + video.chunk_seconds, BUFFER_CAP_S
        )
        quality = qualities[combos[:, k]]
        total += quality - weights.rebuffer_penalty * rebuffer
        if prev is not None:
            total -= weights.smooth_penalty * np.abs(quality - prev)
        prev = quality
    best = int(np.argmax(total))
    return float(total[best]), combos[best].tolist()


def optimal_qoe_exhaustive_batch(
    video: Video,
    start_chunks,
    bandwidth_windows,
    start_buffers_s,
    prev_qualities,
    weights: QoEWeights = QoEWeights(),
) -> np.ndarray:
    """Exact max QoE for a *batch* of equal-length windows; returns ``(B,)``.

    Vectorized across ``B`` independent windows (one per parallel env) on
    top of the plan enumeration of :func:`optimal_qoe_exhaustive`, sharing
    one cached plan table.  Each row b solves the same problem as::

        optimal_qoe_exhaustive(video, start_chunks[b], bandwidth_windows[b],
                               start_buffers_s[b], prev_qualities[b], weights)[0]

    and produces the identical value, chunk for chunk and bit for bit.
    ``prev_qualities`` entries may be ``None`` (no previous chunk, i.e.
    an episode's first window).

    The enumeration runs over a *prefix-expanding* lattice: level k holds
    one partial plan per ``n_bitrates ** k`` choice prefix (in
    ``itertools.product`` order) and is expanded by ``repeat`` into level
    k+1, so shared prefixes -- identical buffer states and partial sums
    under the full ``(B, plans)`` sweep -- are computed once instead of
    ``n_bitrates ** (steps - k)`` times.  Each final plan's value is
    accumulated by the exact elementwise op chain of the scalar solver
    (same expressions, same left-association, same product order for the
    final max), so the restructuring is invisible at the bit level while
    touching ~3x fewer array elements at the paper's 4-chunk window.
    """
    bandwidths = np.asarray(bandwidth_windows, dtype=float)
    if bandwidths.ndim != 2:
        raise ValueError("bandwidth_windows must be (batch, window)")
    n_batch, steps = bandwidths.shape
    if steps == 0:
        raise ValueError("empty bandwidth window")
    if steps > 8:
        raise ValueError("exhaustive search limited to 8 chunks; use optimal_plan_dp")
    rates = bandwidths * 1e6 / 8.0 * PACKET_PAYLOAD_PORTION
    if np.any(rates <= 0):
        raise ValueError("bandwidths must be positive")
    starts = np.asarray(start_chunks, dtype=int)
    if np.any(starts < 0) or np.any(starts + steps > video.n_chunks):
        raise ValueError("bandwidth schedule runs past the end of the video")
    sizes = video.chunk_sizes_bytes[
        starts[:, None] + np.arange(steps)
    ]  # (B, steps, n_bitrates)
    downloads = sizes / rates[:, :, None] + LINK_RTT_S
    qualities = _quality_table(video, weights)
    n_b = video.n_bitrates

    start_buffers = np.asarray(start_buffers_s, dtype=float)
    has_prev = np.array([q is not None for q in prev_qualities])
    prev_vals = np.array(
        [0.0 if q is None else qualities[q] for q in prev_qualities]
    )
    buffer = start_buffers[:, None]  # (B, width), width = prefixes so far
    total = np.zeros((n_batch, 1))
    width = 1
    prev_quality: np.ndarray | None = None  # last choice's quality, (width,)
    for k in range(steps):
        # Expand every prefix with all n_b next choices; child j*n_b + c
        # of prefix j keeps itertools.product order level by level.
        buffer = np.repeat(buffer, n_b, axis=1)
        total = np.repeat(total, n_b, axis=1)
        choice = np.tile(np.arange(n_b), width)  # (width * n_b,)
        download = downloads[:, k, :][:, choice]
        rebuffer = np.maximum(download - buffer, 0.0)
        buffer = np.minimum(
            np.maximum(buffer - download, 0.0) + video.chunk_seconds, BUFFER_CAP_S
        )
        quality = qualities[choice]
        total += quality[None, :] - weights.rebuffer_penalty * rebuffer
        if k == 0:
            smooth = np.abs(quality[None, :] - prev_vals[:, None])
            total -= weights.smooth_penalty * smooth * has_prev[:, None]
        else:
            prev_col = np.repeat(prev_quality, n_b)
            total -= weights.smooth_penalty * np.abs(quality - prev_col)[None, :]
        prev_quality = quality
        width *= n_b
    return total.max(axis=1)


def optimal_qoe_exhaustive_mixed(
    video: Video,
    start_chunks,
    bandwidth_windows,
    start_buffers_s,
    prev_qualities,
    weights: QoEWeights = QoEWeights(),
) -> np.ndarray:
    """Exact max QoE for a batch of *ragged* windows; returns ``(B,)``.

    Generalizes :func:`optimal_qoe_exhaustive_batch` to windows of mixed
    lengths -- the state a lockstep batch of adversary envs is in right
    after a staggered reset, when some envs are still inside their first
    ``opt_window`` chunks.  Windows are grouped by length and each group
    runs one vectorized plan enumeration; results come back in input
    order.  A single-row group runs the same ``(1, plans)`` lattice, whose
    elementwise op sequence is exactly the scalar solver's, so every entry
    is bitwise equal to::

        optimal_qoe_exhaustive(video, start_chunks[b], bandwidth_windows[b],
                               start_buffers_s[b], prev_qualities[b], weights)[0]
    """
    n = len(bandwidth_windows)
    values = np.empty(n)
    by_len: dict[int, list[int]] = {}
    for i, window in enumerate(bandwidth_windows):
        by_len.setdefault(len(window), []).append(i)
    for idxs in by_len.values():
        values[idxs] = optimal_qoe_exhaustive_batch(
            video,
            start_chunks=[start_chunks[i] for i in idxs],
            bandwidth_windows=[bandwidth_windows[i] for i in idxs],
            start_buffers_s=[start_buffers_s[i] for i in idxs],
            prev_qualities=[prev_qualities[i] for i in idxs],
            weights=weights,
        )
    return values


def optimal_plan_dp(
    video: Video,
    bandwidths_mbps,
    weights: QoEWeights = QoEWeights(),
    buffer_step_s: float = 0.25,
    start_buffer_s: float = 0.0,
) -> tuple[float, list[int]]:
    """Full-video offline optimum via backward DP over (chunk, prev, buffer).

    The buffer is discretized to ``buffer_step_s`` (new buffers round
    *down*, so the returned value is a slightly conservative bound and the
    plan is feasible).  Returns ``(total_qoe, plan)``.
    """
    bandwidths = np.asarray(bandwidths_mbps, dtype=float)
    if len(bandwidths) != video.n_chunks:
        raise ValueError(
            f"need one bandwidth per chunk ({video.n_chunks}), got {len(bandwidths)}"
        )
    downloads = _download_times(video, 0, bandwidths)
    qualities = np.array([weights.quality(b) for b in video.bitrates_kbps])
    nq = video.n_bitrates
    grid = np.arange(0.0, BUFFER_CAP_S + buffer_step_s, buffer_step_s)
    nb = len(grid)

    # value[p, b]: best attainable QoE from the current chunk onward, given
    # previous quality p (nq == "no previous chunk" sentinel) and buffer b.
    value = np.zeros((nq + 1, nb))
    choice = np.zeros((video.n_chunks, nq + 1, nb), dtype=np.int8)
    for i in reversed(range(video.n_chunks)):
        # gains[q, b]: quality & rebuffer part + future value, before smoothness.
        gains = np.empty((nq, nb))
        for q in range(nq):
            dl = downloads[i, q]
            rebuffer = np.maximum(dl - grid, 0.0)
            new_buffer = np.minimum(np.maximum(grid - dl, 0.0) + video.chunk_seconds,
                                    BUFFER_CAP_S)
            idx = np.minimum((new_buffer / buffer_step_s).astype(int), nb - 1)
            gains[q] = (
                qualities[q] - weights.rebuffer_penalty * rebuffer + value[q, idx]
            )
        new_value = np.empty((nq + 1, nb))
        for p in range(nq + 1):
            if p < nq:
                smooth = weights.smooth_penalty * np.abs(qualities - qualities[p])
            else:
                smooth = np.zeros(nq)
            scored = gains - smooth[:, None]
            best_q = np.argmax(scored, axis=0)
            new_value[p] = scored[best_q, np.arange(nb)]
            choice[i, p] = best_q
        value = new_value

    # Forward pass: execute the stored decisions with the *exact* buffer.
    plan: list[int] = []
    buffer = float(start_buffer_s)
    prev = nq
    total = 0.0
    prev_bitrate: float | None = None
    for i in range(video.n_chunks):
        b_idx = min(int(buffer / buffer_step_s), nb - 1)
        q = int(choice[i, prev, b_idx])
        dl = downloads[i, q]
        rebuffer = max(dl - buffer, 0.0)
        buffer = min(max(buffer - dl, 0.0) + video.chunk_seconds, BUFFER_CAP_S)
        gain = qualities[q] - weights.rebuffer_penalty * rebuffer
        if prev_bitrate is not None:
            gain -= weights.smooth_penalty * abs(qualities[q] - prev_bitrate)
        total += gain
        prev_bitrate = qualities[q]
        plan.append(q)
        prev = q
    return float(total), plan
