"""ABR protocols evaluated by the paper (plus supporting baselines)."""

from repro.abr.protocols.base import AbrPolicy, run_session
from repro.abr.protocols.bola import Bola
from repro.abr.protocols.buffer_based import BufferBased
from repro.abr.protocols.mpc import MPC
from repro.abr.protocols.optimal import optimal_plan_dp, optimal_qoe_exhaustive
from repro.abr.protocols.pensieve import PensieveAgent, continue_training, train_pensieve
from repro.abr.protocols.rate_based import RateBased

__all__ = [
    "AbrPolicy",
    "Bola",
    "BufferBased",
    "MPC",
    "PensieveAgent",
    "RateBased",
    "continue_training",
    "optimal_plan_dp",
    "optimal_qoe_exhaustive",
    "run_session",
    "train_pensieve",
]
