"""Buffer-based rate adaptation (Huang et al., the paper's "BB").

The BBA-0 rule: below the reservoir request the lowest bitrate, above
reservoir + cushion the highest, and map the buffer linearly onto the
ladder in between.  The paper's adversary discovers exactly this switching
band and parks the buffer inside it (Figure 3), forcing constant bitrate
oscillation.
"""

from __future__ import annotations

import numpy as np

from repro.abr.protocols.base import AbrPolicy
from repro.abr.simulator import AbrObservation
from repro.abr.video import Video

__all__ = ["BufferBased"]


class BufferBased(AbrPolicy):
    """BBA-0 with configurable reservoir and cushion (seconds)."""

    name = "bb"

    def __init__(self, reservoir_s: float = 5.0, cushion_s: float = 10.0) -> None:
        if reservoir_s < 0 or cushion_s <= 0:
            raise ValueError("reservoir must be >= 0 and cushion > 0")
        self.reservoir_s = float(reservoir_s)
        self.cushion_s = float(cushion_s)
        self._n_bitrates = 0

    @property
    def switching_band(self) -> tuple[float, float]:
        """The buffer range in which the chosen bitrate varies."""
        return (self.reservoir_s, self.reservoir_s + self.cushion_s)

    def reset(self, video: Video) -> None:
        self._n_bitrates = video.n_bitrates

    def select(self, observation: AbrObservation) -> int:
        if self._n_bitrates == 0:
            raise RuntimeError("policy not reset with a video")
        buffer = observation.buffer_seconds
        if buffer < self.reservoir_s:
            return 0
        if buffer >= self.reservoir_s + self.cushion_s:
            return self._n_bitrates - 1
        frac = (buffer - self.reservoir_s) / self.cushion_s
        return int(np.floor(frac * (self._n_bitrates - 1)))
