"""repro -- reproduction of "Robustifying Network Protocols with Adversarial
Examples" (Gilad, Jay, Shnaiderman, Godfrey, Schapira -- HotNets 2019).

Package layout
--------------
- :mod:`repro.nn` -- NumPy neural networks, optimizers, distributions.
- :mod:`repro.rl` -- gym-like env API, PPO, REINFORCE, rollout buffers.
- :mod:`repro.traces` -- network traces: data structure, synthetic dataset
  generators (FCC-broadband-like, 3G/HSDPA-like), random traces, I/O.
- :mod:`repro.abr` -- adaptive-bitrate video streaming: chunk simulator,
  QoE metrics, and the protocols BB, rate-based, (robust) MPC, offline
  optimal, and Pensieve (RL).
- :mod:`repro.cc` -- congestion control: event-driven packet-level link
  emulator and the protocols BBR, Cubic, Reno.
- :mod:`repro.adversary` -- the paper's contribution: RL adversary
  environments for ABR and CC, Eq. 1 reward assembly, trace generation,
  and the section-2.3 robust-training pipeline.
- :mod:`repro.analysis` -- CDFs, QoE-ratio tables, ASCII reporting.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
