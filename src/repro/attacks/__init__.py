"""White-box observation-space attacks on learned network protocols.

The paper's adversary perturbs the environment; this package adds the
complementary Huang-et-al. axis -- FGSM and PGD on the agent's input
features using the exact gradients of ``repro.nn`` -- plus the
crafted-vs-evaluated transfer matrix that compares both attack families
across protocols.
"""

from repro.attacks.policy import AttackedPensieve, BatchedAttackedPensieve
from repro.attacks.transfer import (
    BudgetCurvePoint,
    TransferMatrix,
    TransferRow,
    attack_budget_curve,
    mean_env_regret,
    run_transfer_matrix,
)
from repro.attacks.whitebox import (
    AttackConfig,
    attack_decision,
    feature_envelope,
    input_gradient,
    perturb_features,
)

__all__ = [
    "AttackConfig",
    "AttackedPensieve",
    "BatchedAttackedPensieve",
    "BudgetCurvePoint",
    "TransferMatrix",
    "TransferRow",
    "attack_budget_curve",
    "attack_decision",
    "feature_envelope",
    "input_gradient",
    "mean_env_regret",
    "perturb_features",
    "run_transfer_matrix",
]
