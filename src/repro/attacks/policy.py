"""Decision-time attack wrappers: Pensieve evaluated under observation attack.

``AttackedPensieve`` wraps a trained :class:`PensieveAgent` so that every
``select`` first crafts an adversarial perturbation of the raw feature
vector (within the configured budget and the valid feature envelope) and
then lets the wrapped agent decide on the perturbed features.  A
``surrogate`` agent, when given, supplies the gradients instead of the
victim -- the transfer-attack setting where the attacker only holds a
different seed's (or a stale) copy of the policy.

The wrapper is a plain :class:`AbrPolicy`, so the whole evaluation stack
-- ``run_session``, :func:`~repro.experiments.abr_suite.evaluate_protocols`,
``repro.exec`` workers and the result cache -- works unchanged.  On the
batched engine it registers its own adapter through the
``__batched_adapter__`` hook; the adapter reuses ``BatchedPensieve``'s
incrementally-maintained feature matrix (bitwise equal per lane to
``build_features``) but routes every decision through the same
single-row :func:`~repro.attacks.whitebox.attack_decision` helper the
serial path uses, so serial and batched attacked runs are bitwise
identical by construction at every batch width.
"""

from __future__ import annotations

import numpy as np

from repro.abr.batched import BatchedPensieve
from repro.abr.features import build_features
from repro.abr.protocols.base import AbrPolicy
from repro.abr.protocols.pensieve import PensieveAgent
from repro.abr.simulator import AbrObservation, StreamingSession
from repro.abr.video import Video
from repro.attacks.whitebox import AttackConfig, attack_decision, feature_envelope

__all__ = ["AttackedPensieve", "BatchedAttackedPensieve"]


class AttackedPensieve(AbrPolicy):
    """A Pensieve agent whose observations pass through an attacker first."""

    def __init__(
        self,
        agent: PensieveAgent,
        config: AttackConfig,
        surrogate: PensieveAgent | None = None,
    ) -> None:
        if not agent.deterministic:
            raise ValueError(
                "AttackedPensieve requires a deterministic victim: the attack "
                "objective is defined against the argmax decision"
            )
        if config.target_action >= agent.policy.action_space.n:
            raise ValueError(
                f"target_action {config.target_action} out of range for a "
                f"{agent.policy.action_space.n}-rung ladder"
            )
        self.agent = agent
        self.config = config
        self.surrogate = surrogate if surrogate is not None else agent
        self.name = f"{agent.name}+{config.label()}"
        if surrogate is not None:
            self.name += "@surrogate"
        self._video: Video | None = None
        self._lo: np.ndarray | None = None
        self._hi: np.ndarray | None = None
        self._rng: np.random.Generator | None = None

    def reset(self, video: Video) -> None:
        self.agent.reset(video)
        if self.surrogate is not self.agent:
            self.surrogate.reset(video)
        self._video = video
        self._lo, self._hi = feature_envelope(video)
        # A fresh stream per session, derived from the config seed alone:
        # attacked results stay invariant to session ordering, worker
        # counts and batch composition even with rand_init.
        self._rng = (
            np.random.default_rng(self.config.seed) if self.config.rand_init else None
        )

    def select(self, observation: AbrObservation) -> int:
        if self._video is None:
            raise RuntimeError("policy not reset with a video")
        features = build_features(observation, self._video)
        action, _ = attack_decision(
            self.agent.policy.policy_net,
            self.agent.obs_rms,
            self.surrogate.policy.policy_net,
            self.surrogate.obs_rms,
            features,
            self.config,
            self._lo,
            self._hi,
            self._rng,
        )
        return action

    def __batched_adapter__(self) -> "BatchedAttackedPensieve":
        return BatchedAttackedPensieve(self)

    def __cache_state__(self) -> dict:
        # Per-session scratch (video, envelope, rng) is excluded on
        # purpose: a session's outcome depends only on the weights, the
        # attack recipe and who supplies the gradients, so cache keys are
        # stable across runs regardless of what was evaluated before.
        return {
            "agent": self.agent,
            "config": self.config,
            "surrogate": None if self.surrogate is self.agent else self.surrogate,
        }


class BatchedAttackedPensieve(BatchedPensieve):
    """Batched-engine adapter for :class:`AttackedPensieve`.

    Inherits ``BatchedPensieve``'s incremental ``(K, d)`` feature
    bookkeeping (``start``/``observe_round``) and overrides only the
    decision: each active lane's raw feature row goes through the shared
    single-row :func:`attack_decision`, keeping serial/batched identity
    bitwise by construction (no batched GEMM on the attacked path).
    """

    def __init__(self, wrapper: AttackedPensieve) -> None:
        super().__init__(
            wrapper.agent.policy,
            obs_rms=wrapper.agent.obs_rms,
            deterministic=True,
        )
        self.wrapper = wrapper
        self._attack_rngs: dict[int, np.random.Generator | None] = {}
        self._envelopes: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def start(self, lane: int, session: StreamingSession, rng: np.random.Generator) -> None:
        super().start(lane, session, rng)
        config = self.wrapper.config
        self._envelopes[lane] = feature_envelope(session.video)
        # Mirrors AttackedPensieve.reset: one fresh config-seeded stream
        # per session, independent of lane placement and batch width.
        self._attack_rngs[lane] = (
            np.random.default_rng(config.seed) if config.rand_init else None
        )

    def select(self, lanes, sessions):
        wrapper = self.wrapper
        actions = np.empty(len(lanes), dtype=int)
        for i, lane in enumerate(lanes):
            lo, hi = self._envelopes[lane]
            actions[i], _ = attack_decision(
                wrapper.agent.policy.policy_net,
                wrapper.agent.obs_rms,
                wrapper.surrogate.policy.policy_net,
                wrapper.surrogate.obs_rms,
                self._features[lane],
                wrapper.config,
                lo,
                hi,
                self._attack_rngs[lane],
            )
        return actions

    def finish(self, lane: int) -> None:
        super().finish(lane)
        self._attack_rngs.pop(lane, None)
        self._envelopes.pop(lane, None)
