"""White-box FGSM/PGD on the Pensieve observation vector.

The paper's adversary perturbs the *environment* (link bandwidth); this
module adds the complementary axis from Huang et al., "Adversarial
Attacks on Neural Network Policies": perturb the agent's *inputs*.  The
attack surface is the raw feature vector produced by
:func:`repro.abr.features.build_features` -- throughput/delay history,
buffer level, next-chunk sizes -- i.e. what an on-path adversary who can
bias the client's measurements would control.

Objectives (both phrased as *ascent* on an objective ``U``):

- **untargeted** -- ``U = CE(logits, a_clean)``, the cross-entropy of the
  policy against its own clean decision; ascending it pushes the policy
  off whatever it would have chosen (``dU/dlogits = p - onehot``).
- **targeted** -- ``U = log p(target)``; ascending it drags the policy
  toward a chosen ladder rung, by default the lowest bitrate
  (``dU/dlogits = onehot - p``).

Gradients flow through the observation-normalization layer exactly as
the policy sees it: ``x -> clip((x - mean)/std, +-clip) -> MLP``, so the
chain rule multiplies the network input gradient by the inside-clip mask
and ``1/std``.  Perturbations live in an L-inf or L2 ball of radius
``eps`` around the clean features *intersected with the valid feature
envelope* (:func:`feature_envelope`): sizes, throughputs and delays stay
non-negative, and slots that are normalized fractions stay in [0, 1] --
the crafted observation is always one the protocol could legitimately
see.

Determinism: with ``rand_init=False`` (the default) the whole attack is
a pure function of (policy weights, features, config), bitwise
reproducible across runs, worker counts and batch widths.  With
``rand_init=True`` the caller supplies a generator that wrapper policies
re-derive from ``config.seed`` at every session start, so streams stay
invariant to session ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abr.features import feature_dim
from repro.abr.video import Video
from repro.nn.network import MLP
from repro.rl.running_stat import RunningMeanStd

__all__ = [
    "AttackConfig",
    "attack_decision",
    "feature_envelope",
    "input_gradient",
    "perturb_features",
]

_KINDS = ("fgsm", "pgd")
_NORMS = ("linf", "l2")
#: ``RunningMeanStd.normalize``'s clip bound; the gradient chain must
#: mask slots the clip saturates.
_RMS_CLIP = 10.0


@dataclass(frozen=True)
class AttackConfig:
    """One observation-attack recipe.

    ``kind="fgsm"`` is the single-step attack (``steps``/``step_size``
    are ignored: one step of size ``eps``); ``kind="pgd"`` iterates
    ``steps`` projected ascent steps of ``step_size`` (default
    ``2.5 * eps / steps``, the standard PGD schedule).  ``eps`` is the
    ball radius in *raw feature units* under ``norm``.  ``targeted``
    drags decisions toward ``target_action`` (ladder index, default the
    lowest bitrate); untargeted ascends the cross-entropy against the
    clean decision.  ``rand_init`` starts PGD from a random point in the
    ball (seeded by ``seed``) instead of the clean features.
    """

    kind: str = "fgsm"
    norm: str = "linf"
    eps: float = 0.05
    steps: int = 10
    step_size: float | None = None
    targeted: bool = False
    target_action: int = 0
    rand_init: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.norm not in _NORMS:
            raise ValueError(f"norm must be one of {_NORMS}, got {self.norm!r}")
        if not self.eps >= 0.0:
            raise ValueError(f"eps must be >= 0, got {self.eps!r}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.step_size is not None and not self.step_size > 0.0:
            raise ValueError(f"step_size must be > 0, got {self.step_size!r}")
        if self.target_action < 0:
            raise ValueError(f"target_action must be >= 0, got {self.target_action}")

    @property
    def resolved_steps(self) -> int:
        return 1 if self.kind == "fgsm" else self.steps

    @property
    def resolved_step_size(self) -> float:
        if self.kind == "fgsm":
            return self.eps
        if self.step_size is not None:
            return self.step_size
        return 2.5 * self.eps / self.steps

    def label(self) -> str:
        """Short display name, e.g. ``pgd10-linf-0.05`` / ``fgsm-l2-0.3-t0``."""
        kind = self.kind if self.kind == "fgsm" else f"pgd{self.resolved_steps}"
        name = f"{kind}-{self.norm}-{self.eps:g}"
        if self.targeted:
            name += f"-t{self.target_action}"
        return name


def feature_envelope(video: Video) -> tuple[np.ndarray, np.ndarray]:
    """Per-slot ``(lo, hi)`` bounds of the valid feature vector.

    Every slot is non-negative (sizes, throughputs, delays, buffer);
    slot 0 (last bitrate / max bitrate) and the final slot (fraction of
    chunks remaining) are normalized fractions bounded by 1.  The
    unbounded slots get ``+inf`` -- the attack budget, not the envelope,
    limits them.
    """
    d = feature_dim(video.n_bitrates)
    lo = np.zeros(d)
    hi = np.full(d, np.inf)
    hi[0] = 1.0
    hi[d - 1] = 1.0
    return lo, hi


def _normalize_with_mask(
    x: np.ndarray, obs_rms: RunningMeanStd | None
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
    """Replay the policy's observation normalization, keeping chain-rule terms.

    Returns ``(z, inv_std, inside)`` where ``z`` is exactly what
    ``obs_rms.normalize(x)`` produces (same op order, bitwise identical),
    ``inv_std`` is ``1/sqrt(var + 1e-8)`` and ``inside`` masks the slots
    the +-clip did *not* saturate (where the normalization is locally
    linear).  Without normalization all three collapse to identity.
    """
    if obs_rms is None:
        return np.asarray(x, dtype=float), None, None
    inv_std = 1.0 / np.sqrt(obs_rms.var + 1e-8)
    z_lin = (np.asarray(x, dtype=float) - obs_rms.mean) / np.sqrt(obs_rms.var + 1e-8)
    z = np.clip(z_lin, -_RMS_CLIP, _RMS_CLIP)
    return z, inv_std, np.abs(z_lin) < _RMS_CLIP


def _objective_dlogits(
    probs: np.ndarray, reference: int, config: AttackConfig
) -> np.ndarray:
    """``dU/dlogits`` for the configured objective (ascent direction)."""
    if config.targeted:
        g = -probs
        g[0, config.target_action] += 1.0
    else:
        g = probs.copy()
        g[0, reference] -= 1.0
    return g


def input_gradient(
    policy_net: MLP,
    obs_rms: RunningMeanStd | None,
    x: np.ndarray,
    reference: int,
    config: AttackConfig,
) -> tuple[np.ndarray, np.ndarray]:
    """Logits and ``dU/dx`` of the attack objective at raw features ``x``.

    Returns ``(logits, grad)`` with ``logits`` shaped ``(1, n)`` (a copy,
    caller-owned) and ``grad`` shaped like ``x``.  ``reference`` is the
    clean decision the untargeted objective ascends away from (ignored
    when ``config.targeted``).  Accumulates parameter gradients into the
    network as a side effect; callers doing repeated crafting should
    snapshot and restore ``policy_net.flat_grads`` around the loop
    (:func:`perturb_features` does) so a surrogate mid-training keeps
    its accumulated gradients -- and its content fingerprint -- intact.
    """
    z, inv_std, inside = _normalize_with_mask(x, obs_rms)
    logits = policy_net.forward(z.reshape(1, -1)).copy()
    shifted = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    probs = e / e.sum(axis=-1, keepdims=True)
    dlogits = _objective_dlogits(probs, reference, config)
    dz = policy_net.backward_input_grad(dlogits)[0]
    if inv_std is None:
        return logits, dz
    return logits, dz * inside * inv_std


def _project(
    x: np.ndarray,
    x0: np.ndarray,
    config: AttackConfig,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Project ``x`` onto (eps-ball around ``x0``) intersect [lo, hi].

    Ball first, box second: ``x0`` itself satisfies the box, so the final
    componentwise clip can only shrink ``|x - x0|`` per slot -- it never
    re-inflates either norm, and the result satisfies both constraints.
    """
    if config.norm == "linf":
        x = np.clip(x, x0 - config.eps, x0 + config.eps)
    else:
        delta = x - x0
        norm = float(np.sqrt(np.sum(delta * delta)))
        if norm > config.eps:
            x = x0 + delta * (config.eps / norm)
    return np.clip(x, lo, hi)


def perturb_features(
    policy_net: MLP,
    obs_rms: RunningMeanStd | None,
    features: np.ndarray,
    config: AttackConfig,
    lo: np.ndarray,
    hi: np.ndarray,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Craft an adversarial feature vector inside the budget and envelope.

    ``features`` is the clean :func:`~repro.abr.features.build_features`
    output (never mutated); the return value is a fresh array.  The
    surrogate ``policy_net``/``obs_rms`` supply the gradients -- pass a
    *different* policy's pair to craft transfer attacks.  ``rng`` is
    only consumed when ``config.rand_init`` (PGD random start).
    """
    x0 = np.asarray(features, dtype=float).copy()
    if config.eps == 0.0:
        return x0
    # backward_input_grad accumulates dW/db as a side effect; crafting is
    # pure *evaluation*, so snapshot the flat gradient buffer and restore
    # it afterwards -- the surrogate's training state (and hence its
    # cache fingerprint) is untouched by being attacked.
    saved_grads = policy_net.flat_grads.copy()
    # The untargeted objective needs the surrogate's clean decision once,
    # fixed across iterations (ascend away from the *clean* action, not
    # from wherever the current iterate happens to sit).
    logits, grad = input_gradient(policy_net, obs_rms, x0, 0, config)
    reference = int(np.argmax(logits))
    if not config.targeted and reference != 0:
        _, grad = input_gradient(policy_net, obs_rms, x0, reference, config)

    x = x0
    if config.rand_init and config.kind == "pgd":
        if rng is None:
            raise ValueError("rand_init=True needs an rng")
        if config.norm == "linf":
            x = x0 + rng.uniform(-config.eps, config.eps, size=x0.shape)
        else:
            direction = rng.normal(size=x0.shape)
            direction /= max(float(np.sqrt(np.sum(direction * direction))), 1e-12)
            x = x0 + direction * (config.eps * rng.uniform())
        x = _project(x, x0, config, lo, hi)
        grad = None  # gradient at x0 is stale for a random start

    step = config.resolved_step_size
    for _ in range(config.resolved_steps):
        if grad is None:
            _, grad = input_gradient(policy_net, obs_rms, x, reference, config)
        if config.norm == "linf":
            x = x + step * np.sign(grad)
        else:
            norm = float(np.sqrt(np.sum(grad * grad)))
            if norm > 0.0:
                x = x + step * (grad / norm)
        x = _project(x, x0, config, lo, hi)
        grad = None
    policy_net.flat_grads[:] = saved_grads
    return x


def attack_decision(
    victim_net: MLP,
    victim_rms: RunningMeanStd | None,
    surrogate_net: MLP,
    surrogate_rms: RunningMeanStd | None,
    features: np.ndarray,
    config: AttackConfig,
    lo: np.ndarray,
    hi: np.ndarray,
    rng: np.random.Generator | None = None,
) -> tuple[int, np.ndarray]:
    """Craft a perturbation with the surrogate, decide with the victim.

    The single decision path shared by the serial ``AttackedPensieve``
    and its batched adapter -- both call this helper on one raw feature
    row, so serial and batched attacked evaluation are bitwise identical
    *by construction* (the batched adapter never takes the GEMM shortcut
    for attacked lanes).  Returns ``(action, adversarial_features)``;
    the victim forward replays ``PensieveAgent.select``'s exact op
    order, so at ``eps=0`` the decision matches the unattacked agent
    bitwise.
    """
    x_adv = perturb_features(surrogate_net, surrogate_rms, features, config, lo, hi, rng)
    z = victim_rms.normalize(x_adv) if victim_rms is not None else x_adv
    logits = victim_net.forward(np.atleast_2d(np.asarray(z, dtype=float)))
    return int(np.argmax(logits, axis=-1)[0]), x_adv
