"""Cross-protocol transfer study for observation- and environment-space attacks.

Extends Figure 2's cross-protocol damage measurement into a systematic
*crafted-vs-evaluated* matrix (AdvNet-style): each row is an attack
crafted against one (protocol, seed); each column is a protocol/seed the
attack is then evaluated against.

- **benign** row: every column on the clean trace corpus.
- **obs:** rows: FGSM/PGD perturbations crafted with one Pensieve head's
  gradients (the *surrogate*), applied to every Pensieve column's
  observations.  Non-learning columns (bb, bola, mpc...) never consume
  the feature vector, so an observation attack cannot touch them -- their
  cells equal the benign row *by construction*, which is exactly the
  paper-level claim the matrix demonstrates: white-box budgets that
  cripple the learned policy leave rule-based protocols unaffected.
- **env:** rows: adversarial *traces* (the paper's Eq. 1 adversary)
  crafted against one target protocol and replayed chunk-indexed under
  every column -- environment perturbations transfer to every protocol,
  learning or not.

All evaluation goes through
:func:`~repro.experiments.abr_suite.evaluate_protocols`, so ``workers``
(process fan-out), ``cache`` (content-addressed session memoization --
attack configs are folded into the wrapper policies' cache state) and
``batch_size`` (the lockstep engine) apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.abr.protocols.base import AbrPolicy
from repro.abr.protocols.optimal import optimal_plan_dp
from repro.abr.protocols.pensieve import PensieveAgent
from repro.abr.qoe import QoEWeights
from repro.abr.video import Video
from repro.attacks.policy import AttackedPensieve
from repro.attacks.whitebox import AttackConfig
from repro.experiments.abr_suite import evaluate_protocols
from repro.traces.trace import Trace

__all__ = [
    "BudgetCurvePoint",
    "TransferMatrix",
    "TransferRow",
    "attack_budget_curve",
    "mean_env_regret",
    "run_transfer_matrix",
]


@dataclass
class TransferRow:
    """One crafted attack evaluated against every column."""

    label: str
    #: "benign" | "obs" | "env"
    kind: str
    #: column name -> mean QoE over the row's corpus.
    qoe: dict[str, float]


@dataclass
class TransferMatrix:
    """The full crafted-vs-evaluated grid plus per-row damage."""

    columns: list[str]
    rows: list[TransferRow] = field(default_factory=list)

    @property
    def benign(self) -> TransferRow:
        return self.rows[0]

    def damage(self, row: TransferRow, column: str) -> float:
        """QoE damage (benign minus attacked) of one cell."""
        return self.benign.qoe[column] - row.qoe[column]

    def format_table(self, width: int = 9) -> str:
        """Fixed-width text table (committed to ``results/``)."""
        label_w = max(len("crafted vs"), *(len(r.label) for r in self.rows))
        header = " | ".join(
            [f"{'crafted vs':<{label_w}}"] + [f"{c:>{width}}" for c in self.columns]
        )
        rule = "-+-".join(["-" * label_w] + ["-" * width for _ in self.columns])
        lines = [header, rule]
        for row in self.rows:
            cells = [f"{row.qoe[c]:>{width}.3f}" for c in self.columns]
            lines.append(" | ".join([f"{row.label:<{label_w}}"] + cells))
        return "\n".join(lines)


def _means(per_trace: Mapping[str, list[float]]) -> dict[str, float]:
    return {name: float(np.mean(qoes)) for name, qoes in per_trace.items()}


def run_transfer_matrix(
    video: Video,
    traces: list[Trace],
    heads: Mapping[str, PensieveAgent],
    baselines: Mapping[str, AbrPolicy],
    attacks: list[AttackConfig],
    env_corpora: Mapping[str, list[Trace]] | None = None,
    chunk_indexed: bool = False,
    weights: QoEWeights = QoEWeights(),
    workers=None,
    cache=None,
    recorder=None,
    batch_size: int | None = None,
) -> TransferMatrix:
    """Build the crafted-vs-evaluated matrix.

    ``heads`` are the Pensieve columns (differently seeded/trained
    agents); ``baselines`` the non-learning columns.  Every attack config
    is crafted against every head (the surrogate), giving white-box
    cells on the diagonal and cross-seed transfer cells off it.
    ``env_corpora`` maps row labels (e.g. ``"env:eq1@bb"``) to
    pre-generated adversarial trace corpora, replayed chunk-indexed
    under all columns.
    """
    columns = list(baselines) + list(heads)
    matrix = TransferMatrix(columns=columns)

    protocols: dict[str, AbrPolicy] = {**baselines, **heads}
    benign = _means(
        evaluate_protocols(
            video, traces, protocols, chunk_indexed=chunk_indexed, weights=weights,
            workers=workers, cache=cache, recorder=recorder, batch_size=batch_size,
        )
    )
    matrix.rows.append(TransferRow(label="benign", kind="benign", qoe=benign))

    for config in attacks:
        for surrogate_name, surrogate in heads.items():
            attacked: dict[str, AbrPolicy] = {
                name: AttackedPensieve(
                    agent, config,
                    surrogate=None if agent is surrogate else surrogate,
                )
                for name, agent in heads.items()
            }
            qoe = _means(
                evaluate_protocols(
                    video, traces, attacked, chunk_indexed=chunk_indexed,
                    weights=weights, workers=workers, cache=cache,
                    recorder=recorder, batch_size=batch_size,
                )
            )
            # Observation attacks cannot reach protocols that never read
            # the feature vector: benign by construction, not re-run.
            for name in baselines:
                qoe[name] = benign[name]
            matrix.rows.append(
                TransferRow(
                    label=f"obs:{config.label()}@{surrogate_name}",
                    kind="obs",
                    qoe=qoe,
                )
            )

    for label, corpus in (env_corpora or {}).items():
        qoe = _means(
            evaluate_protocols(
                video, corpus, protocols, chunk_indexed=True, weights=weights,
                workers=workers, cache=cache, recorder=recorder,
                batch_size=batch_size,
            )
        )
        matrix.rows.append(TransferRow(label=label, kind="env", qoe=qoe))
    return matrix


@dataclass
class BudgetCurvePoint:
    """One (budget, damage) sample of the attack-strength sweep."""

    eps: float
    qoe_mean: float
    damage: float


def attack_budget_curve(
    video: Video,
    traces: list[Trace],
    agent: PensieveAgent,
    base_config: AttackConfig,
    eps_values: list[float],
    surrogate: PensieveAgent | None = None,
    chunk_indexed: bool = False,
    weights: QoEWeights = QoEWeights(),
    workers=None,
    cache=None,
    recorder=None,
    batch_size: int | None = None,
) -> list[BudgetCurvePoint]:
    """Sweep the attack budget and record mean QoE damage at each ``eps``.

    The ``eps = 0`` point (include it in ``eps_values`` to anchor the
    curve) is exactly the clean evaluation; damage is measured against
    the first ``eps == 0`` sample or, absent one, a separate clean run.
    Comparing these points against the environment adversary's Eq. 1
    regret (:func:`mean_env_regret`) at matched damage answers "how much
    observation budget buys the same QoE loss as trace crafting".
    """
    from dataclasses import replace

    protocols: dict[str, AbrPolicy] = {}
    for eps in eps_values:
        config = replace(base_config, eps=float(eps))
        protocols[f"eps={eps:g}"] = (
            AttackedPensieve(agent, config, surrogate=surrogate)
            if eps > 0.0
            else agent
        )
    per_trace = evaluate_protocols(
        video, traces, protocols, chunk_indexed=chunk_indexed, weights=weights,
        workers=workers, cache=cache, recorder=recorder, batch_size=batch_size,
    )
    means = _means(per_trace)
    if any(eps == 0.0 for eps in eps_values):
        clean = means[f"eps={0:g}"]
    else:
        clean = float(
            np.mean(
                evaluate_protocols(
                    video, traces, {"clean": agent}, chunk_indexed=chunk_indexed,
                    weights=weights, workers=workers, cache=cache,
                    recorder=recorder, batch_size=batch_size,
                )["clean"]
            )
        )
    return [
        BudgetCurvePoint(
            eps=float(eps),
            qoe_mean=means[f"eps={eps:g}"],
            damage=clean - means[f"eps={eps:g}"],
        )
        for eps in eps_values
    ]


def mean_env_regret(
    video: Video,
    traces: list[Trace],
    qoe_means: list[float],
    weights: QoEWeights = QoEWeights(),
) -> float:
    """Mean Eq. 1 regret of a protocol over an adversarial corpus.

    The paper's adversary reward is ``r_opt - r_protocol - p_smoothing``;
    per trace we take the offline-optimal per-chunk QoE (dynamic program
    over the crafted bandwidths) minus the protocol's achieved per-chunk
    QoE.  ``qoe_means`` must align with ``traces`` (one mean per trace,
    e.g. one column of :func:`evaluate_protocols` on the corpus).
    """
    if len(traces) != len(qoe_means):
        raise ValueError(
            f"{len(traces)} traces but {len(qoe_means)} QoE means"
        )
    regrets = []
    for trace, qoe_mean in zip(traces, qoe_means):
        opt_total, _ = optimal_plan_dp(
            video, trace.bandwidths_mbps[: video.n_chunks], weights=weights
        )
        regrets.append(opt_total / max(video.n_chunks, 1) - qoe_mean)
    return float(np.mean(regrets))
