"""Ordered parallel task execution over a persistent worker pool.

:class:`ParallelMap` fans a deterministic task list over a
``ProcessPoolExecutor`` and returns results **in submission order**, so
any caller whose tasks are independent gets output bitwise-identical to
its serial loop regardless of the worker count.  ``n_workers`` of 0 or 1
selects the exact in-process serial path: tasks run in the calling
process on the caller's own objects, with no pickling and native
exception propagation -- byte-for-byte the historical behaviour.

Worker failures re-raise the original exception in the parent with the
remote traceback attached as ``__cause__`` (a :class:`RemoteTraceback`),
mirroring ``concurrent.futures`` but surviving exceptions that do not
pickle.  Remaining tasks are cancelled on the first failure, in order.

Seeding follows the PR 1/2 convention: :func:`spawn_rngs` derives one
independent ``np.random.Generator`` per task from a single
``np.random.SeedSequence``, so task *i* is reproducible on its own no
matter where (or whether) the other tasks ran.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.obs.metrics import MetricsRecorder, NULL_RECORDER

__all__ = [
    "ParallelMap",
    "RemoteTraceback",
    "as_runner",
    "cached_map",
    "resolve_workers",
    "spawn_rngs",
    "spawn_seeds",
]

#: Environment variable giving the default worker count (0 = serial).
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(n_workers: int | None) -> int:
    """Resolve a worker-count spec: ``None`` falls back to ``$REPRO_WORKERS``."""
    if n_workers is None:
        n_workers = int(os.environ.get(WORKERS_ENV, "0") or 0)
    n_workers = int(n_workers)
    if n_workers < 0:
        raise ValueError(f"n_workers must be >= 0, got {n_workers}")
    return n_workers


def spawn_seeds(seed: int | None, n: int) -> list[int | None]:
    """``n`` independent child seeds of ``seed`` (all ``None`` if unseeded)."""
    if seed is None:
        return [None] * n
    return [int(c.generate_state(1)[0]) for c in np.random.SeedSequence(seed).spawn(n)]


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator] | list[None]:
    """One generator per task from ``SeedSequence(seed).spawn(n)`` (PR 1/2 style)."""
    if seed is None:
        return [None] * n
    return [np.random.default_rng(c) for c in np.random.SeedSequence(seed).spawn(n)]


class RemoteTraceback(Exception):
    """Carries a worker-side traceback as the ``__cause__`` of a re-raise."""

    def __init__(self, tb: str) -> None:
        super().__init__(tb)
        self.tb = tb

    def __str__(self) -> str:
        return f"\n{self.tb}"


def _invoke(fn: Callable[[Any], Any], task: Any) -> tuple[bool, Any]:
    """Run one task in a worker; never let an exception cross unpickled."""
    try:
        return True, fn(task)
    except BaseException as exc:  # noqa: BLE001 -- re-raised in the parent
        tb = traceback.format_exc()
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"worker raised an unpicklable {type(exc).__name__}: {exc!r}")
        return False, (exc, tb)


def _mp_context() -> mp.context.BaseContext:
    """Prefer ``fork`` (cheap, closure-friendly) like repro.rl.vec_env."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else methods[0])


class ParallelMap:
    """A persistent, order-preserving process-pool mapper.

    Parameters
    ----------
    n_workers:
        Worker processes.  ``0``/``1`` run tasks serially in-process (the
        exact historical loop); ``None`` reads ``$REPRO_WORKERS``.  The
        pool is created lazily on the first parallel :meth:`map` and
        reused across calls until :meth:`close`.
    recorder:
        Optional :class:`~repro.obs.MetricsRecorder`; each :meth:`map`
        records its wall-clock duration and task count (``exec/...``
        series), replacing the old print-line reporting.  The no-op
        default records nothing and costs nothing.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        recorder: MetricsRecorder | None = None,
    ) -> None:
        self.n_workers = resolve_workers(n_workers)
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._executor: ProcessPoolExecutor | None = None

    @property
    def parallel(self) -> bool:
        return self.n_workers > 1

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=_mp_context()
            )
        return self._executor

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every task; results in submission order.

        Serial mode calls ``fn(task)`` directly on the caller's objects.
        Parallel mode pickles each task to a worker, so tasks must be
        picklable and ``fn`` must be a module-level callable; each task
        sees its own copy of any shared objects.
        """
        tasks = list(tasks)
        self.recorder.count("exec/tasks", len(tasks))
        if not self.parallel:
            with self.recorder.timer(
                "exec/map_seconds", tasks=len(tasks), workers=0
            ):
                return [fn(task) for task in tasks]
        with self.recorder.timer(
            "exec/map_seconds", tasks=len(tasks), workers=self.n_workers
        ):
            futures = [self._pool().submit(_invoke, fn, task) for task in tasks]
            results: list[Any] = []
            try:
                for future in futures:
                    ok, payload = future.result()
                    if not ok:
                        exc, tb = payload
                        raise exc from RemoteTraceback(tb)
                    results.append(payload)
            finally:
                for future in futures:
                    future.cancel()
        return results

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelMap":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@contextmanager
def as_runner(
    workers: "int | None | ParallelMap",
    recorder: MetricsRecorder | None = None,
):
    """Yield a :class:`ParallelMap` for ``workers``.

    An existing runner is borrowed (and left open for its owner, keeping
    its own recorder); an int or ``None`` builds a temporary runner --
    reporting into ``recorder`` if given -- that is closed on exit.
    This is how experiment entry points share one persistent pool across
    their internal evaluation loops.
    """
    if isinstance(workers, ParallelMap):
        yield workers
        return
    runner = ParallelMap(workers, recorder=recorder)
    try:
        yield runner
    finally:
        runner.close()


def cached_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    runner: ParallelMap,
    cache=None,
    keys: Sequence[str] | None = None,
) -> list[Any]:
    """Memoized ordered map: serve cache hits, compute only the misses.

    ``keys[i]`` is the content-addressed cache key of ``tasks[i]`` (see
    :mod:`repro.exec.cache`); with ``cache`` or ``keys`` unset every task
    is computed.  Misses are computed through ``runner`` in task order and
    stored back, so a cold cache produces exactly the uncached results and
    a warm cache returns them without recomputation.
    """
    tasks = list(tasks)
    if cache is None or keys is None:
        return runner.map(fn, tasks)
    if len(keys) != len(tasks):
        raise ValueError(f"got {len(keys)} keys for {len(tasks)} tasks")
    results: list[Any] = [None] * len(tasks)
    pending: list[int] = []
    for i, key in enumerate(keys):
        hit, value = cache.lookup(key)
        if hit:
            results[i] = value
        else:
            pending.append(i)
    if pending:
        computed = runner.map(fn, [tasks[i] for i in pending])
        for i, value in zip(pending, computed):
            results[i] = value
            cache.put(keys[i], value)
    return results
