"""Parallel evaluation engine and content-addressed result cache.

The third leg of the perf stack (after PR 1's rollout vectorization and
PR 2's emulator fast path): the experiment layer's ``(protocol, trace,
seed)`` sessions are embarrassingly parallel and almost always repeated
across figure scripts, so :class:`ParallelMap` fans them over a
persistent process pool in deterministic submission order and
:class:`ResultCache` memoizes each session under a content digest.
``n_workers`` 0/1 and a disabled cache reproduce the historical serial
loops bit for bit.
"""

from repro.exec.cache import (
    CACHE_DIR_ENV,
    SCHEMA_VERSION,
    ResultCache,
    fingerprint,
    make_key,
)
from repro.exec.runner import (
    ParallelMap,
    RemoteTraceback,
    as_runner,
    cached_map,
    resolve_workers,
    spawn_rngs,
    spawn_seeds,
)

__all__ = [
    "CACHE_DIR_ENV",
    "SCHEMA_VERSION",
    "ParallelMap",
    "RemoteTraceback",
    "ResultCache",
    "as_runner",
    "cached_map",
    "fingerprint",
    "make_key",
    "resolve_workers",
    "spawn_rngs",
    "spawn_seeds",
]
