"""A content-addressed on-disk result cache for experiment sessions.

Entries are keyed by a SHA-256 digest of everything the result depends
on -- for an ABR session that is the video (chunk sizes, ladder,
duration), the trace samples, the policy identity *and* weights, the QoE
weights, the ``chunk_indexed`` flag and a code-schema version -- so a hit
is only possible when the replay would be bitwise-identical.  Renaming a
trace or re-running the same frozen policy therefore hits; retraining a
policy, editing a trace or bumping :data:`SCHEMA_VERSION` misses.

Robustness properties:

- **Atomic writes**: entries are written to a temp file in the cache
  directory and ``os.replace``d into place, so readers never observe a
  half-written entry (including under concurrent writers).
- **Corruption tolerance**: any unreadable, truncated or mismatched entry
  is treated as a miss (and deleted best-effort), never an error.
- **Counters**: hits, misses, stores, evictions and read errors are
  tracked per instance and rendered by :meth:`ResultCache.summary` so
  experiment scripts can report what was recomputed vs. served.

The default cache location is taken from ``$REPRO_CACHE_DIR``; with the
variable unset, :meth:`ResultCache.resolve` returns ``None`` and callers
run uncached (the historical behaviour).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import struct
import tempfile
from collections import deque
from hashlib import sha256
from pathlib import Path
from typing import Any, Callable

import numpy as np

__all__ = ["CACHE_DIR_ENV", "SCHEMA_VERSION", "ResultCache", "fingerprint", "make_key"]

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bumped whenever simulator/session semantics change, invalidating every
#: previously stored entry at once.
SCHEMA_VERSION = "1"


# ---------------------------------------------------------------------------
# Canonical fingerprinting.
# ---------------------------------------------------------------------------


def _feed(h, obj: Any, seen: set[int]) -> None:
    """Feed a canonical byte encoding of ``obj`` into hash ``h``.

    Objects hash by class identity plus *public* attribute state (private
    caches like MPC's combo tables or a layer's stashed activations must
    not affect the key), with two exceptions: ``np.random.Generator``
    attributes are always included -- a policy's exploration stream is
    part of its identity -- and a ``__cache_state__()`` method overrides
    the default entirely (e.g. :class:`~repro.nn.network.MLP` exposes its
    weights, :class:`~repro.traces.trace.Trace` drops its display name).
    """
    if obj is None:
        h.update(b"\x00N")
    elif isinstance(obj, bool):
        h.update(b"\x00B1" if obj else b"\x00B0")
    elif isinstance(obj, int):
        h.update(b"\x00I" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"\x00F" + struct.pack("<d", obj))
    elif isinstance(obj, str):
        h.update(b"\x00S" + obj.encode())
    elif isinstance(obj, bytes):
        h.update(b"\x00Y" + obj)
    elif isinstance(obj, np.generic):
        h.update(b"\x00G" + obj.dtype.str.encode() + obj.tobytes())
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"\x00A" + arr.dtype.str.encode() + str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, (list, tuple, deque)):
        h.update(b"\x00L" + str(len(obj)).encode())
        for item in obj:
            _feed(h, item, seen)
    elif isinstance(obj, (set, frozenset)):
        h.update(b"\x00E" + str(len(obj)).encode())
        for item in sorted(obj, key=repr):
            _feed(h, item, seen)
    elif isinstance(obj, dict):
        h.update(b"\x00D" + str(len(obj)).encode())
        for key, value in sorted(obj.items(), key=lambda kv: repr(kv[0])):
            _feed(h, key, seen)
            _feed(h, value, seen)
    elif isinstance(obj, np.random.Generator):
        h.update(b"\x00R")
        _feed(h, obj.bit_generator.state, seen)
    elif isinstance(obj, type):
        h.update(b"\x00T" + f"{obj.__module__}.{obj.__qualname__}".encode())
    elif callable(obj) and hasattr(obj, "__qualname__"):
        h.update(b"\x00C" + f"{obj.__module__}.{obj.__qualname__}".encode())
    else:
        if id(obj) in seen:  # self-referential structure: mark and stop
            h.update(b"\x00*")
            return
        seen.add(id(obj))
        cls = type(obj)
        h.update(b"\x00O" + f"{cls.__module__}.{cls.__qualname__}".encode())
        custom = getattr(obj, "__cache_state__", None)
        if custom is not None:
            _feed(h, custom(), seen)
        else:
            state = _attr_state(obj)
            if state is None:
                raise TypeError(
                    f"cannot fingerprint {cls.__module__}.{cls.__qualname__}: "
                    "no __dict__/__slots__; give it a __cache_state__()"
                )
            _feed(h, state, seen)
        seen.discard(id(obj))


def _attr_state(obj: Any) -> dict[str, Any] | None:
    attrs: dict[str, Any] = {}
    found = False
    if hasattr(obj, "__dict__"):
        attrs.update(vars(obj))
        found = True
    for slot_cls in type(obj).__mro__:
        for name in getattr(slot_cls, "__slots__", ()):
            if hasattr(obj, name):
                attrs.setdefault(name, getattr(obj, name))
                found = True
    if not found and dataclasses.is_dataclass(obj):
        attrs = {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}
        found = True
    if not found:
        return None
    return {
        name: value
        for name, value in attrs.items()
        if not name.startswith("_") or isinstance(value, np.random.Generator)
    }


def fingerprint(*parts: Any) -> str:
    """Hex SHA-256 of a canonical encoding of ``parts``."""
    h = sha256()
    for part in parts:
        _feed(h, part, set())
    return h.hexdigest()


def make_key(namespace: str, *parts: Any) -> str:
    """A cache key: digest of (schema version, namespace, content parts)."""
    return fingerprint(SCHEMA_VERSION, namespace, list(parts))


# ---------------------------------------------------------------------------
# The on-disk store.
# ---------------------------------------------------------------------------

_MISS = object()


class ResultCache:
    """Content-addressed pickle store with hit/miss/eviction accounting.

    Parameters
    ----------
    root:
        Cache directory (created on demand; entries are sharded into
        256 two-hex-digit subdirectories).
    max_entries:
        Optional size bound; when a store pushes the entry count past it,
        the oldest entries (by mtime) are evicted and counted.
    """

    def __init__(self, root: str | Path, max_entries: int | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.errors = 0
        self._n_entries = sum(1 for _ in self._entry_paths())

    # -- construction ------------------------------------------------------

    @classmethod
    def from_env(cls) -> "ResultCache | None":
        """The ``$REPRO_CACHE_DIR`` cache, or ``None`` when unset."""
        root = os.environ.get(CACHE_DIR_ENV)
        return cls(root) if root else None

    @classmethod
    def resolve(cls, cache: "ResultCache | str | Path | bool | None") -> "ResultCache | None":
        """Normalize a cache spec: instance, path, ``None`` (env), ``False`` (off)."""
        if cache is False:
            return None
        if cache is None:
            return cls.from_env()
        if isinstance(cache, ResultCache):
            return cache
        return cls(cache)

    # -- storage -----------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _entry_paths(self):
        for shard in self.root.iterdir() if self.root.exists() else ():
            if shard.is_dir():
                yield from shard.glob("*.pkl")

    def _recount(self) -> int:
        """Re-derive the entry count from disk.

        The maintained counter only sees *this* instance's stores; it
        drifts whenever corrupt entries are dropped or another process
        shares the directory.  Anywhere the count feeds a decision (the
        ``max_entries`` bound) or has just been invalidated (a dropped
        entry), the ground truth is the directory listing.
        """
        self._n_entries = sum(1 for _ in self._entry_paths())
        return self._n_entries

    def lookup(self, key: str) -> tuple[bool, Any]:
        """Return ``(hit, value)``; corrupt or foreign entries are misses."""
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return False, None
        try:
            record = pickle.loads(blob)
            if record["schema"] != SCHEMA_VERSION or record["key"] != key:
                raise ValueError("stale or mismatched cache record")
            value = record["value"]
        except Exception:
            # A bad entry is a miss, never a crash; drop it so it cannot
            # keep costing a failed parse on every lookup.
            self.errors += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            # The maintained count just lost an entry it may never have
            # seen stored (e.g. written by another process); recount
            # from disk rather than guess.
            self._recount()
            return False, None
        self.hits += 1
        return True, value

    def get(self, key: str, default: Any = None) -> Any:
        hit, value = self.lookup(key)
        return value if hit else default

    def put(self, key: str, value: Any) -> None:
        """Atomically store ``value`` under ``key`` (last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"schema": SCHEMA_VERSION, "key": key, "value": value}
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(record, fh, protocol=pickle.HIGHEST_PROTOCOL)
            existed = path.exists()
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        if not existed:
            self._n_entries += 1
        if self.max_entries is not None:
            self._evict_to_bound()

    def _evict_to_bound(self) -> None:
        """Evict oldest entries (by mtime) until the bound holds.

        Works from the directory listing, not the maintained counter, so
        the bound is enforced correctly even when other writers share
        the cache directory or corrupt-entry drops skewed the count.
        """
        entries = sorted(self._entry_paths(), key=lambda p: p.stat().st_mtime)
        self._n_entries = len(entries)
        assert self.max_entries is not None
        excess = max(self._n_entries - self.max_entries, 0)
        for path in entries[:excess]:
            try:
                path.unlink()
                self.evictions += 1
                self._n_entries = max(self._n_entries - 1, 0)
            except OSError:
                pass

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        hit, value = self.lookup(key)
        if hit:
            return value
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._n_entries = 0
        return removed

    def __len__(self) -> int:
        return self._n_entries

    # -- telemetry ---------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "errors": self.errors,
            "entries": self._n_entries,
        }

    def record_metrics(self, recorder, prefix: str = "cache/") -> None:
        """Publish the counters as metrics on a ``MetricsRecorder``.

        The observability path for what :meth:`summary` prints: one
        sample per counter (hits, misses, stores, evictions, errors,
        entries) plus the hit rate, under ``<prefix>`` names.
        """
        for name, value in self.stats().items():
            recorder.record(prefix + name, value)
        recorder.record(prefix + "hit_rate", self.hit_rate())

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> str:
        """One line for post-run reporting: served vs recomputed."""
        return (
            f"cache {self.root}: {self.hits} hits, {self.misses} misses "
            f"({self.hit_rate():.0%} served), {self.stores} stores, "
            f"{self.evictions} evictions, {self.errors} bad entries"
        )
