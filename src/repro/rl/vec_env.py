"""Synchronous vectorized environments for batched rollout collection.

A :class:`SyncVecEnv` steps ``n_envs`` independent environment instances in
lockstep so that the PPO rollout loop can evaluate the policy on all
observations in one stacked forward pass instead of one scalar pass per
env.  The paper's adversaries (and every benchmark that trains one) spend
nearly all their wall-clock in ``collect_rollout``; vectorizing it buys
proportionally more adversarial coverage per CPU-hour.

Semantics match the single-env PPO loop exactly:

- **Auto-reset.**  When an env reports ``done`` its terminal observation is
  stashed in ``info["terminal_observation"]`` and the env is immediately
  reset (seedless, like the single-env loop), so :meth:`step` always
  returns a valid next observation for every env.
- **Seeding.**  ``reset(seed=s)`` with one env forwards ``s`` verbatim, so
  a ``SyncVecEnv`` of one env reproduces ``Env.reset(seed=s)`` bit for
  bit.  With several envs, ``np.random.SeedSequence(s)`` is spawned into
  one child per env; each child both seeds that env's first episode and
  backs a per-env :class:`numpy.random.Generator` in :attr:`rngs`, so
  every env's random stream is independent yet fully determined by ``s``.
- **Batched stepping.**  If every env is the same class and that class
  defines ``batch_step(envs, actions)`` (a list of ``(obs, reward, done,
  info)`` tuples), stepping is delegated to it.  This lets environments
  vectorize their own hot paths across the batch -- e.g. the ABR
  adversary's exhaustive ``r_opt`` search -- which is where the real
  speedup lives when the env, not the network, dominates the step cost.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Sequence

import numpy as np

from repro.rl.env import Env

__all__ = ["SyncVecEnv", "make_vec_env"]


class SyncVecEnv:
    """N independent environments stepped in lockstep with auto-reset.

    Parameters
    ----------
    env_fns:
        One zero-argument factory per env.  Factories (rather than
        instances) guarantee the envs share no mutable state.
    seed:
        Optional master seed; forwarded to :meth:`reset` on first use via
        :meth:`seed`.
    """

    def __init__(
        self,
        env_fns: Sequence[Callable[[], Env]],
        seed: int | None = None,
    ) -> None:
        if not env_fns:
            raise ValueError("need at least one environment factory")
        self.envs: list[Env] = [fn() for fn in env_fns]
        self.n_envs = len(self.envs)
        self.observation_space = self.envs[0].observation_space
        self.action_space = self.envs[0].action_space
        for env in self.envs[1:]:
            if env.observation_space != self.observation_space:
                raise ValueError("all envs must share one observation space")
            if env.action_space != self.action_space:
                raise ValueError("all envs must share one action space")
        #: Per-env generators (populated by a seeded reset; ``None`` before).
        self.rngs: list[np.random.Generator] | None = None
        self._pending_seed = seed
        self._batch_step = self._resolve_batch_step()

    def _resolve_batch_step(self):
        cls = type(self.envs[0])
        if any(type(env) is not cls for env in self.envs):
            return None
        return getattr(cls, "batch_step", None)

    # -- env API ------------------------------------------------------------

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        """Reset every env; return stacked observations ``(n_envs, obs_dim)``.

        ``seed`` (or the constructor seed, on first reset) deterministically
        derives one seed per env; see the module docstring for the exact
        single-env pass-through guarantee.
        """
        if seed is None:
            seed = self._pending_seed
        self._pending_seed = None
        seeds = self._spawn_seeds(seed)
        obs = [env.reset(seed=s) for env, s in zip(self.envs, seeds)]
        return np.stack([np.asarray(o, dtype=float) for o in obs])

    def _spawn_seeds(self, seed: int | None) -> list[int | None]:
        if seed is None:
            return [None] * self.n_envs
        if self.n_envs == 1:
            # Verbatim pass-through: a one-env SyncVecEnv must reproduce
            # Env.reset(seed=...) exactly (tests/test_vec_env.py).
            self.rngs = [np.random.default_rng(seed)]
            return [int(seed)]
        children = np.random.SeedSequence(seed).spawn(self.n_envs)
        self.rngs = [np.random.default_rng(c) for c in children]
        return [int(rng.integers(2**31 - 1)) for rng in self.rngs]

    def step(
        self, actions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[dict]]:
        """Step all envs; returns ``(obs, rewards, dones, infos)``.

        ``obs`` is ``(n_envs, obs_dim)``; ``rewards`` and ``dones`` are
        ``(n_envs,)``.  Envs that finish are auto-reset and their terminal
        observation is preserved in ``info["terminal_observation"]``.
        """
        actions = np.asarray(actions)
        if len(actions) != self.n_envs:
            raise ValueError(
                f"expected {self.n_envs} actions, got {len(actions)}"
            )
        if self._batch_step is not None:
            results = self._batch_step(self.envs, actions)
        else:
            results = [env.step(actions[i]) for i, env in enumerate(self.envs)]
        obs_rows: list[np.ndarray] = []
        rewards = np.zeros(self.n_envs)
        dones = np.zeros(self.n_envs, dtype=bool)
        infos: list[dict] = []
        for i, (obs, reward, done, info) in enumerate(results):
            if done:
                info = dict(info)
                info["terminal_observation"] = np.asarray(obs, dtype=float)
                obs = self.envs[i].reset()
            obs_rows.append(np.asarray(obs, dtype=float))
            rewards[i] = reward
            dones[i] = done
            infos.append(info)
        return np.stack(obs_rows), rewards, dones, infos

    def close(self) -> None:
        for env in self.envs:
            env.close()

    def __len__(self) -> int:
        return self.n_envs

    def __repr__(self) -> str:
        return f"SyncVecEnv({self.n_envs} x {type(self.envs[0]).__name__})"


def make_vec_env(
    env_fn: Callable[[], Env] | Env,
    n_envs: int,
    seed: int | None = None,
) -> SyncVecEnv:
    """Build a :class:`SyncVecEnv` from a factory or a prototype instance.

    Passing an :class:`Env` instance deep-copies it ``n_envs - 1`` times (the
    original becomes env 0), which is convenient for prototypes that are
    cheap to copy; envs needing distinct construction-time state (e.g. a
    per-env emulator seed) should pass explicit factories instead.
    """
    if n_envs <= 0:
        raise ValueError("n_envs must be positive")
    if isinstance(env_fn, Env):
        prototype = env_fn
        copies = [copy.deepcopy(prototype) for _ in range(n_envs - 1)]
        instances = [prototype] + copies
        return SyncVecEnv([(lambda e=e: e) for e in instances], seed=seed)
    return SyncVecEnv([env_fn] * n_envs, seed=seed)
