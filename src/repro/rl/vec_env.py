"""Vectorized environments for batched rollout collection.

Two interchangeable backends implement the same VecEnv interface
(``reset``/``step``/``close`` with auto-reset and terminal observations):

- :class:`SyncVecEnv` steps ``n_envs`` independent environment instances
  in lockstep inside the calling process, so the PPO rollout loop can
  evaluate the policy on all observations in one stacked forward pass.
- :class:`SubprocVecEnv` splits the environments into contiguous shards
  hosted by worker processes (Pensieve's 16-actor trainer, Mao et al.
  SIGCOMM '17, is the pattern), so environments whose *step* -- not the
  policy pass -- dominates wall-clock (the packet-level CC emulator)
  advance on separate cores, with IPC per vec-step scaling with the
  worker count rather than the env count.

Semantics match the single-env PPO loop exactly, on both backends:

- **Auto-reset.**  When an env reports ``done`` its terminal observation is
  stashed in ``info["terminal_observation"]`` and the env is immediately
  reset (seedless, like the single-env loop), so :meth:`step` always
  returns a valid next observation for every env.
- **Seeding.**  ``reset(seed=s)`` with one env forwards ``s`` verbatim, so
  a one-env VecEnv reproduces ``Env.reset(seed=s)`` bit for bit.  With
  several envs, ``np.random.SeedSequence(s)`` is spawned into one child
  per env; each child both seeds that env's first episode and backs a
  per-env :class:`numpy.random.Generator` in :attr:`rngs`, so every env's
  random stream is independent yet fully determined by ``s``.  The two
  backends derive identical per-env seeds, which is what makes their
  rollouts bitwise interchangeable (tests/test_vec_env.py).
- **Batched stepping** (sync backend only).  If every env is the same
  class and that class defines ``batch_step(envs, actions)`` (a list of
  ``(obs, reward, done, info)`` tuples), stepping is delegated to it.
  This lets environments vectorize their own hot paths across the batch
  -- e.g. the ABR adversary's exhaustive ``r_opt`` search.  ``batch_step``
  is exact (same results as per-env stepping), so subproc workers simply
  step their single env.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import os
import traceback
from typing import Any, Callable, Sequence

import numpy as np

from repro.rl.env import Env

__all__ = ["SubprocVecEnv", "SyncVecEnv", "VecEnv", "make_vec_env"]


class VecEnv:
    """Interface and shared seeding logic for vectorized environments."""

    n_envs: int
    observation_space: Any
    action_space: Any

    def __init__(self, n_envs: int, seed: int | None = None) -> None:
        self.n_envs = n_envs
        #: Per-env generators (populated by a seeded reset; ``None`` before).
        self.rngs: list[np.random.Generator] | None = None
        self._pending_seed = seed

    def _consume_seed(self, seed: int | None) -> int | None:
        if seed is None:
            seed = self._pending_seed
        self._pending_seed = None
        return seed

    def _spawn_seeds(self, seed: int | None) -> list[int | None]:
        if seed is None:
            return [None] * self.n_envs
        if self.n_envs == 1:
            # Verbatim pass-through: a one-env VecEnv must reproduce
            # Env.reset(seed=...) exactly (tests/test_vec_env.py).
            self.rngs = [np.random.default_rng(seed)]
            return [int(seed)]
        children = np.random.SeedSequence(seed).spawn(self.n_envs)
        self.rngs = [np.random.default_rng(c) for c in children]
        return [int(rng.integers(2**31 - 1)) for rng in self.rngs]

    # -- abstract API ---------------------------------------------------------

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        raise NotImplementedError

    def step(
        self, actions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[dict]]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        return self.n_envs

    def _check_actions(self, actions: np.ndarray) -> np.ndarray:
        actions = np.asarray(actions)
        if len(actions) != self.n_envs:
            raise ValueError(
                f"expected {self.n_envs} actions, got {len(actions)}"
            )
        return actions


class SyncVecEnv(VecEnv):
    """N independent environments stepped in lockstep with auto-reset.

    Parameters
    ----------
    env_fns:
        One zero-argument factory per env.  Factories (rather than
        instances) guarantee the envs share no mutable state.
    seed:
        Optional master seed; forwarded to :meth:`reset` on first use.
    """

    def __init__(
        self,
        env_fns: Sequence[Callable[[], Env]],
        seed: int | None = None,
    ) -> None:
        if not env_fns:
            raise ValueError("need at least one environment factory")
        self.envs: list[Env] = [fn() for fn in env_fns]
        super().__init__(len(self.envs), seed=seed)
        self.observation_space = self.envs[0].observation_space
        self.action_space = self.envs[0].action_space
        for env in self.envs[1:]:
            if env.observation_space != self.observation_space:
                raise ValueError("all envs must share one observation space")
            if env.action_space != self.action_space:
                raise ValueError("all envs must share one action space")
        self._batch_step = self._resolve_batch_step()

    def _resolve_batch_step(self):
        cls = type(self.envs[0])
        if any(type(env) is not cls for env in self.envs):
            return None
        return getattr(cls, "batch_step", None)

    # -- env API ------------------------------------------------------------

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        """Reset every env; return stacked observations ``(n_envs, obs_dim)``.

        ``seed`` (or the constructor seed, on first reset) deterministically
        derives one seed per env; see the module docstring for the exact
        single-env pass-through guarantee.
        """
        seeds = self._spawn_seeds(self._consume_seed(seed))
        obs = [env.reset(seed=s) for env, s in zip(self.envs, seeds)]
        return np.stack([np.asarray(o, dtype=float) for o in obs])

    def step(
        self, actions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[dict]]:
        """Step all envs; returns ``(obs, rewards, dones, infos)``.

        ``obs`` is ``(n_envs, obs_dim)``; ``rewards`` and ``dones`` are
        ``(n_envs,)``.  Envs that finish are auto-reset and their terminal
        observation is preserved in ``info["terminal_observation"]``.
        """
        actions = self._check_actions(actions)
        if self._batch_step is not None:
            results = self._batch_step(self.envs, actions)
        else:
            results = [env.step(actions[i]) for i, env in enumerate(self.envs)]
        obs_rows: list[np.ndarray] = []
        rewards = np.zeros(self.n_envs)
        dones = np.zeros(self.n_envs, dtype=bool)
        infos: list[dict] = []
        for i, (obs, reward, done, info) in enumerate(results):
            if done:
                info = dict(info)
                info["terminal_observation"] = np.asarray(obs, dtype=float)
                obs = self.envs[i].reset()
            obs_rows.append(np.asarray(obs, dtype=float))
            rewards[i] = reward
            dones[i] = done
            infos.append(info)
        return np.stack(obs_rows), rewards, dones, infos

    def close(self) -> None:
        for env in self.envs:
            env.close()

    def __repr__(self) -> str:
        return f"SyncVecEnv({self.n_envs} x {type(self.envs[0]).__name__})"


def _subproc_worker(conn, env_fns: Sequence[Callable[[], Env]]) -> None:
    """Worker loop: build a shard of envs, then serve reset/step/close.

    A worker hosts one *contiguous shard* of the vec-env (one or more
    envs) and steps it serially in-process, so one pipe round trip moves
    the whole shard instead of one env -- IPC per vec-step scales with
    ``n_workers``, not ``n_envs``.  Serial in-process stepping is exactly
    what :class:`SyncVecEnv` does, which keeps the two backends bitwise
    interchangeable regardless of the sharding.

    The step reply carries post-auto-reset observations, with terminal
    observations stashed in the info dicts -- the exact contract of
    :meth:`SyncVecEnv.step` -- so the parent only stacks results.
    """
    envs: list[Env] = []
    try:
        envs = [fn() for fn in env_fns]
        conn.send(("ok", [(e.observation_space, e.action_space) for e in envs]))
        while True:
            cmd, data = conn.recv()
            if cmd == "step":
                out = []
                for env, action in zip(envs, data):
                    obs, reward, done, info = env.step(action)
                    if done:
                        info = dict(info)
                        info["terminal_observation"] = np.asarray(obs, dtype=float)
                        obs = env.reset()
                    out.append(
                        (np.asarray(obs, dtype=float), float(reward),
                         bool(done), info)
                    )
                conn.send(("ok", out))
            elif cmd == "reset":
                obs = [
                    np.asarray(env.reset(seed=s), dtype=float)
                    for env, s in zip(envs, data)
                ]
                conn.send(("ok", obs))
            elif cmd == "close":
                conn.send(("ok", None))
                break
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown command {cmd!r}"))
                break
    except (EOFError, KeyboardInterrupt):  # parent died or interrupt: exit quietly
        pass
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        for env in envs:
            env.close()
        conn.close()


class SubprocVecEnv(VecEnv):
    """Worker processes hosting shards of envs, same interface as SyncVecEnv.

    Use this backend when the environment's *step* dominates wall-clock --
    the packet-level CC emulator burns its time in the per-packet event
    loop, which the sync backend serializes on one core.  For envs whose
    cost is in the policy pass or in a batchable solver (the ABR
    adversary's ``r_opt``), prefer :class:`SyncVecEnv`: IPC per step costs
    more than the step itself.

    The ``n_envs`` environments are split into ``n_workers`` contiguous
    shards (one process each, defaulting to one worker per available
    core).  Each worker steps its shard serially, so the per-vec-step IPC
    cost is ``n_workers`` pipe round trips -- not ``n_envs`` -- while the
    stepping order within a shard matches :class:`SyncVecEnv` exactly.

    Parameters
    ----------
    env_fns:
        One zero-argument factory per env, executed inside its worker.
        With the default ``fork`` start method closures work as-is; under
        ``spawn`` the factories must be picklable.
    seed:
        Optional master seed; forwarded to :meth:`reset` on first use.
    start_method:
        Multiprocessing start method; defaults to ``fork`` where
        available (Linux), else the platform default.
    n_workers:
        Number of worker processes; defaults to
        ``min(n_envs, os.cpu_count())``.  More workers than cores only
        adds context switching; fewer trades parallelism for IPC.

    Worker failures surface as :class:`RuntimeError` carrying the remote
    traceback, and every remaining worker is shut down before raising, so
    a crashed env never leaves orphan processes behind.
    """

    def __init__(
        self,
        env_fns: Sequence[Callable[[], Env]],
        seed: int | None = None,
        start_method: str | None = None,
        n_workers: int | None = None,
    ) -> None:
        if not env_fns:
            raise ValueError("need at least one environment factory")
        super().__init__(len(env_fns), seed=seed)
        if n_workers is None:
            n_workers = min(self.n_envs, os.cpu_count() or 1)
        if not 1 <= n_workers <= self.n_envs:
            raise ValueError(
                f"n_workers must be in [1, n_envs], got {n_workers}"
            )
        self.n_workers = n_workers
        # Contiguous shard boundaries: worker w hosts envs
        # [_bounds[w], _bounds[w+1]).  Sizes differ by at most one.
        base, extra = divmod(self.n_envs, n_workers)
        bounds = [0]
        for w in range(n_workers):
            bounds.append(bounds[-1] + base + (1 if w < extra else 0))
        self._bounds = bounds
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        ctx = mp.get_context(start_method)
        self._conns = []
        self._procs = []
        self._closed = False
        for w in range(n_workers):
            shard = list(env_fns[bounds[w]:bounds[w + 1]])
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_subproc_worker, args=(child_conn, shard), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        spaces = [s for conn in self._conns for s in self._recv(conn)]
        self.observation_space, self.action_space = spaces[0]
        for obs_space, act_space in spaces[1:]:
            if obs_space != self.observation_space:
                raise ValueError("all envs must share one observation space")
            if act_space != self.action_space:
                raise ValueError("all envs must share one action space")

    def _recv(self, conn):
        try:
            status, payload = conn.recv()
        except (EOFError, ConnectionResetError):
            self.close(terminate=True)
            raise RuntimeError("a SubprocVecEnv worker died unexpectedly")
        if status == "error":
            self.close(terminate=True)
            raise RuntimeError(f"SubprocVecEnv worker failed:\n{payload}")
        return payload

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("SubprocVecEnv has been closed")

    # -- env API ------------------------------------------------------------

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        """Reset every env; return stacked observations ``(n_envs, obs_dim)``."""
        self._check_open()
        seeds = self._spawn_seeds(self._consume_seed(seed))
        bounds = self._bounds
        for w, conn in enumerate(self._conns):
            conn.send(("reset", seeds[bounds[w]:bounds[w + 1]]))
        obs = [o for conn in self._conns for o in self._recv(conn)]
        return np.stack(obs)

    def step(
        self, actions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[dict]]:
        """Step all envs in parallel; same contract as :meth:`SyncVecEnv.step`."""
        self._check_open()
        actions = self._check_actions(actions)
        bounds = self._bounds
        for w, conn in enumerate(self._conns):
            conn.send(("step", actions[bounds[w]:bounds[w + 1]]))
        results = [r for conn in self._conns for r in self._recv(conn)]
        obs = np.stack([r[0] for r in results])
        rewards = np.array([r[1] for r in results], dtype=float)
        dones = np.array([r[2] for r in results], dtype=bool)
        infos = [r[3] for r in results]
        return obs, rewards, dones, infos

    def close(self, terminate: bool = False) -> None:
        """Shut every worker down (idempotent).

        ``terminate`` skips the polite close handshake -- used on error
        paths where workers may no longer be responsive.
        """
        if self._closed:
            return
        self._closed = True
        if not terminate:
            for conn in self._conns:
                try:
                    conn.send(("close", None))
                    conn.recv()
                except (BrokenPipeError, EOFError, OSError):
                    pass
        for conn in self._conns:
            conn.close()
        for proc in self._procs:
            if terminate and proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close(terminate=True)
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "live"
        return (
            f"SubprocVecEnv({self.n_envs} envs / "
            f"{self.n_workers} workers, {state})"
        )


def make_vec_env(
    env_fn: Callable[[], Env] | Env,
    n_envs: int,
    seed: int | None = None,
    backend: str = "sync",
) -> VecEnv:
    """Build a vectorized env from a factory or a prototype instance.

    Passing an :class:`Env` instance deep-copies it ``n_envs - 1`` times (the
    original becomes env 0), which is convenient for prototypes that are
    cheap to copy; envs needing distinct construction-time state (e.g. a
    per-env emulator seed) should pass explicit factories instead.

    ``backend`` selects :class:`SyncVecEnv` (``"sync"``, default),
    :class:`SubprocVecEnv` (``"subproc"``), or an env-provided fully
    vectorized backend (``"batched"``).  Prototype instances with the
    subproc backend rely on the ``fork`` start method (each worker inherits
    its copy at fork time).

    The ``"batched"`` backend is duck-typed: the prototype env (the given
    instance, or one built from the factory) must expose a
    ``batched_vec_env(n_envs, seed=None)`` hook returning a :class:`VecEnv`
    whose rollouts are bitwise identical to the sync backend's -- e.g.
    :meth:`AbrAdversaryEnv.batched_vec_env
    <repro.adversary.abr_env.AbrAdversaryEnv.batched_vec_env>`.  Envs
    without the hook (such as the CC adversary) raise ``ValueError``.
    """
    if n_envs <= 0:
        raise ValueError("n_envs must be positive")
    if backend not in ("sync", "subproc", "batched"):
        raise ValueError(f"unknown vec-env backend {backend!r}")
    if backend == "batched":
        prototype = env_fn if isinstance(env_fn, Env) else env_fn()
        hook = getattr(prototype, "batched_vec_env", None)
        if hook is None:
            raise ValueError(
                f"{type(prototype).__name__} does not support the 'batched' "
                "vec-env backend (no batched_vec_env hook); use 'sync' or "
                "'subproc'"
            )
        return hook(n_envs, seed=seed)
    vec_cls = SubprocVecEnv if backend == "subproc" else SyncVecEnv
    if isinstance(env_fn, Env):
        prototype = env_fn
        copies = [copy.deepcopy(prototype) for _ in range(n_envs - 1)]
        instances = [prototype] + copies
        return vec_cls([(lambda e=e: e) for e in instances], seed=seed)
    return vec_cls([env_fn] * n_envs, seed=seed)
