"""Action and observation spaces (gym-compatible subset)."""

from __future__ import annotations

import numpy as np

__all__ = ["Box", "Discrete", "Space"]


class Space:
    """Base class for spaces."""

    def sample(self, rng: np.random.Generator):
        raise NotImplementedError

    def contains(self, x) -> bool:
        raise NotImplementedError


class Discrete(Space):
    """A finite set of actions ``{0, ..., n-1}``."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"Discrete space needs n > 0, got {n}")
        self.n = int(n)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.n))

    def contains(self, x) -> bool:
        try:
            xi = int(x)
        except (TypeError, ValueError):
            return False
        return 0 <= xi < self.n and float(x) == xi

    def __repr__(self) -> str:
        return f"Discrete({self.n})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Discrete) and other.n == self.n


class Box(Space):
    """A box in R^d with per-dimension bounds.

    The paper's adversary action spaces are boxes -- e.g. the congestion
    control adversary acts in bandwidth x latency x loss (Table 1).  PPO
    samples unbounded Gaussian actions; :meth:`clip` maps them back into the
    box ("exploration and clipping done by PPO will return the actions to
    the acceptable range", section 4).
    """

    def __init__(self, low, high) -> None:
        self.low = np.asarray(low, dtype=float).ravel()
        self.high = np.asarray(high, dtype=float).ravel()
        if self.low.shape != self.high.shape:
            raise ValueError("low and high must have the same shape")
        if np.any(self.low >= self.high):
            raise ValueError("each low bound must be strictly below its high bound")

    @property
    def dim(self) -> int:
        return self.low.shape[0]

    @property
    def shape(self) -> tuple[int, ...]:
        return self.low.shape

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high)

    def contains(self, x) -> bool:
        x = np.asarray(x, dtype=float).ravel()
        if x.shape != self.low.shape:
            return False
        return bool(np.all(x >= self.low) and np.all(x <= self.high))

    def clip(self, x) -> np.ndarray:
        """Clip a point (or batch) into the box."""
        return np.clip(np.asarray(x, dtype=float), self.low, self.high)

    def scale_from_unit(self, u) -> np.ndarray:
        """Map ``u`` in [-1, 1]^d affinely onto the box."""
        u = np.clip(np.asarray(u, dtype=float), -1.0, 1.0)
        return self.low + (u + 1.0) * 0.5 * (self.high - self.low)

    def to_unit(self, x) -> np.ndarray:
        """Map a box point to [-1, 1]^d (inverse of :meth:`scale_from_unit`)."""
        x = np.asarray(x, dtype=float)
        return 2.0 * (x - self.low) / (self.high - self.low) - 1.0

    def __repr__(self) -> str:
        return f"Box(low={self.low.tolist()}, high={self.high.tolist()})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Box)
            and np.array_equal(other.low, self.low)
            and np.array_equal(other.high, self.high)
        )
