"""Rollout storage and Generalized Advantage Estimation.

The buffer stores ``(n_steps, n_envs)`` transitions.  With ``n_envs == 1``
(the default) every array keeps the historical flat layout -- shape
``(capacity, ...)`` -- and the scalar :meth:`add` / :meth:`compute_gae`
paths are bit-for-bit the original single-env implementation, so existing
single-env training runs are unchanged.  With ``n_envs > 1`` arrays gain
an env axis -- ``(capacity, n_envs, ...)`` -- transitions arrive through
:meth:`add_batch`, GAE runs one vectorized backward sweep over all envs,
and :meth:`flattened` exposes ``(n_steps * n_envs, ...)`` views for the
minibatch update.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

import numpy as np

__all__ = ["RolloutBuffer"]


class FlatRollout(NamedTuple):
    """Flattened ``(n_steps * n_envs, ...)`` views over a filled buffer."""

    obs: np.ndarray
    actions: np.ndarray
    log_probs: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray


class RolloutBuffer:
    """Fixed-capacity on-policy rollout buffer.

    Stores transitions collected by the current policy, then computes
    GAE(lambda) advantages and discounted returns in a single backward
    sweep (Schulman et al. 2016).  ``dones`` mark episode boundaries so
    that advantages never bootstrap across resets.

    ``capacity`` counts *time steps*; each step holds one transition per
    env, so a full buffer contains ``capacity * n_envs`` transitions.
    """

    def __init__(
        self,
        capacity: int,
        obs_dim: int,
        act_dim: int,
        discrete: bool,
        n_envs: int = 1,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if n_envs <= 0:
            raise ValueError(f"n_envs must be positive, got {n_envs}")
        self.capacity = capacity
        self.discrete = discrete
        self.n_envs = n_envs
        self.obs_dim = obs_dim
        self.act_dim = act_dim
        # n_envs == 1 keeps the legacy flat layout; n_envs > 1 adds an
        # env axis after time.
        lead = (capacity,) if n_envs == 1 else (capacity, n_envs)
        self.obs = np.zeros(lead + (obs_dim,))
        if discrete:
            self.actions = np.zeros(lead, dtype=int)
        else:
            self.actions = np.zeros(lead + (act_dim,))
        self.rewards = np.zeros(lead)
        self.dones = np.zeros(lead, dtype=bool)
        self.values = np.zeros(lead)
        self.log_probs = np.zeros(lead)
        self.advantages = np.zeros(lead)
        self.returns = np.zeros(lead)
        self.pos = 0
        # Persistent minibatch index buffer (and its identity fill),
        # reshuffled in place each epoch instead of allocating a fresh
        # permutation; see :meth:`minibatches`.
        self._perm: np.ndarray | None = None
        self._perm_arange: np.ndarray | None = None

    @property
    def full(self) -> bool:
        return self.pos >= self.capacity

    @property
    def size(self) -> int:
        """Number of stored transitions across all envs."""
        return self.pos * self.n_envs

    def add(
        self,
        obs: np.ndarray,
        action,
        reward: float,
        done: bool,
        value: float,
        log_prob: float,
    ) -> None:
        """Store one single-env transition (requires ``n_envs == 1``)."""
        if self.n_envs != 1:
            raise RuntimeError("add() is single-env only; use add_batch()")
        if self.full:
            raise RuntimeError("buffer is full; call reset() first")
        i = self.pos
        self.obs[i] = obs
        self.actions[i] = action
        self.rewards[i] = reward
        self.dones[i] = done
        self.values[i] = value
        self.log_probs[i] = log_prob
        self.pos += 1

    def add_batch(
        self,
        obs: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        dones: np.ndarray,
        values: np.ndarray,
        log_probs: np.ndarray,
    ) -> None:
        """Store one time step of transitions for every env.

        ``obs`` is ``(n_envs, obs_dim)``; the rest are ``(n_envs,)``
        (actions ``(n_envs, act_dim)`` for continuous spaces).
        """
        if self.full:
            raise RuntimeError("buffer is full; call reset() first")
        i = self.pos
        if self.n_envs == 1:
            self.obs[i] = np.asarray(obs).reshape(self.obs_dim)
            if self.discrete:
                self.actions[i] = int(np.asarray(actions).reshape(()))
            else:
                self.actions[i] = np.asarray(actions).reshape(-1)
            self.rewards[i] = np.asarray(rewards).reshape(())
            self.dones[i] = bool(np.asarray(dones).reshape(()))
            self.values[i] = np.asarray(values).reshape(())
            self.log_probs[i] = np.asarray(log_probs).reshape(())
        else:
            self.obs[i] = obs
            self.actions[i] = actions
            self.rewards[i] = rewards
            self.dones[i] = dones
            self.values[i] = values
            self.log_probs[i] = log_probs
        self.pos += 1

    def reset(self) -> None:
        self.pos = 0

    def compute_gae(self, last_value, gamma: float, lam: float) -> None:
        """Fill :attr:`advantages` and :attr:`returns` for the stored slice.

        ``last_value`` bootstraps the value of the state following the final
        stored transition (zero if that transition ended an episode): a
        scalar for ``n_envs == 1``, else an ``(n_envs,)`` array.
        """
        n = self.pos
        if n == 0:
            raise RuntimeError("cannot compute GAE on an empty buffer")
        if self.n_envs == 1:
            self._compute_gae_single(
                float(np.asarray(last_value).reshape(-1)[0]), gamma, lam
            )
        else:
            self._compute_gae_vec(last_value, gamma, lam)

    def _compute_gae_single(self, last_value: float, gamma: float, lam: float) -> None:
        n = self.pos
        adv = 0.0
        for t in reversed(range(n)):
            if t == n - 1:
                next_value = last_value
            else:
                next_value = self.values[t + 1]
            non_terminal = 0.0 if self.dones[t] else 1.0
            delta = self.rewards[t] + gamma * next_value * non_terminal - self.values[t]
            adv = delta + gamma * lam * non_terminal * adv
            self.advantages[t] = adv
        self.returns[:n] = self.advantages[:n] + self.values[:n]

    def _compute_gae_vec(self, last_values, gamma: float, lam: float) -> None:
        n = self.pos
        last = np.asarray(last_values, dtype=float).reshape(self.n_envs)
        adv = np.zeros(self.n_envs)
        for t in reversed(range(n)):
            next_values = last if t == n - 1 else self.values[t + 1]
            non_terminal = 1.0 - self.dones[t].astype(float)
            delta = self.rewards[t] + gamma * next_values * non_terminal - self.values[t]
            adv = delta + gamma * lam * non_terminal * adv
            self.advantages[t] = adv
        self.returns[:n] = self.advantages[:n] + self.values[:n]

    def flattened(self) -> FlatRollout:
        """Views of the filled slice, flattened to ``(pos * n_envs, ...)``.

        Ordering is time-major (all envs of step 0, then step 1, ...); for
        ``n_envs == 1`` these are exactly the legacy per-step arrays.
        """
        n = self.pos
        if self.n_envs == 1:
            return FlatRollout(
                self.obs[:n], self.actions[:n], self.log_probs[:n],
                self.advantages[:n], self.returns[:n],
            )
        return FlatRollout(
            self.obs[:n].reshape(-1, self.obs_dim),
            self.actions[:n].reshape(-1)
            if self.discrete
            else self.actions[:n].reshape(-1, self.act_dim),
            self.log_probs[:n].reshape(-1),
            self.advantages[:n].reshape(-1),
            self.returns[:n].reshape(-1),
        )

    def epoch_permutation(self, rng: np.random.Generator) -> np.ndarray:
        """Return a fresh shuffled permutation of all stored flat indices.

        The returned array is one persistent index buffer that is refilled
        and shuffled in place per call -- draw-for-draw the RNG stream of
        the historical ``rng.permutation(self.size)`` (which is defined as
        shuffle-of-arange), with zero steady-state allocation.  The buffer
        is invalidated by the next call; consecutive ``batch_size`` slices
        of it are the epoch's minibatches (see :meth:`minibatches`), which
        lets a caller gather the whole epoch's rows in one pass and slice
        contiguous minibatch views off the result.
        """
        n = self.size
        if self._perm is None or self._perm.shape[0] != n:
            self._perm_arange = np.arange(n)
            self._perm = np.empty_like(self._perm_arange)
        self._perm[:] = self._perm_arange
        rng.shuffle(self._perm)
        return self._perm

    def minibatches(
        self, batch_size: int, rng: np.random.Generator
    ) -> Iterator[np.ndarray]:
        """Yield shuffled flat index arrays covering all stored transitions.

        The yielded arrays are views of the :meth:`epoch_permutation`
        buffer and are invalidated by the next ``minibatches`` /
        ``epoch_permutation`` call; do not interleave two iterations over
        the same buffer.
        """
        perm = self.epoch_permutation(rng)
        for start in range(0, self.size, batch_size):
            yield perm[start : start + batch_size]

    def _episode_totals(self) -> list[float]:
        """Total reward of each *completed* episode in the stored slice."""
        n = self.pos
        totals: list[float] = []
        if self.n_envs == 1:
            acc = 0.0
            for t in range(n):
                acc += self.rewards[t]
                if self.dones[t]:
                    totals.append(acc)
                    acc = 0.0
            return totals
        for e in range(self.n_envs):
            acc = 0.0
            for t in range(n):
                acc += self.rewards[t, e]
                if self.dones[t, e]:
                    totals.append(acc)
                    acc = 0.0
        return totals

    def mean_episode_reward(self) -> float:
        """Mean total reward of *completed* episodes in the buffer.

        Falls back to the per-env total reward when no episode boundary
        was recorded.
        """
        n = self.pos
        totals = self._episode_totals()
        if not totals:
            if self.n_envs == 1:
                return float(self.rewards[:n].sum())
            return float(self.rewards[:n].sum(axis=0).mean())
        return float(np.mean(totals))

    def episode_return_stats(self) -> dict[str, float]:
        """Distribution stats of the completed episodes in the buffer.

        ``episode_count`` counts completed episodes; when none completed
        this rollout, min/max/std fall back to the running per-env totals
        (with ``episode_count`` 0) so training diagnostics stay defined
        on environments with episodes longer than one rollout.
        """
        totals = self._episode_totals()
        count = len(totals)
        if not totals:
            n = self.pos
            if self.n_envs == 1:
                totals = [float(self.rewards[:n].sum())]
            else:
                totals = [float(s) for s in self.rewards[:n].sum(axis=0)]
        return {
            "episode_return_min": float(np.min(totals)),
            "episode_return_max": float(np.max(totals)),
            "episode_return_std": float(np.std(totals)),
            "episode_count": count,
        }
