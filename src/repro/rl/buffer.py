"""Rollout storage and Generalized Advantage Estimation."""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["RolloutBuffer"]


class RolloutBuffer:
    """Fixed-capacity on-policy rollout buffer.

    Stores transitions collected by the current policy, then computes
    GAE(lambda) advantages and discounted returns in a single backward
    sweep (Schulman et al. 2016).  ``dones`` mark episode boundaries so
    that advantages never bootstrap across resets.
    """

    def __init__(self, capacity: int, obs_dim: int, act_dim: int, discrete: bool) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.discrete = discrete
        self.obs = np.zeros((capacity, obs_dim))
        if discrete:
            self.actions = np.zeros(capacity, dtype=int)
        else:
            self.actions = np.zeros((capacity, act_dim))
        self.rewards = np.zeros(capacity)
        self.dones = np.zeros(capacity, dtype=bool)
        self.values = np.zeros(capacity)
        self.log_probs = np.zeros(capacity)
        self.advantages = np.zeros(capacity)
        self.returns = np.zeros(capacity)
        self.pos = 0

    @property
    def full(self) -> bool:
        return self.pos >= self.capacity

    def add(
        self,
        obs: np.ndarray,
        action,
        reward: float,
        done: bool,
        value: float,
        log_prob: float,
    ) -> None:
        if self.full:
            raise RuntimeError("buffer is full; call reset() first")
        i = self.pos
        self.obs[i] = obs
        self.actions[i] = action
        self.rewards[i] = reward
        self.dones[i] = done
        self.values[i] = value
        self.log_probs[i] = log_prob
        self.pos += 1

    def reset(self) -> None:
        self.pos = 0

    def compute_gae(self, last_value: float, gamma: float, lam: float) -> None:
        """Fill :attr:`advantages` and :attr:`returns` for the stored slice.

        ``last_value`` bootstraps the value of the state following the final
        stored transition (zero if that transition ended an episode).
        """
        n = self.pos
        if n == 0:
            raise RuntimeError("cannot compute GAE on an empty buffer")
        adv = 0.0
        for t in reversed(range(n)):
            if t == n - 1:
                next_value = last_value
            else:
                next_value = self.values[t + 1]
            non_terminal = 0.0 if self.dones[t] else 1.0
            delta = self.rewards[t] + gamma * next_value * non_terminal - self.values[t]
            adv = delta + gamma * lam * non_terminal * adv
            self.advantages[t] = adv
        self.returns[:n] = self.advantages[:n] + self.values[:n]

    def minibatches(
        self, batch_size: int, rng: np.random.Generator
    ) -> Iterator[np.ndarray]:
        """Yield shuffled index arrays covering the filled portion."""
        idx = rng.permutation(self.pos)
        for start in range(0, self.pos, batch_size):
            yield idx[start : start + batch_size]

    def mean_episode_reward(self) -> float:
        """Mean total reward of *completed* episodes in the buffer.

        Falls back to the sum over the whole buffer when no episode
        boundary was recorded.
        """
        n = self.pos
        totals: list[float] = []
        acc = 0.0
        for t in range(n):
            acc += self.rewards[t]
            if self.dones[t]:
                totals.append(acc)
                acc = 0.0
        if not totals:
            return float(self.rewards[:n].sum())
        return float(np.mean(totals))
