"""The environment interface used across the library (classic gym API)."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.rl.spaces import Space

__all__ = ["Env"]


class Env:
    """Abstract RL environment.

    Subclasses must define :attr:`observation_space` and :attr:`action_space`
    and implement :meth:`reset` and :meth:`step`.  The step contract follows
    the classic gym API: ``(observation, reward, done, info)``.
    """

    observation_space: Space
    action_space: Space

    def reset(self, *, seed: int | None = None) -> np.ndarray:
        raise NotImplementedError

    def step(self, action: Any) -> tuple[np.ndarray, float, bool, dict]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - optional hook
        """Release resources (no-op by default)."""
