"""Reinforcement-learning substrate (gym-like API + PPO, NumPy only).

Replaces the OpenAI Gym / stable-baselines stack the paper relied on:

- :mod:`repro.rl.spaces` -- ``Box`` and ``Discrete`` action/observation spaces,
- :mod:`repro.rl.env` -- the environment interface,
- :mod:`repro.rl.buffer` -- rollout storage with GAE(lambda),
- :mod:`repro.rl.policy` -- actor-critic policies over MLPs,
- :mod:`repro.rl.ppo` -- Proximal Policy Optimization (clipped surrogate),
- :mod:`repro.rl.reinforce` -- REINFORCE-with-baseline (trainer ablation),
- :mod:`repro.rl.running_stat` -- online observation normalization,
- :mod:`repro.rl.vec_env` -- vectorized envs for batched rollouts
  (in-process ``SyncVecEnv`` and process-parallel ``SubprocVecEnv``).
"""

from repro.rl.buffer import RolloutBuffer
from repro.rl.env import Env
from repro.rl.policy import ActorCritic
from repro.rl.ppo import PPO, PPOConfig
from repro.rl.reinforce import Reinforce, ReinforceConfig
from repro.rl.running_stat import RunningMeanStd
from repro.rl.spaces import Box, Discrete
from repro.rl.vec_env import SubprocVecEnv, SyncVecEnv, VecEnv, make_vec_env

__all__ = [
    "ActorCritic",
    "Box",
    "Discrete",
    "Env",
    "PPO",
    "PPOConfig",
    "Reinforce",
    "ReinforceConfig",
    "RolloutBuffer",
    "RunningMeanStd",
    "SubprocVecEnv",
    "SyncVecEnv",
    "VecEnv",
    "make_vec_env",
]
