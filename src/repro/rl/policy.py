"""Actor-critic policies over MLPs (categorical and Gaussian heads)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.distributions import Categorical, DiagGaussian
from repro.nn.network import MLP
from repro.rl.spaces import Box, Discrete, Space

__all__ = ["ActorCritic"]


class ActorCritic:
    """A policy network and a value network with a common interface.

    Discrete action spaces get a categorical head; box action spaces get a
    diagonal-Gaussian head whose mean the network outputs in "unit space"
    ([-1, 1]^d after tanh-free clipping) with a learned state-independent
    log standard deviation -- matching the stable-baselines MlpPolicy the
    paper trained its adversaries with.  Continuous actions are produced
    unclipped; environments clip them into the action box, as the paper
    notes in section 4.
    """

    def __init__(
        self,
        obs_dim: int,
        action_space: Space,
        hidden: Sequence[int] = (32, 16),
        activation: str = "tanh",
        rng: np.random.Generator | None = None,
        init_log_std: float = 0.0,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        self.obs_dim = obs_dim
        self.action_space = action_space
        self.discrete = isinstance(action_space, Discrete)
        if self.discrete:
            out_dim = action_space.n
        elif isinstance(action_space, Box):
            out_dim = action_space.dim
        else:
            raise TypeError(f"unsupported action space: {action_space!r}")

        self.policy_net = MLP(
            (obs_dim, *hidden, out_dim), rng, activation=activation, out_gain=0.01
        )
        self.value_net = MLP((obs_dim, *hidden, 1), rng, activation=activation, out_gain=1.0)
        if self.discrete:
            self.log_std = None
        else:
            self.log_std = np.full(out_dim, float(init_log_std))
            self._dlog_std = np.zeros(out_dim)

    # -- forward passes ----------------------------------------------------

    def distribution(self, obs: np.ndarray):
        """Return the action distribution for a batch of observations.

        Note: the underlying network caches this forward pass, so a
        subsequent :meth:`policy_backward` backpropagates through it.
        """
        out = self.policy_net.forward(obs)
        if self.discrete:
            return Categorical(out)
        return DiagGaussian(out, self.log_std)

    def value(self, obs: np.ndarray) -> np.ndarray:
        """Return state-value estimates ``(n,)`` for a batch."""
        return self.value_net.forward(obs)[:, 0]

    def act(
        self, obs: np.ndarray, rng: np.random.Generator, deterministic: bool = False
    ) -> tuple[np.ndarray, float, float]:
        """Select an action for a single observation.

        Returns ``(action, log_prob, value)``.  For discrete spaces the
        action is a Python int; for boxes it is a 1-D array (unclipped).
        """
        obs = np.atleast_2d(np.asarray(obs, dtype=float))
        dist = self.distribution(obs)
        action = dist.mode() if deterministic else dist.sample(rng)
        log_prob = float(dist.log_prob(action)[0])
        value = float(self.value(obs)[0])
        if self.discrete:
            return int(action[0]), log_prob, value
        return action[0], log_prob, value

    def act_batch(
        self, obs: np.ndarray, rng: np.random.Generator, deterministic: bool = False
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Select one action per row of a stacked observation batch.

        Returns ``(actions, log_probs, values)`` with leading dimension
        ``n``; actions are ``(n,)`` ints for discrete spaces and ``(n, d)``
        unclipped floats for boxes.  On a single-row batch this performs
        exactly the same forward pass and random draws as :meth:`act`, so
        a vectorized rollout of one env is bitwise identical to the
        scalar loop.
        """
        obs = np.atleast_2d(np.asarray(obs, dtype=float))
        dist = self.distribution(obs)
        actions = dist.mode() if deterministic else dist.sample(rng)
        log_probs = dist.log_prob(actions)
        values = self.value(obs)
        if self.discrete:
            return np.asarray(actions, dtype=int), log_probs, values
        return actions, log_probs, values

    # -- gradients ---------------------------------------------------------

    def zero_grad(self) -> None:
        self.policy_net.zero_grad()
        self.value_net.zero_grad()
        if self.log_std is not None:
            self._dlog_std[:] = 0.0

    def policy_backward(self, d_out: np.ndarray, d_log_std: np.ndarray | None = None) -> None:
        """Backpropagate a gradient w.r.t. the policy head outputs.

        ``d_out`` is the gradient w.r.t. logits (discrete) or the Gaussian
        mean (continuous); ``d_log_std`` accumulates into the log-std
        parameter for continuous policies.
        """
        self.policy_net.backward(d_out)
        if d_log_std is not None:
            if self.log_std is None:
                raise ValueError("d_log_std given for a discrete policy")
            self._dlog_std += d_log_std

    def value_backward(self, d_values: np.ndarray) -> None:
        """Backpropagate a gradient w.r.t. the value outputs ``(n,)``."""
        self.value_net.backward(np.asarray(d_values, dtype=float)[:, None])

    # -- parameter plumbing --------------------------------------------------

    def parameters(self) -> list[np.ndarray]:
        params = self.policy_net.parameters()
        if self.log_std is not None:
            params = params + [self.log_std]
        return params + self.value_net.parameters()

    def gradients(self) -> list[np.ndarray]:
        grads = self.policy_net.gradients()
        if self.log_std is not None:
            grads = grads + [self._dlog_std]
        return grads + self.value_net.gradients()

    def get_weights(self) -> list[np.ndarray]:
        return [p.copy() for p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(f"expected {len(params)} arrays, got {len(weights)}")
        for p, w in zip(params, weights):
            p[:] = w
