"""Actor-critic policies over MLPs (categorical and Gaussian heads)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.distributions import Categorical, DiagGaussian
from repro.nn.network import MLP
from repro.rl.spaces import Box, Discrete, Space

__all__ = ["ActorCritic"]

_F64 = np.dtype(np.float64)


class ActorCritic:
    """A policy network and a value network with a common interface.

    Discrete action spaces get a categorical head; box action spaces get a
    diagonal-Gaussian head whose mean the network outputs in "unit space"
    ([-1, 1]^d after tanh-free clipping) with a learned state-independent
    log standard deviation -- matching the stable-baselines MlpPolicy the
    paper trained its adversaries with.  Continuous actions are produced
    unclipped; environments clip them into the action box, as the paper
    notes in section 4.
    """

    def __init__(
        self,
        obs_dim: int,
        action_space: Space,
        hidden: Sequence[int] = (32, 16),
        activation: str = "tanh",
        rng: np.random.Generator | None = None,
        init_log_std: float = 0.0,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        self.obs_dim = obs_dim
        self.action_space = action_space
        self.discrete = isinstance(action_space, Discrete)
        if self.discrete:
            out_dim = action_space.n
        elif isinstance(action_space, Box):
            out_dim = action_space.dim
        else:
            raise TypeError(f"unsupported action space: {action_space!r}")

        self.policy_net = MLP(
            (obs_dim, *hidden, out_dim), rng, activation=activation, out_gain=0.01
        )
        self.value_net = MLP((obs_dim, *hidden, 1), rng, activation=activation, out_gain=1.0)
        if self.discrete:
            self.log_std = None
        else:
            self.log_std = np.full(out_dim, float(init_log_std))
            self._dlog_std = np.zeros(out_dim)
        self._pack()

    def _pack(self) -> None:
        """Pack both networks (and ``log_std``) into one master flat buffer.

        Layout order matches :meth:`parameters` -- policy layers, then
        ``log_std``, then value layers -- so :attr:`param_slices` gives
        the per-array reduction segments of the flat gradient in the
        historical clipping order.  The optimizer then updates the whole
        policy in a single fused pass over :attr:`flat_params` /
        :attr:`flat_grads`.
        """
        n_log_std = 0 if self.log_std is None else self.log_std.size
        total = (
            self.policy_net.num_parameters()
            + n_log_std
            + self.value_net.num_parameters()
        )
        self.flat_params = np.empty(total)
        self.flat_grads = np.zeros(total)
        offset = self.policy_net.pack_into(self.flat_params, self.flat_grads, 0)
        self.param_slices: list[tuple[int, int]] = list(self.policy_net.param_slices)
        if self.log_std is not None:
            end = offset + n_log_std
            self.flat_params[offset:end] = self.log_std
            self.log_std = self.flat_params[offset:end]
            self.flat_grads[offset:end] = self._dlog_std
            self._dlog_std = self.flat_grads[offset:end]
            self.param_slices.append((offset, end))
            offset = end
        offset = self.value_net.pack_into(self.flat_params, self.flat_grads, offset)
        self.param_slices.extend(self.value_net.param_slices)
        assert offset == total
        # Hot-loop plumbing: every dense layer of both nets (zero_grad
        # marks them in one sweep) and the distribution scratch dict (see
        # repro.nn.distributions._scratch_buf).
        self._dense_layers = self.policy_net._dense + self.value_net._dense
        self._dist_scratch: dict = {}

    def share_forward_scratch(self) -> None:
        """Alias the value net's forward/backward scratch onto the policy net's.

        Opt-in cache optimization for drivers whose call order is strictly
        *policy forward -> policy backward -> value forward -> value
        backward* within every step (PPO's update loop and rollout both
        are): the two nets then never need their activation/input-gradient
        scratch at the same time, and sharing one set halves the hot
        working set.  Do NOT call this from a driver that backpropagates
        one net after forwarding the other (e.g. REINFORCE forwards the
        value net first and backpropagates it last) -- the second forward
        overwrites the cached activations the later backward would need.
        Only same-shaped buffers are shared; if a layer's scratch is later
        regrown for a bigger batch the aliasing quietly ends, costing only
        the optimization.
        """
        for (dp, ap), (dv, av) in zip(self.policy_net._pairs, self.value_net._pairs):
            if dp.out_dim == dv.out_dim:
                dv._y = dp._y
                dv._gW = dp._gW
                dv._gb = dp._gb
                if ap.name == av.name:
                    av._y = ap._y
                    av._g = ap._g
            if dp.in_dim == dv.in_dim:
                dv._dx = dp._dx
        # The value net's execution plans (if any were already built)
        # reference the buffers just swapped out.
        self.value_net._fplan_n = self.value_net._bplan_n = -1

    # -- forward passes ----------------------------------------------------

    def distribution(self, obs: np.ndarray):
        """Return the action distribution for a batch of observations.

        Note: the underlying network caches this forward pass, so a
        subsequent :meth:`policy_backward` backpropagates through it.
        """
        out = self.policy_net.forward(obs)
        if self.discrete:
            return Categorical(out)
        return DiagGaussian(out, self.log_std, scratch=self._dist_scratch)

    def value(self, obs: np.ndarray) -> np.ndarray:
        """Return state-value estimates ``(n,)`` for a batch."""
        return self.value_net.forward(obs)[:, 0]

    def act(
        self, obs: np.ndarray, rng: np.random.Generator, deterministic: bool = False
    ) -> tuple[np.ndarray, float, float]:
        """Select an action for a single observation.

        Returns ``(action, log_prob, value)``.  For discrete spaces the
        action is a Python int; for boxes it is a 1-D array (unclipped).
        """
        obs = np.atleast_2d(np.asarray(obs, dtype=float))
        dist = self.distribution(obs)
        action = dist.mode() if deterministic else dist.sample(rng)
        log_prob = float(dist.log_prob(action)[0])
        value = float(self.value(obs)[0])
        if self.discrete:
            return int(action[0]), log_prob, value
        return action[0], log_prob, value

    def act_batch(
        self, obs: np.ndarray, rng: np.random.Generator, deterministic: bool = False
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Select one action per row of a stacked observation batch.

        Returns ``(actions, log_probs, values)`` with leading dimension
        ``n``; actions are ``(n,)`` ints for discrete spaces and ``(n, d)``
        unclipped floats for boxes.  On a single-row batch this performs
        exactly the same forward pass and random draws as :meth:`act`, so
        a vectorized rollout of one env is bitwise identical to the
        scalar loop.
        """
        obs = np.atleast_2d(np.asarray(obs, dtype=float))
        dist = self.distribution(obs)
        actions = dist.mode() if deterministic else dist.sample(rng)
        log_probs = dist.log_prob(actions)
        values = self.value(obs)
        if self.discrete:
            return np.asarray(actions, dtype=int), log_probs, values
        return actions, log_probs, values

    # -- gradients ---------------------------------------------------------

    def zero_grad(self) -> None:
        # One sweep over the master gradient buffer covers both networks
        # and the log-std view; the dense layers just get their
        # known-zero flag set (see Dense._fresh).
        self.flat_grads[:] = 0.0
        for dense in self._dense_layers:
            dense._fresh = True

    def policy_backward(self, d_out: np.ndarray, d_log_std: np.ndarray | None = None) -> None:
        """Backpropagate a gradient w.r.t. the policy head outputs.

        ``d_out`` is the gradient w.r.t. logits (discrete) or the Gaussian
        mean (continuous); ``d_log_std`` accumulates into the log-std
        parameter for continuous policies.
        """
        self.policy_net.backward(d_out, need_input_grad=False)
        if d_log_std is not None:
            if self.log_std is None:
                raise ValueError("d_log_std given for a discrete policy")
            self._dlog_std += d_log_std

    def value_backward(self, d_values: np.ndarray) -> None:
        """Backpropagate a gradient w.r.t. the value outputs ``(n,)``."""
        if not (type(d_values) is np.ndarray and d_values.dtype is _F64):
            d_values = np.asarray(d_values, dtype=float)
        self.value_net.backward(d_values[:, None], need_input_grad=False)

    # -- parameter plumbing --------------------------------------------------

    def parameters(self) -> list[np.ndarray]:
        params = self.policy_net.parameters()
        if self.log_std is not None:
            params = params + [self.log_std]
        return params + self.value_net.parameters()

    def gradients(self) -> list[np.ndarray]:
        grads = self.policy_net.gradients()
        if self.log_std is not None:
            grads = grads + [self._dlog_std]
        return grads + self.value_net.gradients()

    def get_weights(self) -> list[np.ndarray]:
        return [p.copy() for p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(f"expected {len(params)} arrays, got {len(weights)}")
        for p, w in zip(params, weights):
            p[:] = w

    # -- pickling ------------------------------------------------------------
    #
    # The per-layer views would pickle as independent copies, severing
    # them from the master flat buffer; rebuild the packing on load so an
    # unpickled policy (e.g. a Pensieve target shipped to a subprocess
    # env worker) keeps the flat-layout invariants.

    def __getstate__(self) -> dict:
        state = {
            "obs_dim": self.obs_dim,
            "action_space": self.action_space,
            "discrete": self.discrete,
            "policy_net": self.policy_net,
            "value_net": self.value_net,
            "log_std": None if self.log_std is None else self.log_std.copy(),
        }
        return state

    def __setstate__(self, state: dict) -> None:
        self.obs_dim = state["obs_dim"]
        self.action_space = state["action_space"]
        self.discrete = state["discrete"]
        self.policy_net = state["policy_net"]
        self.value_net = state["value_net"]
        if state["log_std"] is None:
            self.log_std = None
        else:
            self.log_std = np.asarray(state["log_std"], dtype=float)
            self._dlog_std = np.zeros_like(self.log_std)
        self._pack()
