"""Online mean/variance tracking for observation normalization."""

from __future__ import annotations

import numpy as np

__all__ = ["RunningMeanStd"]


class RunningMeanStd:
    """Tracks mean and variance with Chan et al.'s parallel-update formula.

    Used to normalize observations before they reach the policy network,
    which materially stabilizes PPO on environments whose features span
    several orders of magnitude (e.g. chunk sizes in bytes vs. buffer
    seconds in the ABR adversary environment).
    """

    def __init__(self, shape: tuple[int, ...] = ()) -> None:
        self.mean = np.zeros(shape)
        self.var = np.ones(shape)
        self.count = 1e-4

    def update(self, batch: np.ndarray) -> None:
        batch = np.atleast_2d(np.asarray(batch, dtype=float))
        batch_mean = batch.mean(axis=0)
        batch_var = batch.var(axis=0)
        batch_count = batch.shape[0]

        delta = batch_mean - self.mean
        total = self.count + batch_count
        new_mean = self.mean + delta * batch_count / total
        m_a = self.var * self.count
        m_b = batch_var * batch_count
        m2 = m_a + m_b + delta**2 * self.count * batch_count / total
        self.mean = new_mean
        self.var = m2 / total
        self.count = total

    def normalize(self, x: np.ndarray, clip: float = 10.0) -> np.ndarray:
        """Return ``(x - mean) / std`` clipped to ``[-clip, clip]``."""
        z = (np.asarray(x, dtype=float) - self.mean) / np.sqrt(self.var + 1e-8)
        return np.clip(z, -clip, clip)

    def state(self) -> dict:
        return {"mean": self.mean.copy(), "var": self.var.copy(), "count": self.count}

    def load_state(self, state: dict) -> None:
        self.mean = np.asarray(state["mean"], dtype=float).copy()
        self.var = np.asarray(state["var"], dtype=float).copy()
        self.count = float(state["count"])
