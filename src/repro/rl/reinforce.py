"""REINFORCE with a learned baseline (trainer ablation for the adversary).

A deliberately simple on-policy policy-gradient trainer used by the
``bench_ablation_trainers`` benchmark to show that the adversarial
framework is not PPO-specific (the paper trains with PPO throughout; this
is the natural "simplest thing that works" comparison point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.optim import Adam, clip_grad_norm_flat
from repro.rl.env import Env
from repro.rl.policy import ActorCritic
from repro.rl.running_stat import RunningMeanStd
from repro.rl.spaces import Box

__all__ = ["Reinforce", "ReinforceConfig"]


@dataclass
class ReinforceConfig:
    """Hyper-parameters for :class:`Reinforce`."""

    episodes_per_update: int = 4
    max_episode_steps: int = 512
    gamma: float = 0.99
    ent_coef: float = 0.01
    learning_rate: float = 1e-3
    max_grad_norm: float = 0.5
    hidden: tuple[int, ...] = (32, 16)
    normalize_obs: bool = True


class Reinforce:
    """Monte-Carlo policy gradient with a value-function baseline."""

    def __init__(self, env: Env, config: ReinforceConfig | None = None, seed: int = 0) -> None:
        self.env = env
        self.cfg = config if config is not None else ReinforceConfig()
        self.rng = np.random.default_rng(seed)
        obs_dim = env.observation_space.dim if isinstance(env.observation_space, Box) else 1
        self.policy = ActorCritic(obs_dim, env.action_space, hidden=self.cfg.hidden, rng=self.rng)
        # Single fused Adam pass over the policy's flat parameter buffer
        # (same layout PPO trains through; see repro.nn.network).
        self.optimizer = Adam([self.policy.flat_params], lr=self.cfg.learning_rate)
        self._flat_grads = [self.policy.flat_grads]
        self.obs_rms = RunningMeanStd((obs_dim,))
        self.total_steps = 0
        self.history: list[dict] = []

    def _normalize(self, obs: np.ndarray) -> np.ndarray:
        if self.cfg.normalize_obs:
            return self.obs_rms.normalize(obs)
        return np.asarray(obs, dtype=float)

    def _run_episode(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        obs = self.env.reset(seed=int(self.rng.integers(2**31 - 1)))
        observations, actions, rewards = [], [], []
        for _ in range(self.cfg.max_episode_steps):
            norm = self._normalize(obs)
            action, _logp, _value = self.policy.act(norm, self.rng)
            next_obs, reward, done, _ = self.env.step(action)
            observations.append(norm)
            actions.append(action)
            rewards.append(float(reward))
            self.total_steps += 1
            obs = next_obs
            if done:
                break
        if self.cfg.normalize_obs:
            self.obs_rms.update(np.asarray(observations))
        return np.asarray(observations), np.asarray(actions), np.asarray(rewards)

    def learn(self, total_steps: int) -> list[dict]:
        """Train until at least ``total_steps`` environment steps elapse."""
        target = self.total_steps + total_steps
        while self.total_steps < target:
            batch_obs, batch_act, batch_ret = [], [], []
            episode_rewards = []
            for _ in range(self.cfg.episodes_per_update):
                obs, actions, rewards = self._run_episode()
                returns = np.zeros_like(rewards)
                acc = 0.0
                for t in reversed(range(len(rewards))):
                    acc = rewards[t] + self.cfg.gamma * acc
                    returns[t] = acc
                batch_obs.append(obs)
                batch_act.append(actions)
                batch_ret.append(returns)
                episode_rewards.append(float(rewards.sum()))
            obs = np.concatenate(batch_obs)
            actions = np.concatenate(batch_act)
            returns = np.concatenate(batch_ret)
            stats = self._update(obs, actions, returns)
            stats["steps"] = self.total_steps
            stats["mean_episode_reward"] = float(np.mean(episode_rewards))
            self.history.append(stats)
        return self.history

    def _update(self, obs: np.ndarray, actions: np.ndarray, returns: np.ndarray) -> dict:
        n = len(returns)
        self.policy.zero_grad()
        values = self.policy.value(obs)
        adv = returns - values
        if n > 1:
            adv = (adv - adv.mean()) / (adv.std() + 1e-8)
        dist = self.policy.distribution(obs)
        d_logp = -adv / n
        if self.policy.discrete:
            d_logits = d_logp[:, None] * dist.log_prob_grad(actions)
            d_logits += (-self.cfg.ent_coef / n) * dist.entropy_grad()
            self.policy.policy_backward(d_logits)
        else:
            g_mean, g_log_std = dist.log_prob_grad(actions)
            d_ls = d_logp[:, None] * g_log_std + (-self.cfg.ent_coef / n) * dist.entropy_grad()
            self.policy.policy_backward(d_logp[:, None] * g_mean, d_ls.sum(axis=0))
        self.policy.value_backward((values - returns) / n)
        clip_grad_norm_flat(
            self.policy.flat_grads, self.cfg.max_grad_norm,
            segments=self.policy.param_slices,
        )
        self.optimizer.step(self._flat_grads)
        return {
            "pi_loss": float(-(d_logp * dist.log_prob(actions)).sum()),
            "v_loss": float(0.5 * np.mean((values - returns) ** 2)),
            "entropy": float(dist.entropy().mean()),
        }

    def predict(self, obs: np.ndarray, deterministic: bool = True):
        action, _logp, _value = self.policy.act(
            self._normalize(obs), self.rng, deterministic=deterministic
        )
        return action
