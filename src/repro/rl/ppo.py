"""Proximal Policy Optimization (clipped surrogate objective).

This is a faithful NumPy re-implementation of the algorithm the paper's
adversaries were trained with ("The training algorithm used was PPO, with
the default arguments of the stable-baselines implementation except for the
learning rate, which is a constant", section 3).  Defaults below follow
stable-baselines PPO2: gamma=0.99, lambda=0.95, clip=0.2, entropy
coefficient 0.01, value coefficient 0.5, gradient-norm clipping at 0.5 and
a constant learning rate.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.nn.distributions import Categorical, DiagGaussian
from repro.nn.optim import Adam, clip_grad_norm_flat
from repro.obs.metrics import MetricsRecorder, NULL_RECORDER
from repro.rl.buffer import RolloutBuffer
from repro.rl.env import Env
from repro.rl.policy import ActorCritic
from repro.rl.running_stat import RunningMeanStd
from repro.rl.spaces import Box
from repro.rl.vec_env import SyncVecEnv, VecEnv, make_vec_env

try:
    # ndarray.clip dispatches here anyway (numpy._core._methods._clip);
    # calling the ufunc directly is bitwise identical minus the wrapper
    # frame.  Private path, so fall back to the method if it moves.
    from numpy._core.umath import clip as _clip_ufunc
except ImportError:  # pragma: no cover - older/newer numpy layouts
    _clip_ufunc = None

__all__ = ["PPO", "PPOConfig"]


@dataclass
class PPOConfig:
    """Hyper-parameters for :class:`PPO` (stable-baselines PPO2 defaults)."""

    n_steps: int = 256
    batch_size: int = 64
    n_epochs: int = 4
    #: Number of parallel environments per rollout.  ``n_envs == 1`` is the
    #: exact historical single-env path; ``n_envs > 1`` collects via a
    #: vectorized env with one batched forward pass per time step.
    n_envs: int = 1
    #: Rollout-collection backend for ``n_envs > 1``: ``"sync"`` steps all
    #: envs in-process (:class:`~repro.rl.vec_env.SyncVecEnv`; right when
    #: the env step is cheap or batchable), ``"subproc"`` gives each env a
    #: worker process (:class:`~repro.rl.vec_env.SubprocVecEnv`; right when
    #: the env step itself dominates, e.g. the packet-level CC emulator),
    #: and ``"batched"`` delegates to an env-provided fully vectorized
    #: backend (one batched target-policy call per step; currently the
    #: ABR adversary's :class:`~repro.adversary.batched_env.BatchedAbrVecEnv`).
    #: All three produce bitwise-identical rollouts.
    vec_backend: str = "sync"
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_range: float = 0.2
    ent_coef: float = 0.01
    vf_coef: float = 0.5
    learning_rate: float = 2.5e-4
    max_grad_norm: float = 0.5
    target_kl: float | None = None
    normalize_obs: bool = True
    normalize_adv: bool = True
    hidden: tuple[int, ...] = (32, 16)
    activation: str = "tanh"
    init_log_std: float = 0.0

    def validate(self) -> None:
        if self.n_steps <= 0:
            raise ValueError("n_steps must be positive")
        if self.n_envs <= 0:
            raise ValueError("n_envs must be positive")
        if self.vec_backend not in ("sync", "subproc", "batched"):
            raise ValueError(
                f"vec_backend must be 'sync', 'subproc' or 'batched', "
                f"got {self.vec_backend!r}"
            )
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        if not 0.0 <= self.gae_lambda <= 1.0:
            raise ValueError("gae_lambda must be in [0, 1]")
        if self.clip_range <= 0.0:
            raise ValueError("clip_range must be positive")
        rollout = self.n_steps * self.n_envs
        if self.batch_size <= 0 or self.batch_size > rollout:
            raise ValueError("batch_size must be in (0, n_steps * n_envs]")
        # Every epoch must split the rollout into equal minibatches;
        # a ragged final batch would silently change the effective
        # per-sample learning rate (the gradient is averaged over the
        # minibatch) and break run-to-run comparability across n_envs.
        if rollout % self.batch_size != 0:
            raise ValueError(
                f"batch_size ({self.batch_size}) must divide "
                f"n_steps * n_envs ({rollout})"
            )


class PPO:
    """PPO trainer binding a policy to an environment.

    Parameters
    ----------
    env:
        The training environment.
    config:
        Hyper-parameters; see :class:`PPOConfig`.
    seed:
        Seeds network initialization, action sampling and minibatching.
    policy:
        Optionally, a pre-built (e.g. partially trained) policy to continue
        training -- this is how the robustification pipeline of section 2.3
        resumes Pensieve's training on the augmented trace corpus.
    recorder:
        A :class:`~repro.obs.MetricsRecorder` receiving per-update
        diagnostics (losses, KL, entropy, clip fraction, gradient norm,
        explained variance, episode-return stats, phase timings).  The
        default no-op recorder makes instrumentation free; recording
        never consumes randomness or mutates training state, so a run
        is bitwise identical with logging on or off.
    """

    def __init__(
        self,
        env: Env | VecEnv,
        config: PPOConfig | None = None,
        seed: int = 0,
        policy: ActorCritic | None = None,
        recorder: MetricsRecorder | None = None,
    ) -> None:
        self.cfg = config if config is not None else PPOConfig()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._owns_vec_env = False
        if isinstance(env, VecEnv):
            if self.cfg.n_envs not in (1, env.n_envs):
                raise ValueError(
                    f"config.n_envs={self.cfg.n_envs} does not match the "
                    f"given vectorized env of {env.n_envs} envs"
                )
            self.cfg.n_envs = env.n_envs
            self.vec_env: VecEnv | None = env
            # Subproc workers hold their envs remotely; ``self.env`` is
            # only available (and only needed) on in-process backends.
            self.env = env.envs[0] if isinstance(env, SyncVecEnv) else None
        elif self.cfg.n_envs > 1:
            self.vec_env = make_vec_env(
                env, self.cfg.n_envs, backend=self.cfg.vec_backend
            )
            self._owns_vec_env = True
            self.env = env
        else:
            self.vec_env = None
            self.env = env
        self.cfg.validate()
        self.rng = np.random.default_rng(seed)
        space_owner = self.vec_env if self.vec_env is not None else self.env
        obs_space = space_owner.observation_space
        obs_dim = obs_space.dim if isinstance(obs_space, Box) else 1
        self.policy = policy if policy is not None else ActorCritic(
            obs_dim,
            space_owner.action_space,
            hidden=self.cfg.hidden,
            activation=self.cfg.activation,
            rng=self.rng,
            init_log_std=self.cfg.init_log_std,
        )
        # PPO's call order is strictly policy-forward -> policy-backward ->
        # value-forward -> value-backward (both in rollouts and in every
        # update minibatch), so the two nets can share one set of
        # forward/backward scratch -- halving the hot working set.
        # REINFORCE must NOT do this (it backprops the value net after
        # re-forwarding the policy net); see share_forward_scratch.
        self.policy.share_forward_scratch()
        act_dim = 1 if self.policy.discrete else self.policy.action_space.dim
        self.buffer = RolloutBuffer(
            self.cfg.n_steps, self.policy.obs_dim, act_dim, self.policy.discrete,
            n_envs=self.cfg.n_envs,
        )
        # The whole policy (both networks + log_std) is one flat parameter
        # buffer, so Adam runs a single fused in-place pass per step -- one
        # first-moment and one second-moment buffer, no per-array loop.
        self.optimizer = Adam([self.policy.flat_params], lr=self.cfg.learning_rate)
        self._flat_grads = [self.policy.flat_grads]
        self._clip_scratch = np.empty_like(self.policy.flat_grads)
        self._clip_segs = [
            self._clip_scratch[start:stop]
            for start, stop in self.policy.param_slices
        ]
        # Epoch gather buffers, reused across every update.  Each epoch
        # draws one permutation and gathers ALL of the rollout's
        # per-sample arrays through it in a single pass; the minibatches
        # are then free contiguous slice views of the gathered arrays --
        # consecutive ``batch_size`` slices of the permutation are exactly
        # the index sets ``RolloutBuffer.minibatches`` would have yielded,
        # and a ``take``-then-slice sees the same values in the same order
        # as five per-minibatch fancy-index gathers.
        bs = self.cfg.batch_size
        od = self.policy.obs_dim
        cap = self.cfg.n_steps * self.cfg.n_envs
        self._ep_obs = np.empty((cap, od))
        if self.policy.discrete:
            self._ep_actions: np.ndarray = np.empty(cap, dtype=int)
        else:
            self._ep_actions = np.empty((cap, act_dim))
        self._ep_old_logp = np.empty(cap)
        self._ep_returns = np.empty(cap)
        self._ep_adv = np.empty(cap)
        # Steady-state minibatch view tuples: with a full buffer (the only
        # case training hits; validate() forces batch_size to divide the
        # rollout) every minibatch is a fixed contiguous slice of the
        # epoch buffers, so the per-minibatch (obs, actions, old_logp,
        # returns, adv) views can be built once instead of sliced 5x per
        # minibatch forever.
        self._mb_views = [
            (self._ep_obs[s:s + bs], self._ep_actions[s:s + bs],
             self._ep_old_logp[s:s + bs], self._ep_returns[s:s + bs],
             self._ep_adv[s:s + bs])
            for s in range(0, cap, bs)
        ]
        # Loss scratch: every per-sample temporary of the surrogate loss
        # writes into one of these (sliced to the minibatch), so the inner
        # loop allocates nothing.  The math is op-for-op the allocating
        # expressions it replaced -- see tests/test_flat_identity.py.
        self._loss_ratio = np.empty(bs)
        self._loss_klb = np.empty(bs)
        self._loss_s1 = np.empty(bs)
        self._loss_s2 = np.empty(bs)
        self._loss_active = np.empty(bs)
        self._loss_dlogp = np.empty(bs)
        self._loss_dlogp2 = self._loss_dlogp[:, None]
        self._loss_dv = np.empty(bs)
        self._loss_dv2 = self._loss_dv[:, None]
        self._loss_tmp = np.empty(bs)
        self._loss_mask = np.empty(bs, dtype=bool)
        if not self.policy.discrete:
            self._loss_dmean = np.empty((bs, act_dim))
            self._loss_dls = np.empty((bs, act_dim))
            self._loss_dls_sum = np.empty(act_dim)
        # Persistent minibatch distribution (continuous path): refreshed
        # in place while the policy head keeps returning the same scratch
        # buffer, rebuilt whenever it does not.
        self._dist: DiagGaussian | Categorical | None = None
        # Cached flat view of the value head's output scratch (rebuilt
        # whenever the net regrows it).
        self._vy_src: np.ndarray | None = None
        self._vy_flat: np.ndarray | None = None
        self.obs_rms = RunningMeanStd((self.policy.obs_dim,))
        self.total_steps = 0
        self.history: list[dict] = []
        self._obs: np.ndarray | None = None

    # -- rollout -------------------------------------------------------------

    def _normalize(self, obs: np.ndarray) -> np.ndarray:
        if self.cfg.normalize_obs:
            return self.obs_rms.normalize(obs)
        return np.asarray(obs, dtype=float)

    def collect_rollout(self) -> float | np.ndarray:
        """Fill the buffer with ``n_steps`` transitions per env.

        Returns the bootstrap value(s) of the state(s) following the final
        stored transition: a float on the single-env path, an ``(n_envs,)``
        array on the vectorized path.
        """
        if self.vec_env is None:
            return self._collect_rollout_single()
        return self._collect_rollout_vec()

    def _collect_rollout_single(self) -> float:
        """The historical scalar loop: one env, one forward pass per step."""
        if self._obs is None:
            self._obs = self.env.reset(seed=int(self.rng.integers(2**31 - 1)))
        self.buffer.reset()
        raw_batch = np.zeros((self.cfg.n_steps, self.policy.obs_dim))
        done = False
        for t in range(self.cfg.n_steps):
            raw_batch[t] = self._obs
            norm_obs = self._normalize(self._obs)
            action, log_prob, value = self.policy.act(norm_obs, self.rng)
            next_obs, reward, done, _info = self.env.step(action)
            self.buffer.add(norm_obs, action, float(reward), done, value, log_prob)
            self._obs = self.env.reset() if done else next_obs
            self.total_steps += 1
        if done:
            last_value = 0.0
        else:
            last_value = float(self.policy.value(np.atleast_2d(self._normalize(self._obs)))[0])
        if self.cfg.normalize_obs:
            self.obs_rms.update(raw_batch)
        return last_value

    def _collect_rollout_vec(self) -> np.ndarray:
        """Batched rollout: all envs advance together, one stacked forward
        pass per time step.  With one env this performs the same operations
        and random draws as :meth:`_collect_rollout_single`, bit for bit."""
        vec = self.vec_env
        assert vec is not None
        n_envs = vec.n_envs
        if self._obs is None:
            self._obs = vec.reset(seed=int(self.rng.integers(2**31 - 1)))
        self.buffer.reset()
        raw_batch = np.zeros((self.cfg.n_steps, n_envs, self.policy.obs_dim))
        dones = np.zeros(n_envs, dtype=bool)
        for t in range(self.cfg.n_steps):
            raw_batch[t] = self._obs
            norm_obs = self._normalize(self._obs)
            actions, log_probs, values = self.policy.act_batch(norm_obs, self.rng)
            next_obs, rewards, dones, _infos = vec.step(actions)
            self.buffer.add_batch(norm_obs, actions, rewards, dones, values, log_probs)
            self._obs = next_obs
            self.total_steps += n_envs
        last_values = self.policy.value(np.atleast_2d(self._normalize(self._obs)))
        last_values = np.where(dones, 0.0, last_values)
        if self.cfg.normalize_obs:
            self.obs_rms.update(raw_batch.reshape(-1, self.policy.obs_dim))
        return last_values

    # -- update --------------------------------------------------------------

    def update(self) -> dict:
        """Run the clipped-surrogate update over the stored rollout.

        Besides performing the optimization, returns the full diagnostic
        set the observability layer records per update: policy/value
        loss, approximate KL, entropy, clip fraction, pre-clip gradient
        norm and the explained variance of the rollout's value estimates.
        Every diagnostic is derived from quantities the update computes
        anyway -- nothing here draws randomness or touches parameters.
        """
        cfg = self.cfg
        buf = self.buffer
        flat = buf.flattened()
        stats = {"pi_loss": 0.0, "v_loss": 0.0, "entropy": 0.0, "approx_kl": 0.0,
                 "clip_frac": 0.0, "grad_norm": 0.0}
        n_updates = 0
        early_stop = False
        fused_s = 0.0
        bs = cfg.batch_size
        clip_lo, clip_hi = 1.0 - cfg.clip_range, 1.0 + cfg.clip_range
        policy = self.policy
        dense_layers = policy._dense_layers
        dlog = None if policy.discrete else policy._dlog_std
        perf = time.perf_counter
        policy_net, value_net = policy.policy_net, policy.value_net
        # Hot-loop locals: bound methods, config scalars and the ufunc
        # reducer, looked up once instead of per minibatch.
        forward_p, backward_p = policy_net._forward_fast, policy_net._backward_fast
        forward_v, backward_v = value_net._forward_fast, value_net._backward_fast
        discrete = policy.discrete
        dist_scratch = policy._dist_scratch
        log_std = policy.log_std
        dist = self._dist
        ent_coef, vf_coef = cfg.ent_coef, cfg.vf_coef
        norm_adv = cfg.normalize_adv
        reduce_ = np.add.reduce
        clip_ = _clip_ufunc
        # Per-update accumulators as locals: the dict writes happen once,
        # after the loops (same float addition order as accumulating in
        # the dict itself).
        acc_pi = acc_v = acc_ent = acc_kl = acc_clip = acc_gn = 0.0
        gather_s = 0.0
        n_rows = flat.obs.shape[0]
        ep_obs = self._ep_obs[:n_rows]
        ep_actions = self._ep_actions[:n_rows]
        ep_old_logp = self._ep_old_logp[:n_rows]
        ep_returns = self._ep_returns[:n_rows]
        ep_adv = self._ep_adv[:n_rows]
        full = n_rows == self._ep_obs.shape[0]
        mb_views = self._mb_views
        # Loss-scratch bindings are loop invariants on the steady path; a
        # ragged tail (partially filled buffer, tests only) rebinds sliced
        # views and the next full minibatch restores these.
        m = bs
        ratio, klb = self._loss_ratio, self._loss_klb
        surr1, surr2 = self._loss_s1, self._loss_s2
        active, d_logp = self._loss_active, self._loss_dlogp
        d_logp2, d_values = self._loss_dlogp2, self._loss_dv
        d_values2 = self._loss_dv2
        tmp, mask = self._loss_tmp, self._loss_mask
        vy_src, vy_flat = self._vy_src, self._vy_flat
        for _epoch in range(cfg.n_epochs):
            # One permutation draw and ONE row-gather per array per epoch;
            # consecutive batch_size slices of the permutation are exactly
            # the minibatch index sets ``buf.minibatches`` yields (same
            # RNG draw), so the contiguous slice views below hold the
            # same values, in the same order, as per-minibatch gathers.
            t0 = perf()
            perm = buf.epoch_permutation(self.rng)
            flat.obs.take(perm, axis=0, out=ep_obs)
            flat.actions.take(perm, axis=0, out=ep_actions)
            flat.log_probs.take(perm, axis=0, out=ep_old_logp)
            flat.returns.take(perm, axis=0, out=ep_returns)
            flat.advantages.take(perm, axis=0, out=ep_adv)
            gather_s += perf() - t0
            for k, start in enumerate(range(0, n_rows, bs)):
                stop = start + bs
                if stop <= n_rows:
                    if m != bs:  # restore full bindings after a ragged tail
                        m = bs
                        ratio, klb = self._loss_ratio, self._loss_klb
                        surr1, surr2 = self._loss_s1, self._loss_s2
                        active, d_logp = self._loss_active, self._loss_dlogp
                        d_logp2, d_values = self._loss_dlogp2, self._loss_dv
                        d_values2 = self._loss_dv2
                        tmp, mask = self._loss_tmp, self._loss_mask
                    if full:  # steady state: prebuilt minibatch views
                        mb_obs, mb_actions, mb_old_logp, mb_returns, adv = (
                            mb_views[k]
                        )
                    else:
                        mb_obs = ep_obs[start:stop]
                        mb_actions = ep_actions[start:stop]
                        mb_old_logp = ep_old_logp[start:stop]
                        mb_returns = ep_returns[start:stop]
                        adv = ep_adv[start:stop]
                else:  # ragged tail of a partially filled buffer (tests)
                    stop = n_rows
                    m = stop - start
                    ratio, klb = self._loss_ratio[:m], self._loss_klb[:m]
                    surr1, surr2 = self._loss_s1[:m], self._loss_s2[:m]
                    active, d_logp = self._loss_active[:m], self._loss_dlogp[:m]
                    d_logp2, d_values = self._loss_dlogp2[:m], self._loss_dv[:m]
                    d_values2 = self._loss_dv2[:m]
                    tmp, mask = self._loss_tmp[:m], self._loss_mask[:m]
                    mb_obs = ep_obs[start:stop]
                    mb_actions = ep_actions[start:stop]
                    mb_old_logp = ep_old_logp[start:stop]
                    mb_returns = ep_returns[start:stop]
                    adv = ep_adv[start:stop]
                if norm_adv and m > 1:
                    # In place (the epoch buffer is regathered next epoch;
                    # the rollout's own advantages are never touched).
                    # The manual two-pass moments replicate
                    # ndarray.mean/.std bit for bit (np.add.reduce is
                    # np.sum without the wrapper frames), and squaring the
                    # *centered* values squares exactly the numbers the
                    # historical ``adv.std()`` squared -- identical to
                    # ``(adv - adv.mean()) / (adv.std() + 1e-8)`` with one
                    # subtraction pass instead of two.
                    mean = reduce_(adv) / m
                    np.subtract(adv, mean, out=adv)
                    np.multiply(adv, adv, out=tmp)
                    std = math.sqrt(reduce_(tmp) / m)
                    np.divide(adv, std + 1e-8, out=adv)

                # Minimal zero_grad: every dense gradient segment is
                # direct-written by the fresh-path backward before the
                # flat gradient is read (inputs in this loop are always
                # float64 matrices, so the fast path is guaranteed);
                # only log_std accumulates via += and needs a real zero.
                for dense in dense_layers:
                    dense._fresh = True
                if dlog is not None:
                    dlog.fill(0.0)
                net_out = forward_p(mb_obs)
                if discrete:
                    dist = Categorical(net_out)
                elif dist is not None and dist.mean is net_out:
                    # Steady state: the policy head hands back the same
                    # scratch buffer every minibatch, so the persistent
                    # distribution is refreshed in place (one exp, z-cache
                    # dropped) -- bitwise the constructor path.
                    dist.refresh()
                else:
                    dist = DiagGaussian(net_out, log_std, scratch=dist_scratch)
                logp = dist.log_prob(mb_actions)
                # logp - old_logp lands in its own buffer (klb) so the KL
                # diagnostic below can reuse it instead of re-subtracting.
                np.subtract(logp, mb_old_logp, out=klb)
                np.exp(klb, out=ratio)
                np.multiply(ratio, adv, out=surr1)
                if clip_ is not None:
                    clip_(ratio, clip_lo, clip_hi, surr2)
                else:  # pragma: no cover - fallback numpy layout
                    ratio.clip(clip_lo, clip_hi, surr2)
                surr2 *= adv
                # Gradient flows only where the unclipped branch is active
                # (a comparison ufunc into a float out= writes exactly the
                # 0.0/1.0 the historical ``.astype(float)`` produced).
                np.less_equal(surr1, surr2, out=active)
                # d_logp = adv * ratio * active, which (multiplication
                # commutes bitwise) is surr1 * active in a single pass.
                np.multiply(surr1, active, out=d_logp)
                # One pass: x /= -m is bitwise negative(x) then x /= m.
                d_logp /= -m
                entropy = dist.entropy()
                if discrete:
                    d_logits = d_logp2 * dist.log_prob_grad(mb_actions)
                    d_logits += (-ent_coef / m) * dist.entropy_grad()
                    backward_p(d_logits, False)
                else:
                    g_mean, g_log_std = dist.log_prob_grad(mb_actions)
                    if m == bs:
                        d_mean, d_ls = self._loss_dmean, self._loss_dls
                    else:
                        d_mean, d_ls = self._loss_dmean[:m], self._loss_dls[:m]
                    np.multiply(d_logp2, g_mean, out=d_mean)
                    np.multiply(d_logp2, g_log_std, out=d_ls)
                    # dH/dlog_std is exactly 1 per dimension (see
                    # DiagGaussian.entropy_grad), so the entropy bonus is
                    # a scalar broadcast-add.
                    d_ls += -ent_coef / m
                    backward_p(d_mean, False)
                    dlog += reduce_(d_ls, axis=0, out=self._loss_dls_sum)

                vy = forward_v(mb_obs)
                if vy is not vy_src:  # value head regrew its scratch
                    vy_src, vy_flat = vy, vy[:, 0]
                values = vy_flat
                # values - returns is also the first factor of the v_loss
                # diagnostic; keep it in tmp (dead until the stats block).
                np.subtract(values, mb_returns, out=tmp)
                np.multiply(tmp, vf_coef, out=d_values)
                d_values /= m
                backward_v(d_values2, False)

                t0 = perf()
                grad_norm = clip_grad_norm_flat(
                    policy.flat_grads, cfg.max_grad_norm,
                    segments=policy.param_slices,
                    scratch=self._clip_scratch,
                    segment_views=self._clip_segs,
                )
                self.optimizer.step(self._flat_grads)
                fused_s += perf() - t0

                # Diagnostics, with every mean spelled as the reduction it
                # wraps (sum/size, count/size) -- bitwise the historical
                # ndarray.mean values; surr1 and ratio are dead as inputs
                # past this point, so they double as scratch, and tmp/klb
                # still hold (values - returns) / (logp - old_logp) from
                # above (sum(old-logp)/m == sum(logp-old)/-m bitwise).
                np.minimum(surr1, surr2, out=surr1)
                acc_pi += float(-(reduce_(surr1) / m))
                np.multiply(tmp, tmp, out=tmp)
                acc_v += float(0.5 * (reduce_(tmp) / m))
                acc_ent += float(reduce_(entropy) / m)
                acc_kl += float(reduce_(klb) / -m)
                np.subtract(ratio, 1.0, out=ratio)
                np.absolute(ratio, out=ratio)
                np.greater(ratio, cfg.clip_range, out=mask)
                acc_clip += float(np.count_nonzero(mask) / m)
                acc_gn += float(grad_norm)
                n_updates += 1
            if cfg.target_kl is not None:
                dist = self.policy.distribution(flat.obs)
                kl = float(np.mean(flat.log_probs - dist.log_prob(flat.actions)))
                if kl > 1.5 * cfg.target_kl:
                    early_stop = True
                    break
        self._dist = dist
        self._vy_src, self._vy_flat = vy_src, vy_flat
        stats["pi_loss"], stats["v_loss"], stats["entropy"] = acc_pi, acc_v, acc_ent
        stats["approx_kl"], stats["clip_frac"] = acc_kl, acc_clip
        stats["grad_norm"] = acc_gn
        for key in stats:
            stats[key] /= max(n_updates, 1)
        # Explained variance of the rollout-time value estimates
        # (``values = returns - advantages`` by the GAE identity): how
        # much of the return signal the critic already accounts for.
        # ``np.var`` spelled out ufunc-by-ufunc (same reduce / subtract /
        # square / divide sequence numpy's ``_var`` helper runs, so
        # bitwise identical) into the epoch gather buffers, which are
        # dead once the epochs above finish.
        if n_rows:
            mean_r = reduce_(flat.returns) / n_rows
            np.subtract(flat.returns, mean_r, out=ep_returns)
            np.multiply(ep_returns, ep_returns, out=ep_returns)
            var_returns = float(reduce_(ep_returns) / n_rows)
            mean_a = reduce_(flat.advantages) / n_rows
            np.subtract(flat.advantages, mean_a, out=ep_adv)
            np.multiply(ep_adv, ep_adv, out=ep_adv)
            var_adv = float(reduce_(ep_adv) / n_rows)
        else:
            var_returns = var_adv = float("nan")
        stats["explained_variance"] = (
            1.0 - var_adv / var_returns if var_returns > 0.0 else float("nan")
        )
        stats["early_stop"] = early_stop
        # Cumulative per-update phase timings: how long the minibatch
        # gathers and the fused clip+Adam pass took, visible in
        # metrics.jsonl without attaching a profiler.
        self.recorder.record("update/gather_s", gather_s, step=self.total_steps)
        self.recorder.record("update/fused_step_s", fused_s, step=self.total_steps)
        return stats

    # -- main loop -----------------------------------------------------------

    def learn(
        self,
        total_steps: int,
        callback: Callable[["PPO", dict], None] | None = None,
    ) -> list[dict]:
        """Train for (at least) ``total_steps`` environment steps."""
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        target = self.total_steps + total_steps
        while self.total_steps < target:
            with self.recorder.timer("ppo/rollout_seconds"):
                last_value = self.collect_rollout()
            self.buffer.compute_gae(last_value, self.cfg.gamma, self.cfg.gae_lambda)
            with self.recorder.timer("ppo/update_seconds"):
                stats = self.update()
            stats["steps"] = self.total_steps
            stats["mean_episode_reward"] = self.buffer.mean_episode_reward()
            stats.update(self.buffer.episode_return_stats())
            self.history.append(stats)
            self.recorder.record_dict(stats, step=self.total_steps, prefix="ppo/")
            if callback is not None:
                callback(self, stats)
        return self.history

    def close(self) -> None:
        """Shut down a vectorized env this trainer built internally.

        Only envs constructed by :class:`PPO` itself (prototype env with
        ``n_envs > 1``) are closed; an externally supplied env -- vec or
        not -- stays the caller's to manage.  Idempotent.
        """
        if self._owns_vec_env and self.vec_env is not None:
            self.vec_env.close()
            self.vec_env = None

    # -- deterministic acting and persistence ---------------------------------

    def predict(
        self,
        obs: np.ndarray,
        deterministic: bool = True,
        rng: np.random.Generator | None = None,
    ):
        """Map an observation to an action using current (normalized) stats.

        ``rng`` overrides the trainer's generator for the exploration
        noise of stochastic predictions, letting callers (e.g. adversarial
        trace generation) make each rollout reproducible from its own
        seed regardless of how much the shared generator was consumed.
        """
        action, _logp, _value = self.policy.act(
            self._normalize(obs), rng if rng is not None else self.rng,
            deterministic=deterministic,
        )
        return action

    @staticmethod
    def checkpoint_path(path: str | Path) -> Path:
        """Canonical on-disk checkpoint path: always the ``.npz`` name.

        ``np.savez`` silently appends ``.npz`` to names that lack it;
        normalizing here makes ``save(p)``/``load(p)`` round-trip for any
        of ``p``, ``p.npz`` and ``Path(p)`` spellings of the same file.
        """
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        return path

    def save(self, path: str | Path) -> None:
        path = self.checkpoint_path(path)
        arrays = {f"param_{i}": w for i, w in enumerate(self.policy.get_weights())}
        arrays["rms_mean"] = self.obs_rms.mean
        arrays["rms_var"] = self.obs_rms.var
        arrays["rms_count"] = np.array(self.obs_rms.count)
        np.savez(path, **arrays)
        self.recorder.event("checkpoint_saved", path=str(path))

    def load(self, path: str | Path) -> None:
        """Restore policy weights and observation statistics from ``path``.

        The checkpoint is fully read and validated against the current
        policy -- parameter count, every parameter shape, and the
        normalization-statistics shape -- *before* anything is mutated,
        so a mismatched file raises a clear :class:`ValueError` and
        leaves the trainer exactly as it was.
        """
        path = self.checkpoint_path(path)
        with np.load(path) as data:
            weights: list[np.ndarray] = []
            i = 0
            while f"param_{i}" in data:
                weights.append(data[f"param_{i}"])
                i += 1
            missing = [k for k in ("rms_mean", "rms_var", "rms_count")
                       if k not in data]
            if missing:
                raise ValueError(
                    f"checkpoint {path} is missing arrays {missing}; "
                    "not a PPO checkpoint?"
                )
            rms_state = {
                "mean": data["rms_mean"],
                "var": data["rms_var"],
                "count": float(data["rms_count"]),
            }
        params = self.policy.parameters()
        if len(weights) != len(params):
            raise ValueError(
                f"checkpoint {path} holds {len(weights)} parameter arrays "
                f"but the policy has {len(params)}; architecture mismatch "
                "(hidden sizes / action space?)"
            )
        for i, (w, p) in enumerate(zip(weights, params)):
            if w.shape != p.shape:
                raise ValueError(
                    f"checkpoint {path} param_{i} has shape {w.shape}, "
                    f"policy expects {p.shape}; refusing to load"
                )
        rms_shape = np.asarray(rms_state["mean"]).shape
        if rms_shape != self.obs_rms.mean.shape:
            raise ValueError(
                f"checkpoint {path} normalization stats have shape "
                f"{rms_shape}, trainer expects {self.obs_rms.mean.shape}"
            )
        self.policy.set_weights(weights)
        self.obs_rms.load_state(rms_state)
        self.recorder.event("checkpoint_loaded", path=str(path))
